"""Ablation: hybrid vectors vs structure-only vectors.

Section 4.1 motivates concatenating label embeddings with the binary
property vector: "This representation prevents semantically different
nodes, or edges, from being merged due to their same structure."

In this implementation the *node* side of that guarantee is enforced
exactly (clusters are refined by label set, per Definition 3.2), so the
soft embedding block is redundant for node clustering.  Where it remains
load-bearing is **edge endpoint identity**: whether two same-label edges
over different endpoint types (LDBC's LIKES over Post vs Comment, POLE's
INVOLVED_IN from Object vs Vehicle) land in different clusters is decided
by the source/target embedding blocks of the edge vector.  With
``label_weight = 0`` those blocks vanish, structurally identical edges
collapse into one cluster whose endpoint union hides the distinction, and
edge F1* drops.  This ablation sweeps the weight and checks exactly that.
"""

from __future__ import annotations

from repro.core.config import PGHiveConfig
from repro.core.pipeline import PGHive
from repro.datasets import get_dataset, inject_noise
from repro.evaluation.f1star import majority_f1
from repro.graph.store import GraphStore
from repro.util.tables import render_table

# Datasets whose ground truth contains same-label multi-endpoint edge types.
DATASETS = ("POLE", "LDBC", "MB6")
WEIGHTS = (0.0, 1.0, 3.0, 6.0)
NOISE = 0.2


def test_ablation_label_weight(benchmark, scale):
    def sweep():
        outcome = {}
        for name in DATASETS:
            dataset = inject_noise(
                get_dataset(name, scale=scale, seed=1), NOISE, 1.0, seed=2
            )
            store = GraphStore(dataset.graph)
            for weight in WEIGHTS:
                config = PGHiveConfig(
                    label_weight=weight, post_processing=False
                )
                result = PGHive(config).discover(store)
                outcome[(name, weight, "edge")] = majority_f1(
                    result.edge_assignment, dataset.truth.edge_types
                ).headline
                outcome[(name, weight, "node")] = majority_f1(
                    result.node_assignment, dataset.truth.node_types
                ).headline
        return outcome

    outcome = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [name, kind,
         *(f"{outcome[(name, w, kind)]:.3f}" for w in WEIGHTS)]
        for name in DATASETS
        for kind in ("node", "edge")
    ]
    print()
    print(render_table(
        ["dataset", "kind", *(f"w={w}" for w in WEIGHTS)],
        rows,
        f"Ablation: F1* vs label weight (hybrid vectors), "
        f"{int(NOISE*100)}% noise, full labels",
    ))

    for name in DATASETS:
        hybrid_edge = outcome[(name, 3.0, "edge")]
        bare_edge = outcome[(name, 0.0, "edge")]
        # The embedding block never hurts...
        assert hybrid_edge >= bare_edge - 0.01, (name, hybrid_edge, bare_edge)
        # ...and node-side accuracy is weight-independent here because the
        # label-set refinement enforces Definition 3.2 exactly.
        assert outcome[(name, 3.0, "node")] >= outcome[(name, 0.0, "node")] - 0.01
    # Somewhere, endpoint identity must visibly depend on the hybrid block.
    assert any(
        outcome[(name, 3.0, "edge")] > outcome[(name, 0.0, "edge")] + 0.02
        for name in DATASETS
    ), "hybrid edge vectors should visibly beat structure-only somewhere"
