"""Extension experiment: scalability in the number of elements.

Section 4.7 argues PG-HIVE is O(N (P + T D)) + O(C^2) where the cluster
count C is small, i.e. effectively linear in the data size.  This bench
measures discovery time over a geometric size sweep and checks near-linear
growth: doubling the data must grow the runtime by clearly less than the
quadratic factor (4x), with slack for constant overheads.
"""

from __future__ import annotations

from repro.core.config import PGHiveConfig
from repro.core.pipeline import PGHive
from repro.datasets import get_dataset
from repro.graph.store import GraphStore
from repro.util.tables import render_table
from repro.util.timing import Timer

SIZES = (0.5, 1.0, 2.0, 4.0)
REPEATS = 3
DATASET = "LDBC"


def test_ext_scalability(benchmark, scale):
    def sweep():
        points = []
        for size in SIZES:
            dataset = get_dataset(DATASET, scale=size * scale, seed=1)
            store = GraphStore(dataset.graph)
            elements = dataset.graph.num_nodes + dataset.graph.num_edges
            best = float("inf")
            for _ in range(REPEATS):
                pipeline = PGHive(PGHiveConfig(post_processing=False))
                with Timer() as timer:
                    pipeline.discover(store)
                best = min(best, timer.elapsed)
            points.append((elements, best))
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [f"{elements:,}", f"{seconds * 1000:.0f} ms",
         f"{seconds / elements * 1e6:.1f} us/elem"]
        for elements, seconds in points
    ]
    print()
    print(render_table(
        ["elements", "discovery time", "per element"],
        rows,
        f"Extension: scalability on {DATASET} (paper claims O(N))",
    ))

    # Near-linear: time ratio grows at most ~1.8x the size ratio between
    # consecutive points (generous slack for fixed costs and cache noise).
    for (n1, t1), (n2, t2) in zip(points, points[1:]):
        size_ratio = n2 / n1
        time_ratio = t2 / max(t1, 1e-9)
        assert time_ratio <= 1.8 * size_ratio, (
            n1, n2, time_ratio, size_ratio,
        )
    # And the largest run must be meaningfully sub-quadratic overall.
    n_first, t_first = points[0]
    n_last, t_last = points[-1]
    assert (t_last / t_first) <= (n_last / n_first) ** 1.5
