"""Figure 5: execution time until type discovery per dataset x noise.

Measures discovery wall-clock (preprocessing + clustering + type
extraction; post-processing disabled, as in the paper's "time until type
discovery") for all four methods across noise levels, and checks the
efficiency claims:

* PG-HIVE's runtime is flat in noise (LSH cost is O(N), independent of
  property noise);
* GMMSchema slows down as noise grows (wider BIC scans over more
  patterns), while PG-HIVE stays comparable to it;
* the PG-HIVE vs SchemI ratio is reported.  NOTE: the paper's "PG-HIVE up
  to 1.95x faster than SchemI" was measured on a 4-node Spark cluster
  where SchemI's repeated full-data passes and shuffles dominate; on this
  single-process in-memory substrate SchemI's one-pass dict fold has a
  smaller constant than PG-HIVE's embedding+LSH pipeline, so the ratio
  inverts (documented in EXPERIMENTS.md).  The noise-independence and
  GMM-growth shapes transfer; the absolute SchemI constant does not.
"""

from __future__ import annotations

from collections import defaultdict

from repro.baselines import GMMSchema, SchemI
from repro.core.config import LSHMethod, PGHiveConfig
from repro.core.pipeline import PGHive
from repro.datasets import get_dataset, inject_noise
from repro.evaluation.harness import (
    METHOD_ELSH,
    METHOD_GMM,
    METHOD_MINHASH,
    METHOD_SCHEMI,
)
from repro.graph.store import GraphStore
from repro.util.tables import render_table
from repro.util.timing import Timer

NOISE_LEVELS = (0.0, 0.2, 0.4)
REPEATS = 3


def _make_systems():
    return {
        METHOD_ELSH: lambda: PGHive(PGHiveConfig(
            method=LSHMethod.ELSH, post_processing=False,
        )),
        METHOD_MINHASH: lambda: PGHive(PGHiveConfig(
            method=LSHMethod.MINHASH, post_processing=False,
        )),
        METHOD_GMM: GMMSchema,
        METHOD_SCHEMI: SchemI,
    }


def test_fig5_execution_time(benchmark, scale, datasets):
    systems = _make_systems()

    def run_all():
        times = defaultdict(dict)
        for name in datasets:
            clean = get_dataset(name, scale=scale, seed=1)
            for noise in NOISE_LEVELS:
                noisy = inject_noise(clean, noise, 1.0, seed=2)
                store = GraphStore(noisy.graph)
                for method, factory in systems.items():
                    best = float("inf")
                    for _ in range(REPEATS):
                        system = factory()
                        with Timer() as timer:
                            system.discover(store)
                        best = min(best, timer.elapsed)
                    times[(name, method)][noise] = best
        return times

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for (name, method) in sorted(times):
        series = times[(name, method)]
        rows.append([
            name, method,
            *(f"{series[n]:.3f}s" for n in NOISE_LEVELS),
        ])
    print()
    print(render_table(
        ["dataset", "method", *(f"noise={int(n*100)}%" for n in NOISE_LEVELS)],
        rows,
        f"Figure 5: time until type discovery (scale={scale}, "
        f"best of {REPEATS})",
    ))

    def total(method, noise):
        return sum(times[(d, method)][noise] for d in datasets)

    # PG-HIVE: noise does not inflate runtime (allow 40 % jitter).
    for method in (METHOD_ELSH, METHOD_MINHASH):
        assert total(method, 0.4) <= total(method, 0.0) * 1.4 + 0.05
    # GMM: runtime grows with noise...
    assert total(METHOD_GMM, 0.4) > total(METHOD_GMM, 0.0)
    # ...while PG-HIVE stays comparable to GMM at high noise (the paper's
    # "comparable efficiency to GMMSchema, which only retrieves node types").
    assert total(METHOD_ELSH, 0.4) <= total(METHOD_GMM, 0.4) * 2.0
    ratio = total(METHOD_SCHEMI, 0.0) / total(METHOD_ELSH, 0.0)
    print(f"\nSchemI / PG-HIVE-ELSH total-time ratio at 0% noise: "
          f"{ratio:.2f}x (paper: 1.95x on Spark; inverted on this "
          f"single-process substrate -- see EXPERIMENTS.md)")
