"""Figure 6: F1* heatmaps over the (T, alpha) grid vs the adaptive choice.

For each dataset (0 % noise, 100 % labels, ELSH) we sweep the number of
hash tables T and the bucket-length factor alpha, print the resulting F1*
heatmap with the adaptive configuration marked, and check the paper's
conclusion: the adaptive choice lands within a small margin of the best
grid cell on every dataset.
"""

from __future__ import annotations

from repro.core.adaptive import choose_parameters, estimate_distance_scale
from repro.core.config import LSHMethod, PGHiveConfig
from repro.core.pipeline import PGHive
from repro.datasets import get_dataset
from repro.evaluation.f1star import majority_f1
from repro.graph.store import GraphStore
from repro.util.tables import render_table

T_GRID = (15, 20, 25, 30, 35)
ALPHA_GRID = (0.5, 0.8, 1.0, 1.5, 2.0)


def _run_with(dataset, bucket_length, num_tables):
    config = PGHiveConfig(
        method=LSHMethod.ELSH,
        bucket_length=bucket_length,
        num_tables=num_tables,
        post_processing=False,
    )
    result = PGHive(config).discover(GraphStore(dataset.graph))
    return majority_f1(result.node_assignment, dataset.truth.node_types).headline


def test_fig6_parameter_heatmap(benchmark, scale, datasets):
    def sweep():
        outcome = {}
        for name in datasets:
            dataset = get_dataset(name, scale=min(scale, 0.4), seed=1)
            # The alpha grid scales the same adaptive base bucket (1.2 mu)
            # the pipeline would use, so the axes match section 4.2.
            from repro.core.incremental import IncrementalDiscovery

            engine = IncrementalDiscovery()
            nodes = list(dataset.graph.nodes())
            embedder = engine._fit_embedder(
                nodes, list(dataset.graph.edges()),
                {n.id: n.labels for n in nodes},
            )
            from repro.core.vectorize import NodeVectorizer

            keys = sorted({k for n in nodes for k in n.properties})
            vectors = NodeVectorizer(keys, embedder).vectorize(nodes)
            mu, _ = estimate_distance_scale(vectors, 500, 0.01)
            b_base = 1.2 * mu
            grid_scores = {}
            for alpha in ALPHA_GRID:
                for num_tables in T_GRID:
                    grid_scores[(alpha, num_tables)] = _run_with(
                        dataset, b_base * alpha, num_tables
                    )
            num_labels = len(dataset.graph.node_labels())
            adaptive = choose_parameters(vectors, num_labels)
            adaptive_f1 = _run_with(
                dataset, adaptive.bucket_length, adaptive.num_tables
            )
            outcome[name] = (grid_scores, adaptive, adaptive_f1)
        return outcome

    outcome = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    for name, (grid_scores, adaptive, adaptive_f1) in outcome.items():
        rows = []
        for alpha in ALPHA_GRID:
            row = [f"a={alpha}"]
            for num_tables in T_GRID:
                marker = ""
                if (
                    abs(alpha - adaptive.alpha) < 1e-9
                    and num_tables == adaptive.num_tables
                ):
                    marker = " x"
                row.append(f"{grid_scores[(alpha, num_tables)]:.3f}{marker}")
            rows.append(row)
        best = max(grid_scores.values())
        print(render_table(
            ["", *(f"T={t}" for t in T_GRID)],
            rows,
            f"Figure 6 {name}: best={best:.3f} "
            f"adaptive={adaptive_f1:.3f} "
            f"(adaptive a={adaptive.alpha}, T={adaptive.num_tables})",
        ))
        print()
        # Paper: the adaptive choice is close to the best-performing cell.
        assert adaptive_f1 >= best - 0.05, (name, adaptive_f1, best)
