"""Out-of-core storage benchmark: slab-backed vs. in-memory discovery.

Generates a JSONL dataset whose on-disk size is several times a
configured RAM budget (fat string properties keep the byte count high
while the type structure stays small), then runs parallel incremental
discovery through both storage backends, each in a fresh subprocess so
peak RSS is attributable:

* ``memory`` -- ``load_graph_jsonl`` builds the whole ``PropertyGraph``
  in the driver, then discovery runs over a ``GraphStore``;
* ``disk`` -- ``ingest_jsonl_slabs`` streams the file straight into
  memory-mapped slab files in bounded chunks, then discovery runs over
  a ``DiskGraphStore`` whose workers mmap the slabs read-only.

Each child records its peak RSS *delta*: ``VmHWM`` at exit minus
``VmHWM`` right after imports, i.e. growth attributable to the data,
not to the interpreter.  The gate -- also CI's bounded-memory smoke --
checks three facts per scale: the dataset is at least
``BUDGET_FACTOR``x the budget, the disk driver's delta stays *under*
the budget the dataset exceeds, and the two backends' schemas are
byte-identical.

Usage:

    PYTHONPATH=src python benchmarks/bench_outofcore.py [--smoke]

``--smoke`` runs the smallest scale only (CI); the full run writes
``BENCH_outofcore.json``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_outofcore.json"
SRC = Path(__file__).resolve().parent.parent / "src"
MIB = 1 << 20

#: RAM budgets (MiB) per scale; the dataset targets BUDGET_FACTOR x this.
FULL_BUDGETS_MIB = (48, 96)
SMOKE_BUDGETS_MIB = (48,)
BUDGET_FACTOR = 4.0
BLOB_BYTES = 8192
NUM_BATCHES = 4
JOBS = 2
SEED = 7

#: Node shapes cycled while writing: (label, property key) pairs give
#: the discovered schema a handful of types without shrinking rows.
SHAPES = (
    ("Person", "bio"),
    ("Post", "content"),
    ("Organization", "charter"),
)
EDGE_LABELS = ("KNOWS", "LIKES", "WORKS_AT")


def peak_rss_bytes() -> int | None:
    """This process's lifetime RSS high-water mark (Linux VmHWM)."""
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        return None
    return None


def write_dataset(path: Path, target_bytes: int) -> tuple[int, int]:
    """Stream a JSONL graph of at least ``target_bytes`` to ``path``.

    Never holds the graph in memory: rows are formatted and written one
    at a time.  Returns ``(nodes, edges)``.
    """
    nodes = 0
    with path.open("w", encoding="utf-8") as handle:
        while handle.tell() < target_bytes:
            label, key = SHAPES[nodes % len(SHAPES)]
            blob = f"{nodes:08d}" * (BLOB_BYTES // 8)
            record = {
                "kind": "node",
                "id": nodes,
                "labels": [label],
                "properties": {key: blob, "seq": nodes},
            }
            handle.write(json.dumps(record) + "\n")
            nodes += 1
        edges = 0
        for source in range(1, nodes):
            record = {
                "kind": "edge",
                "id": edges,
                "source": source,
                "target": source - 1,
                "labels": [EDGE_LABELS[source % len(EDGE_LABELS)]],
                "properties": {},
            }
            handle.write(json.dumps(record) + "\n")
            edges += 1
    return nodes, edges


def child_main(backend: str, jsonl: str, workdir: str, schema_out: str) -> None:
    """One measured run in a fresh process; prints a JSON result line."""
    from repro.core.config import PGHiveConfig
    from repro.core.pipeline import PGHive
    from repro.graph.diskstore import ingest_jsonl_slabs
    from repro.graph.io import load_graph_jsonl
    from repro.graph.store import GraphStore
    from repro.schema import serialize_pg_schema

    baseline = peak_rss_bytes()
    started = time.perf_counter()
    if backend == "disk":
        store = ingest_jsonl_slabs(jsonl, Path(workdir) / "slabs")
    else:
        store = GraphStore(load_graph_jsonl(jsonl))
    ingest_seconds = time.perf_counter() - started

    config = PGHiveConfig(jobs=JOBS, seed=SEED, store=backend)
    started = time.perf_counter()
    result = PGHive(config).discover_incremental(
        store, num_batches=NUM_BATCHES
    )
    discover_seconds = time.perf_counter() - started
    Path(schema_out).write_text(
        serialize_pg_schema(result.schema), encoding="utf-8"
    )
    peak = peak_rss_bytes()
    delta = None if baseline is None or peak is None else peak - baseline
    print(json.dumps({
        "backend": backend,
        "peak_rss_delta_bytes": delta,
        "ingest_seconds": round(ingest_seconds, 3),
        "discover_seconds": round(discover_seconds, 3),
        "num_types": len(result.schema.node_types)
        + len(result.schema.edge_types),
    }))


def run_child(
    backend: str, jsonl: Path, workdir: Path, schema_out: Path
) -> dict[str, object]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    process = subprocess.run(
        [
            sys.executable, str(Path(__file__).resolve()), "--child",
            backend, str(jsonl), str(workdir), str(schema_out),
        ],
        env=env, capture_output=True, text=True, check=False,
    )
    if process.returncode != 0:
        raise RuntimeError(
            f"{backend} child failed:\n{process.stdout}\n{process.stderr}"
        )
    result: dict[str, object] = json.loads(
        process.stdout.strip().splitlines()[-1]
    )
    return result


def run_scale(budget_mib: int, root: Path) -> dict[str, object]:
    budget = budget_mib * MIB
    target = int(BUDGET_FACTOR * budget)
    workdir = root / f"scale-{budget_mib}"
    workdir.mkdir(parents=True)
    jsonl = workdir / "graph.jsonl"
    nodes, edges = write_dataset(jsonl, target)
    dataset_bytes = jsonl.stat().st_size
    runs: dict[str, dict[str, object]] = {}
    schemas: dict[str, bytes] = {}
    for backend in ("memory", "disk"):
        schema_out = workdir / f"schema-{backend}.json"
        runs[backend] = run_child(backend, jsonl, workdir, schema_out)
        schemas[backend] = schema_out.read_bytes()
    disk_delta = runs["disk"]["peak_rss_delta_bytes"]
    record: dict[str, object] = {
        "budget_mib": budget_mib,
        "dataset_bytes": dataset_bytes,
        "dataset_over_budget_factor": round(dataset_bytes / budget, 2),
        "nodes": nodes,
        "edges": edges,
        "num_batches": NUM_BATCHES,
        "jobs": JOBS,
        "memory": runs["memory"],
        "disk": runs["disk"],
        "schemas_identical": schemas["memory"] == schemas["disk"],
        "disk_under_budget": (
            disk_delta is not None and disk_delta < budget
        ),
    }
    return record


def check_bounded_memory(payload: dict[str, object]) -> None:
    """The acceptance gate; CI's smoke leg fails on any violation."""
    for record in payload["scales"]:  # type: ignore[union-attr]
        label = f"budget {record['budget_mib']} MiB"
        if record["dataset_over_budget_factor"] < BUDGET_FACTOR:
            raise SystemExit(f"{label}: dataset smaller than "
                             f"{BUDGET_FACTOR}x the budget")
        if not record["schemas_identical"]:
            raise SystemExit(f"{label}: schemas differ between backends")
        if not record["disk_under_budget"]:
            raise SystemExit(
                f"{label}: disk driver peak RSS delta "
                f"{record['disk']['peak_rss_delta_bytes']} exceeds budget"
            )


def print_table(payload: dict[str, object]) -> None:
    from repro.util.tables import render_table

    rows = []
    for record in payload["scales"]:  # type: ignore[union-attr]
        for backend in ("memory", "disk"):
            run = record[backend]
            delta = run["peak_rss_delta_bytes"]
            rows.append([
                f"{record['budget_mib']} MiB",
                f"{record['dataset_bytes'] / MIB:.0f} MiB",
                backend,
                "n/a" if delta is None else f"{delta / MIB:.0f} MiB",
                f"{run['ingest_seconds']:.1f}s",
                f"{run['discover_seconds']:.1f}s",
                "yes" if record["schemas_identical"] else "NO",
            ])
    print(render_table(
        ["budget", "dataset", "backend", "peak RSS delta", "ingest",
         "discover", "identical"],
        rows,
        title="Out-of-core discovery: driver memory by storage backend",
    ))


def main() -> None:
    if len(sys.argv) > 1 and sys.argv[1] == "--child":
        child_main(*sys.argv[2:6])
        return
    smoke = "--smoke" in sys.argv[1:]
    budgets = SMOKE_BUDGETS_MIB if smoke else FULL_BUDGETS_MIB
    with tempfile.TemporaryDirectory(prefix="pghive-bench-ooc-") as tmp:
        payload: dict[str, object] = {
            "budget_factor": BUDGET_FACTOR,
            "blob_bytes": BLOB_BYTES,
            "seed": SEED,
            "scales": [
                run_scale(budget, Path(tmp)) for budget in budgets
            ],
        }
    print_table(payload)
    if not smoke:
        OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {OUTPUT}")
    check_bounded_memory(payload)


if __name__ == "__main__":
    main()
