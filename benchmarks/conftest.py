"""Shared benchmark configuration.

Environment knobs:

* ``REPRO_BENCH_SCALE`` -- dataset scale factor (default 0.5; 1.0 for the
  full laptop-scale runs reported in EXPERIMENTS.md);
* ``REPRO_BENCH_DATASETS`` -- comma-separated dataset subset (default: all
  eight of Table 2).

Each benchmark prints the same rows/series its paper table or figure
reports; the ``benchmark`` fixture wraps one representative unit of work so
pytest-benchmark records comparable timings without re-running whole grids.
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import list_datasets


def bench_scale() -> float:
    """Dataset scale for benchmark runs."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


def bench_datasets() -> tuple[str, ...]:
    """Datasets included in benchmark runs."""
    raw = os.environ.get("REPRO_BENCH_DATASETS", "")
    if raw.strip():
        return tuple(name.strip() for name in raw.split(",") if name.strip())
    return tuple(list_datasets())


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def datasets() -> tuple[str, ...]:
    return bench_datasets()
