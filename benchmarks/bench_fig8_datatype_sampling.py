"""Figure 8: distribution of datatype-inference sampling errors.

For every dataset and both PG-HIVE variants, discover the schema with the
sampling-based datatype mode, compute the paper's error(p) for every
property (sample-vs-full-scan disagreement), bin the errors into the
paper's buckets, and check the claims: most properties fall in the lowest
bin everywhere, with the heterogeneous real datasets (ICIJ, CORD19, IYP)
contributing the outliers.
"""

from __future__ import annotations

from repro.core.config import LSHMethod, PGHiveConfig
from repro.core.pipeline import PGHive
from repro.datasets import get_dataset
from repro.evaluation.sampling_error import bin_errors, datatype_sampling_errors
from repro.graph.store import GraphStore
from repro.util.tables import render_table

BIN_LABELS = ("<0.05", "0.05-0.10", "0.10-0.20", ">=0.20")
# The paper samples 10 % with a 1000-value floor; scaled datasets hold a
# few hundred values per property, so the floor is scaled accordingly.
SAMPLE_FRACTION = 0.1
SAMPLE_MINIMUM = 40


def test_fig8_sampling_error_distribution(benchmark, scale, datasets):
    def run_all():
        outcome = {}
        for name in datasets:
            dataset = get_dataset(name, scale=scale, seed=1)
            for method in (LSHMethod.ELSH, LSHMethod.MINHASH):
                # Run the full pipeline in sampled-datatype mode to make
                # sure the path is exercised end to end.
                config = PGHiveConfig(
                    method=method,
                    infer_datatypes_by_sampling=True,
                    datatype_sample_fraction=SAMPLE_FRACTION,
                    datatype_sample_minimum=SAMPLE_MINIMUM,
                )
                PGHive(config).discover(GraphStore(dataset.graph))
                errors = datatype_sampling_errors(
                    dataset.graph,
                    fraction=SAMPLE_FRACTION,
                    minimum=SAMPLE_MINIMUM,
                    seed=3,
                )
                outcome[(name, method.value)] = bin_errors(errors)
        return outcome

    outcome = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [name, method, *(f"{bins[label]:.2f}" for label in BIN_LABELS)]
        for (name, method), bins in sorted(outcome.items())
    ]
    print()
    print(render_table(
        ["dataset", "method", *BIN_LABELS],
        rows,
        f"Figure 8: normalized sampling-error distribution (scale={scale})",
    ))

    for (name, method), bins in outcome.items():
        # Most properties sit in the lowest error bin, everywhere.
        assert bins["<0.05"] >= 0.5, (name, method, bins)
    # The heterogeneous datasets contribute the outliers...
    dirty = [
        d for d in ("ICIJ", "CORD19", "IYP") if d in datasets
    ]
    clean = [d for d in ("POLE", "LDBC", "MB6") if d in datasets]
    if dirty and clean:
        dirty_outliers = sum(
            1.0 - outcome[(d, "elsh")]["<0.05"] for d in dirty
        )
        clean_outliers = sum(
            1.0 - outcome[(d, "elsh")]["<0.05"] for d in clean
        )
        assert dirty_outliers > clean_outliers
