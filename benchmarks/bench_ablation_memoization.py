"""Ablation: the DiscoPG-style memoization fast path.

Measures incremental discovery with and without ``memoize_patterns`` over
a 10-batch stream.  With clean, repetitive data, batches after the first
consist almost entirely of known patterns, so the fast path absorbs them
without vectorization or clustering -- output stays identical while
per-batch time collapses.
"""

from __future__ import annotations

from repro.core.config import PGHiveConfig
from repro.core.pipeline import PGHive
from repro.datasets import get_dataset
from repro.evaluation.f1star import majority_f1
from repro.graph.store import GraphStore
from repro.util.tables import render_table

DATASETS = ("POLE", "LDBC", "CORD19")
NUM_BATCHES = 10


def test_ablation_memoization(benchmark, scale):
    def run_all():
        outcome = {}
        for name in DATASETS:
            dataset = get_dataset(name, scale=scale, seed=1)
            store = GraphStore(dataset.graph)
            plain = PGHive(
                PGHiveConfig(post_processing=False)
            ).discover_incremental(store, NUM_BATCHES)
            memoized = PGHive(
                PGHiveConfig(post_processing=False, memoize_patterns=True)
            ).discover_incremental(store, NUM_BATCHES)
            outcome[name] = (dataset, plain, memoized)
        return outcome

    outcome = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, (dataset, plain, memoized) in outcome.items():
        plain_time = sum(r.seconds for r in plain.batches)
        memo_time = sum(r.seconds for r in memoized.batches)
        hits = sum(
            r.memo_node_hits + r.memo_edge_hits for r in memoized.batches
        )
        total = sum(r.num_nodes + r.num_edges for r in memoized.batches)
        plain_f1 = majority_f1(
            plain.node_assignment, dataset.truth.node_types
        ).headline
        memo_f1 = majority_f1(
            memoized.node_assignment, dataset.truth.node_types
        ).headline
        rows.append([
            name,
            f"{plain_time * 1000:.0f} ms",
            f"{memo_time * 1000:.0f} ms",
            f"{plain_time / max(memo_time, 1e-9):.1f}x",
            f"{hits}/{total}",
            f"{plain_f1:.3f}",
            f"{memo_f1:.3f}",
        ])
        # Identical outcome, meaningfully faster.
        assert set(plain.schema.node_types) == set(memoized.schema.node_types)
        assert memo_f1 == plain_f1
        assert memo_time < plain_time
        assert hits >= 0.5 * total

    print()
    print(render_table(
        ["dataset", "plain", "memoized", "speedup", "memo hits",
         "F1 plain", "F1 memoized"],
        rows,
        f"Ablation: incremental memoization over {NUM_BATCHES} batches",
    ))
