"""Ablation: PG-HIVE vs naive exact-pattern grouping.

Quantifies what the LSH + merge machinery buys over the strawman that
declares every distinct pattern its own type:

* on clean fully-labeled data both are perfect -- the problem is only
  hard under noise/missing labels;
* under noise, pattern grouping explodes into hundreds of "types" while
  PG-HIVE's merging keeps the schema near the true size;
* at 0 % labels, exact patterns collapse structurally identical types
  together *and* explode on noise simultaneously; PG-HIVE's hybrid
  clustering + Jaccard merging dominates its accuracy.
"""

from __future__ import annotations

from repro.baselines import PatternGroup
from repro.core.config import PGHiveConfig
from repro.core.pipeline import PGHive
from repro.datasets import get_dataset, inject_noise
from repro.evaluation.f1star import majority_f1
from repro.graph.store import GraphStore
from repro.util.tables import render_table

DATASETS = ("POLE", "MB6", "ICIJ")
SCENARIOS = (
    (0.0, 1.0),
    (0.4, 1.0),
    (0.4, 0.0),
)


def test_ablation_vs_pattern_grouping(benchmark, scale):
    def sweep():
        outcome = {}
        for name in DATASETS:
            clean = get_dataset(name, scale=scale, seed=1)
            true_types = len(clean.spec.node_types)
            for noise, availability in SCENARIOS:
                dataset = inject_noise(clean, noise, availability, seed=2)
                store = GraphStore(dataset.graph)
                pghive = PGHive(
                    PGHiveConfig(post_processing=False)
                ).discover(store)
                naive = PatternGroup().discover(store)
                outcome[(name, noise, availability)] = (
                    majority_f1(
                        pghive.node_assignment, dataset.truth.node_types
                    ).headline,
                    pghive.num_node_types,
                    majority_f1(
                        naive.node_assignment, dataset.truth.node_types
                    ).headline,
                    naive.num_node_types,
                    true_types,
                )
        return outcome

    outcome = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for (name, noise, availability), values in sorted(outcome.items()):
        pghive_f1, pghive_types, naive_f1, naive_types, true_types = values
        rows.append([
            name, f"{int(noise*100)}%", f"{int(availability*100)}%",
            str(true_types),
            f"{pghive_f1:.3f} ({pghive_types})",
            f"{naive_f1:.3f} ({naive_types})",
        ])
    print()
    print(render_table(
        ["dataset", "noise", "labels", "true types",
         "PG-HIVE F1 (#types)", "pattern-group F1 (#types)"],
        rows,
        "Ablation: PG-HIVE vs exact-pattern grouping",
    ))

    for name in DATASETS:
        true_types = outcome[(name, 0.0, 1.0)][4]
        # Under noise with full labels, pattern grouping explodes the
        # schema; PG-HIVE's merging keeps it near the truth.
        _, pghive_types, _, naive_types, _ = outcome[(name, 0.4, 1.0)]
        assert naive_types > 3 * true_types
        assert pghive_types <= naive_types
        # PG-HIVE never loses to the strawman on accuracy.
        for scenario in SCENARIOS:
            pghive_f1, _, naive_f1, _, _ = outcome[(name, *scenario)]
            assert pghive_f1 >= naive_f1 - 0.02
