"""Ablation: the merging threshold theta (Algorithm 2).

The paper fixes theta = 0.9 and argues that "lowering theta would increase
recall but mix types and will decrease precision".  This ablation sweeps
theta on unlabeled data (where the Jaccard merging actually decides) and
verifies the trade-off: lower theta -> fewer, coarser types (higher risk
of mixing -> F1* drops); higher theta -> more fragmented but purer types.
"""

from __future__ import annotations

from repro.core.config import PGHiveConfig
from repro.core.pipeline import PGHive
from repro.datasets import get_dataset, inject_noise
from repro.evaluation.f1star import majority_f1
from repro.graph.store import GraphStore
from repro.util.tables import render_table

THETAS = (0.3, 0.5, 0.7, 0.9, 1.0)
DATASETS = ("POLE", "MB6", "LDBC")


def test_ablation_merging_threshold(benchmark, scale):
    def sweep():
        outcome = {}
        for name in DATASETS:
            dataset = inject_noise(
                get_dataset(name, scale=scale, seed=1), 0.2, 0.0, seed=2
            )
            store = GraphStore(dataset.graph)
            for theta in THETAS:
                config = PGHiveConfig(
                    jaccard_threshold=theta, post_processing=False
                )
                result = PGHive(config).discover(store)
                f1 = majority_f1(
                    result.node_assignment, dataset.truth.node_types
                ).headline
                outcome[(name, theta)] = (f1, result.num_node_types)
        return outcome

    outcome = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for name in DATASETS:
        rows.append([
            name,
            *(f"{outcome[(name, t)][0]:.3f}/"
              f"{outcome[(name, t)][1]}" for t in THETAS),
        ])
    print()
    print(render_table(
        ["dataset", *(f"theta={t}" for t in THETAS)],
        rows,
        "Ablation: F1*/num-types vs merging threshold theta "
        "(0% labels, 20% noise)",
    ))

    for name in DATASETS:
        # Coarser merging at low theta: strictly fewer or equal types.
        assert outcome[(name, 0.3)][1] <= outcome[(name, 1.0)][1]
        # The paper's default is at least as accurate as aggressive
        # merging (low theta mixes types).
        assert outcome[(name, 0.9)][0] >= outcome[(name, 0.3)][0] - 0.01
