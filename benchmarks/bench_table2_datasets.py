"""Table 2: dataset statistics.

Regenerates the statistics table for the eight synthetic datasets and
checks that the *structural* columns (type counts; label counts within a
small tolerance) match the paper.  Absolute node/edge counts are scaled
down by design; the node:edge ratios are preserved instead.
"""

from __future__ import annotations

from repro.datasets import get_dataset
from repro.datasets.registry import dataset_spec
from repro.graph.stats import compute_statistics
from repro.util.tables import render_table

# Paper Table 2: node types, edge types, node labels, edge labels.
PAPER_ROWS = {
    "POLE": (11, 17, 11, 16),
    "MB6": (4, 5, 10, 3),
    "HET.IO": (11, 24, 12, 24),
    "FIB25": (4, 5, 10, 3),
    "ICIJ": (5, 14, 6, 14),
    "CORD19": (16, 16, 16, 16),
    "LDBC": (7, 17, 8, 15),
    "IYP": (86, 25, 33, 25),
}


def test_table2_dataset_statistics(benchmark, scale, datasets):
    def build_all():
        rows = []
        for name in datasets:
            dataset = get_dataset(name, scale=scale, seed=1)
            stats = compute_statistics(
                dataset.graph,
                dataset.truth.node_types,
                dataset.truth.edge_types,
            )
            rows.append((name, dataset, stats))
        return rows

    rows = benchmark.pedantic(build_all, rounds=1, iterations=1)

    table_rows = []
    for name, dataset, stats in rows:
        paper = PAPER_ROWS[name]
        # Type counts must match the paper exactly.
        assert stats.node_types == paper[0], name
        assert stats.edge_types == paper[1], name
        # Label counts within +-2 (generator approximations documented in
        # EXPERIMENTS.md).
        assert abs(stats.node_labels - paper[2]) <= 2, name
        assert abs(stats.edge_labels - paper[3]) <= 2, name
        row = stats.as_row()
        row.append("R" if dataset_spec(name).real else "S")
        table_rows.append(row)

    print()
    print(render_table(
        ["Dataset", "Nodes", "Edges", "NodeT", "EdgeT",
         "NodeL", "EdgeL", "NodeP", "EdgeP", "R/S"],
        table_rows,
        f"Table 2 (scale={scale}): dataset statistics",
    ))
