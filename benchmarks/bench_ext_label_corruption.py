"""Extension experiment: label *corruption* (not just removal).

The paper's noise model removes properties and strips labels; integration
practice also produces *wrong* labels (stale taxonomies, mismapped
sources).  This extension swaps a fraction of node labels to a different
type's label and measures all systems.  Expected behaviour:

* label-driven systems (SchemI) inherit every corrupted label as truth,
  so their error tracks the corruption rate roughly 1:1;
* PG-HIVE's hybrid clustering separates corrupted nodes from the genuine
  carriers of the label (their structures differ), so it degrades more
  slowly -- but cannot fully win, since a corrupted label actively lies.

This is an extension beyond the paper's figures; the table documents the
measured behaviour, and only the ordering claims are asserted.
"""

from __future__ import annotations

import random

from repro.datasets import GeneratedDataset, get_dataset
from repro.datasets.synthetic import GroundTruth
from repro.evaluation.harness import run_system
from repro.graph.model import Node, PropertyGraph
from repro.util.tables import render_table

DATASETS = ("POLE", "CORD19")
CORRUPTION_RATES = (0.0, 0.1, 0.2, 0.3)
METHODS = ("PG-HIVE-ELSH", "SchemI")


def corrupt_labels(
    dataset: GeneratedDataset, rate: float, seed: int
) -> GeneratedDataset:
    """Swap each node's label set, with probability ``rate``, for the
    label set of a random different node (a realistic mislabeling)."""
    if rate <= 0.0:
        return dataset
    rng = random.Random(seed)
    label_pool = list({
        node.labels for node in dataset.graph.nodes() if node.labels
    })
    corrupted = PropertyGraph(dataset.graph.name)
    for node in dataset.graph.nodes():
        labels = node.labels
        if labels and rng.random() < rate:
            alternatives = [l for l in label_pool if l != labels]
            if alternatives:
                labels = rng.choice(alternatives)
        corrupted.add_node(Node(node.id, labels, dict(node.properties)))
    for edge in dataset.graph.edges():
        corrupted.add_edge(edge)
    return GeneratedDataset(
        graph=corrupted,
        truth=GroundTruth(
            dict(dataset.truth.node_types), dict(dataset.truth.edge_types)
        ),
        spec=dataset.spec,
    )


def test_ext_label_corruption(benchmark, scale):
    def sweep():
        outcome = {}
        for name in DATASETS:
            clean = get_dataset(name, scale=scale, seed=1)
            for rate in CORRUPTION_RATES:
                corrupted = corrupt_labels(clean, rate, seed=2)
                for method in METHODS:
                    m = run_system(method, corrupted)
                    outcome[(name, rate, method)] = m.node_f1
        return outcome

    outcome = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for name in DATASETS:
        for method in METHODS:
            rows.append([
                name, method,
                *(f"{outcome[(name, rate, method)]:.3f}"
                  for rate in CORRUPTION_RATES),
            ])
    print()
    print(render_table(
        ["dataset", "method",
         *(f"corrupt={int(r*100)}%" for r in CORRUPTION_RATES)],
        rows,
        "Extension: F1* under label corruption (wrong labels, "
        "full availability)",
    ))

    for name in DATASETS:
        for rate in CORRUPTION_RATES[1:]:
            pghive = outcome[(name, rate, "PG-HIVE-ELSH")]
            schemi = outcome[(name, rate, "SchemI")]
            # SchemI has no defense: its error tracks the corruption rate.
            assert schemi <= 1.0 - rate * 0.8 + 0.03, (name, rate, schemi)
            # PG-HIVE's structural signal keeps it at least as accurate.
            assert pghive >= schemi - 0.02, (name, rate, pghive, schemi)