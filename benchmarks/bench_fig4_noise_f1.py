"""Figure 4: F1* across noise levels (0-40 %) and label availability.

Regenerates the full grid: 8 datasets x 5 noise levels x 3 label
availability scenarios x 4 methods, printing one F1* series per
(dataset, method, availability) -- the same lines the paper's figure
plots -- and checking the headline shape claims:

* PG-HIVE stays accurate under noise with full labels, and keeps working
  (>= ~0.65, typically >= 0.9) with 50 % and 0 % labels where the
  baselines produce nothing;
* GMMSchema degrades as noise grows;
* SchemI's label-driven score is flat in noise but trails PG-HIVE on the
  multi-labeled datasets.
"""

from __future__ import annotations

from collections import defaultdict

from repro.evaluation.harness import (
    ALL_METHODS,
    METHOD_ELSH,
    METHOD_GMM,
    METHOD_MINHASH,
    METHOD_SCHEMI,
    ExperimentGrid,
    run_grid,
)
from repro.evaluation.reporting import f1_series_table

NOISE_LEVELS = (0.0, 0.1, 0.2, 0.3, 0.4)
AVAILABILITIES = (1.0, 0.5, 0.0)


def test_fig4_noise_and_label_availability(benchmark, scale, datasets):
    grid = ExperimentGrid(
        datasets=datasets,
        methods=ALL_METHODS,
        noise_levels=NOISE_LEVELS,
        label_availabilities=AVAILABILITIES,
        scale=scale,
    )
    measurements = benchmark.pedantic(
        lambda: run_grid(grid), rounds=1, iterations=1
    )

    print()
    print(f1_series_table(
        measurements, "node_f1",
        f"Figure 4 (nodes), scale={scale}",
    ))
    print()
    print(f1_series_table(
        measurements, "edge_f1",
        f"Figure 4 (edges), scale={scale}",
    ))

    by_key = defaultdict(dict)
    for m in measurements:
        by_key[(m.dataset, m.method, m.label_availability)][m.noise] = m

    for dataset in datasets:
        # Baselines only run at 100 % label availability.
        for method in (METHOD_GMM, METHOD_SCHEMI):
            for availability in (0.5, 0.0):
                series = by_key[(dataset, method, availability)]
                assert all(m.skipped for m in series.values()), (
                    dataset, method, availability,
                )
        # PG-HIVE runs everywhere and stays useful.  IYP is the paper's
        # hardest dataset (86 types, many sharing labels and structure),
        # where PG-HIVE "slightly declines" -- it gets a lower floor.
        for method in (METHOD_ELSH, METHOD_MINHASH):
            for availability in AVAILABILITIES:
                series = by_key[(dataset, method, availability)]
                assert all(not m.skipped for m in series.values())
                if availability == 1.0:
                    floor = 0.95
                elif dataset == "IYP":
                    floor = 0.40
                else:
                    floor = 0.55
                for m in series.values():
                    assert m.node_f1 >= floor, (
                        dataset, method, availability, m.noise, m.node_f1,
                    )

    # GMM degrades with noise on average; PG-HIVE-ELSH does not (full
    # labels).  Averaged across datasets to absorb per-dataset jitter.
    def avg(method, noise, availability=1.0):
        values = [
            by_key[(d, method, availability)][noise].node_f1
            for d in datasets
            if not by_key[(d, method, availability)][noise].skipped
        ]
        return sum(values) / len(values)

    assert avg(METHOD_GMM, 0.4) < avg(METHOD_GMM, 0.0) - 0.05
    assert avg(METHOD_ELSH, 0.4) > avg(METHOD_GMM, 0.4)
    assert avg(METHOD_ELSH, 0.4) >= avg(METHOD_ELSH, 0.0) - 0.02
    # SchemI trails PG-HIVE overall (multi-label datasets drag it down).
    assert avg(METHOD_SCHEMI, 0.0) < avg(METHOD_ELSH, 0.0)
