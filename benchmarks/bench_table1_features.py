"""Table 1: qualitative capability matrix of schema discovery approaches.

This bench verifies the claims behaviourally instead of just printing the
matrix: it runs each implemented system on a probe graph and asserts the
capabilities Table 1 records (label independence, multilabel handling,
schema elements produced, constraints, incrementality).
"""

from __future__ import annotations

from repro.baselines import GMMSchema, SchemI, UnsupportedDataError
from repro.core.pipeline import PGHive
from repro.datasets import get_dataset, inject_noise
from repro.evaluation.reporting import feature_matrix_table
from repro.graph.store import GraphStore
from repro.schema.model import PropertyStatus


def _probe_dataset(scale):
    return get_dataset("MB6", scale=min(scale, 0.3), seed=1)


def test_table1_feature_matrix(benchmark, scale):
    dataset = _probe_dataset(scale)
    unlabeled = inject_noise(dataset, 0.0, 0.0, seed=2)

    # Label independence: only PG-HIVE runs on unlabeled data.
    capabilities = {}
    for name, system in (
        ("PG-HIVE", PGHive()),
        ("GMMSchema", GMMSchema()),
        ("SchemI", SchemI()),
    ):
        try:
            system.discover(GraphStore(unlabeled.graph))
            capabilities[name] = True
        except UnsupportedDataError:
            capabilities[name] = False
    assert capabilities == {
        "PG-HIVE": True, "GMMSchema": False, "SchemI": False,
    }

    # Schema elements: GMM nodes only; SchemI and PG-HIVE nodes+edges;
    # only PG-HIVE infers constraints.
    result_pghive = benchmark(
        lambda: PGHive().discover(GraphStore(dataset.graph))
    )
    result_gmm = GMMSchema().discover(GraphStore(dataset.graph))
    result_schemi = SchemI().discover(GraphStore(dataset.graph))
    assert result_gmm.num_edge_types == 0
    assert result_schemi.num_edge_types > 0
    assert result_pghive.num_edge_types > 0
    has_constraints = any(
        spec.status is PropertyStatus.MANDATORY
        for t in result_pghive.schema.node_types.values()
        for spec in t.properties.values()
    )
    assert has_constraints

    print()
    print(feature_matrix_table())
    print("(capabilities verified behaviourally on an MB6 probe)")
