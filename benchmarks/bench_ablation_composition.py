"""Ablation: LSH signature composition (AND vs OR vs banding).

DESIGN.md calls out the composition choice: PG-HIVE groups ELSH vectors by
their *full* signature (AND over the T tables), which makes more tables
more selective -- matching the paper's parameter discussion -- whereas
unioning per-table buckets (OR) makes more tables merge more, and banding
sits in between.  This ablation runs all three compositions over the same
signatures and verifies the selectivity ordering and its accuracy impact.
"""

from __future__ import annotations

import numpy as np

from repro.core.incremental import IncrementalDiscovery
from repro.core.type_extraction import build_node_clusters, extract_types
from repro.core.vectorize import NodeVectorizer
from repro.datasets import get_dataset, inject_noise
from repro.evaluation.f1star import majority_f1
from repro.lsh.buckets import (
    cluster_by_band_union,
    cluster_by_full_signature,
    cluster_by_table_union,
)
from repro.lsh.elsh import EuclideanLSH
from repro.core.adaptive import choose_parameters
from repro.util.tables import render_table

DATASETS = ("POLE", "MB6")
COMPOSITIONS = ("AND (full signature)", "banding r=5", "OR (any table)")


def _cluster(signatures: np.ndarray, composition: str) -> np.ndarray:
    if composition.startswith("AND"):
        return cluster_by_full_signature(signatures)
    if composition.startswith("banding"):
        return cluster_by_band_union(signatures, rows_per_band=5)
    return cluster_by_table_union(signatures)


def test_ablation_signature_composition(benchmark, scale):
    def sweep():
        outcome = {}
        for name in DATASETS:
            dataset = inject_noise(
                get_dataset(name, scale=scale, seed=1), 0.2, 1.0, seed=2
            )
            nodes = list(dataset.graph.nodes())
            engine = IncrementalDiscovery()
            embedder = engine._fit_embedder(
                nodes, list(dataset.graph.edges()),
                {n.id: n.labels for n in nodes},
            )
            keys = sorted({k for n in nodes for k in n.properties})
            vectors = NodeVectorizer(keys, embedder).vectorize(nodes)
            params = choose_parameters(
                vectors, len(dataset.graph.node_labels())
            )
            lsh = EuclideanLSH(
                vectors.shape[1], params.bucket_length,
                params.num_tables, seed=7,
            )
            signatures = lsh.signatures(vectors)
            for composition in COMPOSITIONS:
                assignment = _cluster(signatures, composition)
                clusters = build_node_clusters(nodes, assignment)
                schema = extract_types(clusters, [])
                pre_merge = len(set(assignment.tolist()))
                assignment_map = {
                    member: t.name
                    for t in schema.node_types.values()
                    for member in t.members
                }
                f1 = majority_f1(
                    assignment_map, dataset.truth.node_types
                ).headline
                outcome[(name, composition)] = (pre_merge, f1)
        return outcome

    outcome = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            name, composition,
            str(outcome[(name, composition)][0]),
            f"{outcome[(name, composition)][1]:.3f}",
        ]
        for name in DATASETS
        for composition in COMPOSITIONS
    ]
    print()
    print(render_table(
        ["dataset", "composition", "raw clusters", "F1* after merging"],
        rows,
        "Ablation: LSH signature composition (20% noise, full labels)",
    ))

    for name in DATASETS:
        and_clusters = outcome[(name, COMPOSITIONS[0])][0]
        band_clusters = outcome[(name, COMPOSITIONS[1])][0]
        or_clusters = outcome[(name, COMPOSITIONS[2])][0]
        # Selectivity ordering: AND >= banding >= OR.
        assert and_clusters >= band_clusters >= or_clusters
        # AND (PG-HIVE's choice) is the most accurate after merging: the
        # label-driven merge step repairs its fragmentation, while OR's
        # transitive unions mix types irrecoverably.
        and_f1 = outcome[(name, COMPOSITIONS[0])][1]
        or_f1 = outcome[(name, COMPOSITIONS[2])][1]
        assert and_f1 >= or_f1
