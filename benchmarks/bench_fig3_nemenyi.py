"""Figure 3: statistical significance analysis of F1* ranks.

Runs all four methods over every dataset x noise level at 100 % label
availability (the paper's 8 x 5 = 40 test cases), computes average ranks
with the Friedman/Nemenyi procedure, and checks the paper's conclusions:

* the two PG-HIVE variants form one group (not significantly different);
* both significantly outrank GMMSchema and SchemI on nodes;
* PG-HIVE significantly outranks SchemI on edges (GMM has no edge types).
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.harness import (
    ALL_METHODS,
    METHOD_ELSH,
    METHOD_GMM,
    METHOD_MINHASH,
    METHOD_SCHEMI,
    ExperimentGrid,
    run_grid,
)
from repro.evaluation.nemenyi import nemenyi_test
from repro.util.tables import render_table

NOISE_LEVELS = (0.0, 0.1, 0.2, 0.3, 0.4)


def _score_matrix(measurements, methods, attribute):
    by_case = {}
    for m in measurements:
        by_case.setdefault((m.dataset, m.noise), {})[m.method] = m
    cases = sorted(by_case)
    matrix = np.array([
        [getattr(by_case[case][method], attribute) for method in methods]
        for case in cases
    ])
    return matrix


def test_fig3_nemenyi_ranks(benchmark, scale, datasets):
    grid = ExperimentGrid(
        datasets=datasets,
        methods=ALL_METHODS,
        noise_levels=NOISE_LEVELS,
        label_availabilities=(1.0,),
        scale=scale,
    )
    measurements = benchmark.pedantic(
        lambda: run_grid(grid), rounds=1, iterations=1
    )

    # --- nodes: all four methods -------------------------------------
    node_matrix = _score_matrix(measurements, ALL_METHODS, "node_f1")
    node_result = nemenyi_test(node_matrix, ALL_METHODS)

    # --- edges: GMM produces no edge types ----------------------------
    edge_methods = (METHOD_ELSH, METHOD_MINHASH, METHOD_SCHEMI)
    edge_matrix = _score_matrix(measurements, edge_methods, "edge_f1")
    edge_result = nemenyi_test(edge_matrix, edge_methods)

    print()
    rows = [
        [name, f"{rank:.2f}"] for name, rank in node_result.ranking()
    ]
    print(render_table(
        ["method", "avg rank (nodes)"], rows,
        f"Figure 3 (nodes): Friedman chi2={node_result.friedman_chi2:.1f} "
        f"p={node_result.friedman_p:.2e} CD={node_result.critical_distance:.2f} "
        f"over {node_result.num_cases} cases",
    ))
    rows = [
        [name, f"{rank:.2f}"] for name, rank in edge_result.ranking()
    ]
    print(render_table(
        ["method", "avg rank (edges)"], rows,
        f"Figure 3 (edges): CD={edge_result.critical_distance:.2f}",
    ))

    # Paper conclusions (shape checks).
    assert not node_result.significantly_different(METHOD_ELSH, METHOD_MINHASH)
    assert node_result.significantly_different(METHOD_ELSH, METHOD_SCHEMI)
    assert node_result.significantly_different(METHOD_MINHASH, METHOD_SCHEMI)
    assert node_result.significantly_different(METHOD_ELSH, METHOD_GMM)
    assert edge_result.significantly_different(METHOD_ELSH, METHOD_SCHEMI)
    best_two = {name for name, _ in node_result.ranking()[:2]}
    assert best_two == {METHOD_ELSH, METHOD_MINHASH}
