"""Parallel sharded discovery benchmark: sequential vs. worker pools.

Runs incremental discovery on the LDBC generator at two scales with
``jobs`` in {1, 2, 4, 8} and byte-compares every parallel schema against
the sequential one.  Because container CPU quotas routinely make fewer
effective cores available than ``nproc`` reports, the harness first
*calibrates* the machine with fixed-work spin tasks and reports, next to
each measured wall-clock speedup, the Amdahl projection from the
measured serial fraction (shard partitioning + merge tree; the per-shard
discovery itself is fully parallel in plan mode).  On an unconstrained
host the measured speedup approaches the projection; on a quota-limited
host the calibration documents the ceiling.

The payload also records the worker payload cost: what actually crosses
the process pipe (shard plans out, per-shard schemas back), pickled and
timed.  A second stage table compares section 4.4 post-processing as
the serial engine runs it (store-backed member scans) against the
sharded fold the pool uses (``attach_partial_stats`` in each worker,
one store-free ``apply_partial_stats`` at the driver), byte-compared.

Usage:

    PYTHONPATH=src python benchmarks/bench_parallel.py [--smoke]

``REPRO_BENCH_SCALE`` multiplies the base scales; ``--smoke`` shrinks
scales and worker counts for CI.  As a pytest benchmark the session
``scale`` fixture is the multiplier and no JSON is written.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.core.columns import edge_columns, node_columns
from repro.core.config import PGHiveConfig
from repro.core.incremental import IncrementalDiscovery
from repro.core.parallel import ShardResult, combine_shard_results
from repro.core.pipeline import PGHive
from repro.core.postprocess import (
    apply_partial_stats,
    attach_partial_stats,
    compute_cardinalities,
    infer_datatypes,
    infer_property_constraints,
)
from repro.datasets import get_dataset
from repro.graph.store import GraphStore
from repro.schema import serialize_pg_schema
from repro.util.tables import render_table

BASE_SCALES = (8.0, 32.0)
JOBS = (1, 2, 4, 8)
NUM_BATCHES = 8
REPEATS = 2
SPIN_ITERATIONS = 12_000_000
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def _spin(iterations: int) -> int:
    total = 0
    for i in range(iterations):
        total += i
    return total


def calibrate_cpu(workers: int = 4) -> dict:
    """Measure how much CPU the container actually delivers.

    ``workers`` processes each execute the same fixed amount of work; on
    ``workers`` free cores the wall clock matches one task, under a CPU
    quota it stretches toward ``workers`` times one task.  The ratio is
    the machine's effective parallelism -- the hard ceiling for any
    measured wall-clock speedup below.
    """
    started = time.perf_counter()
    _spin(SPIN_ITERATIONS)
    single = time.perf_counter() - started
    context = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(workers, mp_context=context) as pool:
        started = time.perf_counter()
        list(pool.map(_spin, [SPIN_ITERATIONS] * workers))
        group = time.perf_counter() - started
    effective = workers * single / group if group > 0 else float(workers)
    return {
        "probe_workers": workers,
        "single_task_seconds": round(single, 4),
        "parallel_group_seconds": round(group, 4),
        "effective_parallelism": round(effective, 2),
        "os_cpu_count": os.cpu_count(),
    }


def _measure_serial_components(graph, config) -> dict:
    """Time the driver's inherently serial steps and the pipe payload.

    Discovers every shard in-process (so the measurement is not polluted
    by pool scheduling), then times (a) the shard partition, (b) the
    merge tree over the per-shard schemas, and (c) pickling what a pool
    run ships across the pipe: plans out, ``ShardResult`` lists back.
    """
    store = GraphStore(graph)
    started = time.perf_counter()
    plans = store.plan_shards(NUM_BATCHES, seed=config.seed)
    partition_seconds = time.perf_counter() - started
    engine = IncrementalDiscovery(config, name="shard")
    worker_compute = 0.0
    results = []
    for plan in plans:
        batch = store.materialize_shard(plan)
        batch_started = time.perf_counter()
        schema, report = engine.discover_batch_columns(
            node_columns(batch.nodes),
            edge_columns(batch.edges, batch.endpoint_labels),
            batch_index=plan.index,
        )
        worker_compute += time.perf_counter() - batch_started
        results.append(ShardResult(plan.index, schema, report))
    started = time.perf_counter()
    combine_shard_results(graph.name, results, config)
    merge_seconds = time.perf_counter() - started
    started = time.perf_counter()
    payload = pickle.dumps((plans, results))
    pickle.loads(payload)
    pickle_seconds = time.perf_counter() - started
    return {
        "partition_seconds": round(partition_seconds, 6),
        "merge_tree_seconds": round(merge_seconds, 6),
        "pickle_roundtrip_seconds": round(pickle_seconds, 6),
        "pipe_payload_bytes": len(payload),
        "worker_compute_seconds": round(worker_compute, 6),
    }


def _measure_postprocess(graph, config) -> dict:
    """Time section 4.4 post-processing: store passes vs. the sharded fold.

    Discovers the same shard set twice.  The serial reference combines
    plain shard schemas and then runs ``infer_property_constraints`` /
    ``infer_datatypes`` / ``compute_cardinalities`` against the store --
    one full member scan per pass.  The sharded path instead runs
    ``attach_partial_stats`` inside each shard (the one pass a pool
    worker folds into the schema it ships back) and finishes with the
    store-free ``apply_partial_stats`` on the merged schema.  Both
    results are byte-compared.
    """
    store = GraphStore(graph)
    plans = store.plan_shards(NUM_BATCHES, seed=config.seed)

    def _discover_shards(attach: bool) -> tuple[list[ShardResult], float]:
        engine = IncrementalDiscovery(config, name="shard")
        attach_seconds = 0.0
        results = []
        for plan in plans:
            batch = store.materialize_shard(plan)
            schema, report = engine.discover_batch_columns(
                node_columns(batch.nodes),
                edge_columns(batch.edges, batch.endpoint_labels),
                batch_index=plan.index,
            )
            if attach:
                started = time.perf_counter()
                attach_partial_stats(schema, batch.nodes, batch.edges)
                attach_seconds += time.perf_counter() - started
            results.append(ShardResult(plan.index, schema, report))
        return results, attach_seconds

    plain, _ = _discover_shards(attach=False)
    serial_schema = combine_shard_results(graph.name, plain, config)
    started = time.perf_counter()
    infer_property_constraints(serial_schema)
    infer_datatypes(serial_schema, store, config)
    compute_cardinalities(serial_schema, store)
    serial_seconds = time.perf_counter() - started

    with_stats, attach_seconds = _discover_shards(attach=True)
    sharded_schema = combine_shard_results(graph.name, with_stats, config)
    started = time.perf_counter()
    applied = apply_partial_stats(sharded_schema, config)
    apply_seconds = time.perf_counter() - started
    sharded_seconds = attach_seconds + apply_seconds
    return {
        "serial_store_seconds": round(serial_seconds, 6),
        "sharded_attach_seconds": round(attach_seconds, 6),
        "sharded_apply_seconds": round(apply_seconds, 6),
        "sharded_total_seconds": round(sharded_seconds, 6),
        "partial_path_engaged": applied,
        "schemas_identical": (
            serialize_pg_schema(sharded_schema)
            == serialize_pg_schema(serial_schema)
        ),
    }


def _amdahl(serial_fraction: float, workers: int) -> float:
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / workers)


def run_parallel_bench(
    multiplier: float,
    repeats: int = REPEATS,
    jobs_list: tuple[int, ...] = JOBS,
    base_scales: tuple[float, ...] = BASE_SCALES,
) -> dict:
    """Sequential vs. pooled discovery; schemas byte-compared throughout."""
    calibration = calibrate_cpu()
    runs = []
    for base_scale in base_scales:
        scale = base_scale * multiplier
        graph = get_dataset("LDBC", scale=scale, seed=0).graph
        config = PGHiveConfig(post_processing=False)
        serial = _measure_serial_components(graph, config)
        postprocess = _measure_postprocess(
            graph, PGHiveConfig(infer_value_profiles=True)
        )
        serial_seconds = (
            serial["partition_seconds"] + serial["merge_tree_seconds"]
        )
        timings: dict[int, float] = {}
        schemas: dict[int, str] = {}
        for jobs in jobs_list:
            best = float("inf")
            for _ in range(repeats):
                store = GraphStore(graph)
                job_config = PGHiveConfig(post_processing=False, jobs=jobs)
                started = time.perf_counter()
                result = PGHive(job_config).discover_incremental(
                    store, num_batches=NUM_BATCHES
                )
                best = min(best, time.perf_counter() - started)
            timings[jobs] = best
            schemas[jobs] = serialize_pg_schema(result.schema)
        sequential_seconds = timings[jobs_list[0]]
        serial_fraction = (
            serial_seconds / sequential_seconds
            if sequential_seconds > 0 else 0.0
        )
        runs.append({
            "dataset": "LDBC",
            "scale": scale,
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "num_batches": NUM_BATCHES,
            "sequential_seconds": round(sequential_seconds, 6),
            "serial_components": serial,
            "serial_fraction": round(serial_fraction, 4),
            "postprocess": postprocess,
            "jobs": {
                str(jobs): {
                    "wall_seconds": round(timings[jobs], 6),
                    "measured_speedup": round(
                        sequential_seconds / timings[jobs], 3
                    ),
                    "amdahl_projected_speedup": round(
                        _amdahl(serial_fraction, jobs), 3
                    ),
                    "schemas_identical": (
                        schemas[jobs] == schemas[jobs_list[0]]
                    ),
                }
                for jobs in jobs_list
            },
        })
    return {
        "description": (
            "Incremental discovery wall-clock, sequential (jobs=1) vs. "
            f"process pools; best of {repeats} runs, byte-compared "
            "schemas.  measured_speedup is bounded above by the host's "
            "effective_parallelism (CPU-quota calibration below); "
            "amdahl_projected_speedup applies the measured serial "
            "fraction (partition + merge tree) to ideal cores.  Each "
            "run's postprocess block compares the serial store-backed "
            "section 4.4 passes against the sharded partial-stats fold "
            "(attach in workers + one apply at the driver)."
        ),
        "scale_multiplier": multiplier,
        "repeats": repeats,
        "cpu_calibration": calibration,
        "runs": runs,
        "ldbc_measured_speedup": {
            f"scale{run['scale']:g}_jobs{jobs}": run["jobs"][jobs][
                "measured_speedup"
            ]
            for run in runs
            for jobs in run["jobs"]
            if jobs != "1"
        },
        "ldbc_projected_speedup": {
            f"scale{run['scale']:g}_jobs{jobs}": run["jobs"][jobs][
                "amdahl_projected_speedup"
            ]
            for run in runs
            for jobs in run["jobs"]
            if jobs != "1"
        },
        "speedup_ceiling_note": (
            "measured wall speedup cannot exceed the host's "
            "effective_parallelism; compare measured against the "
            "calibration, projected against the worker count"
        ),
        "schemas_identical": all(
            entry["schemas_identical"]
            for run in runs
            for entry in run["jobs"].values()
        ) and all(
            run["postprocess"]["schemas_identical"]
            and run["postprocess"]["partial_path_engaged"]
            for run in runs
        ),
    }


def _print_table(payload: dict) -> None:
    rows = []
    for run in payload["runs"]:
        for jobs, entry in run["jobs"].items():
            rows.append([
                f"{run['scale']:g}",
                f"{run['num_nodes']}+{run['num_edges']}",
                jobs,
                f"{entry['wall_seconds'] * 1000:.0f}",
                f"{entry['measured_speedup']:.2f}x",
                f"{entry['amdahl_projected_speedup']:.2f}x",
                "yes" if entry["schemas_identical"] else "NO",
            ])
    effective = payload["cpu_calibration"]["effective_parallelism"]
    print(render_table(
        ["scale", "n+m", "jobs", "wall ms", "measured",
         "projected", "identical"],
        rows,
        f"Parallel sharded discovery (LDBC, {NUM_BATCHES} batches; "
        f"host delivers ~{effective:g} effective cores)",
    ))
    post_rows = []
    for run in payload["runs"]:
        post = run["postprocess"]
        post_rows.append([
            f"{run['scale']:g}",
            f"{post['serial_store_seconds'] * 1000:.0f}",
            f"{post['sharded_attach_seconds'] * 1000:.0f}",
            f"{post['sharded_apply_seconds'] * 1000:.0f}",
            "yes" if post["partial_path_engaged"] else "NO",
            "yes" if post["schemas_identical"] else "NO",
        ])
    print(render_table(
        ["scale", "store ms", "attach ms", "apply ms",
         "partial", "identical"],
        post_rows,
        "Post-processing stage: serial store passes vs. sharded "
        "partial-stats fold (attach runs inside the pool workers)",
    ))


def test_parallel_discovery(benchmark, scale):
    """Pytest entry: parallel schemas byte-identical at every job count."""
    payload = benchmark.pedantic(
        lambda: run_parallel_bench(
            scale * 0.25, repeats=1, jobs_list=(1, 2), base_scales=(8.0,)
        ),
        rounds=1, iterations=1,
    )
    print()
    _print_table(payload)
    assert payload["schemas_identical"]


def main() -> None:
    smoke = "--smoke" in sys.argv[1:]
    multiplier = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    if smoke:
        payload = run_parallel_bench(
            multiplier * 0.1, repeats=1, jobs_list=(1, 2),
            base_scales=(8.0,),
        )
    else:
        payload = run_parallel_bench(multiplier)
    _print_table(payload)
    if not smoke:
        OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {OUTPUT}")
    if not payload["schemas_identical"]:
        raise SystemExit("schema mismatch between job counts")


if __name__ == "__main__":
    main()
