"""Parallel sharded discovery benchmark: sequential vs. worker pools.

Runs incremental discovery on the LDBC generator at two scales with
``jobs`` in {1, 2, 4, 8} and byte-compares every parallel schema against
the sequential one.  Because container CPU quotas routinely make fewer
effective cores available than ``nproc`` reports, the harness first
*calibrates* the machine with fixed-work spin tasks and reports, next to
each measured wall-clock speedup, the Amdahl projection from the
measured serial fraction (shard partitioning + merge tree; the per-shard
discovery itself is fully parallel in plan mode).  On an unconstrained
host the measured speedup approaches the projection; on a quota-limited
host the calibration documents the ceiling.

The payload also records the worker payload cost: what actually crosses
the process pipe under every shard transport.  Under ``pickle`` that is
shard plans out and per-shard schemas back, pickled whole; under ``shm``
and ``memmap`` the results land in shared segments and only tiny
``SlabRef`` handles cross the pipe, so ``pipe_payload_bytes`` collapses
by orders of magnitude.  The partition timing separates the parent's
serial share (node tables + bucket concatenation + install) from the
edge bucketing the driver now runs on the worker pool.  A second stage
table compares section 4.4 post-processing as the serial engine runs it
(store-backed member scans) against the sharded fold the pool uses
(``attach_partial_stats`` in each worker, one store-free
``apply_partial_stats`` at the driver), byte-compared.

Usage:

    PYTHONPATH=src python benchmarks/bench_parallel.py [--smoke]

``REPRO_BENCH_SCALE`` multiplies the base scales; ``--smoke`` shrinks
scales and worker counts for CI.  As a pytest benchmark the session
``scale`` fixture is the multiplier and no JSON is written.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import numpy

from repro.core.columns import edge_columns, node_columns
from repro.core.config import PGHiveConfig
from repro.core.incremental import IncrementalDiscovery
from repro.core.parallel import ShardResult, combine_shard_results
from repro.core.pipeline import PGHive
from repro.core.postprocess import (
    apply_partial_stats,
    attach_partial_stats,
    compute_cardinalities,
    infer_datatypes,
    infer_property_constraints,
)
from repro.core.transport import (
    SegmentRegistry,
    publish_result_bytes,
    resolve_transport,
)
from repro.datasets import get_dataset
from repro.graph.store import GraphStore
from repro.schema import serialize_pg_schema
from repro.util.tables import render_table

BASE_SCALES = (8.0, 32.0)
JOBS = (1, 2, 4, 8)
NUM_BATCHES = 8
REPEATS = 2
SPIN_ITERATIONS = 12_000_000
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def _spin(iterations: int) -> int:
    total = 0
    for i in range(iterations):
        total += i
    return total


def calibrate_cpu(workers: int = 4) -> dict:
    """Measure how much CPU the container actually delivers.

    ``workers`` processes each execute the same fixed amount of work; on
    ``workers`` free cores the wall clock matches one task, under a CPU
    quota it stretches toward ``workers`` times one task.  The ratio is
    the machine's effective parallelism -- the hard ceiling for any
    measured wall-clock speedup below.
    """
    started = time.perf_counter()
    _spin(SPIN_ITERATIONS)
    single = time.perf_counter() - started
    context = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(workers, mp_context=context) as pool:
        started = time.perf_counter()
        list(pool.map(_spin, [SPIN_ITERATIONS] * workers))
        group = time.perf_counter() - started
    effective = workers * single / group if group > 0 else float(workers)
    return {
        "probe_workers": workers,
        "single_task_seconds": round(single, 4),
        "parallel_group_seconds": round(group, 4),
        "effective_parallelism": round(effective, 2),
        "os_cpu_count": os.cpu_count(),
    }


def _measure_transports(plans, results) -> dict:
    """What each shard transport sends through the process pipe.

    ``pickle`` ships plans out and the full ``ShardResult`` list back.
    The zero-copy transports publish each result's pickled bytes into a
    segment via the real worker handshake (reserve in the driver,
    ``publish_result_bytes`` in the worker, ``consume_bytes`` back in
    the driver) and only the pickled ``SlabRef`` crosses the pipe --
    ``ship_seconds`` times the full round trip either way.
    """
    plans_bytes = len(pickle.dumps(plans))
    started = time.perf_counter()
    payload = pickle.dumps(results)
    pickle.loads(payload)
    pickle_seconds = time.perf_counter() - started
    entries: dict[str, dict] = {
        "pickle": {
            "pipe_payload_bytes": plans_bytes + len(payload),
            "ship_seconds": round(pickle_seconds, 6),
        }
    }
    for transport in ("shm", "memmap"):
        if resolve_transport(transport) != transport:
            entries[transport] = {"degraded_to": resolve_transport(transport)}
            continue
        with SegmentRegistry(transport) as registry:
            ref_bytes = 0
            started = time.perf_counter()
            for result in results:
                blob = pickle.dumps([result])
                name = registry.reserve()
                ref = publish_result_bytes(
                    transport, registry.directory, name, blob
                )
                ref_bytes += len(pickle.dumps(ref))
                pickle.loads(registry.consume_bytes(ref))
            ship_seconds = time.perf_counter() - started
        entries[transport] = {
            "pipe_payload_bytes": plans_bytes + ref_bytes,
            "ship_seconds": round(ship_seconds, 6),
        }
    return entries


def _measure_serial_components(graph, config) -> dict:
    """Time the driver's inherently serial steps and the pipe payload.

    Discovers every shard in-process (so the measurement is not polluted
    by pool scheduling), then times (a) the parent-serial share of the
    partition (node tables, bucket concatenation, install) separately
    from the pool-parallel edge bucketing, (b) the merge tree over the
    per-shard schemas, and (c) what a pool run ships across the pipe
    under every transport.
    """
    store = GraphStore(graph)
    started = time.perf_counter()
    nodes_by_shard, sorted_ids, shard_of_sorted = store.partition_tables(
        NUM_BATCHES, seed=config.seed
    )
    tables_seconds = time.perf_counter() - started
    num_edges = graph.num_edges
    step = max(1, -(-num_edges // 8))  # the slices a 4-worker pool uses
    started = time.perf_counter()
    slice_buckets = [
        store.bucket_edge_range(
            start, min(start + step, num_edges),
            sorted_ids, shard_of_sorted, NUM_BATCHES,
        )
        for start in range(0, num_edges, step)
    ]
    bucket_seconds = time.perf_counter() - started
    started = time.perf_counter()
    merged = [
        numpy.concatenate([buckets[shard] for buckets in slice_buckets])
        if slice_buckets else numpy.empty(0, dtype=numpy.int64)
        for shard in range(NUM_BATCHES)
    ]
    store.install_partition(
        NUM_BATCHES, config.seed, True, nodes_by_shard, merged
    )
    plans = store.plan_shards(NUM_BATCHES, seed=config.seed)
    concat_seconds = time.perf_counter() - started
    engine = IncrementalDiscovery(config, name="shard")
    worker_compute = 0.0
    results = []
    for plan in plans:
        batch = store.materialize_shard(plan)
        batch_started = time.perf_counter()
        schema, report = engine.discover_batch_columns(
            node_columns(batch.nodes),
            edge_columns(batch.edges, batch.endpoint_labels),
            batch_index=plan.index,
        )
        worker_compute += time.perf_counter() - batch_started
        results.append(ShardResult(plan.index, schema, report))
    started = time.perf_counter()
    combine_shard_results(graph.name, results, config)
    merge_seconds = time.perf_counter() - started
    transports = _measure_transports(plans, results)
    return {
        # Parent-serial share: the edge bucketing itself rides the pool.
        "partition_seconds": round(tables_seconds + concat_seconds, 6),
        "partition_tables_seconds": round(tables_seconds, 6),
        "partition_bucket_seconds": round(bucket_seconds, 6),
        "partition_concat_seconds": round(concat_seconds, 6),
        "merge_tree_seconds": round(merge_seconds, 6),
        "pickle_roundtrip_seconds": transports["pickle"]["ship_seconds"],
        "pipe_payload_bytes": transports["pickle"]["pipe_payload_bytes"],
        "worker_compute_seconds": round(worker_compute, 6),
        "transports": transports,
    }


def _measure_postprocess(graph, config) -> dict:
    """Time section 4.4 post-processing: store passes vs. the sharded fold.

    Discovers the same shard set twice.  The serial reference combines
    plain shard schemas and then runs ``infer_property_constraints`` /
    ``infer_datatypes`` / ``compute_cardinalities`` against the store --
    one full member scan per pass.  The sharded path instead runs
    ``attach_partial_stats`` inside each shard (the one pass a pool
    worker folds into the schema it ships back) and finishes with the
    store-free ``apply_partial_stats`` on the merged schema.  Both
    results are byte-compared.
    """
    store = GraphStore(graph)
    plans = store.plan_shards(NUM_BATCHES, seed=config.seed)

    def _discover_shards(attach: bool) -> tuple[list[ShardResult], float]:
        engine = IncrementalDiscovery(config, name="shard")
        attach_seconds = 0.0
        results = []
        for plan in plans:
            batch = store.materialize_shard(plan)
            schema, report = engine.discover_batch_columns(
                node_columns(batch.nodes),
                edge_columns(batch.edges, batch.endpoint_labels),
                batch_index=plan.index,
            )
            if attach:
                started = time.perf_counter()
                attach_partial_stats(schema, batch.nodes, batch.edges)
                attach_seconds += time.perf_counter() - started
            results.append(ShardResult(plan.index, schema, report))
        return results, attach_seconds

    plain, _ = _discover_shards(attach=False)
    serial_schema = combine_shard_results(graph.name, plain, config)
    started = time.perf_counter()
    infer_property_constraints(serial_schema)
    infer_datatypes(serial_schema, store, config)
    compute_cardinalities(serial_schema, store)
    serial_seconds = time.perf_counter() - started

    with_stats, attach_seconds = _discover_shards(attach=True)
    sharded_schema = combine_shard_results(graph.name, with_stats, config)
    started = time.perf_counter()
    applied = apply_partial_stats(sharded_schema, config)
    apply_seconds = time.perf_counter() - started
    sharded_seconds = attach_seconds + apply_seconds
    return {
        "serial_store_seconds": round(serial_seconds, 6),
        "sharded_attach_seconds": round(attach_seconds, 6),
        "sharded_apply_seconds": round(apply_seconds, 6),
        "sharded_total_seconds": round(sharded_seconds, 6),
        "partial_path_engaged": applied,
        "schemas_identical": (
            serialize_pg_schema(sharded_schema)
            == serialize_pg_schema(serial_schema)
        ),
    }


def _amdahl(serial_fraction: float, workers: int) -> float:
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / workers)


def run_parallel_bench(
    multiplier: float,
    repeats: int = REPEATS,
    jobs_list: tuple[int, ...] = JOBS,
    base_scales: tuple[float, ...] = BASE_SCALES,
) -> dict:
    """Sequential vs. pooled discovery; schemas byte-compared throughout."""
    calibration = calibrate_cpu()
    runs = []
    for base_scale in base_scales:
        scale = base_scale * multiplier
        graph = get_dataset("LDBC", scale=scale, seed=0).graph
        config = PGHiveConfig(post_processing=False)
        serial = _measure_serial_components(graph, config)
        postprocess = _measure_postprocess(
            graph, PGHiveConfig(infer_value_profiles=True)
        )
        serial_seconds = (
            serial["partition_seconds"] + serial["merge_tree_seconds"]
        )
        timings: dict[int, float] = {}
        schemas: dict[int, str] = {}
        for jobs in jobs_list:
            best = float("inf")
            for _ in range(repeats):
                store = GraphStore(graph)
                job_config = PGHiveConfig(post_processing=False, jobs=jobs)
                started = time.perf_counter()
                result = PGHive(job_config).discover_incremental(
                    store, num_batches=NUM_BATCHES
                )
                best = min(best, time.perf_counter() - started)
            timings[jobs] = best
            schemas[jobs] = serialize_pg_schema(result.schema)
        sequential_seconds = timings[jobs_list[0]]
        serial_fraction = (
            serial_seconds / sequential_seconds
            if sequential_seconds > 0 else 0.0
        )
        transport_jobs = 4 if 4 in jobs_list else jobs_list[-1]
        transport_runs: dict[str, dict] = {}
        for transport in ("pickle", "shm", "memmap"):
            store = GraphStore(graph)
            transport_config = PGHiveConfig(
                post_processing=False,
                jobs=transport_jobs,
                shard_transport=transport,
            )
            started = time.perf_counter()
            result = PGHive(transport_config).discover_incremental(
                store, num_batches=NUM_BATCHES
            )
            transport_runs[transport] = {
                "jobs": transport_jobs,
                "wall_seconds": round(time.perf_counter() - started, 6),
                "transport": result.parameters.get(
                    "parallel/transport", ""
                ),
                "schemas_identical": (
                    serialize_pg_schema(result.schema)
                    == schemas[jobs_list[0]]
                ),
            }
        runs.append({
            "dataset": "LDBC",
            "scale": scale,
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "num_batches": NUM_BATCHES,
            "sequential_seconds": round(sequential_seconds, 6),
            "serial_components": serial,
            "serial_fraction": round(serial_fraction, 4),
            "postprocess": postprocess,
            "transport_runs": transport_runs,
            "jobs": {
                str(jobs): {
                    "wall_seconds": round(timings[jobs], 6),
                    "measured_speedup": round(
                        sequential_seconds / timings[jobs], 3
                    ),
                    "amdahl_projected_speedup": round(
                        _amdahl(serial_fraction, jobs), 3
                    ),
                    "schemas_identical": (
                        schemas[jobs] == schemas[jobs_list[0]]
                    ),
                }
                for jobs in jobs_list
            },
        })
    return {
        "description": (
            "Incremental discovery wall-clock, sequential (jobs=1) vs. "
            f"process pools; best of {repeats} runs, byte-compared "
            "schemas.  measured_speedup is bounded above by the host's "
            "effective_parallelism (CPU-quota calibration below); "
            "amdahl_projected_speedup applies the measured serial "
            "fraction (parent-serial partition share + merge tree) to "
            "ideal cores.  Each run's transports block records the "
            "bytes each shard transport sends through the process pipe "
            "(full pickles vs. SlabRef handles into shared segments) "
            "and transport_runs byte-compares a pooled run per "
            "transport against the sequential schema.  Each run's "
            "postprocess block compares the serial store-backed "
            "section 4.4 passes against the sharded partial-stats fold "
            "(attach in workers + one apply at the driver)."
        ),
        "scale_multiplier": multiplier,
        "repeats": repeats,
        "cpu_calibration": calibration,
        "runs": runs,
        "ldbc_measured_speedup": {
            f"scale{run['scale']:g}_jobs{jobs}": run["jobs"][jobs][
                "measured_speedup"
            ]
            for run in runs
            for jobs in run["jobs"]
            if jobs != "1"
        },
        "ldbc_projected_speedup": {
            f"scale{run['scale']:g}_jobs{jobs}": run["jobs"][jobs][
                "amdahl_projected_speedup"
            ]
            for run in runs
            for jobs in run["jobs"]
            if jobs != "1"
        },
        "speedup_ceiling_note": (
            "measured wall speedup cannot exceed the host's "
            "effective_parallelism; compare measured against the "
            "calibration, projected against the worker count"
        ),
        "schemas_identical": all(
            entry["schemas_identical"]
            for run in runs
            for entry in run["jobs"].values()
        ) and all(
            entry["schemas_identical"]
            for run in runs
            for entry in run["transport_runs"].values()
        ) and all(
            run["postprocess"]["schemas_identical"]
            and run["postprocess"]["partial_path_engaged"]
            for run in runs
        ),
    }


def check_payload_reduction(payload: dict, factor: int = 10) -> None:
    """Fail when a zero-copy transport stops beating pickle by ``factor``.

    CI's bench smoke leg runs this against a fresh ``--smoke`` payload,
    so a change that silently reroutes full shard results back through
    the pipe (instead of SlabRef handles) turns the build red.
    """
    for run in payload["runs"]:
        transports = run["serial_components"]["transports"]
        pickle_bytes = transports["pickle"]["pipe_payload_bytes"]
        for name in ("shm", "memmap"):
            zero_copy = transports.get(name, {}).get("pipe_payload_bytes")
            if zero_copy is None:
                continue  # transport degraded on this host
            if zero_copy * factor > pickle_bytes:
                raise SystemExit(
                    f"pipe payload regression at scale {run['scale']:g}: "
                    f"{name} ships {zero_copy} bytes vs. {pickle_bytes} "
                    f"for pickle (required: {factor}x smaller)"
                )


def _print_table(payload: dict) -> None:
    rows = []
    for run in payload["runs"]:
        for jobs, entry in run["jobs"].items():
            rows.append([
                f"{run['scale']:g}",
                f"{run['num_nodes']}+{run['num_edges']}",
                jobs,
                f"{entry['wall_seconds'] * 1000:.0f}",
                f"{entry['measured_speedup']:.2f}x",
                f"{entry['amdahl_projected_speedup']:.2f}x",
                "yes" if entry["schemas_identical"] else "NO",
            ])
    effective = payload["cpu_calibration"]["effective_parallelism"]
    print(render_table(
        ["scale", "n+m", "jobs", "wall ms", "measured",
         "projected", "identical"],
        rows,
        f"Parallel sharded discovery (LDBC, {NUM_BATCHES} batches; "
        f"host delivers ~{effective:g} effective cores)",
    ))
    transport_rows = []
    for run in payload["runs"]:
        transports = run["serial_components"]["transports"]
        for name, entry in transports.items():
            if "pipe_payload_bytes" not in entry:
                transport_rows.append([
                    f"{run['scale']:g}", name, "-", "-", "-",
                    f"degraded to {entry['degraded_to']}",
                ])
                continue
            wall = run["transport_runs"].get(name, {})
            transport_rows.append([
                f"{run['scale']:g}",
                name,
                str(entry["pipe_payload_bytes"]),
                f"{entry['ship_seconds'] * 1000:.1f}",
                f"{wall.get('wall_seconds', 0) * 1000:.0f}",
                "yes" if wall.get("schemas_identical") else "NO",
            ])
    print(render_table(
        ["scale", "transport", "pipe bytes", "ship ms",
         "pool wall ms", "identical"],
        transport_rows,
        "Shard transport comparison: bytes through the process pipe "
        "and a pooled end-to-end run per transport",
    ))
    post_rows = []
    for run in payload["runs"]:
        post = run["postprocess"]
        post_rows.append([
            f"{run['scale']:g}",
            f"{post['serial_store_seconds'] * 1000:.0f}",
            f"{post['sharded_attach_seconds'] * 1000:.0f}",
            f"{post['sharded_apply_seconds'] * 1000:.0f}",
            "yes" if post["partial_path_engaged"] else "NO",
            "yes" if post["schemas_identical"] else "NO",
        ])
    print(render_table(
        ["scale", "store ms", "attach ms", "apply ms",
         "partial", "identical"],
        post_rows,
        "Post-processing stage: serial store passes vs. sharded "
        "partial-stats fold (attach runs inside the pool workers)",
    ))


def test_parallel_discovery(benchmark, scale):
    """Pytest entry: parallel schemas byte-identical at every job count."""
    payload = benchmark.pedantic(
        lambda: run_parallel_bench(
            scale * 0.25, repeats=1, jobs_list=(1, 2), base_scales=(8.0,)
        ),
        rounds=1, iterations=1,
    )
    print()
    _print_table(payload)
    check_payload_reduction(payload)
    assert payload["schemas_identical"]


def main() -> None:
    smoke = "--smoke" in sys.argv[1:]
    multiplier = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    if smoke:
        payload = run_parallel_bench(
            multiplier * 0.1, repeats=1, jobs_list=(1, 2),
            base_scales=(8.0,),
        )
    else:
        payload = run_parallel_bench(multiplier)
    _print_table(payload)
    if not smoke:
        OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {OUTPUT}")
    check_payload_reduction(payload)
    if not payload["schemas_identical"]:
        raise SystemExit("schema mismatch between job counts")


if __name__ == "__main__":
    main()
