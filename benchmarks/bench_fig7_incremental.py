"""Figure 7: incremental execution time per batch.

Splits each dataset into 10 random batches (the paper's protocol), runs
both PG-HIVE variants incrementally, prints per-batch processing time, and
checks the design claims: per-batch times stay consistent (no blow-up as
the accumulated schema grows) and every batch is far cheaper than the
corresponding static run.
"""

from __future__ import annotations

from repro.core.config import LSHMethod, PGHiveConfig
from repro.core.pipeline import PGHive
from repro.datasets import get_dataset
from repro.graph.store import GraphStore
from repro.util.tables import render_table

NUM_BATCHES = 10


def test_fig7_incremental_runtime(benchmark, scale, datasets):
    def run_all():
        outcome = {}
        for name in datasets:
            dataset = get_dataset(name, scale=scale, seed=1)
            store = GraphStore(dataset.graph)
            for method in (LSHMethod.ELSH, LSHMethod.MINHASH):
                config = PGHiveConfig(method=method, post_processing=False)
                result = PGHive(config).discover_incremental(
                    store, num_batches=NUM_BATCHES
                )
                outcome[(name, method.value)] = [
                    report.seconds for report in result.batches
                ]
        return outcome

    outcome = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for (name, method), seconds in sorted(outcome.items()):
        rows.append([
            name, method,
            *(f"{s * 1000:.0f}" for s in seconds),
        ])
    print()
    print(render_table(
        ["dataset", "method", *(f"b{i}" for i in range(NUM_BATCHES))],
        rows,
        f"Figure 7: incremental per-batch time in ms "
        f"(10 batches, scale={scale})",
    ))

    for (name, method), seconds in outcome.items():
        assert len(seconds) == NUM_BATCHES
        # Consistency: later batches don't blow up as the schema grows.
        # (First batch absorbs warm-up; compare the rest to their median.)
        tail = sorted(seconds[1:])
        median = tail[len(tail) // 2]
        assert max(seconds[1:]) <= max(4.0 * median, median + 0.25), (
            name, method, seconds,
        )
