"""Figure 7: incremental execution time per batch.

Splits each dataset into 10 random batches (the paper's protocol), runs
both PG-HIVE variants incrementally, prints per-batch processing time, and
checks the design claims: per-batch times stay consistent (no blow-up as
the accumulated schema grows) and every batch is far cheaper than the
corresponding static run.
"""

from __future__ import annotations

from repro.core.config import LSHMethod, PGHiveConfig
from repro.core.pipeline import PGHive
from repro.datasets import get_dataset
from repro.graph.store import GraphStore
from repro.util.tables import render_table

NUM_BATCHES = 10


def test_fig7_incremental_runtime(benchmark, scale, datasets):
    def run_all():
        outcome = {}
        for name in datasets:
            dataset = get_dataset(name, scale=scale, seed=1)
            store = GraphStore(dataset.graph)
            for method in (LSHMethod.ELSH, LSHMethod.MINHASH):
                config = PGHiveConfig(method=method, post_processing=False)
                result = PGHive(config).discover_incremental(
                    store, num_batches=NUM_BATCHES
                )
                outcome[(name, method.value)] = [
                    (report.seconds, report.embedder_reused)
                    for report in result.batches
                ]
        return outcome

    outcome = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for (name, method), batches in sorted(outcome.items()):
        rows.append([
            name, method,
            *(
                f"{s * 1000:.0f}{'*' if reused else ''}"
                for s, reused in batches
            ),
        ])
    print()
    print(render_table(
        ["dataset", "method", *(f"b{i}" for i in range(NUM_BATCHES))],
        rows,
        f"Figure 7: incremental per-batch time in ms "
        f"(10 batches, * = embedder reused, scale={scale})",
    ))

    for (name, method), batches in outcome.items():
        assert len(batches) == NUM_BATCHES
        seconds = [s for s, _ in batches]
        # Consistency: later batches don't blow up as the schema grows.
        # (First batch absorbs warm-up; compare the rest to their median.)
        tail = sorted(seconds[1:])
        median = tail[len(tail) // 2]
        assert max(seconds[1:]) <= max(4.0 * median, median + 0.25), (
            name, method, seconds,
        )
        # Where the batch vocabulary is stable (LDBC's few labels appear in
        # every random partition; IYP's long label tail does not), the
        # cached embedder must kick in, and reused batches must not be
        # slower than refitting ones.
        reused = [s for s, r in batches[1:] if r]
        refit = [s for s, r in batches[1:] if not r]
        if name == "LDBC":
            assert reused, (name, method, "embedder never reused")
        if reused and refit:
            reused_median = sorted(reused)[len(reused) // 2]
            refit_median = sorted(refit)[len(refit) // 2]
            assert reused_median <= max(
                1.5 * refit_median, refit_median + 0.1
            ), (name, method, batches)
