"""Hot-path kernel benchmark: reference loops vs. batch-vectorized kernels.

Runs static discovery on the LDBC and IYP generators at two scales for
both LSH methods, once with ``kernels="reference"`` (the element-at-a-time
loops, i.e. the pre-kernel implementation) and once with
``kernels="vectorized"`` (distinct-pattern compaction, CSR MinHash,
vectorized banding, embedder reuse).  Both modes must produce
byte-identical serialized schemas; the speedup table is written to
``BENCH_hotpath.json`` at the repository root.

Usage:

    PYTHONPATH=src python benchmarks/bench_hotpath.py

``REPRO_BENCH_SCALE`` multiplies the two base scales (default 1.0 here --
the committed JSON is generated at the default; CI smoke runs at 0.1).
As a pytest benchmark (``pytest benchmarks/bench_hotpath.py``) the session
``scale`` fixture is the multiplier and no JSON is written.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.config import LSHMethod, PGHiveConfig
from repro.core.pipeline import PGHive
from repro.datasets import get_dataset
from repro.graph.store import GraphStore
from repro.schema import serialize_pg_schema
from repro.util.tables import render_table

BASE_SCALES = (2.0, 8.0)
DATASETS = ("LDBC", "IYP")
REPEATS = 3
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"


def _run_once(store: GraphStore, method: LSHMethod, kernels: str):
    """One discovery run; returns (seconds, serialized schema, report)."""
    config = PGHiveConfig(
        method=method, post_processing=False, kernels=kernels
    )
    started = time.perf_counter()
    result = PGHive(config).discover(store)
    elapsed = time.perf_counter() - started
    return elapsed, serialize_pg_schema(result.schema), result.batches[0]


def run_hotpath_bench(multiplier: float, repeats: int = REPEATS) -> dict:
    """Reference-vs-vectorized speedup table over datasets x scales x methods.

    Each mode runs ``repeats`` times and keeps the best wall-clock (the
    usual best-of-N protocol to suppress scheduler noise); the serialized
    schemas of the two modes are compared byte for byte.
    """
    runs = []
    for dataset in DATASETS:
        for base_scale in BASE_SCALES:
            scale = base_scale * multiplier
            store = GraphStore(get_dataset(dataset, scale=scale, seed=0).graph)
            for method in (LSHMethod.ELSH, LSHMethod.MINHASH):
                timings = {}
                schemas = {}
                stage_seconds = {}
                for kernels in ("reference", "vectorized"):
                    best = float("inf")
                    for _ in range(repeats):
                        elapsed, schema, report = _run_once(
                            store, method, kernels
                        )
                        if elapsed < best:
                            best = elapsed
                            stage_seconds[kernels] = {
                                name: round(seconds, 6)
                                for name, seconds in
                                report.stage_seconds.items()
                            }
                    timings[kernels] = best
                    schemas[kernels] = schema
                runs.append({
                    "dataset": dataset,
                    "scale": scale,
                    "num_nodes": store.count_nodes(),
                    "num_edges": store.count_edges(),
                    "method": method.value,
                    "reference_seconds": round(timings["reference"], 6),
                    "vectorized_seconds": round(timings["vectorized"], 6),
                    "speedup": round(
                        timings["reference"] / timings["vectorized"], 3
                    ),
                    "schemas_identical": (
                        schemas["reference"] == schemas["vectorized"]
                    ),
                    "reference_stage_seconds": stage_seconds["reference"],
                    "vectorized_stage_seconds": stage_seconds["vectorized"],
                })
    largest_ldbc = max(
        (r for r in runs if r["dataset"] == "LDBC"), key=lambda r: r["scale"]
    )["scale"]
    return {
        "description": (
            "Static-discovery wall-clock of the element-at-a-time reference "
            "loops (kernels='reference', the pre-kernel implementation) vs. "
            "the batch-vectorized kernels (kernels='vectorized'); best of "
            f"{repeats} runs each, identical seeds, byte-compared schemas."
        ),
        "scale_multiplier": multiplier,
        "repeats": repeats,
        "runs": runs,
        "ldbc_static_speedup": {
            r["method"]: r["speedup"]
            for r in runs
            if r["dataset"] == "LDBC" and r["scale"] == largest_ldbc
        },
    }


def _print_table(payload: dict) -> None:
    rows = [
        [
            run["dataset"],
            f"{run['scale']:g}",
            f"{run['num_nodes']}+{run['num_edges']}",
            run["method"],
            f"{run['reference_seconds'] * 1000:.0f}",
            f"{run['vectorized_seconds'] * 1000:.0f}",
            f"{run['speedup']:.2f}x",
            "yes" if run["schemas_identical"] else "NO",
        ]
        for run in payload["runs"]
    ]
    print(render_table(
        ["dataset", "scale", "n+m", "method", "ref ms", "vec ms",
         "speedup", "identical"],
        rows,
        "Hot-path kernels: reference loops vs. vectorized "
        f"(x{payload['scale_multiplier']:g} scale)",
    ))


def test_hotpath_speedup(benchmark, scale):
    """Pytest entry: schemas identical; kernels at least competitive."""
    payload = benchmark.pedantic(
        lambda: run_hotpath_bench(scale, repeats=1), rounds=1, iterations=1
    )
    print()
    _print_table(payload)
    assert all(run["schemas_identical"] for run in payload["runs"])
    if scale >= 1.0:
        assert all(
            speedup >= 3.0
            for speedup in payload["ldbc_static_speedup"].values()
        ), payload["ldbc_static_speedup"]


def main() -> None:
    multiplier = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    payload = run_hotpath_bench(multiplier)
    _print_table(payload)
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    if not all(run["schemas_identical"] for run in payload["runs"]):
        raise SystemExit("schema mismatch between kernels modes")


if __name__ == "__main__":
    main()
