"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.datasets import get_dataset
from repro.graph.io import save_graph_jsonl


class TestCli:
    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_datasets_listing(self, capsys):
        assert main(["datasets", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "POLE" in out and "IYP" in out

    def test_discover_bundled_dataset(self, capsys):
        assert main(["discover", "POLE", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "CREATE GRAPH TYPE" in out
        assert "PersonType" in out

    def test_discover_jsonl_file(self, tmp_path, capsys, figure1_graph):
        path = tmp_path / "g.jsonl"
        save_graph_jsonl(figure1_graph, path)
        assert main(["discover", str(path)]) == 0
        assert "Person" in capsys.readouterr().out

    def test_discover_xsd_output_file(self, tmp_path, capsys):
        out_path = tmp_path / "schema.xsd"
        assert main([
            "discover", "POLE", "--scale", "0.15",
            "--format", "xsd", "--output", str(out_path),
        ]) == 0
        assert out_path.read_text().startswith("<?xml")

    def test_discover_loose_mode(self, capsys):
        assert main([
            "discover", "POLE", "--scale", "0.15", "--mode", "LOOSE",
        ]) == 0
        assert "LOOSE" in capsys.readouterr().out

    def test_discover_incremental_batches(self, capsys):
        assert main([
            "discover", "POLE", "--scale", "0.15", "--batches", "3",
        ]) == 0

    def test_discover_parallel_jobs(self, capsys, test_jobs):
        """--jobs routes through the pool and matches the sequential
        schema; the stage breakdown is reported on stderr."""
        assert main([
            "discover", "ldbc", "--scale", "0.5",
            "--batches", "4", "--seed", "0",
        ]) == 0
        sequential = capsys.readouterr()
        assert main([
            "discover", "ldbc", "--scale", "0.5",
            "--batches", "4", "--seed", "0",
            "--jobs", str(test_jobs),
        ]) == 0
        parallel = capsys.readouterr()
        assert parallel.out == sequential.out
        assert "stages" in parallel.err and "embed=" in parallel.err

    def test_discover_unknown_input(self, capsys):
        with pytest.raises(SystemExit):
            main(["discover", "definitely-not-a-thing"])

    def test_generate_with_noise(self, tmp_path, capsys):
        out = tmp_path / "noisy.jsonl"
        assert main([
            "generate", "POLE", str(out), "--scale", "0.1",
            "--noise", "0.3", "--label-availability", "0.5",
        ]) == 0
        assert out.exists()
        from repro.graph.io import load_graph_jsonl

        graph = load_graph_jsonl(out)
        assert any(not n.labels for n in graph.nodes())

    def test_evaluate(self, capsys):
        assert main(["evaluate", "POLE", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "PG-HIVE-ELSH" in out and "SchemI" in out

    def test_inspect(self, capsys):
        assert main(["inspect", "POLE", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "Schema report" in out
        assert "labeled coverage" in out

    def test_discover_with_profiles_and_bounds(self, capsys):
        assert main([
            "discover", "POLE", "--scale", "0.15",
            "--profiles", "--bounds",
        ]) == 0
        out = capsys.readouterr().out
        assert "range" in out or "enum" in out
        assert ".." in out  # interval cardinality bounds

    def test_discover_cypher_format(self, capsys):
        assert main([
            "discover", "POLE", "--scale", "0.15", "--format", "cypher",
        ]) == 0
        assert "CREATE CONSTRAINT" in capsys.readouterr().out

    def test_discover_graphql_format(self, capsys):
        assert main([
            "discover", "POLE", "--scale", "0.15", "--format", "graphql",
        ]) == 0
        assert "type Person {" in capsys.readouterr().out

    def test_evaluate_unlabeled_marks_baselines_skipped(self, capsys):
        assert main([
            "evaluate", "POLE", "--scale", "0.15",
            "--label-availability", "0.0",
        ]) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.startswith("SchemI")]
        assert lines and "-" in lines[0]
