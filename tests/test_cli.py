"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.datasets import get_dataset
from repro.graph.io import save_graph_jsonl


class TestCli:
    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_datasets_listing(self, capsys):
        assert main(["datasets", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "POLE" in out and "IYP" in out

    def test_discover_bundled_dataset(self, capsys):
        assert main(["discover", "POLE", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "CREATE GRAPH TYPE" in out
        assert "PersonType" in out

    def test_discover_jsonl_file(self, tmp_path, capsys, figure1_graph):
        path = tmp_path / "g.jsonl"
        save_graph_jsonl(figure1_graph, path)
        assert main(["discover", str(path)]) == 0
        assert "Person" in capsys.readouterr().out

    def test_discover_xsd_output_file(self, tmp_path, capsys):
        out_path = tmp_path / "schema.xsd"
        assert main([
            "discover", "POLE", "--scale", "0.15",
            "--format", "xsd", "--output", str(out_path),
        ]) == 0
        assert out_path.read_text().startswith("<?xml")

    def test_discover_loose_mode(self, capsys):
        assert main([
            "discover", "POLE", "--scale", "0.15", "--mode", "LOOSE",
        ]) == 0
        assert "LOOSE" in capsys.readouterr().out

    def test_discover_incremental_batches(self, capsys):
        assert main([
            "discover", "POLE", "--scale", "0.15", "--batches", "3",
        ]) == 0

    def test_discover_parallel_jobs(self, capsys, test_jobs):
        """--jobs routes through the pool and matches the sequential
        schema; the stage breakdown is reported on stderr."""
        assert main([
            "discover", "ldbc", "--scale", "0.5",
            "--batches", "4", "--seed", "0",
        ]) == 0
        sequential = capsys.readouterr()
        assert main([
            "discover", "ldbc", "--scale", "0.5",
            "--batches", "4", "--seed", "0",
            "--jobs", str(test_jobs),
        ]) == 0
        parallel = capsys.readouterr()
        assert parallel.out == sequential.out
        assert "stages" in parallel.err and "embed=" in parallel.err

    def test_discover_unknown_input(self, capsys):
        with pytest.raises(SystemExit):
            main(["discover", "definitely-not-a-thing"])

    def test_generate_with_noise(self, tmp_path, capsys):
        out = tmp_path / "noisy.jsonl"
        assert main([
            "generate", "POLE", str(out), "--scale", "0.1",
            "--noise", "0.3", "--label-availability", "0.5",
        ]) == 0
        assert out.exists()
        from repro.graph.io import load_graph_jsonl

        graph = load_graph_jsonl(out)
        assert any(not n.labels for n in graph.nodes())

    def test_evaluate(self, capsys):
        assert main(["evaluate", "POLE", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "PG-HIVE-ELSH" in out and "SchemI" in out

    def test_inspect(self, capsys):
        assert main(["inspect", "POLE", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "Schema report" in out
        assert "labeled coverage" in out

    def test_discover_with_profiles_and_bounds(self, capsys):
        assert main([
            "discover", "POLE", "--scale", "0.15",
            "--profiles", "--bounds",
        ]) == 0
        out = capsys.readouterr().out
        assert "range" in out or "enum" in out
        assert ".." in out  # interval cardinality bounds

    def test_discover_cypher_format(self, capsys):
        assert main([
            "discover", "POLE", "--scale", "0.15", "--format", "cypher",
        ]) == 0
        assert "CREATE CONSTRAINT" in capsys.readouterr().out

    def test_discover_graphql_format(self, capsys):
        assert main([
            "discover", "POLE", "--scale", "0.15", "--format", "graphql",
        ]) == 0
        assert "type Person {" in capsys.readouterr().out

    def test_discover_jobs_with_single_batch_notes_fallback(self, capsys):
        """--jobs with one batch cannot shard; the footer says so instead
        of silently running sequentially."""
        assert main([
            "discover", "POLE", "--scale", "0.15", "--jobs", "2",
        ]) == 0
        err = capsys.readouterr().err
        assert "--jobs 2 ignored" in err
        assert "ran sequentially" in err

    def test_discover_parallel_checkpoint_and_resume(
        self, tmp_path, capsys, test_jobs
    ):
        """--jobs with --checkpoint-dir journals shards; --resume reports
        how many it restored."""
        ckpt = tmp_path / "ckpt"
        args = [
            "discover", "ldbc", "--scale", "0.5",
            "--batches", "4", "--seed", "0",
            "--jobs", str(test_jobs), "--checkpoint-dir", str(ckpt),
        ]
        assert main(args) == 0
        first = capsys.readouterr()
        assert "ignored" not in first.err
        assert len(list((ckpt / "shards").glob("shard-*.json"))) == 4
        assert main(args + ["--resume"]) == 0
        second = capsys.readouterr()
        assert "resumed 4 shard(s) from the parallel journal" in second.err
        assert second.out == first.out

    def test_evaluate_unlabeled_marks_baselines_skipped(self, capsys):
        assert main([
            "evaluate", "POLE", "--scale", "0.15",
            "--label-availability", "0.0",
        ]) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.startswith("SchemI")]
        assert lines and "-" in lines[0]


class TestCliFailureHandling:
    def test_corrupt_jsonl_exits_1_with_clean_error(self, tmp_path, capsys):
        path = tmp_path / "broken.jsonl"
        path.write_text(
            '{"kind": "node", "id": 0}\n{"kind": "wormhole"}\n',
            encoding="utf-8",
        )
        assert main(["discover", str(path)]) == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "broken.jsonl:2" in captured.err
        assert "Traceback" not in captured.err

    def test_on_error_collect_loads_and_reports(
        self, tmp_path, capsys, figure1_graph
    ):
        path = tmp_path / "dirty.jsonl"
        save_graph_jsonl(figure1_graph, path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "wormhole"}\n')
        assert main([
            "discover", str(path), "--on-error", "collect",
        ]) == 0
        captured = capsys.readouterr()
        assert "Person" in captured.out
        assert "rejected 1 records" in captured.err
        assert "unknown record kind" in captured.err

    def test_on_error_skip_loads_silently(
        self, tmp_path, capsys, figure1_graph
    ):
        path = tmp_path / "dirty.jsonl"
        save_graph_jsonl(figure1_graph, path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write("not json\n")
        assert main([
            "discover", str(path), "--on-error", "skip",
        ]) == 0

    def test_bad_fault_plan_in_env_is_reported(self, monkeypatch, capsys):
        monkeypatch.setenv("PGHIVE_FAULTS", "garbage")
        assert main(["discover", "POLE", "--scale", "0.15"]) == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "fault spec" in captured.err

    def test_empty_fault_plan_in_env_is_noop(self, monkeypatch, capsys):
        monkeypatch.setenv("PGHIVE_FAULTS", "")
        assert main(["discover", "POLE", "--scale", "0.15"]) == 0
        capsys.readouterr()

    def test_checkpoint_dir_and_resume_flags(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        args = [
            "discover", "POLE", "--scale", "0.15", "--batches", "3",
            "--checkpoint-dir", str(ckpt),
        ]
        assert main(args) == 0
        first = capsys.readouterr()
        assert (ckpt / "pghive-checkpoint.json").is_file()
        assert main(args + ["--resume"]) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "resumed from checkpoint at batch 3" in second.err

    def test_verify_store_clean_and_corrupt(self, tmp_path, capsys):
        """verify-store exits 0 on a clean directory and 1 with a report
        pinpointing the exact corrupted file; repair restores it."""
        from repro.datasets import get_dataset
        from repro.graph.diskstore import write_graph_to_slabs

        slab_dir = tmp_path / "slabs"
        graph = get_dataset("POLE", scale=0.15, seed=0).graph
        write_graph_to_slabs(graph, slab_dir).close()
        assert main(["verify-store", str(slab_dir)]) == 0
        assert "verdict: clean" in capsys.readouterr().out
        heap = slab_dir / "nodes-props.dat"
        with heap.open("r+b") as handle:
            handle.seek(-1, 2)
            byte = handle.read(1)
            handle.seek(-1, 2)
            handle.write(bytes((byte[0] ^ 0xFF,)))
        assert main(["verify-store", str(slab_dir)]) == 1
        out = capsys.readouterr().out
        assert "nodes-props.dat: checksum" in out
        assert "verdict: corrupt" in out
        assert main(["repair", str(slab_dir)]) == 0
        assert "repaired: restored" in capsys.readouterr().out
        assert main(["verify-store", str(slab_dir)]) == 0
        capsys.readouterr()
        assert main([
            "discover", str(slab_dir), "--store", "disk", "--batches", "2",
        ]) == 0
        capsys.readouterr()

    def test_verify_store_on_non_slab_directory_exits_1(
        self, tmp_path, capsys
    ):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["verify-store", str(empty)]) == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_discover_corrupt_slab_policy_flag(self, tmp_path, capsys):
        """--corrupt-slab-policy is accepted and forwarded; on a clean
        store both policies produce the same schema."""
        from repro.datasets import get_dataset
        from repro.graph.diskstore import write_graph_to_slabs

        slab_dir = tmp_path / "slabs"
        graph = get_dataset("POLE", scale=0.15, seed=0).graph
        write_graph_to_slabs(graph, slab_dir).close()
        assert main([
            "discover", str(slab_dir), "--store", "disk",
            "--batches", "2", "--corrupt-slab-policy", "skip",
        ]) == 0
        skip_out = capsys.readouterr().out
        assert main([
            "discover", str(slab_dir), "--store", "disk",
            "--batches", "2", "--corrupt-slab-policy", "raise",
        ]) == 0
        assert capsys.readouterr().out == skip_out

    def test_corrupt_checkpoint_exits_1(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        (ckpt / "pghive-checkpoint.json").write_text(
            "{broken", encoding="utf-8"
        )
        assert main([
            "discover", "POLE", "--scale", "0.15", "--batches", "3",
            "--checkpoint-dir", str(ckpt), "--resume",
        ]) == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "corrupt or truncated" in captured.err


class TestValidateCommand:
    def _saved_schema(self, tmp_path, capsys):
        path = tmp_path / "schema.json"
        assert main([
            "discover", "POLE", "--scale", "0.15",
            "--format", "json", "--output", str(path),
        ]) == 0
        capsys.readouterr()
        return path

    def test_conforming_graph_exits_0(self, tmp_path, capsys):
        schema = self._saved_schema(tmp_path, capsys)
        assert main([
            "validate", "POLE", "--scale", "0.15", str(schema),
        ]) == 0
        out = capsys.readouterr().out
        assert "conforms" in out
        assert "rate 0.000" in out

    def test_strict_violations_exit_1(self, tmp_path, capsys):
        schema = self._saved_schema(tmp_path, capsys)
        graph = tmp_path / "g.jsonl"
        assert main([
            "generate", "POLE", str(graph),
            "--scale", "0.15", "--noise", "0.5", "--seed", "5",
        ]) == 0
        capsys.readouterr()
        assert main(["validate", str(graph), str(schema)]) == 1
        out = capsys.readouterr().out
        assert "violates" in out
        assert "[mandatory]" in out
        # LOOSE mode tolerates missing properties -> exit 0.
        assert main([
            "validate", str(graph), str(schema), "--mode", "LOOSE",
        ]) == 0
        capsys.readouterr()

    def test_engines_report_identically(self, tmp_path, capsys):
        schema = self._saved_schema(tmp_path, capsys)
        graph = tmp_path / "g.jsonl"
        assert main([
            "generate", "POLE", str(graph),
            "--scale", "0.15", "--noise", "0.3", "--seed", "9",
        ]) == 0
        capsys.readouterr()
        main(["validate", str(graph), str(schema), "--max-violations", "0"])
        columns_out = capsys.readouterr().out
        main([
            "validate", str(graph), str(schema),
            "--max-violations", "0", "--engine", "reference",
        ])
        assert capsys.readouterr().out == columns_out

    def test_missing_schema_file_exits_1(self, capsys):
        assert main([
            "validate", "POLE", "--scale", "0.15", "/nope/schema.json",
        ]) == 1
        assert capsys.readouterr().err.startswith("error:")


class TestLintCliExitCodes:
    """``pghive-lint`` exit-code contract: 0 clean, 1 findings, 2 crash.

    Scripts (and the CI gate) branch on these; a crashed linter must
    never masquerade as a clean or merely dirty tree.
    """

    def _project(self, root, body):
        package = root / "repro"
        package.mkdir(parents=True)
        (package / "__init__.py").write_text('"""Fixture."""\n')
        (package / "mod.py").write_text(body)
        return root

    def test_clean_tree_exits_0(self, tmp_path, capsys):
        from repro.analysis import main as lint_main

        target = self._project(
            tmp_path, '"""Fixture."""\n\n\ndef f() -> int:\n    return 1\n'
        )
        assert lint_main([str(target)]) == 0
        assert "no findings" in capsys.readouterr().err

    def test_findings_exit_1(self, tmp_path, capsys):
        from repro.analysis import main as lint_main

        target = self._project(
            tmp_path,
            '"""Fixture."""\nimport time\n\n\n'
            'def f() -> float:\n    return time.time()\n',
        )
        assert lint_main([str(target)]) == 1
        assert "wall-clock" in capsys.readouterr().out

    def test_usage_error_exits_2(self, capsys):
        from repro.analysis import main as lint_main

        assert lint_main(["--rule", "no-such-rule", "."]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_internal_error_exits_2(self, tmp_path, capsys, monkeypatch):
        import repro.analysis.__main__ as lint_cli

        target = self._project(
            tmp_path, '"""Fixture."""\n\n\ndef f() -> int:\n    return 1\n'
        )

        def explode(*args, **kwargs):
            raise RuntimeError("engine bug")

        monkeypatch.setattr(lint_cli, "lint_paths", explode)
        assert lint_cli.main([str(target)]) == 2
        captured = capsys.readouterr()
        assert "internal error" in captured.err
        assert "RuntimeError" in captured.err
