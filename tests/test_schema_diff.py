"""Tests for the structural schema diff."""

from repro.schema.diff import diff_schemas
from repro.schema.model import EdgeType, NodeType, SchemaGraph


def _schema(node_specs, edge_specs=()):
    schema = SchemaGraph()
    for name, labels, keys in node_specs:
        node_type = NodeType(name, frozenset(labels))
        for key in keys:
            node_type.ensure_property(key)
        schema.add_node_type(node_type)
    for name, labels, keys in edge_specs:
        edge_type = EdgeType(name, frozenset(labels))
        for key in keys:
            edge_type.ensure_property(key)
        schema.add_edge_type(edge_type)
    return schema


class TestDiff:
    def test_identical_schemas_empty_diff(self):
        a = _schema([("P", {"Person"}, {"name"})])
        b = _schema([("P", {"Person"}, {"name"})])
        diff = diff_schemas(a, b)
        assert diff.is_empty
        assert diff.is_monotone_extension

    def test_added_type_detected(self):
        old = _schema([("P", {"Person"}, set())])
        new = _schema([("P", {"Person"}, set()), ("C", {"City"}, set())])
        diff = diff_schemas(old, new)
        assert diff.added_node_types == ["C"]
        assert diff.is_monotone_extension

    def test_removed_type_breaks_monotonicity(self):
        old = _schema([("P", {"Person"}, set()), ("C", {"City"}, set())])
        new = _schema([("P", {"Person"}, set())])
        diff = diff_schemas(old, new)
        assert diff.removed_node_types == ["C"]
        assert not diff.is_monotone_extension

    def test_property_addition_is_monotone(self):
        old = _schema([("P", {"Person"}, {"name"})])
        new = _schema([("P", {"Person"}, {"name", "age"})])
        diff = diff_schemas(old, new)
        assert diff.node_property_additions == {"P": {"age"}}
        assert diff.is_monotone_extension

    def test_property_removal_detected(self):
        old = _schema([("P", {"Person"}, {"name", "age"})])
        new = _schema([("P", {"Person"}, {"name"})])
        diff = diff_schemas(old, new)
        assert diff.node_property_removals == {"P": {"age"}}
        assert not diff.is_monotone_extension

    def test_label_growth_covers_old_type(self):
        """A new type with a superset label set covers the old type."""
        old = _schema([("P", {"Person"}, {"name"})])
        new = _schema([("PS", {"Person", "Student"}, {"name"})])
        diff = diff_schemas(old, new)
        assert diff.removed_node_types == []

    def test_edge_types_diffed(self):
        old = _schema([], [("K", {"KNOWS"}, set())])
        new = _schema(
            [], [("K", {"KNOWS"}, {"since"}), ("L", {"LIKES"}, set())]
        )
        diff = diff_schemas(old, new)
        assert diff.added_edge_types == ["L"]
        assert diff.edge_property_additions == {"K": {"since"}}

    def test_abstract_types_matched_by_keys(self):
        old = _schema([("ABSTRACT_NODE_1", set(), {"a", "b"})])
        new = _schema([("ABSTRACT_NODE_7", set(), {"a", "b"})])
        diff = diff_schemas(old, new)
        assert diff.added_node_types == []
        assert diff.removed_node_types == []
