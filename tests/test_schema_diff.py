"""Tests for the structural schema diff."""

from repro.schema.diff import diff_schemas
from repro.schema.model import EdgeType, NodeType, SchemaGraph


def _schema(node_specs, edge_specs=()):
    schema = SchemaGraph()
    for name, labels, keys in node_specs:
        node_type = NodeType(name, frozenset(labels))
        for key in keys:
            node_type.ensure_property(key)
        schema.add_node_type(node_type)
    for name, labels, keys in edge_specs:
        edge_type = EdgeType(name, frozenset(labels))
        for key in keys:
            edge_type.ensure_property(key)
        schema.add_edge_type(edge_type)
    return schema


class TestDiff:
    def test_identical_schemas_empty_diff(self):
        a = _schema([("P", {"Person"}, {"name"})])
        b = _schema([("P", {"Person"}, {"name"})])
        diff = diff_schemas(a, b)
        assert diff.is_empty
        assert diff.is_monotone_extension

    def test_added_type_detected(self):
        old = _schema([("P", {"Person"}, set())])
        new = _schema([("P", {"Person"}, set()), ("C", {"City"}, set())])
        diff = diff_schemas(old, new)
        assert diff.added_node_types == ["C"]
        assert diff.is_monotone_extension

    def test_removed_type_breaks_monotonicity(self):
        old = _schema([("P", {"Person"}, set()), ("C", {"City"}, set())])
        new = _schema([("P", {"Person"}, set())])
        diff = diff_schemas(old, new)
        assert diff.removed_node_types == ["C"]
        assert not diff.is_monotone_extension

    def test_property_addition_is_monotone(self):
        old = _schema([("P", {"Person"}, {"name"})])
        new = _schema([("P", {"Person"}, {"name", "age"})])
        diff = diff_schemas(old, new)
        assert diff.node_property_additions == {"P": {"age"}}
        assert diff.is_monotone_extension

    def test_property_removal_detected(self):
        old = _schema([("P", {"Person"}, {"name", "age"})])
        new = _schema([("P", {"Person"}, {"name"})])
        diff = diff_schemas(old, new)
        assert diff.node_property_removals == {"P": {"age"}}
        assert not diff.is_monotone_extension

    def test_label_growth_covers_old_type(self):
        """A new type with a superset label set covers the old type."""
        old = _schema([("P", {"Person"}, {"name"})])
        new = _schema([("PS", {"Person", "Student"}, {"name"})])
        diff = diff_schemas(old, new)
        assert diff.removed_node_types == []

    def test_edge_types_diffed(self):
        old = _schema([], [("K", {"KNOWS"}, set())])
        new = _schema(
            [], [("K", {"KNOWS"}, {"since"}), ("L", {"LIKES"}, set())]
        )
        diff = diff_schemas(old, new)
        assert diff.added_edge_types == ["L"]
        assert diff.edge_property_additions == {"K": {"since"}}

    def test_abstract_types_matched_by_keys(self):
        old = _schema([("ABSTRACT_NODE_1", set(), {"a", "b"})])
        new = _schema([("ABSTRACT_NODE_7", set(), {"a", "b"})])
        diff = diff_schemas(old, new)
        assert diff.added_node_types == []
        assert diff.removed_node_types == []


class TestCoveringGroupSelection:
    """With several subsuming label groups, the smallest superset wins.

    Regression: ``_covering_group`` used to return the *first* subsuming
    group in dict-insertion order, so the diff (and monotonicity) depended
    on the order types happened to be enumerated.
    """

    def test_smallest_superset_preferred(self):
        old = _schema([("P", {"Person"}, {"name", "age"})])
        # The wide group (inserted first) lacks 'age'; the tight one has it.
        new = _schema([
            ("PSW", {"Person", "Student", "Worker"}, {"name"}),
            ("PS", {"Person", "Student"}, {"name", "age"}),
        ])
        diff = diff_schemas(old, new)
        assert diff.node_property_removals == {}
        assert diff.is_monotone_extension

    def test_insertion_order_independent(self):
        old = _schema([("P", {"Person"}, {"name", "age"})])
        forward = _schema([
            ("PSW", {"Person", "Student", "Worker"}, {"name"}),
            ("PS", {"Person", "Student"}, {"name", "age"}),
        ])
        backward = _schema([
            ("PS", {"Person", "Student"}, {"name", "age"}),
            ("PSW", {"Person", "Student", "Worker"}, {"name"}),
        ])
        a = diff_schemas(old, forward)
        b = diff_schemas(old, backward)
        assert a.node_property_removals == b.node_property_removals
        assert a.is_monotone_extension == b.is_monotone_extension

    def test_equal_size_tie_breaks_on_sorted_labels(self):
        old = _schema([("P", {"Person"}, {"name"})])
        # Two same-size supersets; {'Person', 'Student'} sorts before
        # {'Person', 'Worker'} so it must win either insertion order.
        forward = _schema([
            ("PS", {"Person", "Student"}, {"name", "age"}),
            ("PW", {"Person", "Worker"}, {"name"}),
        ])
        backward = _schema([
            ("PW", {"Person", "Worker"}, {"name"}),
            ("PS", {"Person", "Student"}, {"name", "age"}),
        ])
        a = diff_schemas(old, forward)
        b = diff_schemas(old, backward)
        assert a.node_property_additions == {"PS": {"age"}}
        assert b.node_property_additions == {"PS": {"age"}}
