"""Tests for schema merging (section 4.6, Lemmas 1-2) and the index."""

import copy
from collections import Counter
from functools import reduce

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schema.merge import (
    EdgeTypeIndex,
    endpoints_compatible,
    find_labeled_edge_host,
    merge_edge_types,
    merge_node_types,
    merge_schema_tree,
    merge_schemas,
)
from repro.schema.model import DataType, EdgeType, NodeType, SchemaGraph


def _node_type(name, labels=(), keys=(), count=0):
    node_type = NodeType(
        name, frozenset(labels), instance_count=count,
        property_counts=Counter({k: count for k in keys}),
    )
    for key in keys:
        node_type.ensure_property(key)
    return node_type


def _edge_type(name, labels=(), keys=(), src=(), tgt=()):
    edge_type = EdgeType(
        name, frozenset(labels),
        source_labels=frozenset(src), target_labels=frozenset(tgt),
    )
    for key in keys:
        edge_type.ensure_property(key)
    return edge_type


labels_strategy = st.frozensets(
    st.sampled_from(["A", "B", "C", "D"]), max_size=3
)
keys_strategy = st.frozensets(
    st.sampled_from(["k1", "k2", "k3", "k4", "k5"]), max_size=5
)


class TestMergeNodeTypes:
    @given(labels_strategy, keys_strategy, labels_strategy, keys_strategy)
    @settings(max_examples=60, deadline=None)
    def test_lemma1_monotonicity(self, labels_a, keys_a, labels_b, keys_b):
        """Lemma 1: merging never loses labels or property keys."""
        a = _node_type("a", labels_a, keys_a)
        b = _node_type("b", labels_b, keys_b)
        merged = merge_node_types(a, b)
        assert labels_a <= merged.labels and labels_b <= merged.labels
        assert keys_a <= merged.property_keys
        assert keys_b <= merged.property_keys

    def test_counts_accumulate(self):
        a = _node_type("a", ("X",), ("k",), count=3)
        b = _node_type("b", ("X",), ("k",), count=2)
        merged = merge_node_types(a, b)
        assert merged.instance_count == 5
        assert merged.property_counts["k"] == 5

    def test_datatype_conflict_generalizes_to_string(self):
        a = _node_type("a", keys=("k",))
        b = _node_type("b", keys=("k",))
        a.properties["k"].datatype = DataType.INTEGER
        b.properties["k"].datatype = DataType.DATE
        merged = merge_node_types(a, b)
        assert merged.properties["k"].datatype is DataType.STRING

    def test_unknown_adopts_other(self):
        a = _node_type("a", keys=("k",))
        b = _node_type("b", keys=("k",))
        b.properties["k"].datatype = DataType.BOOLEAN
        assert merge_node_types(a, b).properties["k"].datatype is DataType.BOOLEAN


class TestMergeEdgeTypes:
    @given(labels_strategy, keys_strategy, labels_strategy, labels_strategy)
    @settings(max_examples=60, deadline=None)
    def test_lemma2_monotonicity(self, labels, keys, src, tgt):
        """Lemma 2: labels, keys and endpoints survive merging."""
        a = _edge_type("a", labels, keys, src, tgt)
        b = _edge_type("b", {"X"}, {"kx"}, {"S"}, {"T"})
        merged = merge_edge_types(a, b)
        assert labels <= merged.labels and "X" in merged.labels
        assert keys <= merged.property_keys and "kx" in merged.property_keys
        assert src <= merged.source_labels and "S" in merged.source_labels
        assert tgt <= merged.target_labels and "T" in merged.target_labels

    def test_degree_extremes_take_max(self):
        a = _edge_type("a")
        b = _edge_type("b")
        a.max_out, a.max_in = 3, 1
        b.max_out, b.max_in = 1, 7
        merged = merge_edge_types(a, b)
        assert (merged.max_out, merged.max_in) == (3, 7)


class TestEndpointsCompatible:
    def test_same_endpoints(self):
        a = _edge_type("a", src=("Person",), tgt=("Post",))
        b = _edge_type("b", src=("Person",), tgt=("Post",))
        assert endpoints_compatible(a, b)

    def test_disjoint_targets_incompatible(self):
        a = _edge_type("a", src=("Person",), tgt=("Post",))
        b = _edge_type("b", src=("Person",), tgt=("Comment",))
        assert not endpoints_compatible(a, b)

    def test_empty_side_always_compatible(self):
        a = _edge_type("a", src=(), tgt=())
        b = _edge_type("b", src=("Person",), tgt=("Post",))
        assert endpoints_compatible(a, b)

    def test_tokens_participate(self):
        a = _edge_type("a")
        b = _edge_type("b")
        a.source_tokens = {"~b0:X"}
        b.source_tokens = {"~b0:Y"}
        assert not endpoints_compatible(a, b)
        b.source_tokens = {"~b0:X"}
        assert endpoints_compatible(a, b)

    def test_threshold_matters(self):
        a = _edge_type("a", src=("P", "Q", "R"), tgt=("T",))
        b = _edge_type("b", src=("P",), tgt=("T",))
        assert not endpoints_compatible(a, b, endpoint_threshold=0.5)
        assert endpoints_compatible(a, b, endpoint_threshold=0.3)


class TestMergeSchemas:
    def test_labeled_node_types_merge_by_equal_label_sets(self):
        base = SchemaGraph("base")
        base.add_node_type(_node_type("Person", ("Person",), ("name",), 2))
        incoming = SchemaGraph("inc")
        incoming.add_node_type(_node_type("Person", ("Person",), ("age",), 3))
        merge_schemas(base, incoming)
        assert len(base.node_types) == 1
        merged = base.node_types["Person"]
        assert merged.property_keys == frozenset({"name", "age"})
        assert merged.instance_count == 5

    def test_different_label_sets_stay_distinct(self):
        base = SchemaGraph("base")
        base.add_node_type(_node_type("Person", ("Person",)))
        incoming = SchemaGraph("inc")
        incoming.add_node_type(
            _node_type("Person&Student", ("Person", "Student"))
        )
        merge_schemas(base, incoming)
        assert len(base.node_types) == 2

    def test_unlabeled_merges_into_similar_labeled(self):
        base = SchemaGraph("base")
        base.add_node_type(
            _node_type("Person", ("Person",), ("name", "age"), 2)
        )
        incoming = SchemaGraph("inc")
        incoming.add_node_type(_node_type("x", (), ("name", "age"), 1))
        merge_schemas(base, incoming, jaccard_threshold=0.9)
        assert len(base.node_types) == 1
        assert base.node_types["Person"].instance_count == 3

    def test_unlabeled_below_threshold_becomes_abstract(self):
        base = SchemaGraph("base")
        base.add_node_type(_node_type("Person", ("Person",), ("name",)))
        incoming = SchemaGraph("inc")
        incoming.add_node_type(_node_type("x", (), ("zipcode", "lat"), 1))
        merge_schemas(base, incoming, jaccard_threshold=0.9)
        assert len(base.node_types) == 2
        abstracts = [t for t in base.node_types.values() if t.abstract]
        assert len(abstracts) == 1

    def test_edge_merge_respects_endpoints(self):
        base = SchemaGraph("base")
        base.add_edge_type(
            _edge_type("LIKES", ("LIKES",), src=("Person",), tgt=("Post",))
        )
        incoming = SchemaGraph("inc")
        incoming.add_edge_type(
            _edge_type("LIKES", ("LIKES",), src=("Person",), tgt=("Comment",))
        )
        merge_schemas(base, incoming)
        assert len(base.edge_types) == 2  # kept apart: different targets

    def test_edge_merge_same_endpoints(self):
        base = SchemaGraph("base")
        base.add_edge_type(
            _edge_type("KNOWS", ("KNOWS",), ("since",), ("Person",), ("Person",))
        )
        incoming = SchemaGraph("inc")
        incoming.add_edge_type(
            _edge_type("KNOWS", ("KNOWS",), (), ("Person",), ("Person",))
        )
        merge_schemas(base, incoming)
        assert len(base.edge_types) == 1
        assert "since" in base.edge_types["KNOWS"].property_keys

    def test_merge_is_monotone_chain(self):
        """S_i subsumed by S_{i+1}: everything from both inputs survives."""
        base = SchemaGraph("base")
        base.add_node_type(_node_type("A", ("A",), ("k1",)))
        snapshot_labels = {t.labels for t in base.node_types.values()}
        incoming = SchemaGraph("inc")
        incoming.add_node_type(_node_type("B", ("B",), ("k2",)))
        incoming.add_node_type(_node_type("A", ("A",), ("k3",)))
        merge_schemas(base, incoming)
        merged_labels = {t.labels for t in base.node_types.values()}
        assert snapshot_labels <= merged_labels
        assert base.node_types["A"].property_keys >= {"k1", "k3"}


def _nt_fingerprint(node_type: NodeType):
    """Canonical content of a node type, ignoring name and member order."""
    return (
        node_type.labels,
        node_type.property_keys,
        frozenset(
            (k, p.datatype) for k, p in node_type.properties.items()
        ),
        node_type.instance_count,
        frozenset(node_type.property_counts.items()),
        frozenset(node_type.members),
        node_type.abstract,
        frozenset(node_type.cluster_tokens),
    )


def _et_fingerprint(edge_type: EdgeType):
    """Canonical content of an edge type, ignoring name and member order."""
    return (
        edge_type.labels,
        edge_type.property_keys,
        frozenset(
            (k, p.datatype) for k, p in edge_type.properties.items()
        ),
        edge_type.source_labels,
        edge_type.target_labels,
        frozenset(edge_type.source_tokens),
        frozenset(edge_type.target_tokens),
        edge_type.max_out,
        edge_type.max_in,
        edge_type.instance_count,
        frozenset(edge_type.property_counts.items()),
        frozenset(edge_type.members),
        edge_type.abstract,
    )


def _schema_fingerprint(schema: SchemaGraph):
    """Canonical content of a whole schema, ignoring names and order."""
    return (
        frozenset(_nt_fingerprint(t) for t in schema.node_types.values()),
        frozenset(_et_fingerprint(t) for t in schema.edge_types.values()),
    )


datatype_strategy = st.sampled_from(
    [DataType.UNKNOWN, DataType.INTEGER, DataType.DATE]
)


@st.composite
def node_types(draw, require_labels=False):
    labels = draw(labels_strategy)
    if require_labels and not labels:
        labels = frozenset({draw(st.sampled_from(["A", "B", "C", "D"]))})
    keys = draw(keys_strategy)
    node_type = _node_type(
        "nt", labels, keys, count=draw(st.integers(0, 5))
    )
    for key in keys:
        node_type.properties[key].datatype = draw(datatype_strategy)
    node_type.members = draw(
        st.lists(st.integers(0, 99), max_size=4, unique=True)
    )
    return node_type


@st.composite
def edge_types(draw):
    # Endpoint families are equal-or-disjoint so endpoint compatibility
    # at threshold 0.5 is itself an equivalence relation -- the regime
    # in which batch-schema merging is order-independent (fully labeled
    # data keeps endpoint label sets per edge label disjoint or equal).
    family = draw(st.sampled_from([("S1",), ("S2",), ("S3", "S4")]))
    target = draw(st.sampled_from([("T1",), ("T2",)]))
    label = draw(st.sampled_from(["E1", "E2", "E3"]))
    edge_type = _edge_type(
        "et", (label,), draw(keys_strategy), family, target
    )
    edge_type.instance_count = draw(st.integers(0, 5))
    edge_type.members = draw(
        st.lists(st.integers(0, 99), max_size=4, unique=True)
    )
    edge_type.max_out = draw(st.integers(0, 4))
    edge_type.max_in = draw(st.integers(0, 4))
    return edge_type


@st.composite
def batch_schemas(draw):
    """A randomized batch schema: labeled node types plus edge types."""
    schema = SchemaGraph(f"batch{draw(st.integers(0, 9))}")
    drawn_nodes = draw(
        st.lists(node_types(require_labels=True), max_size=3)
    )
    for i, node_type in enumerate(drawn_nodes):
        node_type.name = f"n{i}"
        schema.add_node_type(node_type)
    drawn_edges = draw(st.lists(edge_types(), max_size=3))
    for i, edge_type in enumerate(drawn_edges):
        edge_type.name = f"e{i}"
        schema.add_edge_type(edge_type)
    return schema


class TestMergeAlgebra:
    """The type-level merges are commutative and associative monoids.

    These are the algebraic facts that license the parallel driver's
    merge tree: because type content (modulo name and member order) does
    not depend on merge order, any bracketing of the batch sequence
    yields the same schema.
    """

    @given(node_types(), node_types())
    @settings(max_examples=80, deadline=None)
    def test_merge_node_types_commutative(self, a, b):
        ab = merge_node_types(copy.deepcopy(a), copy.deepcopy(b))
        ba = merge_node_types(copy.deepcopy(b), copy.deepcopy(a))
        assert _nt_fingerprint(ab) == _nt_fingerprint(ba)

    @given(node_types(), node_types(), node_types())
    @settings(max_examples=80, deadline=None)
    def test_merge_node_types_associative(self, a, b, c):
        left = merge_node_types(
            merge_node_types(copy.deepcopy(a), copy.deepcopy(b)),
            copy.deepcopy(c),
        )
        right = merge_node_types(
            copy.deepcopy(a),
            merge_node_types(copy.deepcopy(b), copy.deepcopy(c)),
        )
        assert _nt_fingerprint(left) == _nt_fingerprint(right)

    @given(edge_types(), edge_types())
    @settings(max_examples=80, deadline=None)
    def test_merge_edge_types_commutative(self, a, b):
        ab = merge_edge_types(copy.deepcopy(a), copy.deepcopy(b))
        ba = merge_edge_types(copy.deepcopy(b), copy.deepcopy(a))
        assert _et_fingerprint(ab) == _et_fingerprint(ba)

    @given(edge_types(), edge_types(), edge_types())
    @settings(max_examples=80, deadline=None)
    def test_merge_edge_types_associative(self, a, b, c):
        left = merge_edge_types(
            merge_edge_types(copy.deepcopy(a), copy.deepcopy(b)),
            copy.deepcopy(c),
        )
        right = merge_edge_types(
            copy.deepcopy(a),
            merge_edge_types(copy.deepcopy(b), copy.deepcopy(c)),
        )
        assert _et_fingerprint(left) == _et_fingerprint(right)


class TestMergeSchemaTree:
    @staticmethod
    def _finalize(schema):
        """The driver's closing step: fold into a fresh named schema.

        A raw batch schema may still contain internally-mergeable edge
        types (extraction keeps clusters apart that the schema-level
        rules would unite); both the sequential engine's first fold and
        the parallel driver's final fold collapse them, so equality is
        stated after this normalization -- exactly what
        ``combine_shard_results`` computes.
        """
        return merge_schemas(SchemaGraph("final"), schema)

    @given(st.lists(batch_schemas(), min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_tree_equals_left_fold(self, schemas):
        """Finalized tree == the sequential engine's running-schema fold."""
        tree = self._finalize(
            merge_schema_tree([copy.deepcopy(s) for s in schemas])
        )
        fold = reduce(
            merge_schemas,
            [copy.deepcopy(s) for s in schemas],
            SchemaGraph("fold"),
        )
        assert _schema_fingerprint(tree) == _schema_fingerprint(fold)

    @given(st.lists(batch_schemas(), min_size=2, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_tree_shape_independence(self, schemas):
        """Pairwise tree and serial fold of the same order agree, so any
        bracketing does (both are extreme tree shapes)."""
        tree = self._finalize(
            merge_schema_tree([copy.deepcopy(s) for s in schemas])
        )
        serial = self._finalize(
            reduce(merge_schemas, [copy.deepcopy(s) for s in schemas])
        )
        assert _schema_fingerprint(tree) == _schema_fingerprint(serial)

    def test_empty_input(self):
        assert merge_schema_tree([]).node_types == {}

    def test_single_schema_passthrough(self):
        schema = SchemaGraph("only")
        schema.add_node_type(_node_type("A", ("A",), ("k",)))
        assert merge_schema_tree([schema]) is schema


class TestEdgeTypeIndex:
    def _schema_with(self, *edge_types):
        schema = SchemaGraph()
        for edge_type in edge_types:
            schema.add_edge_type(edge_type)
        return schema

    def test_candidates_include_key_sharers(self):
        host = _edge_type("E1", ("E",), ("k1", "k2"), ("S",), ("T",))
        schema = self._schema_with(host)
        index = EdgeTypeIndex(schema)
        candidate = _edge_type("c", (), ("k1",), ("S",), ("T",))
        assert host in index.candidates(candidate)

    def test_candidates_exclude_disjoint_keys(self):
        host = _edge_type("E1", ("E",), ("k1",), ("S",), ("T",))
        index = EdgeTypeIndex(self._schema_with(host))
        candidate = _edge_type("c", (), ("zz",), ("S",), ("T",))
        assert index.candidates(candidate) == []

    def test_empty_key_candidates_match_empty_key_types(self):
        host = _edge_type("E1", ("E",), (), ("S",), ("T",))
        index = EdgeTypeIndex(self._schema_with(host))
        candidate = _edge_type("c", (), (), ("S",), ("T",))
        assert host in index.candidates(candidate)

    def test_endpoint_filter(self):
        host = _edge_type("E1", ("E",), (), ("S",), ("T",))
        index = EdgeTypeIndex(self._schema_with(host))
        candidate = _edge_type("c", (), (), ("OTHER",), ("T",))
        assert index.candidates(candidate) == []

    @given(
        keys_strategy, labels_strategy, labels_strategy,
        keys_strategy, labels_strategy, labels_strategy,
    )
    @settings(max_examples=60, deadline=None)
    def test_index_never_misses_a_valid_host(
        self, hk, hs, ht, ck, cs, ct
    ):
        """Soundness: any type passing the exact checks is in candidates."""
        from repro.schema.merge import endpoints_compatible
        from repro.util.similarity import jaccard

        host = _edge_type("h", ("L",), hk, hs, ht)
        candidate = _edge_type("c", (), ck, cs, ct)
        index = EdgeTypeIndex(self._schema_with(host))
        passes = (
            jaccard(frozenset(ck), frozenset(hk)) >= 0.9
            and endpoints_compatible(host, candidate, 0.5)
        )
        if passes:
            assert host in index.candidates(candidate)
