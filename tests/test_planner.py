"""Tests for the schema-aware query planner."""

import pytest

from repro.core.pipeline import PGHive
from repro.graph.builder import GraphBuilder
from repro.graph.planner import (
    estimate_pattern,
    execute_plan,
    plan_pattern,
)
from repro.graph.query import match_pattern
from repro.graph.store import GraphStore


@pytest.fixture
def skewed():
    """1 moderator, 200 people, 3 VIPs; many KNOWS, few other edges."""
    b = GraphBuilder()
    moderator = b.node(["Moderator"], {"name": "m"})
    people = [b.node(["Person"], {"name": f"p{i}"}) for i in range(200)]
    vips = [b.node(["VIP"], {"name": f"v{i}"}) for i in range(3)]
    for i in range(400):
        b.edge(people[i % 200], people[(i * 7 + 1) % 200], ["KNOWS"])
    for i in range(5):
        b.edge(moderator, people[i], ["MODERATES"])
    for i in range(6):
        b.edge(people[i * 3], vips[i % 3], ["KNOWS"])
    graph = b.build()
    schema = PGHive().discover(GraphStore(graph)).schema
    return graph, schema


class TestEstimates:
    def test_edge_counts_from_schema(self, skewed):
        _, schema = skewed
        estimate = estimate_pattern(schema, edge_label="KNOWS")
        assert estimate.matching_edge_instances == 406  # 400 P->P + 6 P->VIP
        estimate = estimate_pattern(schema, edge_label="MODERATES")
        assert estimate.matching_edge_instances == 5

    def test_label_population(self, skewed):
        _, schema = skewed
        estimate = estimate_pattern(schema, source_label="Moderator")
        assert estimate.source_instances == 1
        assert estimate.target_instances == 204  # all nodes

    def test_selectivity_order(self, skewed):
        _, schema = skewed
        estimate = estimate_pattern(
            schema, source_label="Moderator", edge_label="MODERATES",
            target_label="Person",
        )
        assert estimate.selectivity_order == "source"


class TestPlans:
    def test_rare_anchor_expansion_chosen(self, skewed):
        _, schema = skewed
        plan = plan_pattern(
            schema, source_label="Moderator", edge_label="MODERATES",
        )
        assert plan.strategy == "expand-from-source"

    def test_edge_scan_for_unanchored_pattern(self, skewed):
        _, schema = skewed
        plan = plan_pattern(schema, edge_label="MODERATES")
        assert plan.strategy == "edge-scan"

    def test_target_expansion(self, skewed):
        """Querying who knows a VIP should anchor on the 3 VIP nodes."""
        _, schema = skewed
        plan = plan_pattern(
            schema, source_label="Person", edge_label="KNOWS",
            target_label="VIP",
        )
        assert plan.strategy == "expand-from-target"


class TestExecution:
    @pytest.mark.parametrize("pattern", [
        {"source_label": "Moderator", "edge_label": "MODERATES"},
        {"edge_label": "KNOWS", "target_label": "Person"},
        {"source_label": "Person"},
        {"source_label": "Person", "edge_label": "KNOWS",
         "target_label": "Person"},
        {},
    ])
    def test_all_strategies_agree_with_reference(self, skewed, pattern):
        graph, schema = skewed
        plan = plan_pattern(schema, **pattern)
        planned = execute_plan(plan, graph)
        reference = match_pattern(graph, **{
            k.replace("_label", "_label"): v for k, v in pattern.items()
        })
        key = lambda t: t.edge.id
        assert sorted(planned, key=key) == sorted(reference, key=key)

    def test_plan_execution_touches_fewer_elements(self, skewed):
        """The point of planning: the expansion visits ~5 edges instead of
        scanning all 405."""
        graph, schema = skewed
        plan = plan_pattern(
            schema, source_label="Moderator", edge_label="MODERATES",
        )
        triples = execute_plan(plan, graph)
        assert len(triples) == 5
        assert plan.estimate.source_instances == 1
