"""Tests for the DiscoPG-style incremental memoization fast path."""

from repro.core.config import PGHiveConfig
from repro.core.pipeline import PGHive
from repro.datasets import get_dataset
from repro.evaluation.f1star import majority_f1
from repro.graph.store import GraphStore


class TestMemoization:
    def _run_both(self, num_batches=6):
        dataset = get_dataset("POLE", scale=0.5, seed=3)
        store = GraphStore(dataset.graph)
        plain = PGHive().discover_incremental(store, num_batches)
        memoized = PGHive(
            PGHiveConfig(memoize_patterns=True)
        ).discover_incremental(store, num_batches)
        return dataset, plain, memoized

    def test_same_types_discovered(self):
        _, plain, memoized = self._run_both()
        assert set(plain.schema.node_types) == set(memoized.schema.node_types)
        assert set(plain.schema.edge_types) == set(memoized.schema.edge_types)

    def test_same_instance_counts_and_constraints(self):
        _, plain, memoized = self._run_both()
        for name, plain_type in plain.schema.node_types.items():
            memo_type = memoized.schema.node_types[name]
            assert memo_type.instance_count == plain_type.instance_count
            for key, spec in plain_type.properties.items():
                assert memo_type.properties[key].status is spec.status

    def test_same_f1(self):
        dataset, plain, memoized = self._run_both()
        plain_f1 = majority_f1(
            plain.node_assignment, dataset.truth.node_types
        ).headline
        memo_f1 = majority_f1(
            memoized.node_assignment, dataset.truth.node_types
        ).headline
        assert memo_f1 == plain_f1

    def test_later_batches_hit_the_memo(self):
        _, _, memoized = self._run_both()
        # Batch 0 builds the schema; subsequent batches of clean POLE data
        # consist almost entirely of already-known patterns.
        later = memoized.batches[1:]
        total_elements = sum(r.num_nodes + r.num_edges for r in later)
        total_hits = sum(r.memo_node_hits + r.memo_edge_hits for r in later)
        assert total_hits >= 0.6 * total_elements

    def test_first_batch_has_no_hits(self):
        _, _, memoized = self._run_both()
        first = memoized.batches[0]
        assert first.memo_node_hits == 0
        assert first.memo_edge_hits == 0

    def test_assignments_cover_everything(self):
        dataset, _, memoized = self._run_both()
        assert set(memoized.node_assignment) == set(dataset.truth.node_types)
        assert set(memoized.edge_assignment) == set(dataset.truth.edge_types)
