"""Tests for element vectorization (section 4.1)."""

import numpy as np
from pytest import approx as pytest_approx

from repro.core.vectorize import EdgeVectorizer, FeatureInterner, NodeVectorizer
from repro.embeddings.embedder import LabelEmbedder
from repro.graph.model import Edge, Node


def _embedder():
    embedder = LabelEmbedder()
    embedder.fit_tokens([["Person", "KNOWS", "Person"], ["Org", "AT", "Person"]])
    return embedder


class TestFeatureInterner:
    def test_stable_ids(self):
        interner = FeatureInterner()
        a = interner.intern("x")
        b = interner.intern("y")
        assert a != b
        assert interner.intern("x") == a
        assert len(interner) == 2


class TestNodeVectorizer:
    def test_dimension_is_d_plus_k(self):
        vectorizer = NodeVectorizer(["a", "b", "c"], _embedder())
        assert vectorizer.dimension == _embedder().dimension + 3

    def test_binary_block_marks_present_keys(self):
        embedder = _embedder()
        vectorizer = NodeVectorizer(["a", "b", "c"], embedder)
        node = Node(0, frozenset({"Person"}), {"a": 1, "c": 2})
        matrix = vectorizer.vectorize([node])
        d = embedder.dimension
        assert matrix[0, d:].tolist() == [1.0, 0.0, 1.0]

    def test_unlabeled_node_has_zero_embedding_block(self):
        embedder = _embedder()
        vectorizer = NodeVectorizer(["a"], embedder)
        node = Node(0, frozenset(), {"a": 1})
        matrix = vectorizer.vectorize([node])
        assert np.all(matrix[0, :embedder.dimension] == 0.0)

    def test_label_block_norm_equals_label_weight(self):
        embedder = _embedder()
        vectorizer = NodeVectorizer([], embedder, label_weight=2.5)
        node = Node(0, frozenset({"Person"}), {})
        matrix = vectorizer.vectorize([node])
        norm = float(np.linalg.norm(matrix[0, :embedder.dimension]))
        assert norm == pytest_approx(2.5)

    def test_unknown_keys_ignored(self):
        vectorizer = NodeVectorizer(["a"], _embedder())
        node = Node(0, frozenset(), {"zz": 1})
        matrix = vectorizer.vectorize([node])
        assert np.all(matrix[0] == 0.0)

    def test_same_structure_same_vector(self):
        vectorizer = NodeVectorizer(["a", "b"], _embedder())
        n1 = Node(0, frozenset({"Person"}), {"a": "x"})
        n2 = Node(1, frozenset({"Person"}), {"a": "totally different value"})
        matrix = vectorizer.vectorize([n1, n2])
        assert np.allclose(matrix[0], matrix[1])

    def test_feature_sets_include_label_token(self):
        interner = FeatureInterner()
        vectorizer = NodeVectorizer(["a"], _embedder())
        node = Node(0, frozenset({"Person"}), {"a": 1})
        (features,) = vectorizer.feature_sets([node], interner)
        assert len(features) == 2  # key + label

    def test_feature_sets_unlabeled(self):
        interner = FeatureInterner()
        vectorizer = NodeVectorizer(["a"], _embedder())
        (features,) = vectorizer.feature_sets(
            [Node(0, frozenset(), {"a": 1})], interner
        )
        assert len(features) == 1


class TestEdgeVectorizer:
    def test_dimension_is_3d_plus_q(self):
        vectorizer = EdgeVectorizer(["p", "q"], _embedder())
        assert vectorizer.dimension == 3 * _embedder().dimension + 2

    def test_three_embedding_blocks(self):
        embedder = _embedder()
        vectorizer = EdgeVectorizer(["p"], embedder)
        edge = Edge(0, 1, 2, frozenset({"KNOWS"}), {"p": 1})
        labels = {1: frozenset({"Person"}), 2: frozenset({"Org"})}
        matrix = vectorizer.vectorize([edge], labels)
        d = embedder.dimension
        assert np.any(matrix[0, :d] != 0)        # edge label
        assert np.any(matrix[0, d:2 * d] != 0)   # source labels
        assert np.any(matrix[0, 2 * d:3 * d] != 0)  # target labels
        assert matrix[0, 3 * d] == 1.0           # property bit

    def test_missing_endpoint_labels_are_zero(self):
        embedder = _embedder()
        vectorizer = EdgeVectorizer([], embedder)
        edge = Edge(0, 1, 2, frozenset({"KNOWS"}), {})
        matrix = vectorizer.vectorize([edge], {})
        d = embedder.dimension
        assert np.all(matrix[0, d:3 * d] == 0.0)

    def test_different_targets_different_vectors(self):
        embedder = _embedder()
        vectorizer = EdgeVectorizer([], embedder)
        edge = Edge(0, 1, 2, frozenset({"KNOWS"}), {})
        m1 = vectorizer.vectorize([edge], {1: frozenset({"Person"}),
                                           2: frozenset({"Person"})})
        m2 = vectorizer.vectorize([edge], {1: frozenset({"Person"}),
                                           2: frozenset({"Org"})})
        assert not np.allclose(m1, m2)

    def test_feature_sets_tag_endpoint_roles(self):
        interner = FeatureInterner()
        vectorizer = EdgeVectorizer([], _embedder())
        edge = Edge(0, 1, 2, frozenset({"KNOWS"}), {})
        labels = {1: frozenset({"Person"}), 2: frozenset({"Person"})}
        (features,) = vectorizer.feature_sets([edge], labels, interner)
        # label + src:Person + tgt:Person are three distinct features.
        assert len(features) == 3
