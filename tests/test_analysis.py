"""Tests for ``pghive-lint`` (:mod:`repro.analysis`).

Three layers:

* fixture projects under ``tests/fixtures/lint/`` plant exactly one (or
  a handful of) violations per rule; each rule must fire on its plant;
* the suppression machinery is exercised end to end: justified
  directives silence findings, unexplained and stale directives are
  themselves findings, ``disable-file`` covers a whole module, and a
  ``--rule``-filtered run never audits unrelated directives;
* the meta-test: the repo's own ``src/repro`` tree lints clean, which
  is the invariant the CI ``static-analysis`` job enforces.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import Severity, all_rules, get_rule, lint_paths, main

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"
BAD_PROJECT = FIXTURES / "bad_project"
SUPPRESSED_PROJECT = FIXTURES / "suppressed_project"
INTERPROC_PROJECT = FIXTURES / "interproc_project"
SRC_REPRO = Path(__file__).resolve().parents[1] / "src" / "repro"

#: whole-program rule name -> fixture module (posix suffix) of its plant.
INTERPROC_PLANTED = {
    "exception-surface": "cli.py",
    "global-mutation-race": "core/parallel.py",
    "merge-purity": "schema/merge.py",
    "worker-reachability": "core/parallel.py",
}

#: file-rule name -> fixture module (posix suffix) where its plant lives.
PLANTED = {
    "assert-ban": "core/ordering.py",
    "bare-except": "hygiene.py",
    "config-cli-surface": "core/config.py",
    "env-read": "core/clock.py",
    "env-var-docs": "core/clock.py",
    "id-keyed-dict": "core/ordering.py",
    "init-exports": "__init__.py",
    "missing-annotations": "hygiene.py",
    "mutable-default": "hygiene.py",
    "payload-pickle": "workers.py",
    "slab-lifecycle": "storage.py",
    "unseeded-rng": "core/chaos.py",
    "unsorted-iteration": "core/ordering.py",
    "wall-clock": "core/clock.py",
    "worker-closure": "workers.py",
}


@pytest.fixture(scope="module")
def bad_findings():
    return lint_paths([BAD_PROJECT])


@pytest.fixture(scope="module")
def interproc_findings():
    rules = [get_rule(name) for name in sorted(INTERPROC_PLANTED)]
    return lint_paths([INTERPROC_PROJECT], rules=rules)


def _by_rule(findings):
    grouped: dict[str, list] = {}
    for finding in findings:
        grouped.setdefault(finding.rule, []).append(finding)
    return grouped


# ----------------------------------------------------------------------
# Every rule fires on its planted violation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "rule,suffix", sorted(PLANTED.items()), ids=sorted(PLANTED)
)
def test_rule_fires_on_planted_violation(bad_findings, rule, suffix):
    hits = [f for f in bad_findings if f.rule == rule]
    assert hits, f"rule {rule!r} produced no findings on the bad fixture"
    paths = {Path(f.path).as_posix() for f in hits}
    assert any(p.endswith(suffix) for p in paths), (
        f"{rule!r} fired, but not in the fixture module {suffix} "
        f"(got {sorted(paths)})"
    )


def test_planted_table_covers_every_registered_rule():
    # A new rule must come with a fixture plant; this keeps the two in
    # lockstep (the suppression audit pseudo-rules are engine-level).
    registered = {rule.name for rule in all_rules()}
    assert set(PLANTED) | set(INTERPROC_PLANTED) == registered
    assert not set(PLANTED) & set(INTERPROC_PLANTED)


def test_ghost_export_and_undocumented_export_are_distinct(bad_findings):
    messages = [f.message for f in bad_findings if f.rule == "init-exports"]
    assert any("ghost_export" in m and "neither defines" in m
               for m in messages)
    assert any("undocumented_thing" in m and "not mentioned" in m
               for m in messages)


def test_sanctioned_env_read_in_config_is_not_flagged(bad_findings):
    # core/config.py reads os.environ too, but it is an exempt module.
    env_paths = {
        Path(f.path).as_posix()
        for f in bad_findings if f.rule == "env-read"
    }
    assert not any(p.endswith("core/config.py") for p in env_paths)


def test_managed_handle_lifecycles_are_not_flagged(bad_findings):
    # storage.py also opens handles via with/close()/return: only the
    # three ownerless sites may fire.
    hits = [f for f in bad_findings if f.rule == "slab-lifecycle"]
    assert len(hits) == 3
    assert all(Path(f.path).as_posix().endswith("storage.py") for f in hits)


def test_undocumented_subcommand_is_flagged(bad_findings):
    messages = [
        f.message for f in bad_findings if f.rule == "config-cli-surface"
    ]
    assert any(
        "ghost-command" in m and "not documented" in m for m in messages
    )


def test_documented_env_var_is_not_flagged(bad_findings):
    messages = [f.message for f in bad_findings if f.rule == "env-var-docs"]
    assert all("PGHIVE_DOCUMENTED" not in m for m in messages)
    assert any("PGHIVE_UNDOCUMENTED" in m for m in messages)


# ----------------------------------------------------------------------
# Whole-program rules (interprocedural effect analysis)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "rule,suffix",
    sorted(INTERPROC_PLANTED.items()),
    ids=sorted(INTERPROC_PLANTED),
)
def test_interproc_rule_fires_on_planted_violation(
    interproc_findings, rule, suffix
):
    hits = [f for f in interproc_findings if f.rule == rule]
    assert hits, f"rule {rule!r} produced no findings on the fixture"
    paths = {Path(f.path).as_posix() for f in hits}
    assert any(p.endswith(suffix) for p in paths), (
        f"{rule!r} fired, but not in the fixture module {suffix} "
        f"(got {sorted(paths)})"
    )


def test_transitive_effect_carries_multi_hop_witness_chain(
    interproc_findings,
):
    # The wall-clock read sits two calls below the root; the finding
    # must name the full path root -> _audit -> _stamp, not just the
    # leaf.
    [hit] = [
        f for f in interproc_findings
        if f.rule == "worker-reachability" and "wall-clock" in f.message
    ]
    assert hit.trace == ("_discover_one", "_audit", "_stamp")
    assert "_discover_one -> _audit -> _stamp" in hit.message


def test_effect_propagates_through_recursive_cycle(interproc_findings):
    # _walk calls itself; the fixpoint must converge and still surface
    # the env read hiding inside the cycle.
    hits = [
        f for f in interproc_findings
        if f.rule == "worker-reachability"
        and "environment read" in f.message
    ]
    assert hits
    assert any("_walk" in f.trace for f in hits)


def test_class_attribute_dispatch_resolves_to_kernel(interproc_findings):
    # kernel.impl() resolves through the Kernel.impl = _rng_kernel
    # class-attribute binding to the unseeded RNG.
    hits = [
        f for f in interproc_findings
        if f.rule == "worker-reachability" and "unseeded RNG" in f.message
    ]
    assert hits
    assert any(f.trace[-1] == "_rng_kernel" for f in hits)


def test_dynamic_call_degrades_to_conservative_finding(
    interproc_findings,
):
    # getattr(payload, payload.name) cannot be resolved statically; the
    # analysis must flag the call rather than silently assume purity.
    assert any(
        f.rule == "worker-reachability"
        and "statically unresolvable" in f.message
        for f in interproc_findings
    )


def test_merge_fold_config_mutation_is_flagged(interproc_findings):
    assert any(
        f.rule == "merge-purity"
        and "mutates the shared config parameter" in f.message
        for f in interproc_findings
    )


def test_pure_merge_root_produces_no_findings(interproc_findings):
    # combine_shard_results is deliberately clean: a finding naming it
    # as the root would be a precision regression.
    assert not any(
        "combine_shard_results" in f.message for f in interproc_findings
    )


def test_sanctioned_systemexit_escape_is_not_flagged(interproc_findings):
    surface = [
        f for f in interproc_findings if f.rule == "exception-surface"
    ]
    assert surface
    assert all("SystemExit" not in f.message for f in surface)
    assert any("RuntimeError" in f.message for f in surface)


def test_interproc_rules_are_vacuous_without_roots(bad_findings):
    # bad_project defines none of the root functions: the whole-program
    # rules must not invent findings there.
    assert not any(
        f.rule in INTERPROC_PLANTED for f in bad_findings
    )


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_suppressions_silence_and_are_audited():
    grouped = _by_rule(lint_paths([SUPPRESSED_PROJECT]))
    # Both wall-clock reads carry directives: neither may surface.
    assert "wall-clock" not in grouped
    # The directive without a reason is itself a finding...
    assert len(grouped["unexplained-suppression"]) == 1
    # ...as is the directive that suppresses nothing.
    [stale] = grouped["unused-suppression"]
    assert "id-keyed-dict" in stale.message
    # disable-file covers every def in file_wide.py.
    assert "missing-annotations" not in grouped


def test_rule_filter_skips_unrelated_suppression_audit():
    # bare-except is unrelated to every directive in the fixture; a
    # filtered run must not cry "unused" about directives it never
    # evaluated.
    findings = lint_paths(
        [SUPPRESSED_PROJECT], rules=[get_rule("bare-except")]
    )
    assert findings == []


def test_rule_filter_still_audits_its_own_directives():
    grouped = _by_rule(lint_paths(
        [SUPPRESSED_PROJECT], rules=[get_rule("wall-clock")]
    ))
    assert "wall-clock" not in grouped  # still suppressed
    assert "unexplained-suppression" in grouped  # still audited
    assert "unused-suppression" not in grouped  # id-keyed-dict not active


# ----------------------------------------------------------------------
# Engine behaviour
# ----------------------------------------------------------------------
def test_findings_are_sorted_and_deterministic(bad_findings):
    assert bad_findings == lint_paths([BAD_PROJECT])
    keys = [(f.path, f.line, f.rule, f.message) for f in bad_findings]
    assert keys == sorted(keys)


def test_min_severity_drops_warnings():
    errors = lint_paths([BAD_PROJECT], min_severity=Severity.ERROR)
    assert errors
    assert all(f.severity is Severity.ERROR for f in errors)
    assert not any(f.rule == "missing-annotations" for f in errors)


def test_single_file_target():
    findings = lint_paths([BAD_PROJECT / "repro" / "hygiene.py"])
    assert {f.rule for f in findings} >= {"bare-except", "mutable-default"}


def test_missing_target_raises():
    with pytest.raises(FileNotFoundError):
        lint_paths([FIXTURES / "does_not_exist"])


# ----------------------------------------------------------------------
# Result cache (--cache)
# ----------------------------------------------------------------------
def _write_project(root: Path, body: str) -> Path:
    package = root / "repro"
    package.mkdir(parents=True, exist_ok=True)
    (package / "__init__.py").write_text('"""Fixture."""\n')
    module = package / "timed.py"
    module.write_text(body)
    return module


DIRTY = '"""Fixture."""\nimport time\n\n\ndef now() -> float:\n    return time.time()\n'
CLEAN = '"""Fixture."""\n\n\ndef now() -> float:\n    return 0.0\n'


def test_cache_round_trip_is_deterministic(tmp_path):
    _write_project(tmp_path / "proj", DIRTY)
    cache_dir = tmp_path / "cache"
    cold = lint_paths([tmp_path / "proj"], cache_dir=cache_dir)
    assert any(f.rule == "wall-clock" for f in cold)
    assert list(cache_dir.glob("*.json")), "cache wrote no entries"
    warm = lint_paths([tmp_path / "proj"], cache_dir=cache_dir)
    assert warm == cold


def test_cache_invalidated_by_file_edit(tmp_path):
    module = _write_project(tmp_path / "proj", DIRTY)
    cache_dir = tmp_path / "cache"
    dirty = lint_paths([tmp_path / "proj"], cache_dir=cache_dir)
    assert any(f.rule == "wall-clock" for f in dirty)
    # Removing the violation must change the content hash and miss the
    # cache: a served stale entry would still report wall-clock here.
    module.write_text(CLEAN)
    assert lint_paths([tmp_path / "proj"], cache_dir=cache_dir) == []
    # And back again: the original entry is still valid and still dirty.
    module.write_text(DIRTY)
    assert lint_paths([tmp_path / "proj"], cache_dir=cache_dir) == dirty


def test_cache_keys_include_ruleset_version(tmp_path):
    from repro.analysis.cache import LintCache

    module = _write_project(tmp_path / "proj", DIRTY)
    old = LintCache(tmp_path / "cache")
    new = LintCache(tmp_path / "cache")
    new.version = "different-ruleset"
    rules = ("wall-clock",)
    assert old.file_key(module, rules) != new.file_key(module, rules)
    assert old.run_key([module], rules, 1) != new.run_key([module], rules, 1)


def test_cache_tolerates_corrupt_entries(tmp_path):
    _write_project(tmp_path / "proj", DIRTY)
    cache_dir = tmp_path / "cache"
    expected = lint_paths([tmp_path / "proj"], cache_dir=cache_dir)
    for entry in cache_dir.glob("*.json"):
        entry.write_text("{not json")
    assert lint_paths([tmp_path / "proj"], cache_dir=cache_dir) == expected


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_findings_exit_one_text_format(capsys):
    assert main([str(BAD_PROJECT)]) == 1
    captured = capsys.readouterr()
    assert "wall-clock" in captured.out
    assert "findings" in captured.err


def test_cli_json_format(capsys):
    assert main([str(BAD_PROJECT), "--format", "json"]) == 1
    captured = capsys.readouterr()
    records = json.loads(captured.out)
    assert records
    assert {"path", "line", "rule", "message", "severity"} <= set(records[0])
    assert {r["rule"] for r in records} >= {"wall-clock", "payload-pickle"}


def test_cli_sarif_format(capsys):
    assert main([str(BAD_PROJECT), "--format", "sarif"]) == 1
    captured = capsys.readouterr()
    report = json.loads(captured.out)
    assert report["version"] == "2.1.0"
    [run] = report["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "pghive-lint"
    catalogued = {rule["id"] for rule in driver["rules"]}
    results = run["results"]
    assert results
    for result in results:
        assert result["ruleId"] in catalogued
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"]
        assert location["region"]["startLine"] >= 1


def test_cli_sarif_carries_witness_trace(capsys):
    code = main([
        str(INTERPROC_PROJECT), "--format", "sarif",
        "--rule", "worker-reachability",
    ])
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    results = report["runs"][0]["results"]
    traces = [
        r["properties"]["trace"] for r in results
        if "properties" in r and "trace" in r["properties"]
    ]
    assert any(len(trace) >= 3 for trace in traces)


def test_cli_sarif_clean_tree_is_valid_and_exits_zero(tmp_path, capsys):
    _write_project(tmp_path / "proj", CLEAN)
    assert main([str(tmp_path / "proj"), "--format", "sarif"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["runs"][0]["results"] == []


def test_cli_rule_filter(capsys):
    assert main([str(BAD_PROJECT), "--rule", "bare-except"]) == 1
    captured = capsys.readouterr()
    lines = [l for l in captured.out.splitlines() if l.strip()]
    assert lines and all("bare-except" in l for l in lines)


def test_cli_unknown_rule_is_usage_error(capsys):
    assert main([str(BAD_PROJECT), "--rule", "no-such-rule"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_missing_path_is_usage_error(capsys):
    assert main([str(FIXTURES / "nope")]) == 2


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.name in out


# ----------------------------------------------------------------------
# Meta: the repo's own sources lint clean
# ----------------------------------------------------------------------
def test_repo_source_tree_is_clean():
    assert lint_paths([SRC_REPRO]) == []


def test_repo_source_tree_clean_via_cli(capsys):
    assert main([str(SRC_REPRO)]) == 0
    assert "no findings" in capsys.readouterr().err
