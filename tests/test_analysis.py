"""Tests for ``pghive-lint`` (:mod:`repro.analysis`).

Three layers:

* fixture projects under ``tests/fixtures/lint/`` plant exactly one (or
  a handful of) violations per rule; each rule must fire on its plant;
* the suppression machinery is exercised end to end: justified
  directives silence findings, unexplained and stale directives are
  themselves findings, ``disable-file`` covers a whole module, and a
  ``--rule``-filtered run never audits unrelated directives;
* the meta-test: the repo's own ``src/repro`` tree lints clean, which
  is the invariant the CI ``static-analysis`` job enforces.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import Severity, all_rules, get_rule, lint_paths, main

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"
BAD_PROJECT = FIXTURES / "bad_project"
SUPPRESSED_PROJECT = FIXTURES / "suppressed_project"
SRC_REPRO = Path(__file__).resolve().parents[1] / "src" / "repro"

#: rule name -> fixture module (posix suffix) where its plant lives.
PLANTED = {
    "assert-ban": "core/ordering.py",
    "bare-except": "hygiene.py",
    "config-cli-surface": "core/config.py",
    "env-read": "core/clock.py",
    "env-var-docs": "core/clock.py",
    "id-keyed-dict": "core/ordering.py",
    "init-exports": "__init__.py",
    "missing-annotations": "hygiene.py",
    "mutable-default": "hygiene.py",
    "payload-pickle": "workers.py",
    "slab-lifecycle": "storage.py",
    "unseeded-rng": "core/chaos.py",
    "unsorted-iteration": "core/ordering.py",
    "wall-clock": "core/clock.py",
    "worker-closure": "workers.py",
}


@pytest.fixture(scope="module")
def bad_findings():
    return lint_paths([BAD_PROJECT])


def _by_rule(findings):
    grouped: dict[str, list] = {}
    for finding in findings:
        grouped.setdefault(finding.rule, []).append(finding)
    return grouped


# ----------------------------------------------------------------------
# Every rule fires on its planted violation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "rule,suffix", sorted(PLANTED.items()), ids=sorted(PLANTED)
)
def test_rule_fires_on_planted_violation(bad_findings, rule, suffix):
    hits = [f for f in bad_findings if f.rule == rule]
    assert hits, f"rule {rule!r} produced no findings on the bad fixture"
    paths = {Path(f.path).as_posix() for f in hits}
    assert any(p.endswith(suffix) for p in paths), (
        f"{rule!r} fired, but not in the fixture module {suffix} "
        f"(got {sorted(paths)})"
    )


def test_planted_table_covers_every_registered_rule():
    # A new rule must come with a fixture plant; this keeps the two in
    # lockstep (the suppression audit pseudo-rules are engine-level).
    assert set(PLANTED) == {rule.name for rule in all_rules()}


def test_ghost_export_and_undocumented_export_are_distinct(bad_findings):
    messages = [f.message for f in bad_findings if f.rule == "init-exports"]
    assert any("ghost_export" in m and "neither defines" in m
               for m in messages)
    assert any("undocumented_thing" in m and "not mentioned" in m
               for m in messages)


def test_sanctioned_env_read_in_config_is_not_flagged(bad_findings):
    # core/config.py reads os.environ too, but it is an exempt module.
    env_paths = {
        Path(f.path).as_posix()
        for f in bad_findings if f.rule == "env-read"
    }
    assert not any(p.endswith("core/config.py") for p in env_paths)


def test_managed_handle_lifecycles_are_not_flagged(bad_findings):
    # storage.py also opens handles via with/close()/return: only the
    # three ownerless sites may fire.
    hits = [f for f in bad_findings if f.rule == "slab-lifecycle"]
    assert len(hits) == 3
    assert all(Path(f.path).as_posix().endswith("storage.py") for f in hits)


def test_undocumented_subcommand_is_flagged(bad_findings):
    messages = [
        f.message for f in bad_findings if f.rule == "config-cli-surface"
    ]
    assert any(
        "ghost-command" in m and "not documented" in m for m in messages
    )


def test_documented_env_var_is_not_flagged(bad_findings):
    messages = [f.message for f in bad_findings if f.rule == "env-var-docs"]
    assert all("PGHIVE_DOCUMENTED" not in m for m in messages)
    assert any("PGHIVE_UNDOCUMENTED" in m for m in messages)


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_suppressions_silence_and_are_audited():
    grouped = _by_rule(lint_paths([SUPPRESSED_PROJECT]))
    # Both wall-clock reads carry directives: neither may surface.
    assert "wall-clock" not in grouped
    # The directive without a reason is itself a finding...
    assert len(grouped["unexplained-suppression"]) == 1
    # ...as is the directive that suppresses nothing.
    [stale] = grouped["unused-suppression"]
    assert "id-keyed-dict" in stale.message
    # disable-file covers every def in file_wide.py.
    assert "missing-annotations" not in grouped


def test_rule_filter_skips_unrelated_suppression_audit():
    # bare-except is unrelated to every directive in the fixture; a
    # filtered run must not cry "unused" about directives it never
    # evaluated.
    findings = lint_paths(
        [SUPPRESSED_PROJECT], rules=[get_rule("bare-except")]
    )
    assert findings == []


def test_rule_filter_still_audits_its_own_directives():
    grouped = _by_rule(lint_paths(
        [SUPPRESSED_PROJECT], rules=[get_rule("wall-clock")]
    ))
    assert "wall-clock" not in grouped  # still suppressed
    assert "unexplained-suppression" in grouped  # still audited
    assert "unused-suppression" not in grouped  # id-keyed-dict not active


# ----------------------------------------------------------------------
# Engine behaviour
# ----------------------------------------------------------------------
def test_findings_are_sorted_and_deterministic(bad_findings):
    assert bad_findings == lint_paths([BAD_PROJECT])
    keys = [(f.path, f.line, f.rule, f.message) for f in bad_findings]
    assert keys == sorted(keys)


def test_min_severity_drops_warnings():
    errors = lint_paths([BAD_PROJECT], min_severity=Severity.ERROR)
    assert errors
    assert all(f.severity is Severity.ERROR for f in errors)
    assert not any(f.rule == "missing-annotations" for f in errors)


def test_single_file_target():
    findings = lint_paths([BAD_PROJECT / "repro" / "hygiene.py"])
    assert {f.rule for f in findings} >= {"bare-except", "mutable-default"}


def test_missing_target_raises():
    with pytest.raises(FileNotFoundError):
        lint_paths([FIXTURES / "does_not_exist"])


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_findings_exit_one_text_format(capsys):
    assert main([str(BAD_PROJECT)]) == 1
    captured = capsys.readouterr()
    assert "wall-clock" in captured.out
    assert "findings" in captured.err


def test_cli_json_format(capsys):
    assert main([str(BAD_PROJECT), "--format", "json"]) == 1
    captured = capsys.readouterr()
    records = json.loads(captured.out)
    assert records
    assert {"path", "line", "rule", "message", "severity"} <= set(records[0])
    assert {r["rule"] for r in records} >= {"wall-clock", "payload-pickle"}


def test_cli_rule_filter(capsys):
    assert main([str(BAD_PROJECT), "--rule", "bare-except"]) == 1
    captured = capsys.readouterr()
    lines = [l for l in captured.out.splitlines() if l.strip()]
    assert lines and all("bare-except" in l for l in lines)


def test_cli_unknown_rule_is_usage_error(capsys):
    assert main([str(BAD_PROJECT), "--rule", "no-such-rule"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_missing_path_is_usage_error(capsys):
    assert main([str(FIXTURES / "nope")]) == 2


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.name in out


# ----------------------------------------------------------------------
# Meta: the repo's own sources lint clean
# ----------------------------------------------------------------------
def test_repo_source_tree_is_clean():
    assert lint_paths([SRC_REPRO]) == []


def test_repo_source_tree_clean_via_cli(capsys):
    assert main([str(SRC_REPRO)]) == 0
    assert "no findings" in capsys.readouterr().err
