"""Tests for post-processing: constraints, datatypes, cardinalities."""

import pytest

from repro.core.config import PGHiveConfig
from repro.core.pipeline import PGHive
from repro.core.postprocess import (
    compute_cardinalities,
    infer_datatypes,
    infer_property_constraints,
)
from repro.graph.builder import GraphBuilder
from repro.graph.store import GraphStore
from repro.schema.model import (
    Cardinality,
    DataType,
    PropertyStatus,
)


def _discover(graph, **config_kwargs):
    config = PGHiveConfig(**config_kwargs)
    return PGHive(config).discover(GraphStore(graph)), GraphStore(graph)


class TestPropertyConstraints:
    def test_mandatory_when_on_every_instance(self, figure1_store):
        result = PGHive().discover(figure1_store)
        person = result.schema.node_types["Person"]
        assert person.properties["name"].status is PropertyStatus.MANDATORY
        assert person.properties["gender"].status is PropertyStatus.MANDATORY

    def test_optional_when_missing_somewhere(self, figure1_store):
        """Paper Example 6: imgFile is optional for Post."""
        result = PGHive().discover(figure1_store)
        post = result.schema.node_types["Post"]
        assert post.properties["imgFile"].status is PropertyStatus.OPTIONAL
        assert post.properties["content"].status is PropertyStatus.OPTIONAL

    def test_edge_constraints(self, figure1_store):
        result = PGHive().discover(figure1_store)
        knows = result.schema.edge_types["KNOWS"]
        # One KNOWS edge has "since", the other does not.
        assert knows.properties["since"].status is PropertyStatus.OPTIONAL
        works_at = result.schema.edge_types["WORKS_AT"]
        assert works_at.properties["from"].status is PropertyStatus.MANDATORY

    def test_direct_invocation_idempotent(self, figure1_store):
        result = PGHive().discover(figure1_store)
        infer_property_constraints(result.schema)
        infer_property_constraints(result.schema)
        person = result.schema.node_types["Person"]
        assert person.properties["name"].status is PropertyStatus.MANDATORY


class TestDatatypes:
    def test_figure1_types(self, figure1_store):
        """Paper Example 7: name/gender strings, bday a date."""
        result = PGHive().discover(figure1_store)
        person = result.schema.node_types["Person"]
        assert person.properties["name"].datatype is DataType.STRING
        assert person.properties["bday"].datatype is DataType.DATE
        knows = result.schema.edge_types["KNOWS"]
        assert knows.properties["since"].datatype is DataType.INTEGER

    def test_sampling_mode_runs(self, figure1_store):
        config = PGHiveConfig(
            infer_datatypes_by_sampling=True,
            datatype_sample_minimum=2,
            datatype_sample_fraction=0.5,
        )
        result = PGHive(config).discover(figure1_store)
        person = result.schema.node_types["Person"]
        assert person.properties["bday"].datatype is DataType.DATE

    def test_mixed_values_generalize(self):
        b = GraphBuilder()
        b.node(["T"], {"v": 1})
        b.node(["T"], {"v": "not a number"})
        result, _ = _discover(b.build())
        t = result.schema.node_types["T"]
        assert t.properties["v"].datatype is DataType.STRING


class TestCardinalities:
    def _graph_with_style(self, style):
        b = GraphBuilder()
        sources = [b.node(["S"], {"k": 1}) for _ in range(6)]
        targets = [b.node(["T"], {"k": 1}) for _ in range(6)]
        if style == "1:1":
            for s, t in zip(sources, targets):
                b.edge(s, t, ["R"])
        elif style == "N:1":  # many sources -> one target
            for s in sources:
                b.edge(s, targets[0], ["R"])
        elif style == "1:N":  # one source -> many targets
            for t in targets:
                b.edge(sources[0], t, ["R"])
        else:  # M:N
            for s in sources:
                for t in targets[:3]:
                    b.edge(s, t, ["R"])
        return b.build()

    @pytest.mark.parametrize("style,expected", [
        ("1:1", Cardinality.ONE_TO_ONE),
        ("N:1", Cardinality.N_TO_ONE),
        ("1:N", Cardinality.ONE_TO_N),
        ("M:N", Cardinality.M_TO_N),
    ])
    def test_styles_recovered(self, style, expected):
        result, _ = _discover(self._graph_with_style(style))
        edge_type = result.schema.edge_types["R"]
        assert edge_type.cardinality is expected

    def test_figure1_works_at(self, figure1_store):
        """Paper Example 8: WORKS_AT Person->Org is N:1-shaped."""
        result = PGHive().discover(figure1_store)
        works_at = result.schema.edge_types["WORKS_AT"]
        # Single observation: (1, 1) -> 1:1 bound; degree extremes recorded.
        assert works_at.max_out == 1 and works_at.max_in == 1

    def test_post_processing_disabled(self, figure1_graph):
        result, _ = _discover(figure1_graph, post_processing=False)
        knows = result.schema.edge_types["KNOWS"]
        assert knows.cardinality is Cardinality.UNKNOWN
        person = result.schema.node_types["Person"]
        assert person.properties["name"].datatype is DataType.UNKNOWN
