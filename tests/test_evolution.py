"""Tests for schema evolution tracking and deletion handling."""

import pytest

from repro.core.incremental import IncrementalDiscovery
from repro.core.pipeline import PGHive
from repro.datasets import get_dataset
from repro.graph.builder import GraphBuilder
from repro.graph.store import GraphStore
from repro.schema.evolution import (
    SchemaEvolutionTracker,
    refresh_schema,
)
from repro.schema.model import PropertyStatus, SchemaGraph


class TestEvolutionTracker:
    def test_tracks_growth_then_stability(self):
        dataset = get_dataset("POLE", scale=0.5, seed=3)
        store = GraphStore(dataset.graph)
        engine = IncrementalDiscovery()
        tracker = SchemaEvolutionTracker(stability_window=2)
        for batch in store.batches(8, seed=1):
            engine.process_batch(
                batch.nodes, batch.edges, batch.endpoint_labels
            )
            tracker.observe(engine.schema)
        # First batch creates everything; later clean batches add nothing.
        assert tracker.steps[0].changed
        assert tracker.is_stable
        assert tracker.steps_since_change >= 2
        assert tracker.violations_of_monotonicity() == []

    def test_first_observation_diffs_against_empty(self):
        tracker = SchemaEvolutionTracker()
        schema = SchemaGraph()
        from repro.schema.model import NodeType

        schema.add_node_type(NodeType("A", frozenset({"A"})))
        step = tracker.observe(schema)
        assert step.changed
        assert step.diff.added_node_types == ["A"]

    def test_stability_requires_window(self):
        tracker = SchemaEvolutionTracker(stability_window=3)
        schema = SchemaGraph()
        tracker.observe(schema)
        tracker.observe(schema)
        assert not tracker.is_stable  # only two unchanged steps
        tracker.observe(schema)
        assert tracker.is_stable

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SchemaEvolutionTracker(stability_window=0)


class TestRefreshAfterDeletions:
    def _discovered(self):
        b = GraphBuilder()
        people = [
            b.node(["Person"], {"name": f"p{i}", "age": i}) for i in range(6)
        ]
        cities = [b.node(["City"], {"name": f"c{i}"}) for i in range(2)]
        for person in people:
            b.edge(person, cities[0], ["LIVES_IN"])
        graph = b.build()
        store = GraphStore(graph)
        result = PGHive().discover(store)
        return graph, store, result.schema

    def test_counts_recomputed_after_node_deletions(self):
        graph, store, schema = self._discovered()
        graph.remove_node(0)
        graph.remove_node(1)
        report = refresh_schema(schema, store)
        assert schema.node_types["Person"].instance_count == 4
        assert report.pruned_members >= 2

    def test_empty_type_removed(self):
        graph, store, schema = self._discovered()
        for node_id in [6, 7]:  # both City nodes
            graph.remove_node(node_id)
        report = refresh_schema(schema, store)
        assert "City" not in schema.node_types
        assert report.removed_node_types == ["City"]
        # Edges died with their endpoint.
        assert "LIVES_IN" not in schema.edge_types
        assert "LIVES_IN" in report.removed_edge_types

    def test_constraints_rederived(self):
        """Deleting the only instances missing a property flips it back
        to MANDATORY."""
        b = GraphBuilder()
        full = [
            b.node(["T"], {"a": 1, "b": 2}) for _ in range(4)
        ]
        partial = b.node(["T"], {"a": 1})  # makes 'b' optional
        graph = b.build()
        store = GraphStore(graph)
        schema = PGHive().discover(store).schema
        assert (
            schema.node_types["T"].properties["b"].status
            is PropertyStatus.OPTIONAL
        )
        graph.remove_node(partial)
        report = refresh_schema(schema, store)
        assert (
            schema.node_types["T"].properties["b"].status
            is PropertyStatus.MANDATORY
        )
        assert report.constraint_changes >= 1

    def test_refresh_without_deletions_is_noop(self):
        _, store, schema = self._discovered()
        before = {
            name: t.instance_count for name, t in schema.node_types.items()
        }
        report = refresh_schema(schema, store)
        after = {
            name: t.instance_count for name, t in schema.node_types.items()
        }
        assert before == after
        assert report.pruned_members == 0
        assert report.removed_node_types == []


class TestGraphDeletionPrimitives:
    def test_remove_edge(self, figure1_graph):
        removed = figure1_graph.remove_edge(0)
        assert removed.id == 0
        assert not figure1_graph.has_edge(0)
        assert figure1_graph.num_edges == 5

    def test_remove_node_cascades(self, figure1_graph):
        # Node 2 (Alice) has three incident edges.
        figure1_graph.remove_node(2)
        assert not figure1_graph.has_node(2)
        assert figure1_graph.num_edges == 3
        for edge in figure1_graph.edges():
            assert 2 not in (edge.source, edge.target)

    def test_remove_missing_raises(self, figure1_graph):
        with pytest.raises(KeyError):
            figure1_graph.remove_node(999)
        with pytest.raises(KeyError):
            figure1_graph.remove_edge(999)
