"""Round-trip tests for JSONL and CSV graph serialization."""

import pytest

from repro.graph.io import (
    IngestReport,
    load_graph_apoc_jsonl,
    load_graph_csv,
    load_graph_jsonl,
    save_graph_csv,
    save_graph_jsonl,
)


def _assert_graphs_equal(a, b):
    assert a.num_nodes == b.num_nodes
    assert a.num_edges == b.num_edges
    for node in a.nodes():
        other = b.node(node.id)
        assert other.labels == node.labels
        assert dict(other.properties) == dict(node.properties)
    for edge in a.edges():
        other = b.edge(edge.id)
        assert (other.source, other.target) == (edge.source, edge.target)
        assert other.labels == edge.labels
        assert dict(other.properties) == dict(edge.properties)


class TestJsonl:
    def test_round_trip(self, figure1_graph, tmp_path):
        path = tmp_path / "g.jsonl"
        save_graph_jsonl(figure1_graph, path)
        loaded = load_graph_jsonl(path)
        _assert_graphs_equal(figure1_graph, loaded)

    def test_name_defaults_to_stem(self, figure1_graph, tmp_path):
        path = tmp_path / "mygraph.jsonl"
        save_graph_jsonl(figure1_graph, path)
        assert load_graph_jsonl(path).name == "mygraph"

    def test_blank_lines_ignored(self, figure1_graph, tmp_path):
        path = tmp_path / "g.jsonl"
        save_graph_jsonl(figure1_graph, path)
        path.write_text(path.read_text() + "\n\n", encoding="utf-8")
        _assert_graphs_equal(figure1_graph, load_graph_jsonl(path))

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "hyperedge", "id": 1}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="unknown record kind"):
            load_graph_jsonl(path)

    def test_wide_rows_flush_chunks_by_bytes(self, tmp_path):
        """Fat properties must cap peak chunk size, not buffer 2048 rows."""
        import json as jsonlib

        from repro.graph.io import DEFAULT_CHUNK_BYTES, stream_graph_jsonl

        blob = "x" * (DEFAULT_CHUNK_BYTES // 4)
        path = tmp_path / "wide.jsonl"
        with path.open("w", encoding="utf-8") as handle:
            for i in range(16):
                handle.write(jsonlib.dumps({
                    "kind": "node", "id": i, "labels": ["Doc"],
                    "properties": {"body": blob},
                }) + "\n")

        class Recorder:
            def __init__(self):
                self.chunks = []

            def add_nodes(self, nodes):
                self.chunks.append(len(nodes))
                return []

            def add_edges(self, edges):
                self.chunks.append(len(edges))
                return []

        sink = Recorder()
        stream_graph_jsonl(path, sink)
        assert sum(sink.chunks) == 16
        # Each row is ~DEFAULT_CHUNK_BYTES/4 of payload, so chunks flush
        # every few rows instead of holding all 16 documents at once.
        assert max(sink.chunks) <= 4
        assert len(sink.chunks) >= 4


DIRTY_JSONL = "\n".join([
    '{"kind": "node", "id": 0, "labels": ["Person"], '
    '"properties": {"name": "Ada"}}',                       # line 1 ok
    '{"kind": "node", "id": 1, "labels": ["Person"]}',      # line 2 ok
    '{"kind": "node", "id": 0, "labels": ["Dup"]}',         # 3: duplicate id
    '{"kind": "node", "id": "abc"}',                        # 4: non-int id
    "this is not json",                                     # 5: bad JSON
    '{"kind": "hyperedge", "id": 9}',                       # 6: unknown kind
    '{"kind": "edge", "id": 0, "source": 0, "target": 1, '
    '"labels": ["KNOWS"]}',                                 # line 7 ok
    '{"kind": "edge", "id": 1, "source": 0, "target": 42}',  # 8: no endpoint
    '{"kind": "edge", "id": 2, "source": 1}',               # 9: missing field
]) + "\n"


class TestJsonlErrorPolicies:
    def test_raise_is_default_with_line_context(self, tmp_path):
        path = tmp_path / "dirty.jsonl"
        path.write_text(DIRTY_JSONL, encoding="utf-8")
        with pytest.raises(ValueError, match=r"dirty\.jsonl:3: duplicate"):
            load_graph_jsonl(path)

    def test_skip_drops_bad_records(self, tmp_path):
        path = tmp_path / "dirty.jsonl"
        path.write_text(DIRTY_JSONL, encoding="utf-8")
        graph = load_graph_jsonl(path, on_error="skip")
        assert graph.num_nodes == 2
        assert graph.num_edges == 1
        assert graph.node(0).properties["name"] == "Ada"

    def test_collect_reports_every_rejected_line(self, tmp_path):
        path = tmp_path / "dirty.jsonl"
        path.write_text(DIRTY_JSONL, encoding="utf-8")
        report = IngestReport()
        graph = load_graph_jsonl(path, on_error="collect", report=report)
        assert graph.num_nodes == 2 and graph.num_edges == 1
        assert report.nodes_loaded == 2
        assert report.edges_loaded == 1
        assert [e.line for e in report.errors] == [3, 4, 5, 6, 8, 9]
        reasons = {e.line: e.reason for e in report.errors}
        assert "duplicate node id 0" in reasons[3]
        assert "non-integer node id 'abc'" in reasons[4]
        assert "invalid JSON" in reasons[5]
        assert "unknown record kind" in reasons[6]
        assert "unknown" in reasons[8]  # model's unknown-endpoint error
        assert "missing 'target'" in reasons[9]
        assert not report.ok
        assert str(path) + ":3:" in report.describe()

    def test_collect_requires_report(self, tmp_path, figure1_graph):
        path = tmp_path / "g.jsonl"
        save_graph_jsonl(figure1_graph, path)
        with pytest.raises(ValueError, match="requires an IngestReport"):
            load_graph_jsonl(path, on_error="collect")

    def test_invalid_policy_rejected(self, tmp_path, figure1_graph):
        path = tmp_path / "g.jsonl"
        save_graph_jsonl(figure1_graph, path)
        with pytest.raises(ValueError, match="on_error"):
            load_graph_jsonl(path, on_error="ignore")

    def test_clean_file_reports_ok(self, tmp_path, figure1_graph):
        path = tmp_path / "g.jsonl"
        save_graph_jsonl(figure1_graph, path)
        report = IngestReport()
        loaded = load_graph_jsonl(path, on_error="collect", report=report)
        assert report.ok
        assert report.nodes_loaded == loaded.num_nodes
        assert report.edges_loaded == loaded.num_edges


class TestCsv:
    def test_round_trip(self, figure1_graph, tmp_path):
        nodes_path = tmp_path / "nodes.csv"
        edges_path = tmp_path / "edges.csv"
        save_graph_csv(figure1_graph, nodes_path, edges_path)
        loaded = load_graph_csv(nodes_path, edges_path)
        _assert_graphs_equal(figure1_graph, loaded)

    def test_value_types_survive(self, figure1_graph, tmp_path):
        nodes_path = tmp_path / "nodes.csv"
        edges_path = tmp_path / "edges.csv"
        save_graph_csv(figure1_graph, nodes_path, edges_path)
        loaded = load_graph_csv(nodes_path, edges_path)
        # "since" was written as an int and must come back as an int.
        knows = [e for e in loaded.edges() if "since" in e.properties]
        assert knows and isinstance(knows[0].properties["since"], int)

    def test_multi_label_column(self, tmp_path):
        from repro.graph.builder import GraphBuilder

        b = GraphBuilder()
        b.node(["Person", "Student"], {"name": "x"})
        nodes_path = tmp_path / "n.csv"
        edges_path = tmp_path / "e.csv"
        save_graph_csv(b.build(), nodes_path, edges_path)
        loaded = load_graph_csv(nodes_path, edges_path)
        assert loaded.node(0).labels == frozenset({"Person", "Student"})


class TestCsvErrorPolicies:
    def _dirty_files(self, tmp_path, figure1_graph):
        nodes_path = tmp_path / "nodes.csv"
        edges_path = tmp_path / "edges.csv"
        save_graph_csv(figure1_graph, nodes_path, edges_path)
        # Corrupt the node file: a non-integer id row and a duplicate.
        with nodes_path.open("a", encoding="utf-8", newline="") as handle:
            handle.write("not-a-number,Person\n")
            handle.write("0,Duplicate\n")
        # Corrupt the edge file: a dangling endpoint.
        with edges_path.open("a", encoding="utf-8", newline="") as handle:
            handle.write("999,0,424242,KNOWS\n")
        return nodes_path, edges_path

    def test_raise_names_file_and_line(self, tmp_path, figure1_graph):
        nodes_path, edges_path = self._dirty_files(tmp_path, figure1_graph)
        bad_line = len(nodes_path.read_text().splitlines()) - 1
        with pytest.raises(
            ValueError, match=rf"nodes\.csv:{bad_line}: non-integer"
        ):
            load_graph_csv(nodes_path, edges_path)

    def test_collect_reports_both_files(self, tmp_path, figure1_graph):
        nodes_path, edges_path = self._dirty_files(tmp_path, figure1_graph)
        report = IngestReport()
        graph = load_graph_csv(
            nodes_path, edges_path, on_error="collect", report=report
        )
        assert graph.num_nodes == figure1_graph.num_nodes
        assert graph.num_edges == figure1_graph.num_edges
        assert len(report.errors) == 3
        paths = {e.path for e in report.errors}
        assert str(nodes_path) in paths and str(edges_path) in paths
        reasons = " ".join(e.reason for e in report.errors)
        assert "non-integer" in reasons
        assert "duplicate node id 0" in reasons


class TestApocErrorPolicies:
    def test_skip_drops_dangling_relationship(self, tmp_path):
        path = tmp_path / "dump.jsonl"
        path.write_text("\n".join([
            '{"type": "node", "id": "a", "labels": ["Person"], '
            '"properties": {}}',
            '{"type": "relationship", "label": "KNOWS", '
            '"start": {"id": "a"}, "end": {"id": "ghost"}}',
        ]) + "\n", encoding="utf-8")
        report = IngestReport()
        graph = load_graph_apoc_jsonl(
            path, on_error="collect", report=report
        )
        assert graph.num_nodes == 1 and graph.num_edges == 0
        assert len(report.errors) == 1
        assert report.errors[0].line == 2
        assert "unknown node" in report.errors[0].reason

    def test_raise_remains_default(self, tmp_path):
        path = tmp_path / "dump.jsonl"
        path.write_text('{"type": "mystery"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="unknown APOC record type"):
            load_graph_apoc_jsonl(path)
