"""Round-trip tests for JSONL and CSV graph serialization."""

import pytest

from repro.graph.io import (
    load_graph_csv,
    load_graph_jsonl,
    save_graph_csv,
    save_graph_jsonl,
)


def _assert_graphs_equal(a, b):
    assert a.num_nodes == b.num_nodes
    assert a.num_edges == b.num_edges
    for node in a.nodes():
        other = b.node(node.id)
        assert other.labels == node.labels
        assert dict(other.properties) == dict(node.properties)
    for edge in a.edges():
        other = b.edge(edge.id)
        assert (other.source, other.target) == (edge.source, edge.target)
        assert other.labels == edge.labels
        assert dict(other.properties) == dict(edge.properties)


class TestJsonl:
    def test_round_trip(self, figure1_graph, tmp_path):
        path = tmp_path / "g.jsonl"
        save_graph_jsonl(figure1_graph, path)
        loaded = load_graph_jsonl(path)
        _assert_graphs_equal(figure1_graph, loaded)

    def test_name_defaults_to_stem(self, figure1_graph, tmp_path):
        path = tmp_path / "mygraph.jsonl"
        save_graph_jsonl(figure1_graph, path)
        assert load_graph_jsonl(path).name == "mygraph"

    def test_blank_lines_ignored(self, figure1_graph, tmp_path):
        path = tmp_path / "g.jsonl"
        save_graph_jsonl(figure1_graph, path)
        path.write_text(path.read_text() + "\n\n", encoding="utf-8")
        _assert_graphs_equal(figure1_graph, load_graph_jsonl(path))

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "hyperedge", "id": 1}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="unknown record kind"):
            load_graph_jsonl(path)


class TestCsv:
    def test_round_trip(self, figure1_graph, tmp_path):
        nodes_path = tmp_path / "nodes.csv"
        edges_path = tmp_path / "edges.csv"
        save_graph_csv(figure1_graph, nodes_path, edges_path)
        loaded = load_graph_csv(nodes_path, edges_path)
        _assert_graphs_equal(figure1_graph, loaded)

    def test_value_types_survive(self, figure1_graph, tmp_path):
        nodes_path = tmp_path / "nodes.csv"
        edges_path = tmp_path / "edges.csv"
        save_graph_csv(figure1_graph, nodes_path, edges_path)
        loaded = load_graph_csv(nodes_path, edges_path)
        # "since" was written as an int and must come back as an int.
        knows = [e for e in loaded.edges() if "since" in e.properties]
        assert knows and isinstance(knows[0].properties["since"], int)

    def test_multi_label_column(self, tmp_path):
        from repro.graph.builder import GraphBuilder

        b = GraphBuilder()
        b.node(["Person", "Student"], {"name": "x"})
        nodes_path = tmp_path / "n.csv"
        edges_path = tmp_path / "e.csv"
        save_graph_csv(b.build(), nodes_path, edges_path)
        loaded = load_graph_csv(nodes_path, edges_path)
        assert loaded.node(0).labels == frozenset({"Person", "Student"})
