"""Recovery-path tests driven by the deterministic fault harness.

The invariant under test throughout: a run that crashed, hung, or lost
workers -- and recovered -- produces a schema *byte-identical* to a clean
sequential run.  Shard purity plus the union-only merge (Lemmas 1-2) is
what makes re-execution a correct recovery strategy, and these tests are
the executable form of that argument for both source kinds
(:class:`GraphStore` shard plans and :class:`GraphStream` columns).
"""

import os

import pytest

from repro.core import PGHive, PGHiveConfig
from repro.core.faults import InjectedFault
from repro.core.incremental import IncrementalDiscovery
from repro.core.parallel import (
    ParallelDiscovery,
    ShardRecoveryError,
    fork_available,
)
from repro.datasets import get_dataset
from repro.datasets.registry import dataset_spec
from repro.datasets.stream import GraphStream
from repro.graph.store import GraphStore
from repro.schema.persist import SchemaPersistError
from repro.schema.serialize_pgschema import serialize_pg_schema

NUM_BATCHES = 4

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="parallel driver requires fork"
)

fault_sweep = pytest.mark.skipif(
    not os.environ.get("PGHIVE_TEST_FAULTS"),
    reason="set PGHIVE_TEST_FAULTS=1 to run the fault stress sweep",
)


@pytest.fixture(scope="module")
def ldbc_graph():
    return get_dataset("ldbc", scale=1, seed=0).graph


@pytest.fixture(scope="module")
def sequential_schema(ldbc_graph):
    result = PGHive(PGHiveConfig()).discover_incremental(
        GraphStore(ldbc_graph), num_batches=NUM_BATCHES
    )
    return serialize_pg_schema(result.schema)


@needs_fork
class TestWorkerCrashRecovery:
    def test_raised_shard_retries_to_identical_schema(
        self, ldbc_graph, sequential_schema
    ):
        config = PGHiveConfig(
            jobs=2, faults="shard:2:raise", shard_retry_backoff=0.0
        )
        result = PGHive(config).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert serialize_pg_schema(result.schema) == sequential_schema
        events = [f for f in result.shard_failures if f.index == 2]
        assert events and all(f.kind == "error" for f in events)
        assert all(f.recovered_by == "retry" for f in events)
        assert "injected fault" in events[0].error
        report = next(r for r in result.batches if r.index == 2)
        assert report.attempts >= 2
        assert not result.degraded_shards
        assert "parallel/recovery" in result.parameters

    def test_chunked_task_splits_to_blame_one_shard(
        self, ldbc_graph, sequential_schema
    ):
        """A failing multi-shard task re-runs split; only the faulty
        shard accumulates failure records."""
        config = PGHiveConfig(
            jobs=2, parallel_chunk="2", faults="shard:1:raise",
            shard_retry_backoff=0.0,
        )
        result = PGHive(config).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert serialize_pg_schema(result.schema) == sequential_schema
        assert {f.index for f in result.shard_failures} == {1}

    def test_killed_worker_respawns_and_retries(
        self, ldbc_graph, sequential_schema
    ):
        config = PGHiveConfig(
            jobs=2, parallel_chunk="1", faults="shard:1:kill",
            shard_retry_backoff=0.0,
        )
        result = PGHive(config).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert serialize_pg_schema(result.schema) == sequential_schema
        kinds = {f.kind for f in result.shard_failures}
        assert kinds == {"worker-lost"}
        assert any(f.index == 1 for f in result.shard_failures)
        assert all(
            f.recovered_by is not None for f in result.shard_failures
        )

    def test_poisoned_shard_recovers_via_in_process_fallback(
        self, ldbc_graph, sequential_schema
    ):
        """``kill`` with an unlimited budget defeats every pool retry;
        the in-process fallback (where kill is a no-op) completes the
        run with an identical schema."""
        config = PGHiveConfig(
            jobs=2, parallel_chunk="1", faults="shard:0:kill:99",
            shard_retries=1, shard_retry_backoff=0.0,
        )
        result = PGHive(config).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert serialize_pg_schema(result.schema) == sequential_schema
        assert any(
            f.index == 0 and f.recovered_by == "fallback"
            for f in result.shard_failures
        )
        assert not result.degraded_shards

    def test_strict_mode_raises_on_unrecoverable_shard(self, ldbc_graph):
        config = PGHiveConfig(
            jobs=2, parallel_chunk="1", faults="shard:0:raise:99",
            shard_retries=0, shard_retry_backoff=0.0,
            strict_recovery=True,
        )
        with pytest.raises(ShardRecoveryError) as excinfo:
            PGHive(config).discover_incremental(
                GraphStore(ldbc_graph), num_batches=NUM_BATCHES
            )
        assert 0 in {f.index for f in excinfo.value.failures}

    def test_nonstrict_mode_degrades_and_reports(self, ldbc_graph):
        config = PGHiveConfig(
            jobs=2, parallel_chunk="1", faults="shard:0:raise:99",
            shard_retries=0, shard_retry_backoff=0.0,
        )
        result = PGHive(config).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert result.degraded_shards == [0]
        assert any(
            f.kind == "fallback-failed" for f in result.shard_failures
        )
        # The surviving shards still merge into a usable schema.
        assert result.schema.node_types
        assert "degraded_shards=[0]" in result.parameters[
            "parallel/recovery"
        ]


@needs_fork
class TestTimeoutRecovery:
    def test_hung_shard_is_killed_and_requeued(
        self, ldbc_graph, sequential_schema
    ):
        config = PGHiveConfig(
            jobs=2, parallel_chunk="1", faults="shard:1:hang:1:30",
            shard_timeout=1.0, shard_retry_backoff=0.0,
        )
        result = PGHive(config).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert serialize_pg_schema(result.schema) == sequential_schema
        timeouts = [
            f for f in result.shard_failures if f.kind == "timeout"
        ]
        assert timeouts and all(f.index == 1 for f in timeouts)
        assert all(f.recovered_by is not None for f in timeouts)


@needs_fork
class TestStreamRecovery:
    def test_columns_mode_crash_recovery_matches_sequential(self):
        spec = dataset_spec("ldbc")
        config = PGHiveConfig(post_processing=False)
        engine = IncrementalDiscovery(config, name="s")
        for batch in GraphStream(spec, num_batches=4, seed=3).batches():
            engine.process_batch(
                batch.nodes, batch.edges, batch.endpoint_labels
            )
        stream = GraphStream(spec, num_batches=4, seed=3)
        result = ParallelDiscovery(PGHiveConfig(
            post_processing=False, jobs=2, parallel_chunk="1",
            faults="shard:1:raise", shard_retry_backoff=0.0,
        )).discover_batches(stream.batches(), name="s", total=4)
        assert serialize_pg_schema(result.schema) == serialize_pg_schema(
            engine.schema
        )
        assert any(f.index == 1 for f in result.shard_failures)


@needs_fork
class TestTransportFaults:
    """Segment lifecycle under injected transport faults.

    The autouse leak fixture in ``conftest.py`` additionally asserts
    that none of these crash scenarios orphans a ``/dev/shm`` segment
    or memmap scratch directory."""

    @pytest.mark.parametrize("transport", ["shm", "memmap"])
    def test_worker_attach_failure_retries_clean(self, transport):
        """A worker that dies attaching the columns slab is retried; the
        slab stays valid for every other task and the retry."""
        spec = dataset_spec("ldbc")
        config = PGHiveConfig(post_processing=False)
        engine = IncrementalDiscovery(config, name="s")
        for batch in GraphStream(spec, num_batches=4, seed=3).batches():
            engine.process_batch(
                batch.nodes, batch.edges, batch.endpoint_labels
            )
        result = ParallelDiscovery(PGHiveConfig(
            post_processing=False, jobs=2, parallel_chunk="1",
            shard_transport=transport, faults="attach:1:raise",
            shard_retry_backoff=0.0,
        )).discover_batches(
            GraphStream(spec, num_batches=4, seed=3).batches(),
            name="s", total=4,
        )
        assert serialize_pg_schema(result.schema) == serialize_pg_schema(
            engine.schema
        )
        events = [f for f in result.shard_failures if f.index == 1]
        assert events and all(f.recovered_by == "retry" for f in events)

    @pytest.mark.parametrize("transport", ["shm", "memmap"])
    def test_driver_unlink_failure_requeues_clean(
        self, ldbc_graph, sequential_schema, transport
    ):
        """A fault while the driver consumes a result segment releases
        the segment and re-runs the shard with a fresh one."""
        config = PGHiveConfig(
            jobs=2, parallel_chunk="1", shard_transport=transport,
            faults="unlink:0:raise", shard_retry_backoff=0.0,
        )
        result = PGHive(config).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert serialize_pg_schema(result.schema) == sequential_schema
        events = [f for f in result.shard_failures if f.index == 0]
        assert events and all(f.recovered_by is not None for f in events)

    def test_sigkilled_worker_leaks_no_segments(
        self, ldbc_graph, sequential_schema
    ):
        """A worker SIGKILLed mid-shard abandons its reserved result
        segment; the driver must reclaim it while recovering the run."""
        config = PGHiveConfig(
            jobs=2, parallel_chunk="1", shard_transport="shm",
            faults="shard:1:kill", shard_retry_backoff=0.0,
        )
        result = PGHive(config).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert serialize_pg_schema(result.schema) == sequential_schema
        assert {f.kind for f in result.shard_failures} == {"worker-lost"}

    def test_timeout_kill_leaks_no_segments(
        self, ldbc_graph, sequential_schema
    ):
        config = PGHiveConfig(
            jobs=2, parallel_chunk="1", shard_transport="shm",
            faults="shard:1:hang:1:30", shard_timeout=1.0,
            shard_retry_backoff=0.0,
        )
        result = PGHive(config).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert serialize_pg_schema(result.schema) == sequential_schema
        assert any(f.kind == "timeout" for f in result.shard_failures)


@needs_fork
@fault_sweep
class TestFaultStressSweep:
    """CI-only sweep (PGHIVE_TEST_FAULTS=1): wider fault surfaces."""

    def test_probabilistic_wildcard_faults_still_identical(
        self, ldbc_graph, sequential_schema
    ):
        """Every shard's first attempt fails with p=0.5 (seeded, so
        reproducible); the recovered schema never drifts."""
        config = PGHiveConfig(
            jobs=2, parallel_chunk="1",
            faults="shard:*:raise:1:0:0.5", shard_retry_backoff=0.0,
        )
        result = PGHive(config).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert serialize_pg_schema(result.schema) == sequential_schema
        assert not result.degraded_shards

    def test_every_shard_fails_once_still_identical(
        self, ldbc_graph, sequential_schema
    ):
        config = PGHiveConfig(
            jobs=2, parallel_chunk="1", faults="shard:*:raise",
            shard_retry_backoff=0.0,
        )
        result = PGHive(config).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert serialize_pg_schema(result.schema) == sequential_schema
        assert {f.index for f in result.shard_failures} == set(
            range(NUM_BATCHES)
        )


class TestCheckpointResume:
    def test_crash_at_batch_then_resume_is_identical(
        self, tmp_path, ldbc_graph, sequential_schema
    ):
        """Kill-at-batch-i equivalence: a run that dies mid-stream and
        resumes from its checkpoint ends byte-identical to a clean run."""
        ckpt = tmp_path / "ckpt"
        store = GraphStore(ldbc_graph)
        crashing = PGHiveConfig(
            checkpoint_dir=str(ckpt), faults="batch:2:raise"
        )
        with pytest.raises(InjectedFault):
            PGHive(crashing).discover_incremental(
                store, num_batches=NUM_BATCHES
            )
        assert IncrementalDiscovery.has_checkpoint(ckpt)
        resumed = PGHive(
            PGHiveConfig(checkpoint_dir=str(ckpt))
        ).discover_incremental(
            store, num_batches=NUM_BATCHES, resume=True
        )
        assert resumed.resumed_from == 2
        assert serialize_pg_schema(resumed.schema) == sequential_schema
        assert [r.index for r in resumed.batches] == list(
            range(NUM_BATCHES)
        )

    def test_checkpoint_cadence_controls_replay_window(
        self, tmp_path, ldbc_graph, sequential_schema
    ):
        ckpt = tmp_path / "ckpt"
        store = GraphStore(ldbc_graph)
        crashing = PGHiveConfig(
            checkpoint_dir=str(ckpt), checkpoint_every=2,
            faults="batch:3:raise",
        )
        with pytest.raises(InjectedFault):
            PGHive(crashing).discover_incremental(
                store, num_batches=NUM_BATCHES
            )
        resumed = PGHive(PGHiveConfig(
            checkpoint_dir=str(ckpt), checkpoint_every=2
        )).discover_incremental(
            store, num_batches=NUM_BATCHES, resume=True
        )
        # Batches 0-1 were checkpointed; batch 2 completed after the
        # last checkpoint and is replayed (idempotent by purity).
        assert resumed.resumed_from == 2
        assert serialize_pg_schema(resumed.schema) == sequential_schema

    def test_resume_without_checkpoint_is_clean_start(
        self, tmp_path, ldbc_graph, sequential_schema
    ):
        result = PGHive(
            PGHiveConfig(checkpoint_dir=str(tmp_path / "empty"))
        ).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES, resume=True
        )
        assert result.resumed_from == 0
        assert serialize_pg_schema(result.schema) == sequential_schema

    def test_resume_rejects_mismatched_plan(self, tmp_path, ldbc_graph):
        ckpt = tmp_path / "ckpt"
        store = GraphStore(ldbc_graph)
        PGHive(
            PGHiveConfig(checkpoint_dir=str(ckpt))
        ).discover_incremental(store, num_batches=NUM_BATCHES)
        with pytest.raises(SchemaPersistError, match="context mismatch"):
            PGHive(
                PGHiveConfig(checkpoint_dir=str(ckpt))
            ).discover_incremental(
                store, num_batches=NUM_BATCHES + 1, resume=True
            )

    def test_completed_run_resumes_to_same_schema(
        self, tmp_path, ldbc_graph, sequential_schema
    ):
        """Resuming a finished run replays nothing and restores the
        checkpointed schema verbatim."""
        ckpt = tmp_path / "ckpt"
        store = GraphStore(ldbc_graph)
        PGHive(
            PGHiveConfig(checkpoint_dir=str(ckpt))
        ).discover_incremental(store, num_batches=NUM_BATCHES)
        resumed = PGHive(
            PGHiveConfig(checkpoint_dir=str(ckpt))
        ).discover_incremental(
            store, num_batches=NUM_BATCHES, resume=True
        )
        assert resumed.resumed_from == NUM_BATCHES
        assert serialize_pg_schema(resumed.schema) == sequential_schema

    @needs_fork
    def test_checkpoint_no_longer_forces_sequential_engine(
        self, tmp_path, ldbc_graph, sequential_schema
    ):
        """jobs > 1 with a checkpoint_dir used to silently fall back to
        the sequential engine; it now journals shards and stays parallel."""
        ckpt = tmp_path / "ckpt"
        config = PGHiveConfig(jobs=2, checkpoint_dir=str(ckpt))
        result = PGHive(config).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert result.parallel_fallback is None
        assert all(r.worker is not None for r in result.batches)
        assert serialize_pg_schema(result.schema) == sequential_schema
        journaled = sorted((ckpt / "shards").glob("shard-*.json"))
        assert len(journaled) == NUM_BATCHES

    def test_forced_sequential_fallback_is_reported(self, ldbc_graph):
        """When parallelism genuinely cannot run, the result says why."""
        config = PGHiveConfig(jobs=2, kernels="reference")
        result = PGHive(config).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert all(r.worker is None for r in result.batches)
        assert result.parallel_fallback is not None
        assert "reference kernels" in result.parallel_fallback

    def test_clean_parallel_run_reports_no_fallback(self, ldbc_graph):
        result = PGHive(PGHiveConfig(jobs=1)).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert result.parallel_fallback is None

    def test_stream_engine_checkpoint_roundtrip(self, tmp_path):
        """GraphStream sources checkpoint at the engine level: resume
        mid-stream and finish identical to an uninterrupted engine."""
        spec = dataset_spec("ldbc")
        config = PGHiveConfig(post_processing=False)
        reference = IncrementalDiscovery(config, name="s")
        for batch in GraphStream(spec, num_batches=4, seed=3).batches():
            reference.process_batch(
                batch.nodes, batch.edges, batch.endpoint_labels
            )
        partial = IncrementalDiscovery(config, name="s")
        for index, batch in enumerate(
            GraphStream(spec, num_batches=4, seed=3).batches()
        ):
            if index == 2:
                break
            partial.process_batch(
                batch.nodes, batch.edges, batch.endpoint_labels
            )
        partial.save_checkpoint(tmp_path, context={"stream": "ldbc"})
        resumed = IncrementalDiscovery.from_checkpoint(
            tmp_path, config, expected_context={"stream": "ldbc"}
        )
        for index, batch in enumerate(
            GraphStream(spec, num_batches=4, seed=3).batches()
        ):
            if index < 2:
                continue
            resumed.process_batch(
                batch.nodes, batch.edges, batch.endpoint_labels
            )
        assert serialize_pg_schema(resumed.schema) == serialize_pg_schema(
            reference.schema
        )
        assert len(resumed.reports) == len(reference.reports)


@needs_fork
class TestParallelJournalResume:
    """Crash-resume for the parallel path via the shard journal."""

    def test_killed_pool_resumes_from_journal(
        self, tmp_path, ldbc_graph, sequential_schema
    ):
        """A jobs>1 run that dies mid-pool leaves its completed shards
        journaled; a resume recomputes only the missing ones and ends
        byte-identical to a clean run."""
        ckpt = tmp_path / "ckpt"
        store = GraphStore(ldbc_graph)
        crashing = PGHiveConfig(
            jobs=2, parallel_chunk="1", checkpoint_dir=str(ckpt),
            faults="shard:2:raise:99", shard_retries=0,
            shard_retry_backoff=0.0, strict_recovery=True,
        )
        with pytest.raises(ShardRecoveryError):
            PGHive(crashing).discover_incremental(
                store, num_batches=NUM_BATCHES
            )
        journaled = sorted((ckpt / "shards").glob("shard-*.json"))
        assert journaled, "completed shards must be journaled pre-crash"
        assert not any("shard-00002" in p.name for p in journaled)
        resumed = PGHive(PGHiveConfig(
            jobs=2, parallel_chunk="1", checkpoint_dir=str(ckpt)
        )).discover_incremental(
            store, num_batches=NUM_BATCHES, resume=True
        )
        assert resumed.resumed_shards
        assert 2 not in resumed.resumed_shards
        assert "parallel/journal" in resumed.parameters
        assert serialize_pg_schema(resumed.schema) == sequential_schema

    def test_completed_parallel_run_resumes_from_journal_alone(
        self, tmp_path, ldbc_graph, sequential_schema
    ):
        """Resuming a finished parallel run recomputes nothing."""
        ckpt = tmp_path / "ckpt"
        store = GraphStore(ldbc_graph)
        config = PGHiveConfig(jobs=2, checkpoint_dir=str(ckpt))
        PGHive(config).discover_incremental(store, num_batches=NUM_BATCHES)
        resumed = PGHive(
            PGHiveConfig(jobs=2, checkpoint_dir=str(ckpt))
        ).discover_incremental(
            store, num_batches=NUM_BATCHES, resume=True
        )
        assert resumed.resumed_shards == list(range(NUM_BATCHES))
        assert serialize_pg_schema(resumed.schema) == sequential_schema

    def test_fresh_run_clears_stale_journal(self, tmp_path, ldbc_graph):
        ckpt = tmp_path / "ckpt"
        store = GraphStore(ldbc_graph)
        config = PGHiveConfig(jobs=2, checkpoint_dir=str(ckpt))
        PGHive(config).discover_incremental(store, num_batches=NUM_BATCHES)
        (ckpt / "shards" / "shard-99999.json").write_text(
            "{not json", encoding="utf-8"
        )
        result = PGHive(
            PGHiveConfig(jobs=2, checkpoint_dir=str(ckpt))
        ).discover_incremental(store, num_batches=NUM_BATCHES)
        assert result.resumed_shards == []
        journaled = sorted((ckpt / "shards").glob("shard-*.json"))
        assert len(journaled) == NUM_BATCHES

    def test_mismatched_context_is_recomputed_not_fatal(
        self, tmp_path, ldbc_graph, sequential_schema
    ):
        """A journal written under a different seed is ignored shard by
        shard; the resume recomputes everything and stays correct."""
        ckpt = tmp_path / "ckpt"
        store = GraphStore(ldbc_graph)
        PGHive(PGHiveConfig(
            jobs=2, checkpoint_dir=str(ckpt), seed=99
        )).discover_incremental(store, num_batches=NUM_BATCHES)
        resumed = PGHive(PGHiveConfig(
            jobs=2, checkpoint_dir=str(ckpt)
        )).discover_incremental(
            store, num_batches=NUM_BATCHES, resume=True
        )
        assert resumed.resumed_shards == []
        assert "parallel/journal_skipped" in resumed.parameters
        assert serialize_pg_schema(resumed.schema) == sequential_schema

    def test_corrupt_journal_entry_is_recomputed(
        self, tmp_path, ldbc_graph, sequential_schema
    ):
        ckpt = tmp_path / "ckpt"
        store = GraphStore(ldbc_graph)
        config = PGHiveConfig(jobs=2, checkpoint_dir=str(ckpt))
        PGHive(config).discover_incremental(store, num_batches=NUM_BATCHES)
        (ckpt / "shards" / "shard-00001.json").write_text(
            "{truncated", encoding="utf-8"
        )
        resumed = PGHive(
            PGHiveConfig(jobs=2, checkpoint_dir=str(ckpt))
        ).discover_incremental(
            store, num_batches=NUM_BATCHES, resume=True
        )
        assert 1 not in resumed.resumed_shards
        assert "parallel/journal_skipped" in resumed.parameters
        assert serialize_pg_schema(resumed.schema) == sequential_schema

    def test_killed_stream_pool_resumes_from_journal(self, tmp_path):
        """End-to-end resumable stream pipelines: a crashed parallel
        stream run leaves completed shards journaled; the resume replays
        only the missing batches (seeded replay makes the recomputation
        byte-identical) and matches a sequential stream run."""
        spec = dataset_spec("ldbc")
        reference = PGHive(PGHiveConfig(jobs=1)).discover_incremental(
            GraphStream(spec, num_batches=4, seed=3), num_batches=4
        )
        ckpt = tmp_path / "ckpt"
        crashing = PGHiveConfig(
            jobs=2, parallel_chunk="1", checkpoint_dir=str(ckpt),
            faults="shard:2:raise:99", shard_retries=0,
            shard_retry_backoff=0.0, strict_recovery=True,
        )
        with pytest.raises(ShardRecoveryError):
            PGHive(crashing).discover_incremental(
                GraphStream(spec, num_batches=4, seed=3), num_batches=4
            )
        journaled = sorted((ckpt / "shards").glob("shard-*.json"))
        assert journaled, "completed stream shards must be journaled"
        assert not any("shard-00002" in p.name for p in journaled)
        resumed = PGHive(PGHiveConfig(
            jobs=2, parallel_chunk="1", checkpoint_dir=str(ckpt)
        )).discover_incremental(
            GraphStream(spec, num_batches=4, seed=3), num_batches=4,
            resume=True,
        )
        assert resumed.resumed_shards
        assert 2 not in resumed.resumed_shards
        assert serialize_pg_schema(resumed.schema) == serialize_pg_schema(
            reference.schema
        )

    def test_completed_stream_run_resumes_from_journal_alone(
        self, tmp_path
    ):
        spec = dataset_spec("ldbc")
        ckpt = tmp_path / "ckpt"
        config = PGHiveConfig(jobs=2, checkpoint_dir=str(ckpt))
        first = PGHive(config).discover_incremental(
            GraphStream(spec, num_batches=4, seed=3), num_batches=4
        )
        resumed = PGHive(
            PGHiveConfig(jobs=2, checkpoint_dir=str(ckpt))
        ).discover_incremental(
            GraphStream(spec, num_batches=4, seed=3), num_batches=4,
            resume=True,
        )
        assert resumed.resumed_shards == [0, 1, 2, 3]
        assert serialize_pg_schema(resumed.schema) == serialize_pg_schema(
            first.schema
        )
