"""Tests for semantic label alignment across integrated schemas."""

from collections import Counter

from repro.embeddings.embedder import LabelEmbedder
from repro.graph.builder import GraphBuilder
from repro.graph.store import GraphStore
from repro.core.pipeline import PGHive
from repro.schema.align import (
    AliasCandidate,
    apply_alignment,
    propose_alignments,
    _edit_similarity,
)
from repro.schema.model import NodeType, SchemaGraph


def _type(name, labels, keys, count=10):
    node_type = NodeType(
        name, frozenset(labels), instance_count=count,
        property_counts=Counter({k: count for k in keys}),
    )
    for key in keys:
        node_type.ensure_property(key)
    return node_type


def _integration_graph():
    """Two sources: one says Organization, the other Organisation."""
    b = GraphBuilder("merged")
    people = [
        b.node(["Person"], {"name": f"p{i}", "email": f"p{i}@x"})
        for i in range(20)
    ]
    orgs_a = [
        b.node(["Organization"], {"name": f"org{i}", "country": "GR"})
        for i in range(8)
    ]
    orgs_b = [
        b.node(["Organisation"], {"name": f"org{i}", "country": "FR"})
        for i in range(6)
    ]
    for i, person in enumerate(people):
        target = (orgs_a + orgs_b)[i % (len(orgs_a) + len(orgs_b))]
        b.edge(person, target, ["WORKS_AT"], {"since": 2000 + i})
    return b.build()


class TestEditSimilarity:
    def test_identical(self):
        assert _edit_similarity("abc", "abc") == 1.0

    def test_one_substitution(self):
        assert _edit_similarity("organization", "organisation") > 0.9

    def test_disjoint(self):
        assert _edit_similarity("cat", "dog") == 0.0

    def test_empty(self):
        assert _edit_similarity("", "") == 1.0
        assert _edit_similarity("a", "") == 0.0


class TestProposeAlignments:
    def test_spelling_variants_proposed(self):
        schema = SchemaGraph()
        schema.add_node_type(_type("Organization", ["Organization"],
                                   ["name", "country"]))
        schema.add_node_type(_type("Organisation", ["Organisation"],
                                   ["name", "country"]))
        schema.add_node_type(_type("Person", ["Person"],
                                   ["name", "email"]))
        candidates = propose_alignments(schema)
        pairs = {(c.first, c.second) for c in candidates}
        assert ("Organisation", "Organization") in pairs or (
            "Organization", "Organisation"
        ) in pairs
        # Person must not be aliased with either organization type.
        assert not any("Person" in pair for pair in pairs)

    def test_structural_floor_blocks_different_shapes(self):
        schema = SchemaGraph()
        schema.add_node_type(_type("Organization", ["Organization"],
                                   ["name", "country"]))
        schema.add_node_type(_type("Organigram", ["Organigram"],
                                   ["levels", "depth"]))
        candidates = propose_alignments(schema)
        assert candidates == []

    def test_synonyms_via_context(self):
        """Company/Organization: no lexical overlap, but both are
        WORKS_AT targets -> contextual similarity carries the pair."""
        b = GraphBuilder()
        people = [b.node(["Person"], {"name": f"p{i}"}) for i in range(30)]
        hosts = [
            b.node([("Company" if i % 2 else "Organization")],
                   {"name": f"o{i}", "country": "GR"})
            for i in range(10)
        ]
        for i, person in enumerate(people):
            b.edge(person, hosts[i % 10], ["WORKS_AT"], {})
        graph = b.build()
        result = PGHive().discover(GraphStore(graph))
        embedder = LabelEmbedder().fit(graph)
        candidates = propose_alignments(
            result.schema, embedder, threshold=0.7
        )
        pairs = {frozenset((c.first, c.second)) for c in candidates}
        assert frozenset(("Company", "Organization")) in pairs

    def test_combined_score_weighting(self):
        candidate = AliasCandidate("a", "b", 1.0, 1.0, 1.0)
        assert candidate.combined == 1.0
        candidate = AliasCandidate("a", "b", 1.0, 0.0, 0.0)
        assert candidate.combined == 0.5


class TestApplyAlignment:
    def test_merges_alias_group(self):
        graph = _integration_graph()
        result = PGHive().discover(GraphStore(graph))
        embedder = LabelEmbedder().fit(graph)
        candidates = propose_alignments(result.schema, embedder)
        renames = apply_alignment(result.schema, candidates)
        assert renames  # something merged
        # The surviving org type holds both sources' instances and labels.
        survivor_name = next(iter(set(renames.values())))
        survivor = result.schema.node_types[survivor_name]
        assert survivor.labels == frozenset({"Organization", "Organisation"})
        assert survivor.instance_count == 14

    def test_merge_is_monotone(self):
        graph = _integration_graph()
        result = PGHive().discover(GraphStore(graph))
        before_keys = set()
        for t in result.schema.node_types.values():
            before_keys |= t.property_keys
        embedder = LabelEmbedder().fit(graph)
        apply_alignment(
            result.schema, propose_alignments(result.schema, embedder)
        )
        after_keys = set()
        for t in result.schema.node_types.values():
            after_keys |= t.property_keys
        assert before_keys <= after_keys

    def test_no_candidates_no_change(self, figure1_store):
        result = PGHive().discover(figure1_store)
        names_before = set(result.schema.node_types)
        renames = apply_alignment(result.schema, [])
        assert renames == {}
        assert set(result.schema.node_types) == names_before
