"""Tests for the shared utilities (similarity, tables, timing)."""

import time

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.similarity import jaccard, overlap_coefficient
from repro.util.tables import render_table
from repro.util.timing import Timer


class TestJaccard:
    def test_identical(self):
        assert jaccard({1, 2}, {1, 2}) == 1.0

    def test_disjoint(self):
        assert jaccard({1}, {2}) == 0.0

    def test_partial(self):
        assert jaccard({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)

    def test_both_empty_is_one(self):
        """Unlabeled, property-less clusters must count as identical."""
        assert jaccard(set(), set()) == 1.0

    def test_one_empty_is_zero(self):
        assert jaccard({1}, set()) == 0.0

    @given(
        st.frozensets(st.integers(0, 20), max_size=10),
        st.frozensets(st.integers(0, 20), max_size=10),
    )
    def test_symmetric_and_bounded(self, a, b):
        assert jaccard(a, b) == jaccard(b, a)
        assert 0.0 <= jaccard(a, b) <= 1.0

    @given(st.frozensets(st.integers(0, 20), min_size=1, max_size=10))
    def test_self_similarity(self, a):
        assert jaccard(a, a) == 1.0


class TestOverlapCoefficient:
    def test_subset_is_one(self):
        assert overlap_coefficient({1}, {1, 2, 3}) == 1.0

    def test_partial(self):
        assert overlap_coefficient({1, 2}, {2, 3}) == pytest.approx(0.5)

    def test_empty_cases(self):
        assert overlap_coefficient(set(), set()) == 1.0
        assert overlap_coefficient({1}, set()) == 0.0


class TestRenderTable:
    def test_alignment(self):
        table = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert lines[0] == "a   | bb"
        assert lines[1] == "----+---"
        assert lines[2] == "1   | 2 "

    def test_title(self):
        table = render_table(["x"], [["1"]], title="hello")
        assert table.splitlines()[0] == "hello"

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only one"]])

    def test_empty_rows(self):
        table = render_table(["col"], [])
        assert "col" in table


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_reusable(self):
        timer = Timer()
        with timer:
            pass
        first = timer.elapsed
        with timer:
            time.sleep(0.005)
        assert timer.elapsed >= first
