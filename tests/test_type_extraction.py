"""Tests for Algorithm 2: cluster summarization, extraction, merging."""

import numpy as np
import pytest

from repro.core.type_extraction import (
    CandidateCluster,
    build_edge_clusters,
    build_node_clusters,
    extract_types,
    resolve_edge_endpoints,
)
from repro.graph.model import Edge, Node


def _nodes(*specs):
    return [
        Node(i, frozenset(labels), {k: 1 for k in keys})
        for i, (labels, keys) in enumerate(specs)
    ]


class TestBuildClusters:
    def test_node_cluster_unions(self):
        nodes = _nodes(
            (("Person",), ("name",)),
            (("Person",), ("name", "age")),
            ((), ("zip",)),
        )
        assignment = np.array([0, 0, 1])
        clusters = build_node_clusters(nodes, assignment)
        assert len(clusters) == 2
        first = clusters[0]
        assert first.labels == frozenset({"Person"})
        assert first.property_keys == frozenset({"name", "age"})
        assert first.property_counts["name"] == 2
        assert first.members == [0, 1]
        assert not clusters[1].is_labeled

    def test_edge_cluster_endpoint_unions_and_token_split(self):
        edges = [
            Edge(0, 1, 2, frozenset({"KNOWS"}), {}),
            Edge(1, 3, 4, frozenset({"KNOWS"}), {"since": 1}),
        ]
        endpoint_labels = {
            1: frozenset({"Person"}),
            2: frozenset({"Person"}),
            3: frozenset({"~b0:ABSTRACT_NODE_1"}),
            4: frozenset({"Person"}),
        }
        clusters = build_edge_clusters(edges, np.array([0, 0]), endpoint_labels)
        (cluster,) = clusters
        assert cluster.source_labels == frozenset({"Person"})
        assert cluster.source_tokens == frozenset({"~b0:ABSTRACT_NODE_1"})
        assert cluster.property_keys == frozenset({"since"})


class TestExtractTypes:
    def _cluster(self, kind="node", labels=(), keys=(), members=(0,),
                 src=(), tgt=()):
        from collections import Counter

        return CandidateCluster(
            kind=kind,
            labels=frozenset(labels),
            property_keys=frozenset(keys),
            members=list(members),
            property_counts=Counter({k: len(members) for k in keys}),
            source_labels=frozenset(src),
            target_labels=frozenset(tgt),
        )

    def test_labeled_clusters_with_equal_labels_merge(self):
        clusters = [
            self._cluster(labels=("Post",), keys=("imgFile",), members=(0,)),
            self._cluster(labels=("Post",), keys=("content",), members=(1,)),
        ]
        schema = extract_types(clusters, [])
        assert len(schema.node_types) == 1
        post = schema.node_types["Post"]
        assert post.property_keys == frozenset({"imgFile", "content"})
        assert post.instance_count == 2

    def test_unlabeled_merges_into_similar_labeled(self):
        """Paper Example 5: Alice's cluster joins the Person cluster."""
        clusters = [
            self._cluster(labels=("Person",), keys=("name", "gender", "bday"),
                          members=(0, 1)),
            self._cluster(labels=(), keys=("name", "gender", "bday"),
                          members=(2,)),
        ]
        schema = extract_types(clusters, [])
        assert len(schema.node_types) == 1
        assert schema.node_types["Person"].members == [0, 1, 2]

    def test_dissimilar_unlabeled_becomes_abstract(self):
        clusters = [
            self._cluster(labels=("Person",), keys=("name",)),
            self._cluster(labels=(), keys=("lat", "lon"), members=(1,)),
        ]
        schema = extract_types(clusters, [])
        assert len(schema.node_types) == 2
        abstract = [t for t in schema.node_types.values() if t.abstract]
        assert len(abstract) == 1
        assert abstract[0].name.startswith("ABSTRACT_NODE")

    def test_unlabeled_pair_merges_together(self):
        clusters = [
            self._cluster(labels=(), keys=("a", "b"), members=(0,)),
            self._cluster(labels=(), keys=("a", "b"), members=(1,)),
        ]
        schema = extract_types(clusters, [])
        assert len(schema.node_types) == 1

    def test_theta_controls_merging(self):
        clusters = [
            self._cluster(labels=("T",), keys=("a", "b", "c")),
            self._cluster(labels=(), keys=("a", "b"), members=(1,)),
        ]
        strict = extract_types(clusters, [], theta=0.9)
        loose = extract_types(clusters, [], theta=0.6)
        assert len(strict.node_types) == 2
        assert len(loose.node_types) == 1

    def test_same_label_different_endpoints_stay_distinct(self):
        """LDBC LIKES: posts vs comments are different edge types."""
        clusters = [
            self._cluster("edge", labels=("LIKES",), members=(0,),
                          src=("Person",), tgt=("Post",)),
            self._cluster("edge", labels=("LIKES",), members=(1,),
                          src=("Person",), tgt=("Comment",)),
        ]
        schema = extract_types([], clusters)
        assert len(schema.edge_types) == 2
        names = set(schema.edge_types)
        assert "LIKES" in names and "LIKES@2" in names

    def test_same_label_compatible_endpoints_merge(self):
        clusters = [
            self._cluster("edge", labels=("KNOWS",), keys=("since",),
                          members=(0,), src=("Person",), tgt=("Person",)),
            self._cluster("edge", labels=("KNOWS",), members=(1,),
                          src=("Person",), tgt=("Person",)),
        ]
        schema = extract_types([], clusters)
        assert len(schema.edge_types) == 1
        assert schema.edge_types["KNOWS"].instance_count == 2

    def test_unlabeled_edge_merges_by_structure_and_endpoints(self):
        clusters = [
            self._cluster("edge", labels=("WORKS_AT",), keys=("from",),
                          members=(0,), src=("Person",), tgt=("Org",)),
            self._cluster("edge", labels=(), keys=("from",),
                          members=(1,), src=("Person",), tgt=("Org",)),
        ]
        schema = extract_types([], clusters)
        assert len(schema.edge_types) == 1

    def test_unlabeled_edge_with_wrong_endpoints_kept_apart(self):
        clusters = [
            self._cluster("edge", labels=("WORKS_AT",), keys=("from",),
                          members=(0,), src=("Person",), tgt=("Org",)),
            self._cluster("edge", labels=(), keys=("from",),
                          members=(1,), src=("Robot",), tgt=("Factory",)),
        ]
        schema = extract_types([], clusters)
        assert len(schema.edge_types) == 2

    def test_resolve_edge_endpoints(self):
        node_clusters = [
            self._cluster(labels=("Person",), keys=("name",), members=(0,)),
            self._cluster(labels=("Org",), keys=("url",), members=(1,)),
        ]
        edge_clusters = [
            self._cluster("edge", labels=("WORKS_AT",), members=(0,),
                          src=("Person",), tgt=("Org",)),
        ]
        schema = extract_types(node_clusters, edge_clusters)
        works_at = schema.edge_types["WORKS_AT"]
        assert works_at.source_types == {"Person"}
        assert works_at.target_types == {"Org"}


class TestFigure1EndToEnd:
    def test_discovers_example_types(self, figure1_store):
        from repro.core.pipeline import PGHive

        result = PGHive().discover(figure1_store)
        names = set(result.schema.node_types)
        assert {"Person", "Organization", "Post", "Place"} <= names
        # Alice (unlabeled) must be assigned to Person (Example 5).
        assert result.node_assignment[2] == "Person"
        # Both Post patterns merge into one Post type (Example 5).
        post = result.schema.node_types["Post"]
        assert post.property_keys == frozenset({"imgFile", "content"})
        edge_names = set(result.schema.edge_types)
        assert {"KNOWS", "LIKES", "WORKS_AT", "LOCATED_IN"} <= edge_names
