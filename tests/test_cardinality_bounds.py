"""Tests for exact cardinality bounds (participation analysis)."""

from repro.core.cardinality_bounds import (
    CardinalityBounds,
    compute_cardinality_bounds,
)
from repro.core.config import PGHiveConfig
from repro.core.pipeline import PGHive
from repro.graph.builder import GraphBuilder
from repro.graph.store import GraphStore


def _discover(graph):
    store = GraphStore(graph)
    result = PGHive().discover(store)
    return result, store


class TestCardinalityBounds:
    def test_total_participation_gives_lower_bound_one(self):
        """Every Person works somewhere -> source lower bound 1."""
        b = GraphBuilder()
        people = [b.node(["Person"], {"n": i}) for i in range(5)]
        org = b.node(["Org"], {"name": "x"})
        for person in people:
            b.edge(person, org, ["WORKS_AT"])
        result, store = _discover(b.build())
        bounds = compute_cardinality_bounds(result.schema, store)
        works_at = bounds["WORKS_AT"]
        assert works_at.source_min == 1
        assert works_at.source_max == 1  # each person once
        assert works_at.target_min == 1  # the single org participates
        assert works_at.target_max is None  # org has many employees

    def test_partial_participation_gives_lower_bound_zero(self):
        """Some Persons have no phone -> source lower bound 0."""
        b = GraphBuilder()
        people = [b.node(["Person"], {"n": i}) for i in range(5)]
        phones = [b.node(["Phone"], {"no": i}) for i in range(3)]
        for person, phone in zip(people[:3], phones):
            b.edge(person, phone, ["HAS_PHONE"])
        result, store = _discover(b.build())
        bounds = compute_cardinality_bounds(result.schema, store)
        has_phone = bounds["HAS_PHONE"]
        assert has_phone.source_min == 0
        assert has_phone.target_min == 1  # every phone is owned

    def test_render_interval_notation(self):
        bounds = CardinalityBounds(1, 1, 0, None)
        assert bounds.render() == "(1..1, 0..N)"

    def test_pipeline_flag_attaches_bounds(self):
        b = GraphBuilder()
        a = b.node(["A"], {"k": 1})
        c = b.node(["B"], {"k": 2})
        b.edge(a, c, ["R"])
        config = PGHiveConfig(exact_cardinality_bounds=True)
        result = PGHive(config).discover(GraphStore(b.build()))
        edge_type = result.schema.edge_types["R"]
        assert edge_type.bounds is not None
        assert edge_type.bounds.source_min == 1

    def test_bounds_render_in_pg_schema(self):
        from repro.schema.serialize_pgschema import serialize_pg_schema

        b = GraphBuilder()
        a = b.node(["A"], {"k": 1})
        c = b.node(["B"], {"k": 2})
        b.edge(a, c, ["R"])
        config = PGHiveConfig(exact_cardinality_bounds=True)
        result = PGHive(config).discover(GraphStore(b.build()))
        text = serialize_pg_schema(result.schema, "STRICT")
        assert "(1..1, 1..1)" in text

    def test_unresolved_endpoints_default_to_zero(self):
        """Abstract endpoints (no node type match) get the sound 0 bound."""
        bounds = CardinalityBounds(0, None, 0, None)
        assert bounds.source_min == 0
        assert "0..N" in bounds.render()
