"""Tests for PG-Schema and XSD serialization."""

import xml.etree.ElementTree as ET
from collections import Counter

import pytest

from repro.schema.model import (
    Cardinality,
    DataType,
    EdgeType,
    NodeType,
    PropertyStatus,
    SchemaGraph,
)
from repro.schema.serialize_pgschema import serialize_pg_schema
from repro.schema.serialize_xsd import serialize_xsd


@pytest.fixture
def small_schema() -> SchemaGraph:
    schema = SchemaGraph("social")
    person = NodeType("Person", frozenset({"Person"}), instance_count=3)
    spec = person.ensure_property("name")
    spec.datatype = DataType.STRING
    spec.status = PropertyStatus.MANDATORY
    age = person.ensure_property("age")
    age.datatype = DataType.INTEGER
    age.status = PropertyStatus.OPTIONAL
    schema.add_node_type(person)
    ghost = NodeType("ABSTRACT_NODE_1", abstract=True, instance_count=1)
    ghost.ensure_property("blob").datatype = DataType.STRING
    schema.add_node_type(ghost)
    knows = EdgeType(
        "KNOWS",
        frozenset({"KNOWS"}),
        source_labels=frozenset({"Person"}),
        target_labels=frozenset({"Person"}),
        source_types={"Person"},
        target_types={"Person"},
        cardinality=Cardinality.M_TO_N,
    )
    since = knows.ensure_property("since")
    since.datatype = DataType.DATE
    since.status = PropertyStatus.OPTIONAL
    schema.add_edge_type(knows)
    return schema


class TestPGSchema:
    def test_strict_mode_renders_datatypes_and_constraints(self, small_schema):
        text = serialize_pg_schema(small_schema, "STRICT")
        assert "CREATE GRAPH TYPE socialGraphType STRICT {" in text
        assert "(PersonType: Person {OPTIONAL age INT, name STRING})" in text
        assert "OPTIONAL since DATE" in text
        assert "/* cardinality M:N */" in text

    def test_loose_mode_is_open(self, small_schema):
        text = serialize_pg_schema(small_schema, "LOOSE")
        assert "LOOSE" in text
        assert "OPEN" in text
        assert "INT" not in text.replace("POINT", "")  # no datatypes

    def test_abstract_types_marked(self, small_schema):
        text = serialize_pg_schema(small_schema, "STRICT")
        assert "ABSTRACT ABSTRACT_NODE_1Type" in text

    def test_edge_references_endpoint_types(self, small_schema):
        text = serialize_pg_schema(small_schema, "STRICT")
        assert "(:PersonType)-[KNOWSType: KNOWS" in text
        assert "]->(:PersonType)" in text

    def test_invalid_mode_rejected(self, small_schema):
        with pytest.raises(ValueError):
            serialize_pg_schema(small_schema, "MEDIUM")

    def test_special_characters_sanitized(self):
        schema = SchemaGraph("weird name!")
        schema.add_node_type(NodeType("My Type", frozenset({"My-Label 2"})))
        text = serialize_pg_schema(schema)
        assert "My_Type" in text and "My_Label_2" in text

    def test_multilabel_conjunction(self):
        schema = SchemaGraph()
        schema.add_node_type(NodeType(
            "Person&Student", frozenset({"Person", "Student"})
        ))
        assert "Person & Student" in serialize_pg_schema(schema)


class TestXSD:
    def test_output_is_well_formed_xml(self, small_schema):
        text = serialize_xsd(small_schema)
        root = ET.fromstring(text)
        assert root.tag.endswith("schema")

    def test_complex_types_per_schema_type(self, small_schema):
        root = ET.fromstring(serialize_xsd(small_schema))
        names = {
            el.get("name")
            for el in root
            if el.tag.endswith("complexType")
        }
        assert {"Person", "ABSTRACT_NODE_1", "KNOWS"} <= names

    def test_optional_becomes_min_occurs_zero(self, small_schema):
        text = serialize_xsd(small_schema)
        root = ET.fromstring(text)
        xs = "{http://www.w3.org/2001/XMLSchema}"
        person = next(
            el for el in root
            if el.tag.endswith("complexType") and el.get("name") == "Person"
        )
        elements = {
            e.get("name"): e for e in person.iter(f"{xs}element")
        }
        assert elements["age"].get("minOccurs") == "0"
        assert elements["name"].get("minOccurs") is None
        assert elements["age"].get("type") == "xs:integer"

    def test_edge_endpoint_attributes(self, small_schema):
        root = ET.fromstring(serialize_xsd(small_schema))
        xs = "{http://www.w3.org/2001/XMLSchema}"
        knows = next(
            el for el in root
            if el.tag.endswith("complexType") and el.get("name") == "KNOWS"
        )
        attrs = {a.get("name"): a for a in knows.iter(f"{xs}attribute")}
        assert attrs["source"].get("fixed") == "Person"
        assert attrs["target"].get("fixed") == "Person"
