"""The paper's section 4.7 guarantees as executable properties.

Each guarantee is checked over randomly generated property graphs
(hypothesis): type completeness, constraint soundness, datatype
compatibility, cardinality upper bounds, schema-merge coverage, and
incremental monotonicity.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PGHiveConfig
from repro.core.pipeline import PGHive
from repro.core.datatypes import is_value_compatible
from repro.graph.builder import GraphBuilder
from repro.graph.store import GraphStore
from repro.schema.model import PropertyStatus

_LABEL_POOL = ["Person", "Org", "Post", "Tag", ""]
_KEY_POOL = ["name", "age", "url", "score", "flag", "when"]
_VALUE_POOL = [
    "text", 42, 3.5, True, "2020-01-02", "2020-01-02T10:00:00Z", "x1",
]


@st.composite
def small_graphs(draw):
    """Random small property graphs (some unlabeled, arbitrary props)."""
    num_nodes = draw(st.integers(2, 14))
    builder = GraphBuilder("random")
    for _ in range(num_nodes):
        label = draw(st.sampled_from(_LABEL_POOL))
        keys = draw(st.sets(st.sampled_from(_KEY_POOL), max_size=4))
        properties = {
            key: draw(st.sampled_from(_VALUE_POOL)) for key in keys
        }
        builder.node([label] if label else [], properties)
    num_edges = draw(st.integers(0, 20))
    for _ in range(num_edges):
        source = draw(st.integers(0, num_nodes - 1))
        target = draw(st.integers(0, num_nodes - 1))
        label = draw(st.sampled_from(["KNOWS", "LIKES", ""]))
        keys = draw(st.sets(st.sampled_from(["since", "w"]), max_size=2))
        builder.edge(
            source, target, [label] if label else [],
            {key: draw(st.sampled_from(_VALUE_POOL)) for key in keys},
        )
    return builder.build()


@settings(max_examples=25, deadline=None)
@given(small_graphs())
def test_type_completeness(graph):
    """Guarantee (i): no label or property of any node is lost -- some
    type carries the node's labels and all of its property keys."""
    result = PGHive().discover(GraphStore(graph))
    for node in graph.nodes():
        type_name = result.node_assignment[node.id]
        node_type = result.schema.node_types[type_name]
        assert node.labels <= node_type.labels
        assert node.property_keys <= node_type.property_keys
    for edge in graph.edges():
        type_name = result.edge_assignment[edge.id]
        edge_type = result.schema.edge_types[type_name]
        assert edge.labels <= edge_type.labels
        assert edge.property_keys <= edge_type.property_keys


@settings(max_examples=25, deadline=None)
@given(small_graphs())
def test_mandatory_soundness(graph):
    """Guarantee (ii): a property marked MANDATORY is present on every
    instance of its type."""
    result = PGHive().discover(GraphStore(graph))
    for node_type in result.schema.node_types.values():
        mandatory = {
            key
            for key, spec in node_type.properties.items()
            if spec.status is PropertyStatus.MANDATORY
        }
        for member in node_type.members:
            assert mandatory <= graph.node(member).property_keys
    for edge_type in result.schema.edge_types.values():
        mandatory = {
            key
            for key, spec in edge_type.properties.items()
            if spec.status is PropertyStatus.MANDATORY
        }
        for member in edge_type.members:
            assert mandatory <= graph.edge(member).property_keys


@settings(max_examples=25, deadline=None)
@given(small_graphs())
def test_datatype_compatibility(graph):
    """Guarantee (iii): every observed value conforms to the inferred
    datatype of its property."""
    result = PGHive().discover(GraphStore(graph))
    for node_type in result.schema.node_types.values():
        for member in node_type.members:
            for key, value in graph.node(member).properties.items():
                spec = node_type.properties[key]
                assert is_value_compatible(value, spec.datatype), (
                    key, value, spec.datatype,
                )


@settings(max_examples=25, deadline=None)
@given(small_graphs())
def test_cardinality_upper_bounds(graph):
    """Guarantee (iv): recorded degree extremes really are maxima over
    the type's member edges."""
    result = PGHive().discover(GraphStore(graph))
    for edge_type in result.schema.edge_types.values():
        out_degree: dict[int, int] = {}
        in_degree: dict[int, int] = {}
        for member in edge_type.members:
            edge = graph.edge(member)
            out_degree[edge.source] = out_degree.get(edge.source, 0) + 1
            in_degree[edge.target] = in_degree.get(edge.target, 0) + 1
        assert edge_type.max_out == max(out_degree.values(), default=0)
        assert edge_type.max_in == max(in_degree.values(), default=0)


@settings(max_examples=15, deadline=None)
@given(small_graphs(), st.integers(2, 4))
def test_incremental_monotonicity(graph, num_batches):
    """Guarantee (v): the incremental schema chain only ever grows."""
    import copy

    from repro.core.incremental import IncrementalDiscovery
    from repro.schema.diff import diff_schemas

    store = GraphStore(graph)
    engine = IncrementalDiscovery()
    previous = copy.deepcopy(engine.schema)
    for batch in store.batches(num_batches, seed=0):
        engine.process_batch(batch.nodes, batch.edges, batch.endpoint_labels)
        diff = diff_schemas(previous, engine.schema)
        assert diff.is_monotone_extension
        previous = copy.deepcopy(engine.schema)


@settings(max_examples=15, deadline=None)
@given(small_graphs())
def test_every_element_assigned_exactly_once(graph):
    """Bookkeeping invariant: type memberships partition the elements."""
    result = PGHive().discover(GraphStore(graph))
    node_members = [
        m for t in result.schema.node_types.values() for m in t.members
    ]
    assert sorted(node_members) == sorted(n.id for n in graph.nodes())
    edge_members = [
        m for t in result.schema.edge_types.values() for m in t.members
    ]
    assert sorted(edge_members) == sorted(e.id for e in graph.edges())


@settings(max_examples=10, deadline=None)
@given(small_graphs())
def test_discovered_schema_validates_its_graph_loose(graph):
    """A schema discovered from G must cover G in LOOSE mode."""
    from repro.schema.validate import ValidationMode, validate_graph

    result = PGHive().discover(GraphStore(graph))
    report = validate_graph(graph, result.schema, ValidationMode.LOOSE)
    assert report.is_valid, [v.detail for v in report.violations]
