"""Unit tests for the GraphStore facade (the Neo4j substitute)."""

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.store import GraphStore


class TestScans:
    def test_counts_match_graph(self, figure1_store):
        assert figure1_store.count_nodes() == 7
        assert figure1_store.count_edges() == 6
        assert len(list(figure1_store.scan_nodes())) == 7
        assert len(list(figure1_store.scan_edges())) == 6

    def test_endpoints(self, figure1_store):
        edge = next(figure1_store.scan_edges())
        source, target = figure1_store.endpoints(edge)
        assert source.id == edge.source and target.id == edge.target


class TestBatches:
    def test_batches_partition_nodes(self, figure1_store):
        batches = list(figure1_store.batches(3, seed=1))
        assert len(batches) == 3
        seen = [n.id for b in batches for n in b.nodes]
        assert sorted(seen) == list(range(7))

    def test_batches_partition_edges_by_source(self, figure1_store):
        batches = list(figure1_store.batches(2, seed=1))
        edge_ids = sorted(e.id for b in batches for e in b.edges)
        assert edge_ids == list(range(6))
        # Each edge must live in the batch of its source node.
        for batch in batches:
            node_ids = {n.id for n in batch.nodes}
            for edge in batch.edges:
                assert edge.source in node_ids

    def test_batch_endpoint_labels_cover_cross_batch_targets(self, figure1_store):
        for batch in figure1_store.batches(3, seed=1):
            for edge in batch.edges:
                assert edge.source in batch.endpoint_labels
                assert edge.target in batch.endpoint_labels

    def test_single_batch_is_whole_graph(self, figure1_store):
        (batch,) = figure1_store.batches(1)
        assert len(batch.nodes) == 7
        assert len(batch.edges) == 6
        assert batch.size == 13

    def test_invalid_batch_count(self, figure1_store):
        with pytest.raises(ValueError):
            list(figure1_store.batches(0))

    def test_batching_is_seed_deterministic(self, figure1_store):
        first = [
            [n.id for n in b.nodes] for b in figure1_store.batches(3, seed=5)
        ]
        second = [
            [n.id for n in b.nodes] for b in figure1_store.batches(3, seed=5)
        ]
        assert first == second


class TestShardPlans:
    def test_shards_reproduce_batches_exactly(self, figure1_store):
        batches = list(figure1_store.batches(3, seed=5))
        plans = figure1_store.plan_shards(3, seed=5)
        for batch, plan in zip(batches, plans):
            shard = figure1_store.materialize_shard(plan)
            assert [n.id for n in shard.nodes] == [n.id for n in batch.nodes]
            assert [e.id for e in shard.edges] == [e.id for e in batch.edges]
            assert shard.endpoint_labels == batch.endpoint_labels
            assert shard.index == batch.index

    def test_shards_materialize_in_any_order(self, figure1_store):
        plans = figure1_store.plan_shards(3, seed=5)
        reversed_nodes = [
            [n.id for n in figure1_store.materialize_shard(p).nodes]
            for p in reversed(plans)
        ]
        forward_nodes = [
            [n.id for n in figure1_store.materialize_shard(p).nodes]
            for p in plans
        ]
        assert reversed_nodes == forward_nodes[::-1]

    def test_plans_are_picklable_scalars(self, figure1_store):
        import pickle

        plans = figure1_store.plan_shards(2, seed=1)
        restored = pickle.loads(pickle.dumps(plans))
        assert restored == plans
        shard = figure1_store.materialize_shard(restored[1])
        assert shard.index == 1

    def test_out_of_range_index_rejected(self, figure1_store):
        from repro.graph.store import ShardPlan

        with pytest.raises(ValueError):
            figure1_store.materialize_shard(ShardPlan(3, 3))

    def test_invalid_shard_count(self, figure1_store):
        with pytest.raises(ValueError):
            figure1_store.plan_shards(0)

    def test_partition_cache_reused(self, figure1_store):
        figure1_store.plan_shards(3, seed=5)
        cached = figure1_store._partition_cache
        figure1_store.materialize_shard(
            figure1_store.plan_shards(3, seed=5)[0]
        )
        assert figure1_store._partition_cache is cached
        # A different sharding replaces the (single-entry) cache.
        figure1_store.plan_shards(2, seed=5)
        assert figure1_store._partition_cache is not cached


class TestDegreeExtremes:
    def test_fan_out(self):
        b = GraphBuilder()
        hub = b.node(["Hub"])
        leaves = [b.node(["Leaf"]) for _ in range(4)]
        edge_ids = [b.edge(hub, leaf, ["HAS"]) for leaf in leaves]
        store = GraphStore(b.build())
        max_out, max_in = store.degree_extremes(edge_ids)
        assert (max_out, max_in) == (4, 1)

    def test_fan_in(self):
        b = GraphBuilder()
        sink = b.node(["Sink"])
        sources = [b.node(["Src"]) for _ in range(3)]
        edge_ids = [b.edge(s, sink, ["TO"]) for s in sources]
        store = GraphStore(b.build())
        assert store.degree_extremes(edge_ids) == (1, 3)

    def test_empty_edge_set(self, figure1_store):
        assert figure1_store.degree_extremes([]) == (0, 0)


class TestSampling:
    def test_sample_nodes_bounded(self, figure1_store):
        sample = figure1_store.sample_nodes(3, seed=0)
        assert len(sample) == 3

    def test_sample_nodes_all_when_large(self, figure1_store):
        assert len(figure1_store.sample_nodes(100)) == 7

    def test_sample_property_values_minimum(self, figure1_store):
        nodes = list(figure1_store.scan_nodes())
        values = figure1_store.sample_property_values(
            nodes, "name", fraction=0.1, minimum=2, seed=0
        )
        assert 2 <= len(values) <= 6  # six nodes carry "name"

    def test_sample_property_values_returns_all_when_few(self, figure1_store):
        nodes = list(figure1_store.scan_nodes())
        values = figure1_store.sample_property_values(
            nodes, "url", fraction=0.1, minimum=10
        )
        assert values == ["https://ics.example"]
