"""Out-of-core slab backend: disk/memory equivalence and recovery.

The contract under test: :class:`~repro.graph.diskstore.DiskGraphStore`
is observationally identical to the in-memory
:class:`~repro.graph.store.GraphStore` -- every scan, lookup, partition,
shard materialization and discovery mode produces byte-identical output
-- while holding only mmap views instead of the graph.  The recovery
half: a kill during slab ingest or during discovery resumes to the same
bytes an uninterrupted run produces.
"""

import json
import os

import numpy
import pytest

from repro.core import PGHive, PGHiveConfig
from repro.core.columns import edge_columns, node_columns
from repro.core.faults import InjectedFault
from repro.core.incremental import IncrementalDiscovery
from repro.core.parallel import ShardRecoveryError, fork_available
from repro.datasets import get_dataset
from repro.graph.builder import GraphBuilder
from repro.graph.model import Node
from repro.graph.diskstore import (
    DiskGraphStore,
    SlabIngestError,
    SlabIngestSink,
    ingest_jsonl_slabs,
    is_slab_directory,
    write_graph_to_slabs,
)
from repro.graph.io import (
    IngestReport,
    load_graph_jsonl,
    save_graph_jsonl,
    stream_graph_jsonl,
)
from repro.graph.scrub import repair_slab_directory, scrub_slab_directory
from repro.graph.slab import SlabCorruptionError, SlabReader, SlabWriter
from repro.graph.store import GraphStore
from repro.schema.serialize_pgschema import serialize_pg_schema

NUM_BATCHES = 4

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="kill tests require fork"
)


@pytest.fixture(scope="module")
def ldbc_graph():
    return get_dataset("ldbc", scale=1, seed=0).graph


@pytest.fixture(scope="module")
def memory_store(ldbc_graph):
    return GraphStore(ldbc_graph)


@pytest.fixture(scope="module")
def disk_store(ldbc_graph, tmp_path_factory):
    store = write_graph_to_slabs(
        ldbc_graph, tmp_path_factory.mktemp("ldbc-slabs")
    )
    yield store
    store.close()


@pytest.fixture(scope="module")
def sequential_schema(memory_store):
    result = PGHive(PGHiveConfig()).discover_incremental(
        memory_store, num_batches=NUM_BATCHES
    )
    return serialize_pg_schema(result.schema)


def _nodes_equal(a, b):
    assert a.id == b.id
    assert a.labels == b.labels
    assert dict(a.properties) == dict(b.properties)
    assert list(a.properties) == list(b.properties)  # key order too


def _edges_equal(a, b):
    assert a.id == b.id
    assert (a.source, a.target) == (b.source, b.target)
    assert a.labels == b.labels
    assert dict(a.properties) == dict(b.properties)
    assert list(a.properties) == list(b.properties)


def _batches_equal(a, b):
    assert [n.id for n in a.nodes] == [n.id for n in b.nodes]
    assert [e.id for e in a.edges] == [e.id for e in b.edges]
    for x, y in zip(a.nodes, b.nodes):
        _nodes_equal(x, y)
    for x, y in zip(a.edges, b.edges):
        _edges_equal(x, y)
    assert a.endpoint_labels == b.endpoint_labels


class TestStoreContractEquivalence:
    def test_identity_and_counts(self, memory_store, disk_store):
        assert disk_store.name == memory_store.name
        assert disk_store.count_nodes() == memory_store.count_nodes()
        assert disk_store.count_edges() == memory_store.count_edges()
        assert is_slab_directory(disk_store.directory)

    def test_scans_preserve_insertion_order(self, memory_store, disk_store):
        for a, b in zip(memory_store.scan_nodes(), disk_store.scan_nodes()):
            _nodes_equal(a, b)
        for a, b in zip(memory_store.scan_edges(), disk_store.scan_edges()):
            _edges_equal(a, b)

    def test_point_lookups(self, memory_store, disk_store):
        for node in list(memory_store.scan_nodes())[:50]:
            _nodes_equal(node, disk_store.node(node.id))
        for edge in list(memory_store.scan_edges())[:50]:
            _edges_equal(edge, disk_store.edge(edge.id))
            src, tgt = memory_store.endpoints(edge)
            dsrc, dtgt = disk_store.endpoints(disk_store.edge(edge.id))
            _nodes_equal(src, dsrc)
            _nodes_equal(tgt, dtgt)

    def test_missing_ids_raise(self, disk_store):
        with pytest.raises(KeyError):
            disk_store.node(10**9)
        with pytest.raises(KeyError):
            disk_store.edge(10**9)

    @pytest.mark.parametrize("num_shards,seed,shuffle", [
        (1, 0, True), (3, 0, True), (3, 42, True), (4, 7, False),
    ])
    def test_partition_tables_identical(
        self, memory_store, disk_store, num_shards, seed, shuffle
    ):
        mem = memory_store.partition_tables(num_shards, seed, shuffle)
        dsk = disk_store.partition_tables(num_shards, seed, shuffle)
        for a, b in zip(mem[0], dsk[0]):
            numpy.testing.assert_array_equal(a, b)
        numpy.testing.assert_array_equal(mem[1], dsk[1])
        numpy.testing.assert_array_equal(mem[2], dsk[2])

    def test_bucket_edge_range_identical(self, memory_store, disk_store):
        num_shards = 3
        _, sorted_ids, shard_of = memory_store.partition_tables(
            num_shards, seed=0, shuffle=True
        )
        total = memory_store.count_edges()
        for start, stop in [(0, total), (0, total // 2), (total // 3, total)]:
            mem = memory_store.bucket_edge_range(
                start, stop, sorted_ids, shard_of, num_shards
            )
            dsk = disk_store.bucket_edge_range(
                start, stop, sorted_ids, shard_of, num_shards
            )
            for a, b in zip(mem, dsk):
                numpy.testing.assert_array_equal(a, b)

    def test_batches_identical(self, memory_store, disk_store):
        for a, b in zip(
            memory_store.batches(3, seed=1), disk_store.batches(3, seed=1)
        ):
            _batches_equal(a, b)

    def test_shard_plans_materialize_identically(
        self, memory_store, disk_store
    ):
        mem_plans = memory_store.plan_shards(4, seed=9)
        dsk_plans = disk_store.plan_shards(4, seed=9)
        for mp, dp in zip(mem_plans, dsk_plans):
            _batches_equal(
                memory_store.materialize_shard(mp),
                disk_store.materialize_shard(dp),
            )

    def test_degree_extremes_identical(self, memory_store, disk_store):
        edge_ids = [e.id for e in memory_store.scan_edges()][:400]
        assert disk_store.degree_extremes(edge_ids) == \
            memory_store.degree_extremes(edge_ids)

    @pytest.mark.parametrize("size", [10, 10**6])
    def test_sample_nodes_identical(self, memory_store, disk_store, size):
        mem = memory_store.sample_nodes(size, seed=3)
        dsk = disk_store.sample_nodes(size, seed=3)
        assert len(mem) == len(dsk)
        for a, b in zip(mem, dsk):
            _nodes_equal(a, b)

    def test_fingerprint_tracks_durable_state(self, disk_store, tmp_path):
        assert disk_store.journal_fingerprint() is not None
        builder = GraphBuilder("tiny")
        builder.node(["A"], {"x": 1})
        store = write_graph_to_slabs(builder.build(), tmp_path / "tiny")
        before = store.journal_fingerprint()
        with SlabWriter(tmp_path / "tiny") as writer:
            writer.add_nodes(
                [Node(id=99, labels=frozenset({"B"}), properties={"y": 2})]
            )
            writer.commit()
        store.refresh()
        assert store.journal_fingerprint() != before
        store.close()

    def test_memory_store_has_no_fingerprint(self, memory_store):
        assert memory_store.journal_fingerprint() is None


class TestColumnizeShard:
    def test_columnize_matches_materialized_batch(
        self, memory_store, disk_store
    ):
        for plan in disk_store.plan_shards(3, seed=5):
            batch = memory_store.materialize_shard(
                memory_store.plan_shards(3, seed=5)[plan.index]
            )
            ref_n = node_columns(batch.nodes)
            ref_e = edge_columns(batch.edges, batch.endpoint_labels)
            got_n, got_e = disk_store.columnize_shard(plan)
            numpy.testing.assert_array_equal(got_n.ids, ref_n.ids)
            numpy.testing.assert_array_equal(got_n.label_ids, ref_n.label_ids)
            numpy.testing.assert_array_equal(
                got_n.keyset_ids, ref_n.keyset_ids
            )
            assert got_n.labels.sets == ref_n.labels.sets
            assert got_n.labels.tokens == ref_n.labels.tokens
            assert got_n.keys.sets == ref_n.keys.sets
            assert got_n.keys.orders == ref_n.keys.orders
            numpy.testing.assert_array_equal(got_e.ids, ref_e.ids)
            numpy.testing.assert_array_equal(
                got_e.label_ids, ref_e.label_ids
            )
            numpy.testing.assert_array_equal(
                got_e.keyset_ids, ref_e.keyset_ids
            )
            numpy.testing.assert_array_equal(got_e.source, ref_e.source)
            numpy.testing.assert_array_equal(got_e.target, ref_e.target)
            numpy.testing.assert_array_equal(
                got_e.src_label_ids, ref_e.src_label_ids
            )
            numpy.testing.assert_array_equal(
                got_e.tgt_label_ids, ref_e.tgt_label_ids
            )
            assert got_e.labels.sets == ref_e.labels.sets
            assert got_e.labels.tokens == ref_e.labels.tokens
            assert got_e.keys.sets == ref_e.keys.sets
            assert got_e.keys.orders == ref_e.keys.orders

    def test_key_order_follows_shard_representative_row(self, tmp_path):
        """Two rows share a key *set* but not a key *order*: each shard's
        interner must record its own first row's order, exactly as the
        per-batch :func:`node_columns` path does."""
        builder = GraphBuilder("order")
        builder.node(["P"], {"a": 1, "b": 2})
        builder.node(["P"], {"b": 3, "a": 4})  # same set, reversed order
        graph = builder.build()
        store = write_graph_to_slabs(graph, tmp_path / "order")
        memory = GraphStore(graph)
        for plan_m, plan_d in zip(
            memory.plan_shards(2, seed=0), store.plan_shards(2, seed=0)
        ):
            batch = memory.materialize_shard(plan_m)
            ncols, _ = store.columnize_shard(plan_d)
            assert ncols.keys.orders == node_columns(batch.nodes).keys.orders
        store.close()


class TestDiscoveryByteIdentity:
    def test_sequential_discover(self, memory_store, disk_store):
        mem = PGHive().discover(memory_store)
        dsk = PGHive().discover(disk_store)
        assert serialize_pg_schema(dsk.schema) == \
            serialize_pg_schema(mem.schema)

    def test_incremental_discover(self, disk_store, sequential_schema):
        result = PGHive(PGHiveConfig()).discover_incremental(
            disk_store, num_batches=NUM_BATCHES
        )
        assert serialize_pg_schema(result.schema) == sequential_schema

    @needs_fork
    def test_parallel_discover(self, disk_store, sequential_schema):
        result = PGHive(PGHiveConfig(jobs=2)).discover_incremental(
            disk_store, num_batches=NUM_BATCHES
        )
        assert serialize_pg_schema(result.schema) == sequential_schema

    def test_postprocessed_modes(self, memory_store, disk_store):
        config = PGHiveConfig(
            infer_value_profiles=True, exact_cardinality_bounds=True
        )
        mem = PGHive(config).discover(memory_store)
        dsk = PGHive(config).discover(disk_store)
        assert serialize_pg_schema(dsk.schema) == \
            serialize_pg_schema(mem.schema)


class TestIngest:
    def test_jsonl_ingest_equals_memory_load(self, ldbc_graph, tmp_path):
        path = tmp_path / "g.jsonl"
        save_graph_jsonl(ldbc_graph, path)
        store = ingest_jsonl_slabs(path, tmp_path / "slabs")
        loaded = load_graph_jsonl(path)
        assert store.count_nodes() == loaded.num_nodes
        assert store.count_edges() == loaded.num_edges
        for node, other in zip(loaded.nodes(), store.scan_nodes()):
            _nodes_equal(node, other)
        for edge, other in zip(loaded.edges(), store.scan_edges()):
            _edges_equal(edge, other)
        store.close()

    def test_collect_report_matches_memory_loader(self, tmp_path):
        lines = [
            json.dumps({"kind": "node", "id": 0, "labels": ["P"]}),
            json.dumps({"kind": "node", "id": 0, "labels": ["Dup"]}),
            "not json",
            json.dumps({"kind": "edge", "id": 0, "source": 0, "target": 9}),
        ]
        path = tmp_path / "dirty.jsonl"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        mem_report = IngestReport()
        load_graph_jsonl(path, on_error="collect", report=mem_report)
        dsk_report = IngestReport()
        store = ingest_jsonl_slabs(
            path, tmp_path / "slabs", on_error="collect", report=dsk_report
        )
        assert [(e.line, e.reason) for e in dsk_report.errors] == \
            [(e.line, e.reason) for e in mem_report.errors]
        assert store.count_nodes() == 1
        assert store.count_edges() == 0
        store.close()

    def test_raise_policy_reports_same_first_error(self, tmp_path):
        lines = [
            json.dumps({"kind": "node", "id": 0}),
            json.dumps({"kind": "node", "id": 0}),
            "not json",
        ]
        path = tmp_path / "dirty.jsonl"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(ValueError, match=r"dirty\.jsonl:2: duplicate"):
            load_graph_jsonl(path)
        with pytest.raises(ValueError, match=r"dirty\.jsonl:2: duplicate"):
            ingest_jsonl_slabs(path, tmp_path / "slabs")

    def test_reingest_without_resume_resets(self, figure1_graph, tmp_path):
        path = tmp_path / "g.jsonl"
        save_graph_jsonl(figure1_graph, path)
        first = ingest_jsonl_slabs(path, tmp_path / "slabs")
        first.close()
        again = ingest_jsonl_slabs(path, tmp_path / "slabs")
        assert again.count_nodes() == figure1_graph.num_nodes
        assert again.count_edges() == figure1_graph.num_edges
        again.close()


class TestKillRecovery:
    @needs_fork
    def test_kill_during_ingest_resumes_byte_identical(
        self, ldbc_graph, tmp_path
    ):
        """SIGKILL-equivalent death mid-ingest: the child commits a slab
        prefix and dies without cleanup; a resumed ingest completes to
        the same bytes (and schema) as an uninterrupted one."""
        path = tmp_path / "g.jsonl"
        save_graph_jsonl(ldbc_graph, path)
        slab_dir = tmp_path / "slabs"
        pid = os.fork()
        if pid == 0:  # pragma: no cover - child dies deliberately
            writer = SlabWriter(path.parent / "slabs", name=path.stem,
                                slab_bytes=4096)
            sink = SlabIngestSink(writer, str(path), 4096)

            def die_after_commit(line_number: int) -> None:
                sink.chunk_done(line_number)
                if writer.source_progress(str(path)):
                    os._exit(137)

            stream_graph_jsonl(path, sink, on_progress=die_after_commit)
            os._exit(1)  # should have died mid-stream
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 137
        probe = SlabWriter(slab_dir, name=path.stem)
        progress = probe.source_progress(str(path))
        probe.close()
        assert 0 < progress  # a durable prefix exists...
        resumed = ingest_jsonl_slabs(path, slab_dir, resume=True)
        clean = ingest_jsonl_slabs(path, tmp_path / "clean")
        assert resumed.reader.fingerprint != ""
        for a, b in zip(clean.scan_nodes(), resumed.scan_nodes()):
            _nodes_equal(a, b)
        for a, b in zip(clean.scan_edges(), resumed.scan_edges()):
            _edges_equal(a, b)
        assert serialize_pg_schema(PGHive().discover(resumed).schema) == \
            serialize_pg_schema(PGHive().discover(clean).schema)
        resumed.close()
        clean.close()

    def test_crash_at_batch_then_resume_on_disk(
        self, disk_store, sequential_schema, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        crashing = PGHiveConfig(
            checkpoint_dir=str(ckpt), faults="batch:2:raise"
        )
        with pytest.raises(InjectedFault):
            PGHive(crashing).discover_incremental(
                disk_store, num_batches=NUM_BATCHES
            )
        assert IncrementalDiscovery.has_checkpoint(ckpt)
        resumed = PGHive(
            PGHiveConfig(checkpoint_dir=str(ckpt))
        ).discover_incremental(
            disk_store, num_batches=NUM_BATCHES, resume=True
        )
        assert resumed.resumed_from == 2
        assert serialize_pg_schema(resumed.schema) == sequential_schema

    @needs_fork
    def test_killed_worker_recovers_on_disk(
        self, disk_store, sequential_schema
    ):
        config = PGHiveConfig(
            jobs=2, parallel_chunk="1", faults="shard:1:kill",
            shard_retry_backoff=0.0,
        )
        result = PGHive(config).discover_incremental(
            disk_store, num_batches=NUM_BATCHES
        )
        assert serialize_pg_schema(result.schema) == sequential_schema

    @needs_fork
    def test_parallel_crash_then_resume_on_disk(
        self, disk_store, sequential_schema, tmp_path
    ):
        """A jobs>1 run over slabs dies mid-pool; resume recomputes only
        the missing shards, byte-identical to a clean run."""
        ckpt = tmp_path / "ckpt"
        crashing = PGHiveConfig(
            jobs=2, parallel_chunk="1", checkpoint_dir=str(ckpt),
            faults="shard:2:raise:99", shard_retries=0,
            shard_retry_backoff=0.0, strict_recovery=True,
        )
        with pytest.raises(ShardRecoveryError):
            PGHive(crashing).discover_incremental(
                disk_store, num_batches=NUM_BATCHES
            )
        assert sorted((ckpt / "shards").glob("shard-*.json"))
        resumed = PGHive(PGHiveConfig(
            jobs=2, parallel_chunk="1", checkpoint_dir=str(ckpt)
        )).discover_incremental(
            disk_store, num_batches=NUM_BATCHES, resume=True
        )
        assert resumed.resumed_shards
        assert 2 not in resumed.resumed_shards
        assert serialize_pg_schema(resumed.schema) == sequential_schema

class TestCorruption:
    """Injected storage corruption: detect, scrub, repair, resume.

    The invariant: no injected damage is ever *silently read* -- every
    scenario either surfaces as a structured ``SlabCorruptionError`` or
    is quarantined as a ``ShardFailure(kind="corruption")`` -- and after
    ``repair`` plus a resumed ingest the slabs are byte-identical to an
    undamaged run.
    """

    DATA_FILES = (
        "nodes-ids.i64", "nodes-labels.i64", "nodes-keys.i64",
        "nodes-propend.i64", "nodes-props.dat",
        "edges-ids.i64", "edges-src.i64", "edges-tgt.i64",
        "edges-labels.i64", "edges-keys.i64", "edges-propend.i64",
        "edges-props.dat",
    )

    def _assert_same_slabs(self, damaged, clean):
        for name in self.DATA_FILES:
            assert (damaged / name).read_bytes() == \
                (clean / name).read_bytes(), name

    def test_ingest_bitflip_detected_repaired_resumed(
        self, ldbc_graph, tmp_path
    ):
        """A bit flip after a mid-ingest commit: the next open refuses
        the directory, repair rolls back to the last verified
        generation, and a resumed ingest restores identical bytes."""
        path = tmp_path / "g.jsonl"
        save_graph_jsonl(ldbc_graph, path)
        clean = ingest_jsonl_slabs(path, tmp_path / "clean",
                                   slab_bytes=4096)
        slab_dir = tmp_path / "slabs"
        # The final open inside ingest_jsonl_slabs verifies checksums:
        # the flip is caught at the first read after the damage.
        with pytest.raises(SlabCorruptionError) as info:
            ingest_jsonl_slabs(path, slab_dir, slab_bytes=4096,
                               faults="slab-bitflip:2:corrupt")
        assert info.value.kind == "checksum"
        with pytest.raises(SlabCorruptionError):
            DiskGraphStore(slab_dir)
        report = repair_slab_directory(slab_dir)
        assert report.repaired
        assert report.restored.startswith("generation")
        assert scrub_slab_directory(slab_dir).clean
        resumed = ingest_jsonl_slabs(path, slab_dir, slab_bytes=4096,
                                     resume=True)
        resumed.close()
        self._assert_same_slabs(slab_dir, tmp_path / "clean")
        with DiskGraphStore(slab_dir) as repaired_store:
            assert serialize_pg_schema(
                PGHive().discover(repaired_store).schema
            ) == serialize_pg_schema(PGHive().discover(clean).schema)
        clean.close()

    def test_ingest_torn_write_detected_repaired_resumed(
        self, ldbc_graph, tmp_path
    ):
        """A sheared heap append (the kernel acknowledged bytes that
        never reached the medium) surfaces as a truncation at open."""
        path = tmp_path / "g.jsonl"
        save_graph_jsonl(ldbc_graph, path)
        ingest_jsonl_slabs(path, tmp_path / "clean",
                           slab_bytes=4096).close()
        slab_dir = tmp_path / "slabs"
        with pytest.raises(SlabCorruptionError):
            ingest_jsonl_slabs(path, slab_dir, slab_bytes=4096,
                               faults="slab-torn-write:3:corrupt")
        with pytest.raises(SlabCorruptionError):
            SlabReader(slab_dir)
        report = scrub_slab_directory(slab_dir)
        assert not report.clean
        assert any(v.status in ("truncated", "checksum")
                   for v in report.verdicts)
        assert repair_slab_directory(slab_dir).repaired
        ingest_jsonl_slabs(path, slab_dir, slab_bytes=4096,
                           resume=True).close()
        self._assert_same_slabs(slab_dir, tmp_path / "clean")

    def test_enospc_raises_structured_error_and_resumes(
        self, ldbc_graph, tmp_path
    ):
        """A full disk mid-flush aborts ingest with the committed
        progress attached; freeing space and resuming loses nothing."""
        path = tmp_path / "g.jsonl"
        save_graph_jsonl(ldbc_graph, path)
        ingest_jsonl_slabs(path, tmp_path / "clean",
                           slab_bytes=4096).close()
        slab_dir = tmp_path / "slabs"
        with pytest.raises(SlabIngestError) as info:
            ingest_jsonl_slabs(path, slab_dir, slab_bytes=4096,
                               faults="slab-enospc:4:enospc")
        assert info.value.directory == str(slab_dir)
        assert info.value.source == str(path)
        assert info.value.committed_line >= 0
        resumed = ingest_jsonl_slabs(path, slab_dir, slab_bytes=4096,
                                     resume=True)
        assert resumed.reader.source_progress(str(path)) > 0
        resumed.close()
        self._assert_same_slabs(slab_dir, tmp_path / "clean")

    def test_truncated_manifest_repair_and_resume(self, tmp_path):
        """The second commit's manifest rename lands half-written: the
        reader rejects it by checksum, repair falls back to the backup
        (the first commit), and a resumed writer restores equality."""
        from repro.graph.model import Node

        def batch(start):
            return [
                Node(id=i, labels=frozenset({"P"}), properties={"x": i})
                for i in range(start, start + 8)
            ]

        slab_dir = tmp_path / "slabs"
        writer = SlabWriter(slab_dir, name="t",
                            faults="manifest-partial-rename:1:corrupt")
        writer.add_nodes(batch(0))
        writer.commit({"src": 8})
        writer.add_nodes(batch(8))
        writer.commit({"src": 16})  # manifest lands truncated
        writer.close()
        with pytest.raises(SlabCorruptionError) as info:
            SlabReader(slab_dir)
        assert info.value.kind == "manifest"
        report = repair_slab_directory(slab_dir)
        assert report.repaired
        probe = SlabWriter(slab_dir, name="t")
        assert probe.source_progress("src") == 8  # backup = first commit
        probe.add_nodes(batch(8))
        probe.commit({"src": 16})
        probe.close()
        reference = tmp_path / "reference"
        with SlabWriter(reference, name="t") as ref:
            ref.add_nodes(batch(0))
            ref.commit({"src": 8})
            ref.add_nodes(batch(8))
            ref.commit({"src": 16})
        for name in ("nodes-ids.i64", "nodes-props.dat"):
            assert (slab_dir / name).read_bytes() == \
                (reference / name).read_bytes()

    @pytest.fixture
    def damaged_store(self, ldbc_graph, tmp_path):
        """A verified-open store whose first node property record is
        then damaged on disk (the mmap sees the new bytes): open-time
        verification cannot catch it, the read-time guard must."""
        store = write_graph_to_slabs(ldbc_graph, tmp_path / "slabs")
        ends = numpy.fromfile(
            tmp_path / "slabs" / "nodes-propend.i64", dtype=numpy.int64
        )
        with (tmp_path / "slabs" / "nodes-props.dat").open("r+b") as handle:
            handle.write(b"\xff" * int(ends[0]))
        yield store
        store.close()

    def test_raise_policy_fails_fast_sequential(self, damaged_store):
        config = PGHiveConfig(corrupt_slab_policy="raise")
        with pytest.raises(SlabCorruptionError) as info:
            PGHive(config).discover_incremental(
                damaged_store, num_batches=NUM_BATCHES
            )
        assert info.value.kind == "heap-decode"

    def test_skip_policy_quarantines_sequential(self, damaged_store):
        config = PGHiveConfig(corrupt_slab_policy="skip")
        result = PGHive(config).discover_incremental(
            damaged_store, num_batches=NUM_BATCHES
        )
        assert result.degraded_shards
        assert all(
            f.kind == "corruption" for f in result.shard_failures
        )
        assert result.schema.node_types  # undamaged shards contributed

    def test_skip_policy_with_strict_recovery_still_fails(
        self, damaged_store
    ):
        config = PGHiveConfig(
            corrupt_slab_policy="skip", strict_recovery=True
        )
        with pytest.raises(ShardRecoveryError):
            PGHive(config).discover_incremental(
                damaged_store, num_batches=NUM_BATCHES
            )

    @needs_fork
    def test_skip_policy_quarantines_parallel(self, damaged_store):
        config = PGHiveConfig(
            jobs=2, parallel_chunk="1", corrupt_slab_policy="skip",
            shard_retry_backoff=0.0,
        )
        result = PGHive(config).discover_incremental(
            damaged_store, num_batches=NUM_BATCHES
        )
        assert result.degraded_shards
        corrupted = [
            f for f in result.shard_failures if f.kind == "corruption"
        ]
        assert corrupted
        assert all(f.recovered_by is None for f in corrupted)

    @needs_fork
    def test_raise_policy_fails_fast_parallel(self, damaged_store):
        config = PGHiveConfig(
            jobs=2, parallel_chunk="1", corrupt_slab_policy="raise",
            shard_retry_backoff=0.0,
        )
        with pytest.raises(SlabCorruptionError):
            PGHive(config).discover_incremental(
                damaged_store, num_batches=NUM_BATCHES
            )


class TestJournalInvalidation:
    @needs_fork
    def test_slab_generation_change_invalidates_journal(
        self, ldbc_graph, tmp_path
    ):
        """The shard journal records the slab fingerprint: appending to
        the store between runs makes every journaled shard stale."""
        ckpt = tmp_path / "ckpt"
        store = write_graph_to_slabs(ldbc_graph, tmp_path / "slabs")
        config = PGHiveConfig(jobs=2, checkpoint_dir=str(ckpt))
        PGHive(config).discover_incremental(store, num_batches=NUM_BATCHES)
        same = PGHive(config).discover_incremental(
            store, num_batches=NUM_BATCHES, resume=True
        )
        assert same.resumed_shards == list(range(NUM_BATCHES))
        with SlabWriter(tmp_path / "slabs") as writer:
            writer.add_nodes([Node(
                id=10**6, labels=frozenset({"Zz"}), properties={"q": 1},
            )])
            writer.commit()
        store.refresh()
        stale = PGHive(config).discover_incremental(
            store, num_batches=NUM_BATCHES, resume=True
        )
        assert stale.resumed_shards == []
        store.close()
