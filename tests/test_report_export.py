"""Tests for the schema report and measurement export modules."""

import pytest

from repro.core.pipeline import PGHive
from repro.evaluation.export import (
    measurements_from_csv,
    measurements_from_json,
    measurements_to_csv,
    measurements_to_json,
)
from repro.evaluation.harness import Measurement
from repro.schema.report import render_schema_report, summarize_schema


@pytest.fixture
def schema(figure1_store):
    return PGHive().discover(figure1_store).schema


class TestSchemaReport:
    def test_summary_counts(self, schema):
        summary = summarize_schema(schema)
        assert summary.num_node_types == 4  # Person, Org, Post, Place
        assert summary.node_instances == 7
        assert summary.num_abstract_node_types == 0
        assert summary.labeled_node_coverage == 1.0
        assert summary.mandatory_properties > 0

    def test_report_renders_types(self, schema):
        report = render_schema_report(schema)
        assert "Schema report" in report
        assert "Person" in report
        assert "KNOWS" in report
        assert "name[M:STRING]" in report

    def test_report_truncation_note(self, schema):
        report = render_schema_report(schema, max_types=1)
        assert "additional types not shown" in report

    def test_abstract_coverage(self):
        from repro.datasets import get_dataset, inject_noise
        from repro.graph.store import GraphStore

        dataset = inject_noise(
            get_dataset("POLE", scale=0.2, seed=1), 0.0, 0.0, seed=2
        )
        result = PGHive().discover(GraphStore(dataset.graph))
        summary = summarize_schema(result.schema)
        assert summary.labeled_node_coverage == 0.0  # everything abstract
        report = render_schema_report(result.schema)
        assert "(abstract)" in report

    def test_empty_schema(self):
        from repro.schema.model import SchemaGraph

        summary = summarize_schema(SchemaGraph())
        assert summary.labeled_node_coverage == 1.0
        assert "node types : 0" in render_schema_report(SchemaGraph())


def _sample_measurements():
    return [
        Measurement(
            dataset="POLE", method="PG-HIVE-ELSH", noise=0.2,
            label_availability=1.0, node_f1=0.98, edge_f1=0.91,
            node_f1_macro=0.95, edge_f1_macro=0.89, seconds=0.12,
            num_node_types=11, num_edge_types=17,
            shard_failure_events=3, degraded_shards=1, ingest_errors=2,
        ),
        Measurement(
            dataset="POLE", method="SchemI", noise=0.2,
            label_availability=0.0, skipped=True,
        ),
        Measurement(
            dataset="MB6", method="GMMSchema", noise=0.0,
            label_availability=1.0, node_f1=1.0, edge_f1=None,
            node_f1_macro=1.0, edge_f1_macro=None, seconds=0.3,
            num_node_types=4, num_edge_types=0,
        ),
    ]


class TestExport:
    def test_json_round_trip(self, tmp_path):
        measurements = _sample_measurements()
        path = tmp_path / "m.json"
        measurements_to_json(measurements, path)
        loaded = measurements_from_json(path)
        assert loaded == measurements

    def test_csv_round_trip(self, tmp_path):
        measurements = _sample_measurements()
        path = tmp_path / "m.csv"
        measurements_to_csv(measurements, path)
        loaded = measurements_from_csv(path)
        assert loaded == measurements

    def test_csv_preserves_none_edge_f1(self, tmp_path):
        path = tmp_path / "m.csv"
        measurements_to_csv(_sample_measurements(), path)
        loaded = measurements_from_csv(path)
        assert loaded[2].edge_f1 is None

    def test_csv_preserves_skipped_flag(self, tmp_path):
        path = tmp_path / "m.csv"
        measurements_to_csv(_sample_measurements(), path)
        loaded = measurements_from_csv(path)
        assert loaded[1].skipped is True
        assert loaded[0].skipped is False

    def test_csv_preserves_fault_and_ingest_counters(self, tmp_path):
        """ShardFailure / IngestReport data survives the CSV round trip."""
        path = tmp_path / "m.csv"
        measurements_to_csv(_sample_measurements(), path)
        loaded = measurements_from_csv(path)
        assert loaded[0].shard_failure_events == 3
        assert loaded[0].degraded_shards == 1
        assert loaded[0].ingest_errors == 2
        assert loaded[1].shard_failure_events == 0


class TestMeasurementDiagnostics:
    def test_run_system_populates_shard_failure_counts(self):
        """A degraded parallel run surfaces its failure counters."""
        from repro.datasets import get_dataset
        from repro.evaluation.harness import run_system

        dataset = get_dataset("ldbc", scale=0.5, seed=0)
        measurement = run_system(
            "PG-HIVE-ELSH",
            dataset,
            config_overrides={},
        )
        assert measurement.shard_failure_events == 0
        assert measurement.degraded_shards == 0
        assert measurement.ingest_errors == 0

    def test_run_system_reports_ingest_errors(self):
        from repro.datasets import get_dataset
        from repro.evaluation.harness import run_system
        from repro.graph.io import IngestError, IngestReport

        dataset = get_dataset("POLE", scale=0.15, seed=0)
        report = IngestReport(
            errors=[
                IngestError(path="g.jsonl", line=3, reason="bad record")
            ],
            nodes_loaded=10,
            edges_loaded=4,
        )
        measurement = run_system(
            "PG-HIVE-ELSH", dataset, ingest_report=report
        )
        assert measurement.ingest_errors == 1
