"""Tests for type hierarchy inference."""

from collections import Counter

import pytest

from repro.core.pipeline import PGHive
from repro.graph.builder import GraphBuilder
from repro.graph.store import GraphStore
from repro.schema.hierarchy import (
    SubtypeRelation,
    infer_hierarchy,
    render_hierarchy,
)
from repro.schema.model import NodeType, PropertyStatus, SchemaGraph


def _type(name, labels, mandatory=(), optional=(), count=5):
    node_type = NodeType(
        name, frozenset(labels), instance_count=count,
        property_counts=Counter({k: count for k in mandatory}),
    )
    for key in mandatory:
        spec = node_type.ensure_property(key)
        spec.status = PropertyStatus.MANDATORY
    for key in optional:
        node_type.ensure_property(key)
    return node_type


class TestLabelRefinement:
    def test_strict_label_superset_is_subtype(self):
        schema = SchemaGraph()
        schema.add_node_type(_type("Employee", ["Employee"], ["name"]))
        schema.add_node_type(
            _type("Employee&Intern", ["Employee", "Intern"], ["name"])
        )
        relations = infer_hierarchy(schema)
        assert SubtypeRelation(
            "Employee&Intern", "Employee", "labels"
        ) in relations

    def test_disjoint_labels_unrelated(self):
        schema = SchemaGraph()
        schema.add_node_type(_type("A", ["A"], ["k"]))
        schema.add_node_type(_type("B", ["B"], ["k"]))
        assert infer_hierarchy(schema) == []

    def test_transitive_reduction(self):
        schema = SchemaGraph()
        schema.add_node_type(_type("X", ["X"], ["k"]))
        schema.add_node_type(_type("X&Y", ["X", "Y"], ["k"]))
        schema.add_node_type(_type("X&Y&Z", ["X", "Y", "Z"], ["k"]))
        relations = infer_hierarchy(schema)
        pairs = {(r.subtype, r.supertype) for r in relations}
        assert ("X&Y", "X") in pairs
        assert ("X&Y&Z", "X&Y") in pairs
        assert ("X&Y&Z", "X") not in pairs  # reduced away


class TestPropertyRefinement:
    def test_mandatory_superset_with_shared_label(self):
        schema = SchemaGraph()
        schema.add_node_type(_type("Person", ["Person"], ["name"]))
        schema.add_node_type(
            _type("Person2", ["Person"], ["name", "badge_no"])
        )
        relations = infer_hierarchy(schema)
        assert SubtypeRelation("Person2", "Person", "properties") in relations

    def test_unlabeled_child_can_refine(self):
        schema = SchemaGraph()
        schema.add_node_type(_type("Person", ["Person"], ["name"]))
        schema.add_node_type(_type("ABSTRACT_NODE_1", [], ["name", "ssn"]))
        relations = infer_hierarchy(schema)
        assert any(
            r.subtype == "ABSTRACT_NODE_1" and r.supertype == "Person"
            for r in relations
        )

    def test_disjoint_labels_block_property_refinement(self):
        schema = SchemaGraph()
        schema.add_node_type(_type("Person", ["Person"], ["name"]))
        schema.add_node_type(_type("City", ["City"], ["name", "lat"]))
        assert infer_hierarchy(schema) == []

    def test_property_inference_can_be_disabled(self):
        schema = SchemaGraph()
        schema.add_node_type(_type("Person", ["Person"], ["name"]))
        schema.add_node_type(
            _type("Person2", ["Person"], ["name", "badge_no"])
        )
        assert infer_hierarchy(schema, use_properties=False) == []

    def test_empty_mandatory_parent_not_a_supertype(self):
        """Everything would 'refine' a type with no mandatory props."""
        schema = SchemaGraph()
        schema.add_node_type(_type("Bare", ["Thing"], mandatory=()))
        schema.add_node_type(_type("Rich", ["Thing"], ["a", "b"]))
        assert infer_hierarchy(schema) == []


class TestEndToEnd:
    def test_mb6_segment_neuron_hierarchy(self):
        """Discovered MB6 types: {Neuron,Segment,mb6} refines {Segment,mb6}."""
        from repro.datasets import get_dataset

        dataset = get_dataset("MB6", scale=0.3, seed=1)
        result = PGHive().discover(GraphStore(dataset.graph))
        relations = infer_hierarchy(result.schema)
        assert any(
            r.supertype == "Segment&mb6"
            and "Neuron" in r.subtype
            and r.evidence == "labels"
            for r in relations
        )

    def test_render_forest(self):
        schema = SchemaGraph()
        schema.add_node_type(_type("X", ["X"], ["k"], count=9))
        schema.add_node_type(_type("X&Y", ["X", "Y"], ["k"], count=4))
        text = render_hierarchy(schema, infer_hierarchy(schema))
        lines = text.splitlines()
        assert lines[0] == "X (9 instances)"
        assert lines[1] == "  X&Y (4 instances)"
