"""Tests for adaptive LSH parameterization (section 4.2)."""

import numpy as np
import pytest

from repro.core.adaptive import (
    AdaptiveParameters,
    choose_num_tables,
    choose_parameters,
    estimate_distance_scale,
    label_alpha,
)


class TestLabelAlpha:
    def test_few_labels_tighter_buckets(self):
        assert label_alpha(0) == 0.8
        assert label_alpha(3) == 0.8

    def test_medium_labels_neutral(self):
        assert label_alpha(4) == 1.0
        assert label_alpha(10) == 1.0

    def test_many_labels_wider_buckets(self):
        assert label_alpha(11) == 1.5
        assert label_alpha(100) == 1.5


class TestDistanceScale:
    def test_known_configuration(self):
        # Two points at distance 3: mu must be exactly 3.
        vectors = np.array([[0.0, 0.0], [3.0, 0.0]])
        mu, size = estimate_distance_scale(vectors, 10, 1.0)
        assert mu == pytest.approx(3.0)
        assert size == 2

    def test_identical_points_floor(self):
        vectors = np.zeros((5, 3))
        mu, _ = estimate_distance_scale(vectors, 10, 1.0)
        assert mu > 0.0  # floored, never zero

    def test_sampling_respects_minimum(self):
        rng = np.random.default_rng(0)
        vectors = rng.normal(size=(1000, 4))
        _, size = estimate_distance_scale(
            vectors, sample_size=50, fraction=0.01
        )
        assert size == 50

    def test_fraction_dominates_when_larger(self):
        rng = np.random.default_rng(0)
        vectors = rng.normal(size=(1000, 4))
        _, size = estimate_distance_scale(
            vectors, sample_size=10, fraction=0.2
        )
        assert size == 200

    def test_empty_and_singleton(self):
        assert estimate_distance_scale(np.zeros((0, 2)), 5, 0.1)[1] == 0
        mu, size = estimate_distance_scale(np.zeros((1, 2)), 5, 0.1)
        assert size == 1 and mu > 0


class TestChooseNumTables:
    def test_clamped_to_practical_range(self):
        assert 15 <= choose_num_tables(0.01, 0.8, 100) <= 35
        assert 15 <= choose_num_tables(1000.0, 1.5, 10**9) <= 35

    def test_edges_use_smaller_heuristic(self):
        node_t = choose_num_tables(5.0, 1.0, 10_000, "node")
        edge_t = choose_num_tables(5.0, 1.0, 10_000, "edge")
        assert edge_t <= node_t


class TestChooseParameters:
    def _vectors(self):
        rng = np.random.default_rng(1)
        return rng.normal(size=(200, 6))

    def test_adaptive_bucket_tracks_mu(self):
        params = choose_parameters(self._vectors(), num_labels=5)
        assert params.bucket_length == pytest.approx(
            1.2 * params.mu * 1.0, rel=1e-9
        )

    def test_alpha_applied(self):
        few = choose_parameters(self._vectors(), num_labels=2)
        many = choose_parameters(self._vectors(), num_labels=20)
        assert few.alpha == 0.8 and many.alpha == 1.5
        assert many.bucket_length > few.bucket_length

    def test_manual_overrides_win(self):
        params = choose_parameters(
            self._vectors(), num_labels=5,
            bucket_length=9.9, num_tables=17, alpha=1.23,
        )
        assert params.bucket_length == 9.9
        assert params.num_tables == 17
        assert params.alpha == 1.23

    def test_describe_mentions_everything(self):
        params = choose_parameters(self._vectors(), num_labels=5)
        text = params.describe()
        assert "mu=" in text and "b=" in text and "T=" in text

    def test_is_frozen_record(self):
        params = AdaptiveParameters(1.0, 20, 1.0, 1.0, 10)
        with pytest.raises(AttributeError):
            params.bucket_length = 2.0
