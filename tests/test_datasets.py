"""Tests for the synthetic dataset generators and noise injection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    generate,
    get_dataset,
    inject_noise,
    list_datasets,
)
from repro.datasets.registry import dataset_spec
from repro.datasets.spec import (
    DatasetSpec,
    EdgeTypeSpec,
    LabelVariant,
    NodeTypeSpec,
    PropertyGen,
)
from repro.graph.stats import compute_statistics

# Table 2 structural targets: (node types, edge types).
_TYPE_COUNTS = {
    "POLE": (11, 17),
    "MB6": (4, 5),
    "HET.IO": (11, 24),
    "FIB25": (4, 5),
    "ICIJ": (5, 14),
    "CORD19": (16, 16),
    "LDBC": (7, 17),
    "IYP": (86, 25),
}


class TestRegistry:
    def test_all_eight_datasets_present(self):
        assert list_datasets() == [
            "POLE", "MB6", "HET.IO", "FIB25", "ICIJ", "CORD19", "LDBC", "IYP",
        ]

    def test_lookup_case_insensitive(self):
        assert dataset_spec("pole").name == "POLE"
        assert dataset_spec("het.io").name == "HET.IO"

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            dataset_spec("NOPE")

    @pytest.mark.parametrize("name", list(_TYPE_COUNTS))
    def test_type_counts_match_table2(self, name):
        spec = dataset_spec(name)
        expected_nodes, expected_edges = _TYPE_COUNTS[name]
        assert len(spec.node_types) == expected_nodes
        assert len(spec.edge_types) == expected_edges

    @pytest.mark.parametrize("name", list(_TYPE_COUNTS))
    def test_label_counts_close_to_table2(self, name):
        """Distinct label counts stay within 2 of the paper's Table 2."""
        targets = {
            "POLE": (11, 16), "MB6": (10, 3), "HET.IO": (12, 24),
            "FIB25": (10, 3), "ICIJ": (6, 14), "CORD19": (16, 16),
            "LDBC": (8, 15), "IYP": (33, 25),
        }
        dataset = get_dataset(name, scale=0.3, seed=0)
        stats = compute_statistics(
            dataset.graph, dataset.truth.node_types, dataset.truth.edge_types
        )
        node_target, edge_target = targets[name]
        assert abs(stats.node_labels - node_target) <= 2
        assert abs(stats.edge_labels - edge_target) <= 2


class TestGeneration:
    def test_scale_controls_size(self):
        small = get_dataset("POLE", scale=0.2, seed=1)
        large = get_dataset("POLE", scale=0.6, seed=1)
        assert large.graph.num_nodes > 2 * small.graph.num_nodes

    def test_ground_truth_covers_every_element(self):
        dataset = get_dataset("MB6", scale=0.2, seed=1)
        node_ids = {n.id for n in dataset.graph.nodes()}
        edge_ids = {e.id for e in dataset.graph.edges()}
        assert set(dataset.truth.node_types) == node_ids
        assert set(dataset.truth.edge_types) == edge_ids

    def test_deterministic_per_seed(self):
        a = get_dataset("POLE", scale=0.2, seed=7)
        b = get_dataset("POLE", scale=0.2, seed=7)
        assert a.graph.num_nodes == b.graph.num_nodes
        assert dict(a.graph.node(0).properties) == dict(b.graph.node(0).properties)

    def test_different_seeds_differ(self):
        a = get_dataset("POLE", scale=0.2, seed=7)
        b = get_dataset("POLE", scale=0.2, seed=8)
        assert any(
            dict(a.graph.node(i).properties) != dict(b.graph.node(i).properties)
            for i in range(10)
        )

    def test_every_type_has_instances(self):
        dataset = get_dataset("IYP", scale=0.3, seed=1)
        produced = set(dataset.truth.node_types.values())
        assert produced == set(dataset.spec.node_type_names)
        produced_edges = set(dataset.truth.edge_types.values())
        assert produced_edges == set(dataset.spec.edge_type_names)

    def test_cardinality_styles_respected(self):
        spec = DatasetSpec(
            name="card",
            num_nodes=40,
            num_edges=40,
            node_types=(
                NodeTypeSpec("A", (LabelVariant(("A",)),), (), 1.0),
                NodeTypeSpec("B", (LabelVariant(("B",)),), (), 1.0),
            ),
            edge_types=(
                EdgeTypeSpec("R", ("R",), "A", "B", "N:1"),
            ),
        )
        dataset = generate(spec, seed=2)
        out_degree = {}
        for edge in dataset.graph.edges():
            out_degree[edge.source] = out_degree.get(edge.source, 0) + 1
        assert max(out_degree.values()) == 1  # N:1: each source once

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            get_dataset("POLE", scale=0.0)

    def test_spec_validation_unknown_endpoint(self):
        with pytest.raises(ValueError, match="unknown endpoint"):
            DatasetSpec(
                name="bad", num_nodes=10, num_edges=10,
                node_types=(
                    NodeTypeSpec("A", (LabelVariant(("A",)),)),
                ),
                edge_types=(
                    EdgeTypeSpec("R", ("R",), "A", "MISSING"),
                ),
            )

    def test_property_gen_validation(self):
        with pytest.raises(ValueError):
            PropertyGen("k", presence=0.0)
        with pytest.raises(ValueError):
            PropertyGen("k", dirty_rate=1.5)


class TestNoise:
    def test_zero_noise_returns_same_object(self):
        dataset = get_dataset("POLE", scale=0.2, seed=1)
        assert inject_noise(dataset, 0.0, 1.0) is dataset

    def test_property_noise_removes_roughly_the_right_fraction(self):
        dataset = get_dataset("POLE", scale=0.5, seed=1)
        noisy = inject_noise(dataset, 0.4, 1.0, seed=2)
        before = sum(len(n.properties) for n in dataset.graph.nodes())
        after = sum(len(n.properties) for n in noisy.graph.nodes())
        assert after == pytest.approx(before * 0.6, rel=0.08)

    def test_label_availability_strips_elements_entirely(self):
        dataset = get_dataset("POLE", scale=0.5, seed=1)
        noisy = inject_noise(dataset, 0.0, 0.5, seed=2)
        unlabeled = sum(1 for n in noisy.graph.nodes() if not n.labels)
        total = noisy.graph.num_nodes
        assert 0.4 <= unlabeled / total <= 0.6
        # Elements keep either all or none of their labels.
        for node in noisy.graph.nodes():
            original = dataset.graph.node(node.id)
            assert node.labels in (original.labels, frozenset())

    def test_zero_availability_strips_everything(self):
        dataset = get_dataset("POLE", scale=0.2, seed=1)
        noisy = inject_noise(dataset, 0.0, 0.0, seed=2)
        assert all(not n.labels for n in noisy.graph.nodes())
        assert all(not e.labels for e in noisy.graph.edges())

    def test_ground_truth_preserved(self):
        dataset = get_dataset("POLE", scale=0.2, seed=1)
        noisy = inject_noise(dataset, 0.3, 0.5, seed=2)
        assert noisy.truth.node_types == dataset.truth.node_types
        assert noisy.truth.edge_types == dataset.truth.edge_types

    def test_structure_preserved(self):
        dataset = get_dataset("POLE", scale=0.2, seed=1)
        noisy = inject_noise(dataset, 0.3, 0.5, seed=2)
        assert noisy.graph.num_nodes == dataset.graph.num_nodes
        assert noisy.graph.num_edges == dataset.graph.num_edges
        for edge in noisy.graph.edges():
            original = dataset.graph.edge(edge.id)
            assert (edge.source, edge.target) == (
                original.source, original.target
            )

    @given(
        st.floats(0.0, 1.0),
        st.floats(0.0, 1.0),
        st.integers(0, 10),
    )
    @settings(max_examples=15, deadline=None)
    def test_noise_never_adds_information(self, noise, availability, seed):
        """Property test: noisy elements carry subsets of the originals."""
        dataset = get_dataset("POLE", scale=0.1, seed=1)
        noisy = inject_noise(dataset, noise, availability, seed=seed)
        for node in noisy.graph.nodes():
            original = dataset.graph.node(node.id)
            assert node.labels <= original.labels
            assert node.property_keys <= original.property_keys

    def test_parameter_validation(self):
        dataset = get_dataset("POLE", scale=0.1, seed=1)
        with pytest.raises(ValueError):
            inject_noise(dataset, -0.1, 1.0)
        with pytest.raises(ValueError):
            inject_noise(dataset, 0.0, 1.1)
