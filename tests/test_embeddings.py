"""Tests for the label embedding substrate (vocab, Word2Vec, embedder)."""

import numpy as np
import pytest

from repro.embeddings.embedder import LabelEmbedder
from repro.embeddings.vocab import Vocabulary, build_label_corpus
from repro.embeddings.word2vec import Word2Vec, Word2VecConfig


class TestVocabulary:
    def test_add_and_index(self):
        vocab = Vocabulary()
        assert vocab.add("Person") == 0
        assert vocab.add("Org") == 1
        assert vocab.add("Person") == 0  # idempotent index
        assert vocab.count("Person") == 2
        assert len(vocab) == 2

    def test_rejects_empty_token(self):
        with pytest.raises(ValueError):
            Vocabulary().add("")

    def test_token_roundtrip(self):
        vocab = Vocabulary()
        vocab.add("A")
        vocab.add("B")
        assert vocab.token(1) == "B"
        assert "A" in vocab and "C" not in vocab

    def test_counts_in_index_order(self):
        vocab = Vocabulary()
        vocab.add("A", count=3)
        vocab.add("B")
        assert vocab.counts_in_index_order() == [3, 1]


class TestCorpus:
    def test_figure1_corpus(self, figure1_graph):
        vocab, sentences = build_label_corpus(figure1_graph)
        assert "Person" in vocab
        assert "KNOWS" in vocab
        # Edges with unlabeled endpoints still yield >= 2-token sentences
        # when edge label + one endpoint label exist.
        assert all(len(s) >= 2 for s in sentences)

    def test_multilabel_becomes_one_token(self):
        from repro.graph.builder import GraphBuilder

        b = GraphBuilder()
        a = b.node(["Student", "Person"])
        c = b.node(["Org"])
        b.edge(a, c, ["WORKS_AT"])
        vocab, sentences = build_label_corpus(b.build())
        assert "Person&Student" in vocab
        assert len(sentences) == 1 and len(sentences[0]) == 3


class TestWord2Vec:
    def _train_small(self):
        # Tokens 0 and 1 share the context token 2; tokens 3 and 4 share
        # context 5.  Skip-gram should place 0 near 1 and 3 near 4.
        sentences = ([[0, 2], [1, 2], [3, 5], [4, 5]]) * 15
        model = Word2Vec(6, Word2VecConfig(dimension=8, epochs=10, seed=3))
        model.train(sentences)
        return model

    def test_shared_context_tokens_are_closer(self):
        model = self._train_small()
        assert model.similarity(0, 1) > model.similarity(0, 3)
        assert model.similarity(3, 4) > model.similarity(4, 1)

    def test_deterministic(self):
        a = self._train_small().vectors
        b = self._train_small().vectors
        assert np.allclose(a, b)

    def test_vector_bounds(self):
        model = self._train_small()
        with pytest.raises(IndexError):
            model.vector(99)
        assert model.vector(0).shape == (8,)

    def test_empty_corpus_ok(self):
        model = Word2Vec(3, Word2VecConfig(dimension=4))
        model.train([])
        assert model.is_trained
        assert model.vector(0).shape == (4,)

    def test_zero_vocab(self):
        model = Word2Vec(0)
        model.train([])
        assert model.is_trained


class TestLabelEmbedder:
    def test_unlabeled_is_zero_vector(self, figure1_graph):
        embedder = LabelEmbedder().fit(figure1_graph)
        assert np.all(embedder.embed([]) == 0.0)
        assert np.all(embedder.embed_token("") == 0.0)

    def test_identical_label_sets_identical_vectors(self, figure1_graph):
        embedder = LabelEmbedder().fit(figure1_graph)
        a = embedder.embed(["Person"])
        b = embedder.embed(["Person"])
        assert np.allclose(a, b)

    def test_different_labels_differ(self, figure1_graph):
        embedder = LabelEmbedder().fit(figure1_graph)
        assert not np.allclose(
            embedder.embed(["Person"]), embedder.embed(["Organization"])
        )

    def test_unseen_token_fallback_is_deterministic(self, figure1_graph):
        embedder = LabelEmbedder().fit(figure1_graph)
        first = embedder.embed_token("NeverSeenLabel")
        second = embedder.embed_token("NeverSeenLabel")
        assert np.allclose(first, second)
        assert not np.all(first == 0.0)
        other = embedder.embed_token("AnotherUnseen")
        assert not np.allclose(first, other)

    def test_fit_tokens(self):
        embedder = LabelEmbedder()
        embedder.fit_tokens([["A", "B"], ["A", "C"]])
        assert embedder.vocabulary.index("A") == 0
        assert embedder.embed_token("A").shape == (embedder.dimension,)


class TestMostSimilar:
    def test_shared_context_tokens_rank_high(self, figure1_graph):
        embedder = LabelEmbedder().fit(figure1_graph)
        # Person co-occurs with KNOWS on both sides; KNOWS should rank
        # among Person's nearest tokens.
        neighbors = dict(embedder.most_similar("Person", k=10))
        assert "KNOWS" in neighbors

    def test_excludes_self(self, figure1_graph):
        embedder = LabelEmbedder().fit(figure1_graph)
        assert all(
            token != "Person"
            for token, _ in embedder.most_similar("Person", k=3)
        )

    def test_unfitted_returns_empty(self):
        assert LabelEmbedder().most_similar("x") == []


class TestEmbedderPersistence:
    def test_round_trip_preserves_embeddings(self, figure1_graph):
        original = LabelEmbedder().fit(figure1_graph)
        rebuilt = LabelEmbedder.from_dict(original.to_dict())
        for token in original.vocabulary.tokens():
            assert np.allclose(
                original.embed_token(token), rebuilt.embed_token(token)
            )

    def test_round_trip_is_json_safe(self, figure1_graph):
        import json

        original = LabelEmbedder().fit(figure1_graph)
        payload = json.dumps(original.to_dict())
        rebuilt = LabelEmbedder.from_dict(json.loads(payload))
        assert np.allclose(
            original.embed(["Person"]), rebuilt.embed(["Person"])
        )

    def test_unfitted_cannot_serialize(self):
        with pytest.raises(RuntimeError):
            LabelEmbedder().to_dict()

    def test_shape_mismatch_rejected(self, figure1_graph):
        data = LabelEmbedder().fit(figure1_graph).to_dict()
        data["vectors"] = [[0.0]]
        with pytest.raises(ValueError):
            LabelEmbedder.from_dict(data)
