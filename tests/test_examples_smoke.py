"""Smoke tests: the fast example scripts must run cleanly.

Examples are documentation that executes; these tests keep the two
quickest ones green as the API evolves.  (The remaining examples are
exercised by the benchmark/CI pipeline and run in seconds each; they are
left out here only to keep the unit suite fast.)
"""

import subprocess
import sys
from pathlib import Path

import pytest

_EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(_EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=120,
    )


class TestExampleScripts:
    def test_quickstart(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "CREATE GRAPH TYPE" in result.stdout
        assert "Person" in result.stdout
        # Alice is recovered structurally.
        assert "was assigned to: Person" in result.stdout

    def test_schema_validation(self):
        result = _run("schema_validation.py")
        assert result.returncode == 0, result.stderr
        assert "valid=True" in result.stdout
        assert "valid=False" in result.stdout
        assert "[mandatory]" in result.stdout

    def test_all_examples_present_and_documented(self):
        scripts = sorted(p.name for p in _EXAMPLES.glob("*.py"))
        assert len(scripts) >= 8
        for script in scripts:
            text = (_EXAMPLES / script).read_text(encoding="utf-8")
            assert text.startswith('"""'), f"{script} must have a docstring"
            assert "Run with:" in text, f"{script} must say how to run it"
