"""Tests for the approximate nearest-neighbor LSH indexes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsh.index import EuclideanIndex, MinHashIndex


class TestEuclideanIndex:
    def _populated(self):
        rng = np.random.default_rng(0)
        index = EuclideanIndex(dimension=8, bucket_length=4.0,
                               num_tables=12, seed=1)
        centers = {"a": 0.0, "b": 10.0, "c": 20.0}
        vectors = {}
        for name, center in centers.items():
            for i in range(10):
                key = f"{name}{i}"
                vectors[key] = center + rng.normal(0, 0.3, size=8)
                index.add(key, vectors[key])
        return index, vectors

    def test_query_finds_cluster_mates(self):
        index, vectors = self._populated()
        results = index.query(vectors["a0"], k=5)
        assert results, "near-duplicates must collide"
        assert all(key.startswith("a") for key, _ in results)
        assert results[0][0] == "a0" and results[0][1] == pytest.approx(0.0)

    def test_distances_sorted(self):
        index, vectors = self._populated()
        distances = [d for _, d in index.query(vectors["b3"], k=10)]
        assert distances == sorted(distances)

    def test_remove(self):
        index, vectors = self._populated()
        index.remove("a0")
        assert len(index) == 29
        results = index.query(vectors["a0"], k=30)
        assert all(key != "a0" for key, _ in results)
        index.remove("a0")  # idempotent

    def test_replace_on_duplicate_key(self):
        index = EuclideanIndex(4, 1.0, 4)
        index.add("x", np.zeros(4))
        index.add("x", np.ones(4))
        assert len(index) == 1
        (top,) = index.query(np.ones(4), k=1)
        assert top == ("x", pytest.approx(0.0))

    def test_add_batch(self):
        index = EuclideanIndex(3, 2.0, 8, seed=2)
        keys = [f"k{i}" for i in range(20)]
        vectors = np.random.default_rng(1).normal(size=(20, 3))
        index.add_batch(keys, vectors)
        assert len(index) == 20
        (top, distance) = index.query(vectors[7], k=1)[0]
        assert top == "k7" and distance == pytest.approx(0.0)

    def test_batch_shape_validation(self):
        index = EuclideanIndex(3, 2.0, 8)
        with pytest.raises(ValueError):
            index.add_batch(["a"], np.zeros((2, 3)))

    def test_no_false_results_outside_candidates(self):
        """Query results always carry exact distances."""
        index, vectors = self._populated()
        for key, distance in index.query(vectors["c2"], k=8):
            assert distance == pytest.approx(
                float(np.linalg.norm(vectors[key] - vectors["c2"]))
            )


class TestMinHashIndex:
    def _populated(self):
        index = MinHashIndex(num_hashes=48, rows_per_band=4, seed=3)
        families = {
            "x": set(range(0, 30)),
            "y": set(range(100, 130)),
        }
        sets = {}
        for name, base in families.items():
            for i in range(8):
                key = f"{name}{i}"
                # Each member drops a few elements: high intra-family J.
                sets[key] = set(list(base)[i:]) | {999 + i}
                index.add(key, sets[key])
        return index, sets

    def test_query_prefers_same_family(self):
        index, sets = self._populated()
        results = index.query(sets["x0"], k=4)
        assert results[0][0] == "x0"
        assert all(key.startswith("x") for key, _ in results)

    def test_similarities_are_exact_jaccard(self):
        from repro.util.similarity import jaccard

        index, sets = self._populated()
        for key, similarity in index.query(sets["y1"], k=5):
            assert similarity == pytest.approx(
                jaccard(frozenset(sets["y1"]), frozenset(sets[key]))
            )

    def test_remove(self):
        index, sets = self._populated()
        index.remove("x0")
        results = index.query(sets["x0"], k=20)
        assert all(key != "x0" for key, _ in results)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MinHashIndex(num_hashes=8, rows_per_band=0)
        with pytest.raises(ValueError):
            MinHashIndex(num_hashes=8, rows_per_band=9)

    @given(st.sets(st.integers(0, 200), min_size=5, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_self_query_returns_self_first(self, features):
        index = MinHashIndex(num_hashes=32, rows_per_band=4, seed=5)
        index.add("self", features)
        index.add("other", set(range(1000, 1020)))
        results = index.query(features, k=1)
        assert results and results[0][0] == "self"
        assert results[0][1] == 1.0
