"""Tests for the multi-process sharded discovery driver.

The determinism contract under test: the final schema is a pure function
of the shard sequence -- independent of worker count, chunk size, and the
order in which shard results arrive -- and on labeled data it is
byte-identical to the sequential engine's output.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ParallelDiscovery,
    PGHive,
    PGHiveConfig,
    combine_shard_results,
)
from repro.core.columns import edge_columns, node_columns
from repro.core.incremental import IncrementalDiscovery
from repro.core.parallel import ShardResult, fork_available
from repro.core.postprocess import (
    TypeStats,
    apply_partial_stats,
    attach_partial_stats,
    sharded_postprocess_enabled,
)
from repro.datasets import get_dataset
from repro.datasets.registry import dataset_spec
from repro.datasets.stream import GraphStream
from repro.graph.store import GraphStore
from repro.schema.serialize_pgschema import serialize_pg_schema

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="parallel driver requires fork"
)

NUM_BATCHES = 6


@pytest.fixture(scope="module")
def ldbc_graph():
    return get_dataset("ldbc", scale=1, seed=0).graph


@pytest.fixture(scope="module")
def sequential_schema(ldbc_graph):
    result = PGHive(PGHiveConfig()).discover_incremental(
        GraphStore(ldbc_graph), num_batches=NUM_BATCHES
    )
    return serialize_pg_schema(result.schema)


def _shard_results(graph, config):
    """Discover every shard's schema independently (no pool)."""
    store = GraphStore(graph)
    engine = IncrementalDiscovery(config, name="shard")
    results = []
    for plan in store.plan_shards(NUM_BATCHES, seed=config.seed):
        batch = store.materialize_shard(plan)
        schema, report = engine.discover_batch_columns(
            node_columns(batch.nodes),
            edge_columns(batch.edges, batch.endpoint_labels),
            batch_index=plan.index,
        )
        results.append(ShardResult(plan.index, schema, report))
    return results


class TestWorkerCountInvariance:
    def test_env_jobs_matches_sequential(
        self, ldbc_graph, sequential_schema, test_jobs
    ):
        """The CI-configured worker count (PGHIVE_TEST_JOBS) agrees."""
        result = PGHive(PGHiveConfig(jobs=test_jobs)).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert serialize_pg_schema(result.schema) == sequential_schema

    @pytest.mark.parametrize("jobs", [2, 3])
    def test_byte_identical_to_sequential(
        self, ldbc_graph, sequential_schema, jobs
    ):
        result = PGHive(PGHiveConfig(jobs=jobs)).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert serialize_pg_schema(result.schema) == sequential_schema

    def test_assignments_match_sequential(self, ldbc_graph):
        seq = PGHive(PGHiveConfig()).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        par = PGHive(PGHiveConfig(jobs=2)).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert par.node_assignment == seq.node_assignment
        assert par.edge_assignment == seq.edge_assignment

    def test_lsh_parameters_match_sequential(self, ldbc_graph):
        seq = PGHive(PGHiveConfig()).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        par = PGHive(PGHiveConfig(jobs=2)).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        batch_params = {
            k: v for k, v in par.parameters.items()
            if not k.startswith("parallel/")
        }
        assert batch_params == seq.parameters

    @pytest.mark.parametrize("chunk", ["1", "3", "auto"])
    def test_chunk_size_invariance(
        self, ldbc_graph, sequential_schema, chunk
    ):
        config = PGHiveConfig(jobs=2, parallel_chunk=chunk)
        result = PGHive(config).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert serialize_pg_schema(result.schema) == sequential_schema


class TestMergeOrderInvariance:
    def test_combine_is_permutation_invariant(self, ldbc_graph):
        """Worker completion order cannot change the final schema."""
        config = PGHiveConfig(post_processing=False)
        results = _shard_results(ldbc_graph, config)
        reference = serialize_pg_schema(
            combine_shard_results("g", results, config)
        )
        rng = random.Random(11)
        for _ in range(5):
            shuffled = list(results)
            rng.shuffle(shuffled)
            combined = combine_shard_results("g", shuffled, config)
            assert serialize_pg_schema(combined) == reference

    def test_combine_matches_sequential_fold(self, ldbc_graph):
        config = PGHiveConfig(post_processing=False)
        combined = combine_shard_results(
            ldbc_graph.name, _shard_results(ldbc_graph, config), config
        )
        seq = PGHive(config).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert serialize_pg_schema(combined) == serialize_pg_schema(
            seq.schema
        )


class TestTransportInvariance:
    """The shard transport moves bytes, never schema content."""

    @pytest.mark.parametrize("transport", ["pickle", "shm", "memmap"])
    def test_byte_identical_to_sequential(
        self, ldbc_graph, sequential_schema, transport
    ):
        config = PGHiveConfig(jobs=2, shard_transport=transport)
        result = PGHive(config).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert serialize_pg_schema(result.schema) == sequential_schema
        used = result.parameters["parallel/transport"]
        assert used.startswith(f"requested={transport}")

    def test_env_transport_matches_sequential(
        self, ldbc_graph, sequential_schema, test_jobs, test_transport
    ):
        """The CI-configured transport (PGHIVE_TEST_TRANSPORT) agrees."""
        config = PGHiveConfig(jobs=test_jobs, shard_transport=test_transport)
        result = PGHive(config).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert serialize_pg_schema(result.schema) == sequential_schema

    @pytest.mark.parametrize("transport", ["shm", "memmap"])
    def test_columns_mode_ships_handles(self, transport):
        """Zero-copy columns mode equals the pickled-arrays mode."""
        spec = dataset_spec("ldbc")
        reference = ParallelDiscovery(
            PGHiveConfig(post_processing=False, jobs=2,
                         shard_transport="pickle")
        ).discover_batches(
            GraphStream(spec, num_batches=5, seed=3).batches(),
            name="s", total=5,
        )
        result = ParallelDiscovery(
            PGHiveConfig(post_processing=False, jobs=2,
                         shard_transport=transport)
        ).discover_batches(
            GraphStream(spec, num_batches=5, seed=3).batches(),
            name="s", total=5,
        )
        assert serialize_pg_schema(result.schema) == serialize_pg_schema(
            reference.schema
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PGHiveConfig(shard_transport="carrier-pigeon")
        with pytest.raises(ValueError):
            PGHiveConfig(shard_memory_limit_mb=0)


class TestMemoryGuard:
    def test_over_budget_shards_fail_and_fall_back(self, ldbc_graph):
        """An absurdly small budget fails every pool attempt with
        kind="memory"; the unguarded in-process fallback still recovers
        the run to the exact sequential schema."""
        sequential = PGHive(PGHiveConfig()).discover_incremental(
            GraphStore(ldbc_graph), num_batches=2
        )
        config = PGHiveConfig(
            jobs=2,
            shard_memory_limit_mb=0.5,
            shard_retries=0,
            shard_retry_backoff=0.0,
        )
        result = PGHive(config).discover_incremental(
            GraphStore(ldbc_graph), num_batches=2
        )
        assert result.shard_failures
        assert {f.kind for f in result.shard_failures} == {"memory"}
        assert all(
            f.recovered_by == "fallback" for f in result.shard_failures
        )
        assert serialize_pg_schema(result.schema) == serialize_pg_schema(
            sequential.schema
        )

    def test_generous_budget_never_trips(self, ldbc_graph):
        config = PGHiveConfig(jobs=2, shard_memory_limit_mb=16384.0)
        result = PGHive(config).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert not result.shard_failures


class TestStreamParallel:
    def test_columns_mode_matches_sequential_engine(self):
        spec = dataset_spec("ldbc")
        config = PGHiveConfig(post_processing=False)
        engine = IncrementalDiscovery(config, name="s")
        for batch in GraphStream(spec, num_batches=5, seed=3).batches():
            engine.process_batch(
                batch.nodes, batch.edges, batch.endpoint_labels
            )
        stream = GraphStream(spec, num_batches=5, seed=3)
        parallel = ParallelDiscovery(
            PGHiveConfig(post_processing=False, jobs=2)
        ).discover_batches(stream.batches(), name="s", total=5)
        assert serialize_pg_schema(parallel.schema) == serialize_pg_schema(
            engine.schema
        )

    @pytest.mark.parametrize("transport", ["pickle", "shm", "memmap"])
    def test_stream_pipeline_matches_sequential(self, transport):
        """Seeded replay on the pool equals consuming the live stream."""
        spec = dataset_spec("ldbc")
        seq = PGHive(PGHiveConfig(jobs=1)).discover_incremental(
            GraphStream(spec, num_batches=5, seed=3), num_batches=5
        )
        par = PGHive(
            PGHiveConfig(jobs=2, shard_transport=transport)
        ).discover_incremental(
            GraphStream(spec, num_batches=5, seed=3), num_batches=5
        )
        assert par.parallel_fallback is None
        assert all(r.worker is not None for r in par.batches)
        assert serialize_pg_schema(par.schema) == serialize_pg_schema(
            seq.schema
        )

    def test_stream_batch_count_is_validated(self):
        spec = dataset_spec("ldbc")
        with pytest.raises(ValueError):
            PGHive(PGHiveConfig(jobs=2)).discover_incremental(
                GraphStream(spec, num_batches=5, seed=3), num_batches=4
            )

    def test_memoized_stream_stays_sequential(self):
        """Stream memoization still couples batches to the running
        schema, so it keeps the sequential engine."""
        spec = dataset_spec("ldbc")
        result = PGHive(
            PGHiveConfig(jobs=2, memoize_patterns=True)
        ).discover_incremental(
            GraphStream(spec, num_batches=3, seed=3), num_batches=3
        )
        assert result.parallel_fallback is not None
        assert all(r.worker is None for r in result.batches)


class TestMemoizedPool:
    """Two-phase absorption: memoized pooled runs are type-equivalent to
    memoized sequential runs (same types, counts, members, constraints)."""

    @pytest.fixture(scope="class")
    def memo_sequential(self, ldbc_graph):
        return PGHive(
            PGHiveConfig(jobs=1, memoize_patterns=True)
        ).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )

    @pytest.fixture(scope="class")
    def memo_parallel(self, ldbc_graph):
        return PGHive(
            PGHiveConfig(jobs=2, memoize_patterns=True)
        ).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )

    def test_type_sets_match(self, memo_sequential, memo_parallel):
        assert set(memo_parallel.schema.node_types) == set(
            memo_sequential.schema.node_types
        )
        assert set(memo_parallel.schema.edge_types) == set(
            memo_sequential.schema.edge_types
        )

    def test_counts_and_members_match(self, memo_sequential, memo_parallel):
        for kind in ("node_types", "edge_types"):
            for name, seq_type in getattr(
                memo_sequential.schema, kind
            ).items():
                par_type = getattr(memo_parallel.schema, kind)[name]
                assert par_type.instance_count == seq_type.instance_count
                assert sorted(par_type.members) == sorted(seq_type.members)

    def test_constraints_and_cardinalities_match(
        self, memo_sequential, memo_parallel
    ):
        for kind in ("node_types", "edge_types"):
            for name, seq_type in getattr(
                memo_sequential.schema, kind
            ).items():
                par_type = getattr(memo_parallel.schema, kind)[name]
                seq_props = {
                    key: (spec.status, spec.datatype)
                    for key, spec in seq_type.properties.items()
                }
                par_props = {
                    key: (spec.status, spec.datatype)
                    for key, spec in par_type.properties.items()
                }
                assert par_props == seq_props
        for name, seq_type in memo_sequential.schema.edge_types.items():
            par_type = memo_parallel.schema.edge_types[name]
            assert par_type.cardinality == seq_type.cardinality

    def test_absorption_actually_engages(self, memo_parallel):
        hits = sum(
            r.memo_node_hits + r.memo_edge_hits
            for r in memo_parallel.batches
        )
        assert hits > 0
        assert "parallel/absorbed" in memo_parallel.parameters

    def test_hit_rate_comparable_to_sequential(
        self, memo_sequential, memo_parallel
    ):
        """The snapshot freezes after one shard, so the pooled hit count
        cannot exceed the sequential one -- but it must stay in the same
        ballpark (the point of shipping absorption summaries at all)."""
        seq_hits = sum(
            r.memo_node_hits + r.memo_edge_hits
            for r in memo_sequential.batches
        )
        par_hits = sum(
            r.memo_node_hits + r.memo_edge_hits
            for r in memo_parallel.batches
        )
        assert 0 < par_hits <= seq_hits


def _postprocessed_shards(graph, config, num_batches, track_values=True):
    """Discover + attach partial post-processing stats per shard."""
    store = GraphStore(graph)
    engine = IncrementalDiscovery(config, name="shard")
    results = []
    for plan in store.plan_shards(num_batches, seed=config.seed):
        batch = store.materialize_shard(plan)
        schema, report = engine.discover_batch_columns(
            node_columns(batch.nodes),
            edge_columns(batch.edges, batch.endpoint_labels),
            batch_index=plan.index,
        )
        attach_partial_stats(
            schema, batch.nodes, batch.edges, track_values=track_values
        )
        results.append(ShardResult(plan.index, schema, report))
    return results


class TestShardedPostprocess:
    """Sharded post-processing must equal the serial store-backed passes
    byte for byte, for any shard count and any merge order."""

    def _serial_schema(self, graph, config, num_batches):
        result = PGHive(config).discover_incremental(
            GraphStore(graph), num_batches=num_batches
        )
        return serialize_pg_schema(result.schema)

    @pytest.mark.parametrize("num_batches", [2, 3, 5])
    def test_partial_stats_match_serial_for_any_shard_count(
        self, ldbc_graph, num_batches
    ):
        config = PGHiveConfig(infer_value_profiles=True)
        results = _postprocessed_shards(ldbc_graph, config, num_batches)
        combined = combine_shard_results(
            ldbc_graph.name, results, config
        )
        # The partial path must actually engage, not silently fall back.
        assert apply_partial_stats(combined, config)
        assert serialize_pg_schema(combined) == self._serial_schema(
            ldbc_graph, config, num_batches
        )

    def test_datatype_only_stats_retain_no_values(self, ldbc_graph):
        """Without profiles, workers must not ship values to the driver.

        The datatype-only fold keeps the merged schema byte-identical to
        the serial run while every partial's distinct-value sketch and
        bounds stay empty -- the invariant behind the out-of-core
        bounded-memory claim (driver stats stay O(schema), not O(data)).
        """
        config = PGHiveConfig()
        assert not config.infer_value_profiles
        results = _postprocessed_shards(
            ldbc_graph, config, NUM_BATCHES, track_values=False
        )
        for shard in results:
            for schema_types in (
                shard.schema.node_types, shard.schema.edge_types
            ):
                for type_record in schema_types.values():
                    for partial in type_record.stats.properties.values():
                        assert partial.distinct == set()
                        assert partial.numeric_min is None
                        assert partial.text_min is None
                        assert partial.observations > 0
        combined = combine_shard_results(ldbc_graph.name, results, config)
        assert apply_partial_stats(combined, config)
        assert serialize_pg_schema(combined) == self._serial_schema(
            ldbc_graph, config, NUM_BATCHES
        )

    def test_partial_stats_permutation_invariant(self, ldbc_graph):
        config = PGHiveConfig(infer_value_profiles=True)
        reference = self._serial_schema(ldbc_graph, config, NUM_BATCHES)
        rng = random.Random(7)
        for _ in range(4):
            # Re-discover fresh shards each round: combine mutates them.
            shuffled = _postprocessed_shards(
                ldbc_graph, config, NUM_BATCHES
            )
            rng.shuffle(shuffled)
            combined = combine_shard_results(
                ldbc_graph.name, shuffled, config
            )
            assert apply_partial_stats(combined, config)
            assert serialize_pg_schema(combined) == reference

    def test_parallel_profiles_match_sequential(self, ldbc_graph):
        seq = PGHive(
            PGHiveConfig(infer_value_profiles=True)
        ).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        par = PGHive(
            PGHiveConfig(jobs=2, infer_value_profiles=True)
        ).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert serialize_pg_schema(par.schema) == serialize_pg_schema(
            seq.schema
        )

    def test_sampling_mode_falls_back_to_serial_passes(self, ldbc_graph):
        """Sampled datatype inference cannot shard; the parallel run must
        still match the sequential one via the store-backed fallback."""
        seq = PGHive(
            PGHiveConfig(infer_datatypes_by_sampling=True)
        ).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        par = PGHive(
            PGHiveConfig(jobs=2, infer_datatypes_by_sampling=True)
        ).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert serialize_pg_schema(par.schema) == serialize_pg_schema(
            seq.schema
        )

    def test_sampling_mode_disables_worker_stats(self):
        assert not sharded_postprocess_enabled(
            PGHiveConfig(infer_datatypes_by_sampling=True)
        )
        assert not sharded_postprocess_enabled(
            PGHiveConfig(post_processing=False)
        )
        assert sharded_postprocess_enabled(PGHiveConfig())

    def test_final_schema_carries_no_stats(self, ldbc_graph):
        result = PGHive(PGHiveConfig(jobs=2)).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        for node_type in result.schema.node_types.values():
            assert node_type.stats is None
        for edge_type in result.schema.edge_types.values():
            assert edge_type.stats is None


class TestDegreeMerge:
    """Summed per-node degree maps must equal whole-store extremes."""

    @given(
        st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 15)),
            min_size=1,
            max_size=60,
        ),
        st.integers(1, 6),
        st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_summed_maps_match_store_extremes(
        self, endpoints, num_shards, seed
    ):
        """Random edge multiset, random split: merging per-shard count
        maps by summation reproduces ``degree_extremes`` exactly."""
        from repro.graph.builder import GraphBuilder

        builder = GraphBuilder()
        node_ids = {}
        for source, target in endpoints:
            for raw in (source, target):
                if raw not in node_ids:
                    node_ids[raw] = builder.node(["N"], {})
        edge_ids = [
            builder.edge(node_ids[s], node_ids[t], ["E"], {})
            for s, t in endpoints
        ]
        store = GraphStore(builder.build())
        rng = random.Random(seed)
        shards = [TypeStats() for _ in range(num_shards)]
        for edge_id in edge_ids:
            edge = store.graph.edge(edge_id)
            stats = rng.choice(shards)
            stats.out_degrees[edge.source] = (
                stats.out_degrees.get(edge.source, 0) + 1
            )
            stats.in_degrees[edge.target] = (
                stats.in_degrees.get(edge.target, 0) + 1
            )
        rng.shuffle(shards)
        merged = shards[0]
        for other in shards[1:]:
            merged.merge(other)
        max_out = max(merged.out_degrees.values(), default=0)
        max_in = max(merged.in_degrees.values(), default=0)
        assert (max_out, max_in) == store.degree_extremes(edge_ids)

    def test_max_of_maxes_would_undercount(self):
        """The regression the summed merge prevents: one node's incoming
        edges split across shards."""
        a, b = TypeStats(), TypeStats()
        a.in_degrees[7] = 2
        b.in_degrees[7] = 3
        a.merge(b)
        assert a.in_degrees[7] == 5  # not max(2, 3)


class TestReportsAndFallbacks:
    def test_per_worker_reports(self, ldbc_graph):
        result = PGHive(PGHiveConfig(jobs=2)).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert [r.index for r in result.batches] == list(range(NUM_BATCHES))
        assert all(r.worker is not None for r in result.batches)
        aggregated = result.aggregate_stage_seconds()
        assert {"embed", "vectorize", "cluster", "extract"} <= set(
            aggregated
        )
        assert "parallel/jobs" in result.parameters
        assert "parallel/merge_seconds" in result.parameters

    def test_memoization_rides_the_pool(self, ldbc_graph):
        """The memo fast path no longer forces the sequential engine."""
        config = PGHiveConfig(jobs=2, memoize_patterns=True)
        result = PGHive(config).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert all(r.worker is not None for r in result.batches)

    def test_jobs1_takes_sequential_path(self, ldbc_graph):
        result = PGHive(PGHiveConfig(jobs=1)).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert all(r.worker is None for r in result.batches)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PGHiveConfig(jobs=0)
        with pytest.raises(ValueError):
            PGHiveConfig(parallel_chunk="sometimes")
        with pytest.raises(ValueError):
            PGHiveConfig(parallel_chunk="0")

    def test_chunk_size_resolution(self):
        config = PGHiveConfig(jobs=4)
        # auto: about two tasks per worker
        assert config.chunk_size(16) == 2
        assert config.chunk_size(3) == 1
        explicit = PGHiveConfig(jobs=4, parallel_chunk="3")
        assert explicit.chunk_size(16) == 3
        assert explicit.chunk_size(2) == 2
