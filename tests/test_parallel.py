"""Tests for the multi-process sharded discovery driver.

The determinism contract under test: the final schema is a pure function
of the shard sequence -- independent of worker count, chunk size, and the
order in which shard results arrive -- and on labeled data it is
byte-identical to the sequential engine's output.
"""

import random

import pytest

from repro.core import (
    ParallelDiscovery,
    PGHive,
    PGHiveConfig,
    combine_shard_results,
)
from repro.core.columns import edge_columns, node_columns
from repro.core.incremental import IncrementalDiscovery
from repro.core.parallel import ShardResult, fork_available
from repro.datasets import get_dataset
from repro.datasets.registry import dataset_spec
from repro.datasets.stream import GraphStream
from repro.graph.store import GraphStore
from repro.schema.serialize_pgschema import serialize_pg_schema

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="parallel driver requires fork"
)

NUM_BATCHES = 6


@pytest.fixture(scope="module")
def ldbc_graph():
    return get_dataset("ldbc", scale=1, seed=0).graph


@pytest.fixture(scope="module")
def sequential_schema(ldbc_graph):
    result = PGHive(PGHiveConfig()).discover_incremental(
        GraphStore(ldbc_graph), num_batches=NUM_BATCHES
    )
    return serialize_pg_schema(result.schema)


def _shard_results(graph, config):
    """Discover every shard's schema independently (no pool)."""
    store = GraphStore(graph)
    engine = IncrementalDiscovery(config, name="shard")
    results = []
    for plan in store.plan_shards(NUM_BATCHES, seed=config.seed):
        batch = store.materialize_shard(plan)
        schema, report = engine.discover_batch_columns(
            node_columns(batch.nodes),
            edge_columns(batch.edges, batch.endpoint_labels),
            batch_index=plan.index,
        )
        results.append(ShardResult(plan.index, schema, report))
    return results


class TestWorkerCountInvariance:
    def test_env_jobs_matches_sequential(
        self, ldbc_graph, sequential_schema, test_jobs
    ):
        """The CI-configured worker count (PGHIVE_TEST_JOBS) agrees."""
        result = PGHive(PGHiveConfig(jobs=test_jobs)).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert serialize_pg_schema(result.schema) == sequential_schema

    @pytest.mark.parametrize("jobs", [2, 3])
    def test_byte_identical_to_sequential(
        self, ldbc_graph, sequential_schema, jobs
    ):
        result = PGHive(PGHiveConfig(jobs=jobs)).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert serialize_pg_schema(result.schema) == sequential_schema

    def test_assignments_match_sequential(self, ldbc_graph):
        seq = PGHive(PGHiveConfig()).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        par = PGHive(PGHiveConfig(jobs=2)).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert par.node_assignment == seq.node_assignment
        assert par.edge_assignment == seq.edge_assignment

    def test_lsh_parameters_match_sequential(self, ldbc_graph):
        seq = PGHive(PGHiveConfig()).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        par = PGHive(PGHiveConfig(jobs=2)).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        batch_params = {
            k: v for k, v in par.parameters.items()
            if not k.startswith("parallel/")
        }
        assert batch_params == seq.parameters

    @pytest.mark.parametrize("chunk", ["1", "3", "auto"])
    def test_chunk_size_invariance(
        self, ldbc_graph, sequential_schema, chunk
    ):
        config = PGHiveConfig(jobs=2, parallel_chunk=chunk)
        result = PGHive(config).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert serialize_pg_schema(result.schema) == sequential_schema


class TestMergeOrderInvariance:
    def test_combine_is_permutation_invariant(self, ldbc_graph):
        """Worker completion order cannot change the final schema."""
        config = PGHiveConfig(post_processing=False)
        results = _shard_results(ldbc_graph, config)
        reference = serialize_pg_schema(
            combine_shard_results("g", results, config)
        )
        rng = random.Random(11)
        for _ in range(5):
            shuffled = list(results)
            rng.shuffle(shuffled)
            combined = combine_shard_results("g", shuffled, config)
            assert serialize_pg_schema(combined) == reference

    def test_combine_matches_sequential_fold(self, ldbc_graph):
        config = PGHiveConfig(post_processing=False)
        combined = combine_shard_results(
            ldbc_graph.name, _shard_results(ldbc_graph, config), config
        )
        seq = PGHive(config).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert serialize_pg_schema(combined) == serialize_pg_schema(
            seq.schema
        )


class TestStreamParallel:
    def test_columns_mode_matches_sequential_engine(self):
        spec = dataset_spec("ldbc")
        config = PGHiveConfig(post_processing=False)
        engine = IncrementalDiscovery(config, name="s")
        for batch in GraphStream(spec, num_batches=5, seed=3).batches():
            engine.process_batch(
                batch.nodes, batch.edges, batch.endpoint_labels
            )
        stream = GraphStream(spec, num_batches=5, seed=3)
        parallel = ParallelDiscovery(
            PGHiveConfig(post_processing=False, jobs=2)
        ).discover_batches(stream.batches(), name="s", total=5)
        assert serialize_pg_schema(parallel.schema) == serialize_pg_schema(
            engine.schema
        )


class TestReportsAndFallbacks:
    def test_per_worker_reports(self, ldbc_graph):
        result = PGHive(PGHiveConfig(jobs=2)).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert [r.index for r in result.batches] == list(range(NUM_BATCHES))
        assert all(r.worker is not None for r in result.batches)
        aggregated = result.aggregate_stage_seconds()
        assert {"embed", "vectorize", "cluster", "extract"} <= set(
            aggregated
        )
        assert "parallel/jobs" in result.parameters
        assert "parallel/merge_seconds" in result.parameters

    def test_memoization_forces_sequential(self, ldbc_graph):
        """The memo fast path couples batches; jobs must not change it."""
        config = PGHiveConfig(jobs=2, memoize_patterns=True)
        result = PGHive(config).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert all(r.worker is None for r in result.batches)

    def test_jobs1_takes_sequential_path(self, ldbc_graph):
        result = PGHive(PGHiveConfig(jobs=1)).discover_incremental(
            GraphStore(ldbc_graph), num_batches=NUM_BATCHES
        )
        assert all(r.worker is None for r in result.batches)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PGHiveConfig(jobs=0)
        with pytest.raises(ValueError):
            PGHiveConfig(parallel_chunk="sometimes")
        with pytest.raises(ValueError):
            PGHiveConfig(parallel_chunk="0")

    def test_chunk_size_resolution(self):
        config = PGHiveConfig(jobs=4)
        # auto: about two tasks per worker
        assert config.chunk_size(16) == 2
        assert config.chunk_size(3) == 1
        explicit = PGHiveConfig(jobs=4, parallel_chunk="3")
        assert explicit.chunk_size(16) == 3
        assert explicit.chunk_size(2) == 2
