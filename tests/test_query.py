"""Tests for the query/traversal facility."""

import pytest

from repro.graph.query import (
    Traversal,
    match_edges,
    match_nodes,
    match_pattern,
)


class TestMatchNodes:
    def test_by_label(self, figure1_graph):
        people = match_nodes(figure1_graph, label="Person")
        assert {n.id for n in people} == {0, 1}

    def test_by_property(self, figure1_graph):
        bobs = match_nodes(figure1_graph, properties={"name": "Bob"})
        assert len(bobs) == 1 and bobs[0].id == 0

    def test_by_label_and_property(self, figure1_graph):
        assert match_nodes(
            figure1_graph, label="Person", properties={"name": "Alice"}
        ) == []  # Alice is unlabeled

    def test_where_predicate(self, figure1_graph):
        with_gender = match_nodes(
            figure1_graph, where=lambda n: "gender" in n.properties
        )
        assert len(with_gender) == 3

    def test_multiple_labels_required(self):
        from repro.graph.builder import GraphBuilder

        b = GraphBuilder()
        b.node(["A", "B"], {})
        b.node(["A"], {})
        graph = b.build()
        assert len(match_nodes(graph, labels=["A", "B"])) == 1
        assert len(match_nodes(graph, labels=["A"])) == 2


class TestMatchEdges:
    def test_by_label(self, figure1_graph):
        knows = match_edges(figure1_graph, label="KNOWS")
        assert len(knows) == 2

    def test_by_property(self, figure1_graph):
        since = match_edges(figure1_graph, properties={"since": 2015})
        assert len(since) == 1

    def test_where(self, figure1_graph):
        assert len(match_edges(
            figure1_graph, where=lambda e: not e.properties
        )) == 4


class TestMatchPattern:
    def test_full_triple(self, figure1_graph):
        triples = match_pattern(
            figure1_graph, "Person", "WORKS_AT", "Organization"
        )
        assert len(triples) == 1
        assert triples[0].source.properties["name"] == "Bob"

    def test_partial_pattern(self, figure1_graph):
        likes = match_pattern(figure1_graph, edge_label="LIKES")
        assert len(likes) == 2
        to_posts = match_pattern(figure1_graph, target_label="Post")
        assert len(to_posts) == 2

    def test_no_match(self, figure1_graph):
        assert match_pattern(figure1_graph, "Post", "KNOWS", "Post") == []


class TestTraversal:
    def test_out_traversal(self, figure1_graph):
        # Bob -> WORKS_AT -> Organization
        result = (
            Traversal(figure1_graph)
            .start(0)
            .out("WORKS_AT")
            .nodes()
        )
        assert len(result) == 1
        assert "Organization" in result[0].labels

    def test_in_traversal(self, figure1_graph):
        # Who knows John (id 1)?
        knowers = Traversal(figure1_graph).start(1).in_("KNOWS").ids()
        assert sorted(knowers) == [0, 2]

    def test_chained_hops(self, figure1_graph):
        # People who like the same posts Alice likes: Alice -> LIKES ->
        # post -> (in) LIKES -> person.
        result = (
            Traversal(figure1_graph)
            .start(2)
            .out("LIKES")
            .in_("LIKES")
            .ids()
        )
        assert result == [2]  # nobody else liked Alice's post

    def test_start_matching_and_filter(self, figure1_graph):
        result = (
            Traversal(figure1_graph)
            .start_matching(label="Person")
            .out("KNOWS")
            .with_label("Person")
            .ids()
        )
        assert result == [1]

    def test_deduplication(self, figure1_graph):
        # Both Alice and Bob know John: frontier dedupes to one John.
        result = (
            Traversal(figure1_graph)
            .start(0, 2)
            .out("KNOWS")
            .nodes()
        )
        assert len(result) == 1

    def test_iteration(self, figure1_graph):
        traversal = Traversal(figure1_graph).start(0).out()
        assert all(hasattr(node, "labels") for node in traversal)

    def test_empty_frontier_stays_empty(self, figure1_graph):
        assert Traversal(figure1_graph).out("KNOWS").nodes() == []
