"""Integration tests: the full pipeline over every bundled dataset.

These are the end-to-end checks a release gate would run: every dataset
discovers cleanly, scores perfectly (or near-perfectly for IYP) on clean
data, serializes to every format without errors, and validates its own
graph in LOOSE mode.
"""

import pytest

from repro.core.pipeline import PGHive
from repro.datasets import get_dataset, list_datasets
from repro.evaluation.f1star import majority_f1
from repro.graph.store import GraphStore
from repro.schema.serialize_cypher import serialize_cypher
from repro.schema.serialize_graphql import serialize_graphql
from repro.schema.serialize_pgschema import serialize_pg_schema
from repro.schema.serialize_xsd import serialize_xsd
from repro.schema.validate import ValidationMode, validate_graph

_SCALE = 0.25


@pytest.fixture(scope="module")
def discoveries():
    """Discover every dataset once (module-scoped: ~2 s total)."""
    results = {}
    for name in list_datasets():
        dataset = get_dataset(name, scale=_SCALE, seed=5)
        result = PGHive().discover(GraphStore(dataset.graph))
        results[name] = (dataset, result)
    return results


@pytest.mark.parametrize("name", [
    "POLE", "MB6", "HET.IO", "FIB25", "ICIJ", "CORD19", "LDBC", "IYP",
])
class TestEveryDataset:
    def test_node_f1_on_clean_data(self, discoveries, name):
        dataset, result = discoveries[name]
        score = majority_f1(result.node_assignment, dataset.truth.node_types)
        floor = 0.95 if name != "IYP" else 0.90
        assert score.headline >= floor, (name, score.headline)

    def test_edge_f1_on_clean_data(self, discoveries, name):
        dataset, result = discoveries[name]
        score = majority_f1(result.edge_assignment, dataset.truth.edge_types)
        assert score.headline >= 0.95, (name, score.headline)

    def test_every_element_assigned(self, discoveries, name):
        dataset, result = discoveries[name]
        assert set(result.node_assignment) == set(dataset.truth.node_types)
        assert set(result.edge_assignment) == set(dataset.truth.edge_types)

    def test_all_serializers_run(self, discoveries, name):
        _, result = discoveries[name]
        assert "CREATE GRAPH TYPE" in serialize_pg_schema(result.schema)
        assert serialize_pg_schema(result.schema, "LOOSE")
        assert serialize_xsd(result.schema).startswith("<?xml")
        assert "//" in serialize_cypher(result.schema)
        assert "type " in serialize_graphql(result.schema)

    def test_schema_covers_its_graph_loose(self, discoveries, name):
        dataset, result = discoveries[name]
        report = validate_graph(
            dataset.graph, result.schema, ValidationMode.LOOSE
        )
        assert report.is_valid, (
            name, [v.detail for v in report.violations[:3]],
        )

    def test_cardinalities_assigned_to_every_edge_type(
        self, discoveries, name
    ):
        from repro.schema.model import Cardinality

        _, result = discoveries[name]
        for edge_type in result.schema.edge_types.values():
            assert edge_type.cardinality is not Cardinality.UNKNOWN, (
                name, edge_type.name,
            )

    def test_datatypes_assigned_to_every_property(self, discoveries, name):
        from repro.schema.model import DataType

        _, result = discoveries[name]
        for node_type in result.schema.node_types.values():
            for key, spec in node_type.properties.items():
                assert spec.datatype is not DataType.UNKNOWN, (
                    name, node_type.name, key,
                )
