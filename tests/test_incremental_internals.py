"""Unit tests for IncrementalDiscovery's internal stages."""

import numpy as np
import pytest

from repro.core.config import PGHiveConfig
from repro.core.incremental import IncrementalDiscovery, _refine_by_labels
from repro.graph.model import Edge, Node
from repro.schema.model import SchemaGraph


def _node(node_id, labels=(), keys=()):
    return Node(node_id, frozenset(labels), {k: 1 for k in keys})


class TestRefineByLabels:
    def test_splits_mixed_label_cluster(self):
        nodes = [_node(0, ["A"]), _node(1, ["B"]), _node(2, ["A"])]
        assignment = np.array([0, 0, 0])
        refined = _refine_by_labels(nodes, assignment)
        assert refined[0] == refined[2]
        assert refined[0] != refined[1]

    def test_keeps_unlabeled_together(self):
        nodes = [_node(0), _node(1), _node(2, ["A"])]
        refined = _refine_by_labels(nodes, np.array([0, 0, 0]))
        assert refined[0] == refined[1]
        assert refined[0] != refined[2]

    def test_respects_original_clusters(self):
        nodes = [_node(0, ["A"]), _node(1, ["A"])]
        refined = _refine_by_labels(nodes, np.array([0, 1]))
        assert refined[0] != refined[1]

    def test_label_set_not_token_is_the_key(self):
        nodes = [_node(0, ["A&B"]), _node(1, ["A", "B"])]
        refined = _refine_by_labels(nodes, np.array([0, 0]))
        assert refined[0] != refined[1]

    def test_empty_input(self):
        out = _refine_by_labels([], np.empty(0, dtype=np.int64))
        assert out.size == 0

    def test_ids_dense_in_first_appearance_order(self):
        nodes = [_node(0, ["B"]), _node(1, ["A"]), _node(2, ["B"])]
        refined = _refine_by_labels(nodes, np.array([0, 0, 0]))
        assert refined.tolist() == [0, 1, 0]


class TestFitEmbedder:
    def test_dedupes_sentences(self):
        """Thousands of same-shaped edges train like a handful."""
        engine = IncrementalDiscovery()
        nodes = [_node(i, ["Person"]) for i in range(100)]
        edges = [
            Edge(i, i % 100, (i + 1) % 100, frozenset({"KNOWS"}), {})
            for i in range(500)
        ]
        labels = {n.id: n.labels for n in nodes}
        embedder = engine._fit_embedder(nodes, edges, labels)
        # Only two tokens exist despite 500 edges.
        assert len(embedder.vocabulary) == 2

    def test_handles_no_edges(self):
        engine = IncrementalDiscovery()
        nodes = [_node(0, ["A"]), _node(1, ["B"])]
        embedder = engine._fit_embedder(nodes, [], {})
        assert "A" in embedder.vocabulary and "B" in embedder.vocabulary


class TestEffectiveEndpointLabels:
    def test_unlabeled_member_of_labeled_type_gets_real_labels(self):
        from repro.schema.model import NodeType

        engine = IncrementalDiscovery()
        batch_schema = SchemaGraph("b")
        person = NodeType("Person", frozenset({"Person"}), members=[0, 1])
        batch_schema.add_node_type(person)
        nodes = [_node(0, ["Person"]), _node(1)]  # node 1 unlabeled
        endpoint_labels = {0: frozenset({"Person"}), 1: frozenset()}
        effective = engine._effective_endpoint_labels(
            batch_schema, nodes, endpoint_labels
        )
        assert effective[1] == frozenset({"Person"})

    def test_abstract_type_members_get_pseudo_token(self):
        from repro.schema.model import NodeType

        engine = IncrementalDiscovery()
        batch_schema = SchemaGraph("b")
        ghost = NodeType("ABSTRACT_NODE_1", abstract=True, members=[0])
        batch_schema.add_node_type(ghost)
        nodes = [_node(0)]
        effective = engine._effective_endpoint_labels(
            batch_schema, nodes, {0: frozenset()}
        )
        (token,) = effective[0]
        assert token.startswith("~")
        assert token in ghost.cluster_tokens

    def test_out_of_batch_endpoints_untouched(self):
        engine = IncrementalDiscovery()
        effective = engine._effective_endpoint_labels(
            SchemaGraph("b"), [], {42: frozenset({"Other"})}
        )
        assert effective[42] == frozenset({"Other"})


class TestAbsorbKnownPatterns:
    def _primed_engine(self):
        engine = IncrementalDiscovery(PGHiveConfig(memoize_patterns=True))
        nodes = [_node(i, ["T"], ["a", "b"]) for i in range(4)]
        engine.process_batch(nodes, [], None)
        return engine

    def test_known_structure_absorbed(self):
        engine = self._primed_engine()
        report = engine.process_batch([_node(10, ["T"], ["a"])], [], None)
        assert report.memo_node_hits == 1
        assert 10 in engine.schema.node_types["T"].members

    def test_new_property_key_goes_through_pipeline(self):
        engine = self._primed_engine()
        report = engine.process_batch(
            [_node(11, ["T"], ["a", "zz"])], [], None
        )
        assert report.memo_node_hits == 0
        assert "zz" in engine.schema.node_types["T"].property_keys

    def test_new_label_goes_through_pipeline(self):
        engine = self._primed_engine()
        report = engine.process_batch([_node(12, ["U"], ["a"])], [], None)
        assert report.memo_node_hits == 0
        assert any(
            t.labels == frozenset({"U"})
            for t in engine.schema.node_types.values()
        )

    def test_unlabeled_never_absorbed(self):
        engine = self._primed_engine()
        report = engine.process_batch([_node(13, [], ["a", "b"])], [], None)
        assert report.memo_node_hits == 0
