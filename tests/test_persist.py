"""Tests for schema persistence and resumed incremental discovery."""

import pytest

from repro.core.incremental import IncrementalDiscovery
from repro.core.pipeline import PGHive
from repro.datasets import get_dataset
from repro.graph.store import GraphStore
from repro.schema.diff import diff_schemas
from repro.schema.persist import (
    SchemaPersistError,
    clear_shard_journal,
    load_checkpoint,
    load_schema,
    load_shard_journal,
    save_checkpoint,
    save_schema,
    save_shard_journal_entry,
    schema_from_dict,
    schema_to_dict,
    shard_journal_dir,
)


@pytest.fixture
def discovered_schema(figure1_store):
    return PGHive().discover(figure1_store).schema


class TestRoundTrip:
    def test_dict_round_trip_is_structurally_identical(self, discovered_schema):
        rebuilt = schema_from_dict(schema_to_dict(discovered_schema))
        diff = diff_schemas(discovered_schema, rebuilt)
        assert diff.is_empty

    def test_file_round_trip(self, discovered_schema, tmp_path):
        path = tmp_path / "schema.json"
        save_schema(discovered_schema, path)
        loaded = load_schema(path)
        assert set(loaded.node_types) == set(discovered_schema.node_types)
        assert set(loaded.edge_types) == set(discovered_schema.edge_types)

    def test_bookkeeping_survives(self, discovered_schema, tmp_path):
        path = tmp_path / "schema.json"
        save_schema(discovered_schema, path)
        loaded = load_schema(path)
        for name, original in discovered_schema.node_types.items():
            rebuilt = loaded.node_types[name]
            assert rebuilt.instance_count == original.instance_count
            assert rebuilt.property_counts == original.property_counts
            assert rebuilt.members == original.members
            for key, spec in original.properties.items():
                assert rebuilt.properties[key].datatype is spec.datatype
                assert rebuilt.properties[key].status is spec.status

    def test_edge_details_survive(self, discovered_schema, tmp_path):
        path = tmp_path / "schema.json"
        save_schema(discovered_schema, path)
        loaded = load_schema(path)
        knows = loaded.edge_types["KNOWS"]
        original = discovered_schema.edge_types["KNOWS"]
        assert knows.source_labels == original.source_labels
        assert knows.cardinality is original.cardinality
        assert knows.max_out == original.max_out

    def test_members_can_be_dropped(self, discovered_schema, tmp_path):
        path = tmp_path / "schema.json"
        save_schema(discovered_schema, path, include_members=False)
        loaded = load_schema(path)
        assert all(t.members == [] for t in loaded.node_types.values())
        # Counts still survive for constraint math.
        assert (
            loaded.node_types["Person"].instance_count
            == discovered_schema.node_types["Person"].instance_count
        )

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="format version"):
            schema_from_dict({"format_version": 999})


class TestPersistErrors:
    """Every decode failure surfaces as one SchemaPersistError."""

    def test_corrupt_json_names_the_file(self, tmp_path):
        path = tmp_path / "schema.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SchemaPersistError, match="corrupt or truncated"):
            load_schema(path)
        with pytest.raises(SchemaPersistError, match="schema.json"):
            load_schema(path)

    def test_truncated_file_rejected(self, discovered_schema, tmp_path):
        path = tmp_path / "schema.json"
        save_schema(discovered_schema, path)
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) // 2], encoding="utf-8")
        with pytest.raises(SchemaPersistError):
            load_schema(path)

    def test_future_version_rejected_via_file(
        self, discovered_schema, tmp_path
    ):
        import json

        path = tmp_path / "schema.json"
        save_schema(discovered_schema, path)
        data = json.loads(path.read_text(encoding="utf-8"))
        data["format_version"] = 999
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(SchemaPersistError, match="format version"):
            load_schema(path)

    def test_non_object_document_rejected(self):
        with pytest.raises(SchemaPersistError, match="JSON object"):
            schema_from_dict([1, 2, 3])

    def test_malformed_type_record_rejected(self):
        with pytest.raises(SchemaPersistError, match="malformed"):
            schema_from_dict({
                "format_version": 1,
                "node_types": [{"labels": ["Person"]}],  # missing name
            })

    def test_persist_error_is_a_value_error(self):
        assert issubclass(SchemaPersistError, ValueError)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_schema(tmp_path / "absent.json")

    def test_atomic_save_leaves_no_temp_files(
        self, discovered_schema, tmp_path
    ):
        path = tmp_path / "schema.json"
        save_schema(discovered_schema, path)
        save_schema(discovered_schema, path)  # overwrite in place
        assert [p.name for p in tmp_path.iterdir()] == ["schema.json"]


class TestCheckpoints:
    def test_round_trip(self, discovered_schema, tmp_path):
        path = tmp_path / "ckpt.json"
        manifest = {"next_batch": 3, "context": {"seed": 7}}
        save_checkpoint(path, discovered_schema, manifest)
        schema, loaded_manifest = load_checkpoint(path)
        assert loaded_manifest == manifest
        assert diff_schemas(discovered_schema, schema).is_empty

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("garbage", encoding="utf-8")
        with pytest.raises(SchemaPersistError, match="corrupt or truncated"):
            load_checkpoint(path)

    def test_future_checkpoint_version_rejected(
        self, discovered_schema, tmp_path
    ):
        import json

        path = tmp_path / "ckpt.json"
        save_checkpoint(path, discovered_schema, {"next_batch": 1})
        data = json.loads(path.read_text(encoding="utf-8"))
        data["checkpoint_version"] = 999
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(
            SchemaPersistError, match="checkpoint version"
        ):
            load_checkpoint(path)

    def test_missing_manifest_rejected(self, tmp_path):
        import json

        path = tmp_path / "ckpt.json"
        path.write_text(
            json.dumps({"checkpoint_version": 1, "schema": {}}),
            encoding="utf-8",
        )
        with pytest.raises(SchemaPersistError, match="manifest"):
            load_checkpoint(path)


class TestShardJournal:
    """The parallel path's per-shard journal primitives."""

    def test_round_trip(self, tmp_path):
        entry = {"context": {"seed": 1}, "schema": {"name": "s"}}
        path = save_shard_journal_entry(tmp_path, 3, entry)
        assert path == shard_journal_dir(tmp_path) / "shard-00003.json"
        entries, skipped = load_shard_journal(tmp_path)
        assert skipped == []
        assert set(entries) == {3}
        assert entries[3]["context"] == {"seed": 1}
        assert entries[3]["index"] == 3

    def test_multiple_entries_enumerate_sorted(self, tmp_path):
        for index in (4, 0, 2):
            save_shard_journal_entry(tmp_path, index, {"i": index})
        entries, skipped = load_shard_journal(tmp_path)
        assert sorted(entries) == [0, 2, 4]
        assert skipped == []

    def test_corrupt_entry_skipped_not_fatal(self, tmp_path):
        save_shard_journal_entry(tmp_path, 0, {})
        bad = shard_journal_dir(tmp_path) / "shard-00001.json"
        bad.write_text("{torn", encoding="utf-8")
        entries, skipped = load_shard_journal(tmp_path)
        assert set(entries) == {0}
        assert skipped == ["shard-00001.json"]

    def test_foreign_version_skipped(self, tmp_path):
        import json

        save_shard_journal_entry(tmp_path, 0, {})
        alien = shard_journal_dir(tmp_path) / "shard-00009.json"
        alien.write_text(
            json.dumps({"journal_version": 999, "index": 9}),
            encoding="utf-8",
        )
        entries, skipped = load_shard_journal(tmp_path)
        assert set(entries) == {0}
        assert skipped == ["shard-00009.json"]

    def test_clear_removes_all_entries(self, tmp_path):
        for index in range(3):
            save_shard_journal_entry(tmp_path, index, {})
        assert clear_shard_journal(tmp_path) == 3
        entries, _ = load_shard_journal(tmp_path)
        assert entries == {}
        assert clear_shard_journal(tmp_path) == 0

    def test_missing_directory_is_empty_journal(self, tmp_path):
        entries, skipped = load_shard_journal(tmp_path / "never")
        assert entries == {} and skipped == []
        assert clear_shard_journal(tmp_path / "never") == 0

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        save_shard_journal_entry(tmp_path, 0, {"a": 1})
        save_shard_journal_entry(tmp_path, 0, {"a": 2})  # overwrite
        names = [p.name for p in shard_journal_dir(tmp_path).iterdir()]
        assert names == ["shard-00000.json"]


class TestAbstractCounterRestore:
    """Reloading a schema with ABSTRACT types must restore the name
    counter, or a resumed run could mint a duplicate ABSTRACT name."""

    def test_counter_restored_from_names(self):
        schema = schema_from_dict({
            "format_version": 1,
            "node_types": [
                {"name": "ABSTRACT_NODE_2", "labels": [], "abstract": True},
            ],
            "edge_types": [
                {"name": "ABSTRACT_EDGE_5", "labels": [], "abstract": True},
            ],
        })
        assert schema.next_abstract_name("NODE") == "ABSTRACT_NODE_6"

    def test_counter_zero_without_abstract_types(self, discovered_schema):
        rebuilt = schema_from_dict(schema_to_dict(discovered_schema))
        fresh = rebuilt.next_abstract_name("NODE")
        assert fresh == "ABSTRACT_NODE_1"


class TestResume:
    def test_resumed_engine_extends_saved_schema(self, tmp_path):
        dataset = get_dataset("POLE", scale=0.4, seed=3)
        store = GraphStore(dataset.graph)
        batches = list(store.batches(4, seed=1))

        # Session 1: process half the stream, save.
        first = IncrementalDiscovery()
        for batch in batches[:2]:
            first.process_batch(batch.nodes, batch.edges, batch.endpoint_labels)
        path = tmp_path / "running.json"
        save_schema(first.schema, path)

        # Session 2: load and continue.
        resumed = IncrementalDiscovery(schema=load_schema(path))
        for batch in batches[2:]:
            resumed.process_batch(
                batch.nodes, batch.edges, batch.endpoint_labels
            )

        # Single-session reference run.
        reference = IncrementalDiscovery()
        for batch in batches:
            reference.process_batch(
                batch.nodes, batch.edges, batch.endpoint_labels
            )

        assert set(resumed.schema.node_types) == set(
            reference.schema.node_types
        )
        for name, ref_type in reference.schema.node_types.items():
            assert (
                resumed.schema.node_types[name].instance_count
                == ref_type.instance_count
            )

    def test_resume_is_monotone_over_saved(self, tmp_path, figure1_store):
        saved = PGHive().discover(figure1_store).schema
        path = tmp_path / "s.json"
        save_schema(saved, path)
        resumed = IncrementalDiscovery(schema=load_schema(path))
        from repro.graph.builder import GraphBuilder

        b = GraphBuilder()
        b.node(["Spaceship"], {"name": "HoG"})
        graph = b.build()
        resumed.process_batch(list(graph.nodes()), [], None)
        diff = diff_schemas(saved, resumed.schema)
        assert diff.is_monotone_extension
        assert "Spaceship" in resumed.schema.node_types
