"""Tests for the schema model (Definitions 3.2-3.4)."""

import pytest

from repro.schema.model import (
    Cardinality,
    DataType,
    EdgeType,
    NodeType,
    PropertySpec,
    PropertyStatus,
    SchemaGraph,
)


class TestCardinality:
    def test_one_to_one(self):
        assert Cardinality.from_degrees(1, 1) is Cardinality.ONE_TO_ONE

    def test_many_sources_one_target_each(self):
        # Every source has one outgoing edge; targets accumulate many:
        # WORKS_AT-style N:1 (paper Example 8).
        assert Cardinality.from_degrees(1, 5) is Cardinality.N_TO_ONE

    def test_one_source_many_targets(self):
        assert Cardinality.from_degrees(5, 1) is Cardinality.ONE_TO_N

    def test_many_to_many(self):
        assert Cardinality.from_degrees(3, 4) is Cardinality.M_TO_N

    def test_unknown_without_observations(self):
        assert Cardinality.from_degrees(0, 0) is Cardinality.UNKNOWN


class TestPropertySpec:
    def test_render_mandatory(self):
        spec = PropertySpec("age", DataType.INTEGER, PropertyStatus.MANDATORY)
        assert spec.render() == "age INT"

    def test_render_optional(self):
        spec = PropertySpec("age", DataType.FLOAT, PropertyStatus.OPTIONAL)
        assert spec.render() == "OPTIONAL age DOUBLE"


class TestNodeType:
    def test_ensure_property_idempotent(self):
        node_type = NodeType("T")
        first = node_type.ensure_property("k")
        second = node_type.ensure_property("k")
        assert first is second
        assert node_type.property_keys == frozenset({"k"})

    def test_property_frequency(self):
        node_type = NodeType("T", instance_count=4)
        node_type.property_counts["k"] = 3
        assert node_type.property_frequency("k") == 0.75
        assert node_type.property_frequency("missing") == 0.0

    def test_frequency_with_no_instances(self):
        assert NodeType("T").property_frequency("k") == 0.0


class TestSchemaGraph:
    def test_add_and_lookup_by_labels(self):
        schema = SchemaGraph()
        schema.add_node_type(NodeType("P", frozenset({"Person"})))
        found = schema.node_type_for_labels({"Person"})
        assert found is not None and found.name == "P"
        assert schema.node_type_for_labels({"Nope"}) is None

    def test_duplicate_names_rejected(self):
        schema = SchemaGraph()
        schema.add_node_type(NodeType("P"))
        with pytest.raises(ValueError):
            schema.add_node_type(NodeType("P"))
        schema.add_edge_type(EdgeType("E"))
        with pytest.raises(ValueError):
            schema.add_edge_type(EdgeType("E"))

    def test_edge_types_for_labels_returns_all(self):
        schema = SchemaGraph()
        schema.add_edge_type(EdgeType(
            "LIKES", frozenset({"LIKES"}),
            source_labels=frozenset({"Person"}),
        ))
        schema.add_edge_type(EdgeType(
            "LIKES@2", frozenset({"LIKES"}),
            source_labels=frozenset({"Bot"}),
        ))
        assert len(schema.edge_types_for_labels({"LIKES"})) == 2

    def test_abstract_names_unique(self):
        schema = SchemaGraph()
        names = {schema.next_abstract_name("NODE") for _ in range(5)}
        assert len(names) == 5

    def test_detach_members(self):
        schema = SchemaGraph()
        schema.add_node_type(NodeType("P", members=[1, 2]))
        schema.add_edge_type(EdgeType("E", members=[3]))
        schema.detach_members()
        assert schema.node_types["P"].members == []
        assert schema.edge_types["E"].members == []

    def test_num_types(self):
        schema = SchemaGraph()
        schema.add_node_type(NodeType("A"))
        schema.add_edge_type(EdgeType("B"))
        assert schema.num_types == 2

    def test_remove(self):
        schema = SchemaGraph()
        schema.add_node_type(NodeType("A"))
        removed = schema.remove_node_type("A")
        assert removed.name == "A"
        assert schema.num_types == 0
