"""Property tests: columnar bulk validation == per-element reference.

``validate_columns`` (and its wrapper ``validate_batch``) must produce a
report byte-identical to ``validate_elements`` / ``validate_graph`` on the
same inputs: same checked count, same violations, same order, same detail
strings.  The corpus below stresses both modes, label-free nodes, abstract
(label-free) types, endpoint mismatches, unknown endpoints, multi-candidate
ties, and schemas discovered from real graphs.
"""

import random

import pytest

from repro.core.pipeline import PGHive
from repro.graph.model import Edge, Node
from repro.schema.model import (
    DataType,
    EdgeType,
    NodeType,
    PropertyStatus,
    SchemaGraph,
)
from repro.schema.validate import (
    ValidationMode,
    validate_batch,
    validate_elements,
    validate_graph,
)

LABELS = ["Person", "City", "Org", "Tag"]
KEYS = ["name", "age", "since", "weight", "rank"]
DATATYPES = [
    DataType.STRING,
    DataType.INTEGER,
    DataType.FLOAT,
    DataType.BOOLEAN,
    DataType.UNKNOWN,
]
VALUES = [1, -7, "s", "2021", 2.5, True, False, 0, "x y", 99.0]


def _random_schema(rng: random.Random) -> SchemaGraph:
    schema = SchemaGraph()
    for i in range(rng.randint(1, 4)):
        labels = frozenset(rng.sample(LABELS, rng.randint(0, 2)))
        node_type = NodeType(f"NT{i}", labels)
        for key in rng.sample(KEYS, rng.randint(0, 4)):
            spec = node_type.ensure_property(key)
            spec.datatype = rng.choice(DATATYPES)
            spec.status = rng.choice(list(PropertyStatus))
        schema.add_node_type(node_type)
    for i in range(rng.randint(1, 3)):
        labels = frozenset(rng.sample(LABELS, rng.randint(0, 2)))
        edge_type = EdgeType(
            f"ET{i}",
            labels,
            source_labels=frozenset(rng.sample(LABELS, rng.randint(0, 2))),
            target_labels=frozenset(rng.sample(LABELS, rng.randint(0, 2))),
        )
        for key in rng.sample(KEYS, rng.randint(0, 3)):
            spec = edge_type.ensure_property(key)
            spec.datatype = rng.choice(DATATYPES)
            spec.status = rng.choice(list(PropertyStatus))
        schema.add_edge_type(edge_type)
    return schema


def _random_elements(
    rng: random.Random,
) -> tuple[list[Node], list[Edge], dict[int, frozenset[str]]]:
    nodes = []
    for i in range(rng.randint(0, 25)):
        labels = frozenset(rng.sample(LABELS, rng.randint(0, 2)))
        properties = {
            key: rng.choice(VALUES)
            for key in rng.sample(KEYS, rng.randint(0, 4))
        }
        nodes.append(Node(i, labels, properties))
    endpoint_labels = {node.id: node.labels for node in nodes}
    edges = []
    if nodes:
        for j in range(rng.randint(0, 20)):
            # ids beyond the batch exercise the unknown-endpoint path
            source = rng.randint(0, len(nodes) + 2)
            target = rng.randint(0, len(nodes) + 2)
            labels = frozenset(rng.sample(LABELS, rng.randint(0, 2)))
            properties = {
                key: rng.choice(VALUES)
                for key in rng.sample(KEYS, rng.randint(0, 3))
            }
            edges.append(Edge(1000 + j, source, target, labels, properties))
    return nodes, edges, endpoint_labels


def _assert_reports_identical(reference, columnar):
    assert columnar.mode == reference.mode
    assert columnar.checked == reference.checked
    assert columnar.violations == reference.violations
    assert columnar.violation_rate == reference.violation_rate


class TestColumnarEquivalence:
    @pytest.mark.parametrize("seed", range(40))
    @pytest.mark.parametrize(
        "mode", [ValidationMode.STRICT, ValidationMode.LOOSE]
    )
    def test_random_corpus(self, seed, mode):
        rng = random.Random(seed)
        schema = _random_schema(rng)
        nodes, edges, endpoint_labels = _random_elements(rng)
        reference = validate_elements(
            nodes, edges, schema, mode, endpoint_labels
        )
        columnar = validate_batch(
            nodes, edges, schema, mode, endpoint_labels
        )
        _assert_reports_identical(reference, columnar)

    @pytest.mark.parametrize("mode", [ValidationMode.STRICT,
                                      ValidationMode.LOOSE])
    def test_discovered_schema_round_trip(
        self, figure1_store, figure1_graph, mode
    ):
        """Both engines agree on a real graph under its own schema."""
        result = PGHive().discover(figure1_store)
        nodes = list(figure1_graph.nodes())
        edges = list(figure1_graph.edges())
        reference = validate_graph(figure1_graph, result.schema, mode)
        columnar = validate_batch(nodes, edges, result.schema, mode)
        _assert_reports_identical(reference, columnar)
        assert columnar.is_valid

    def test_empty_batch(self):
        schema = SchemaGraph()
        report = validate_batch([], [], schema)
        assert report.checked == 0
        assert report.is_valid
        assert report.violation_rate == 0.0

    def test_no_type_pattern_shares_detail_per_row(self):
        """Every row of an uncovered pattern gets the same detail string."""
        schema = SchemaGraph()
        schema.add_node_type(NodeType("P", frozenset({"Person"})))
        nodes = [
            Node(i, frozenset({"Alien"}), {"name": "x"}) for i in range(5)
        ]
        reference = validate_elements(nodes, [], schema)
        columnar = validate_batch(nodes, [], schema)
        _assert_reports_identical(reference, columnar)
        assert len(columnar.violations) == 5
        assert len({v.detail for v in columnar.violations}) == 1

    def test_value_dependent_rows_diverge_within_pattern(self):
        """Same pattern, different verdicts once values are inspected."""
        schema = SchemaGraph()
        person = NodeType("Person", frozenset({"Person"}))
        age = person.ensure_property("age")
        age.datatype = DataType.INTEGER
        age.status = PropertyStatus.OPTIONAL
        schema.add_node_type(person)
        nodes = [
            Node(0, frozenset({"Person"}), {"age": 30}),
            Node(1, frozenset({"Person"}), {"age": "old"}),
            Node(2, frozenset({"Person"}), {"age": 7}),
        ]
        reference = validate_elements(nodes, [], schema)
        columnar = validate_batch(nodes, [], schema)
        _assert_reports_identical(reference, columnar)
        assert [v.element_id for v in columnar.violations] == [1]
