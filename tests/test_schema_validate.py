"""Tests for graph-against-schema validation (STRICT / LOOSE)."""

import pytest

from repro.core.pipeline import PGHive
from repro.graph.builder import GraphBuilder
from repro.graph.store import GraphStore
from repro.schema.model import (
    DataType,
    EdgeType,
    NodeType,
    PropertyStatus,
    SchemaGraph,
)
from repro.schema.validate import ValidationMode, validate_graph


@pytest.fixture
def person_schema() -> SchemaGraph:
    schema = SchemaGraph()
    person = NodeType("Person", frozenset({"Person"}))
    name = person.ensure_property("name")
    name.datatype = DataType.STRING
    name.status = PropertyStatus.MANDATORY
    age = person.ensure_property("age")
    age.datatype = DataType.INTEGER
    age.status = PropertyStatus.OPTIONAL
    schema.add_node_type(person)
    knows = EdgeType(
        "KNOWS", frozenset({"KNOWS"}),
        source_labels=frozenset({"Person"}),
        target_labels=frozenset({"Person"}),
    )
    knows.ensure_property("since").datatype = DataType.INTEGER
    schema.add_edge_type(knows)
    return schema


def _graph(node_props, labels=("Person",)):
    b = GraphBuilder()
    a = b.node(labels, node_props)
    c = b.node(labels, {"name": "other"})
    b.edge(a, c, ["KNOWS"], {"since": 2021})
    return b.build()


class TestValidation:
    def test_conforming_graph_passes_strict(self, person_schema):
        graph = _graph({"name": "x", "age": 4})
        report = validate_graph(graph, person_schema)
        assert report.is_valid
        assert report.checked == 3

    def test_missing_mandatory_property(self, person_schema):
        graph = _graph({"age": 4})
        report = validate_graph(graph, person_schema)
        assert any(v.rule == "mandatory" for v in report.violations)

    def test_datatype_violation(self, person_schema):
        graph = _graph({"name": "x", "age": "not a number"})
        report = validate_graph(graph, person_schema)
        assert any(v.rule == "datatype" for v in report.violations)

    def test_unknown_label_has_no_type(self, person_schema):
        graph = _graph({"name": "x"}, labels=("Alien",))
        report = validate_graph(graph, person_schema)
        assert any(v.rule == "no-type" for v in report.violations)

    def test_extra_property_fails_coverage(self, person_schema):
        graph = _graph({"name": "x", "shoe_size": 42})
        report = validate_graph(graph, person_schema)
        assert any(
            v.rule == "no-type" and v.element_kind == "node"
            for v in report.violations
        )

    def test_loose_mode_skips_mandatory(self, person_schema):
        graph = _graph({"age": 4})
        report = validate_graph(
            graph, person_schema, ValidationMode.LOOSE
        )
        assert report.is_valid

    def test_endpoint_violation(self, person_schema):
        b = GraphBuilder()
        person_schema.add_node_type(
            NodeType("City", frozenset({"City"}))
        )
        p = b.node(["Person"], {"name": "x"})
        c = b.node(["City"], {})
        b.edge(p, c, ["KNOWS"], {})
        report = validate_graph(b.build(), person_schema)
        assert any(v.rule == "endpoint" for v in report.violations)

    def test_violation_rate(self, person_schema):
        graph = _graph({"age": 4})  # one mandatory violation over 3 elements
        report = validate_graph(graph, person_schema)
        assert report.violation_rate == pytest.approx(1 / 3)

    def test_violation_rate_counts_elements_not_violations(
        self, person_schema
    ):
        """An element breaking several rules contributes once to the rate.

        Regression: the rate used to divide raw violation count by checked
        elements and could exceed 1.0.
        """
        # Missing mandatory 'name' AND a datatype clash on 'age': two
        # violations on one element, out of three checked.
        graph = _graph({"age": "not a number"})
        report = validate_graph(graph, person_schema)
        assert report.violation_count == 2
        assert report.violating_elements == 1
        assert report.violation_rate == pytest.approx(1 / 3)
        assert 0.0 <= report.violation_rate <= 1.0

    def test_edge_exact_label_match_outranks_superset(self):
        """STRICT edge failures are reported against the exact-label type.

        Regression: edge candidates ranked only by label overlap, so a
        superset type inserted earlier could shadow the exact match and
        the report showed the less-informative candidate's failures.
        """
        schema = SchemaGraph()
        superset = EdgeType("KNOWS_LIKES", frozenset({"KNOWS", "LIKES"}))
        weight = superset.ensure_property("weight")
        weight.status = PropertyStatus.MANDATORY
        schema.add_edge_type(superset)  # inserted first
        exact = EdgeType("KNOWS", frozenset({"KNOWS"}))
        since = exact.ensure_property("since")
        since.status = PropertyStatus.MANDATORY
        schema.add_edge_type(exact)
        b = GraphBuilder()
        p = b.node([], {})
        q = b.node([], {})
        b.edge(p, q, ["KNOWS"], {})  # fails both candidates, 1 rule each
        report = validate_graph(b.build(), schema)
        edge_violations = [
            v for v in report.violations if v.element_kind == "edge"
        ]
        assert len(edge_violations) == 1
        assert "'since'" in edge_violations[0].detail
        assert "'KNOWS'" in edge_violations[0].detail

    def test_discovered_schema_validates_its_own_graph(
        self, figure1_store, figure1_graph
    ):
        """Round trip: a schema discovered from G validates G in STRICT."""
        result = PGHive().discover(figure1_store)
        report = validate_graph(figure1_graph, result.schema)
        assert report.is_valid, [v.detail for v in report.violations]
