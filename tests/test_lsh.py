"""Tests for the LSH substrate: union-find, ELSH, MinHash, bucketing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsh.buckets import (
    cluster_by_band_union,
    cluster_by_full_signature,
    cluster_by_table_union,
    groups_from_assignment,
)
from repro.lsh.elsh import EuclideanLSH
from repro.lsh.minhash import MinHashLSH
from repro.lsh.unionfind import UnionFind


class TestUnionFind:
    def test_initial_components(self):
        uf = UnionFind(5)
        assert uf.num_components == 5
        assert not uf.connected(0, 1)

    def test_union_and_find(self):
        uf = UnionFind(5)
        assert uf.union(0, 1)
        assert uf.connected(0, 1)
        assert not uf.union(0, 1)  # already merged
        assert uf.num_components == 4

    def test_transitivity(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)
        assert not uf.connected(0, 3)

    def test_components_listing(self):
        uf = UnionFind(4)
        uf.union(0, 2)
        components = uf.components()
        sizes = sorted(len(m) for m in components.values())
        assert sizes == [1, 1, 2]

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    @given(st.lists(
        st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=50
    ))
    def test_components_partition_invariant(self, pairs):
        """Union-find always partitions the universe."""
        uf = UnionFind(20)
        for a, b in pairs:
            uf.union(a, b)
        components = uf.components()
        members = sorted(m for group in components.values() for m in group)
        assert members == list(range(20))
        assert uf.num_components == len(components)


class TestEuclideanLSH:
    def test_signature_shape(self):
        lsh = EuclideanLSH(dimension=4, bucket_length=1.0, num_tables=7)
        sigs = lsh.signatures(np.random.default_rng(0).normal(size=(10, 4)))
        assert sigs.shape == (10, 7)
        assert sigs.dtype == np.int64

    def test_identical_vectors_identical_signatures(self):
        lsh = EuclideanLSH(dimension=3, bucket_length=2.0, num_tables=5)
        v = np.array([1.0, -2.0, 0.5])
        assert np.array_equal(lsh.signature(v), lsh.signature(v.copy()))

    def test_nearby_vectors_mostly_collide(self):
        lsh = EuclideanLSH(dimension=8, bucket_length=5.0, num_tables=20, seed=1)
        base = np.ones(8)
        near = base + 0.01
        agreement = np.mean(lsh.signature(base) == lsh.signature(near))
        assert agreement > 0.9

    def test_distant_vectors_mostly_differ(self):
        lsh = EuclideanLSH(dimension=8, bucket_length=0.5, num_tables=20, seed=1)
        a = np.zeros(8)
        b = np.full(8, 10.0)
        agreement = np.mean(lsh.signature(a) == lsh.signature(b))
        assert agreement < 0.3

    def test_collision_probability_monotone_in_distance(self):
        lsh = EuclideanLSH(dimension=2, bucket_length=1.0, num_tables=3)
        probs = [lsh.collision_probability(d) for d in (0.0, 0.5, 1.0, 3.0)]
        assert probs[0] == 1.0
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_or_and_composition_bounds(self):
        lsh = EuclideanLSH(dimension=2, bucket_length=1.0, num_tables=4)
        p = lsh.collision_probability(0.8)
        assert lsh.and_collision_probability(0.8) == pytest.approx(p ** 4)
        assert lsh.or_collision_probability(0.8) == pytest.approx(
            1 - (1 - p) ** 4
        )

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EuclideanLSH(0, 1.0, 1)
        with pytest.raises(ValueError):
            EuclideanLSH(2, 0.0, 1)
        with pytest.raises(ValueError):
            EuclideanLSH(2, 1.0, 0)

    def test_dimension_mismatch(self):
        lsh = EuclideanLSH(dimension=3, bucket_length=1.0, num_tables=2)
        with pytest.raises(ValueError, match="dimension"):
            lsh.signatures(np.zeros((2, 4)))


class TestMinHash:
    def test_identical_sets_identical_signatures(self):
        mh = MinHashLSH(num_hashes=16, seed=2)
        assert np.array_equal(mh.signature({1, 2, 3}), mh.signature({3, 2, 1}))

    def test_empty_sets_collide_with_each_other_only(self):
        mh = MinHashLSH(num_hashes=8)
        empty_a, empty_b = mh.signature(set()), mh.signature(set())
        assert np.array_equal(empty_a, empty_b)
        assert not np.array_equal(empty_a, mh.signature({5}))

    def test_jaccard_estimation_accuracy(self):
        mh = MinHashLSH(num_hashes=512, seed=3)
        a = set(range(100))
        b = set(range(50, 150))  # true J = 50/150 = 1/3
        estimate = MinHashLSH.estimate_jaccard(mh.signature(a), mh.signature(b))
        assert abs(estimate - 1 / 3) < 0.08

    def test_disjoint_sets_rarely_agree(self):
        mh = MinHashLSH(num_hashes=128, seed=4)
        estimate = MinHashLSH.estimate_jaccard(
            mh.signature(set(range(50))),
            mh.signature(set(range(1000, 1050))),
        )
        assert estimate < 0.1

    @given(
        st.sets(st.integers(0, 10_000), min_size=1, max_size=30),
        st.sets(st.integers(0, 10_000), min_size=1, max_size=30),
    )
    @settings(max_examples=30, deadline=None)
    def test_estimate_within_sampling_noise(self, a, b):
        """MinHash estimate stays within binomial noise of true Jaccard."""
        mh = MinHashLSH(num_hashes=256, seed=7)
        true_j = len(a & b) / len(a | b)
        estimate = MinHashLSH.estimate_jaccard(mh.signature(a), mh.signature(b))
        assert abs(estimate - true_j) < 0.25

    def test_invalid_num_hashes(self):
        with pytest.raises(ValueError):
            MinHashLSH(0)

    def test_signature_length_mismatch(self):
        mh = MinHashLSH(4)
        with pytest.raises(ValueError):
            MinHashLSH.estimate_jaccard(
                mh.signature({1}), MinHashLSH(8).signature({1})
            )

    def test_signatures_empty_input_returns_0xT(self):
        """Regression: signatures([]) used to crash in np.vstack."""
        mh = MinHashLSH(num_hashes=12, seed=1)
        batch = mh.signatures([])
        assert batch.shape == (0, 12)
        assert batch.dtype == np.int64
        reference = mh.signatures_reference([])
        assert reference.shape == (0, 12)
        assert reference.dtype == np.int64

    def test_signatures_all_empty_sets(self):
        mh = MinHashLSH(num_hashes=6, seed=2)
        batch = mh.signatures([set(), set()])
        assert np.array_equal(batch, mh.signatures_reference([set(), set()]))

    @given(
        st.lists(
            st.sets(st.integers(0, 5_000), max_size=20),
            max_size=25,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_batch_signatures_match_reference(self, sets):
        """The CSR/reduceat batch kernel is bit-equal to the per-set loop."""
        mh = MinHashLSH(num_hashes=9, seed=5)
        batch = mh.signatures(sets)
        reference = mh.signatures_reference(sets)
        assert batch.dtype == reference.dtype
        assert np.array_equal(batch, reference)


class TestBuckets:
    def test_full_signature_groups_equal_rows(self):
        sigs = np.array([[1, 2], [1, 2], [3, 4], [1, 2], [3, 5]])
        assignment = cluster_by_full_signature(sigs)
        assert assignment.tolist() == [0, 0, 1, 0, 2]

    def test_table_union_merges_on_any_column(self):
        sigs = np.array([[1, 9], [1, 8], [2, 8], [3, 7]])
        # rows 0-1 share col0, rows 1-2 share col1 -> {0,1,2}, {3}
        assignment = cluster_by_table_union(sigs)
        assert assignment[0] == assignment[1] == assignment[2]
        assert assignment[3] != assignment[0]

    def test_band_union_requires_full_band(self):
        sigs = np.array([
            [1, 2, 3, 4],
            [1, 2, 9, 9],
            [5, 5, 3, 4],
            [7, 7, 7, 7],
        ])
        assignment = cluster_by_band_union(sigs, rows_per_band=2)
        # row0/row1 share band (1,2); row0/row2 share band (3,4).
        assert assignment[0] == assignment[1] == assignment[2]
        assert assignment[3] != assignment[0]

    def test_band_rows_validation(self):
        with pytest.raises(ValueError):
            cluster_by_band_union(np.zeros((2, 4), dtype=int), 0)

    def test_groups_from_assignment(self):
        groups = groups_from_assignment(np.array([0, 1, 0, 2]))
        assert groups == [[0, 2], [1], [3]]

    def test_more_tables_more_selective_under_and(self):
        """AND-composition: adding tables never merges more."""
        rng = np.random.default_rng(5)
        data = rng.normal(size=(60, 6))
        few = EuclideanLSH(6, 2.0, 3, seed=9)
        many = EuclideanLSH(6, 2.0, 12, seed=9)
        n_few = len(set(cluster_by_full_signature(
            few.signatures(data)).tolist()))
        n_many = len(set(cluster_by_full_signature(
            many.signatures(data)).tolist()))
        assert n_many >= n_few
