"""Tests for the evaluation layer: F1*, Nemenyi, sampling error, harness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.f1star import f1_star, majority_f1
from repro.evaluation.harness import (
    ALL_METHODS,
    ExperimentGrid,
    make_system,
    run_grid,
    run_system,
)
from repro.evaluation.nemenyi import (
    average_ranks,
    friedman_statistic,
    nemenyi_critical_distance,
    nemenyi_test,
)
from repro.evaluation.reporting import f1_series_table, feature_matrix_table
from repro.evaluation.sampling_error import (
    bin_errors,
    datatype_sampling_errors,
    sampling_error,
)
from repro.datasets import get_dataset, inject_noise


class TestMajorityF1:
    def test_perfect_clustering(self):
        truth = {1: "A", 2: "A", 3: "B"}
        assignment = {1: "c1", 2: "c1", 3: "c2"}
        result = majority_f1(assignment, truth)
        assert result.micro_f1 == 1.0
        assert result.macro_f1 == 1.0
        assert result.num_clusters == 2

    def test_mixed_cluster_counts_minority_as_errors(self):
        truth = {1: "A", 2: "A", 3: "A", 4: "B"}
        assignment = {i: "one" for i in truth}
        result = majority_f1(assignment, truth)
        assert result.micro_f1 == 0.75  # B element misplaced
        assert result.per_type_f1["B"] == 0.0

    def test_fragmentation_is_free_for_micro(self):
        """Pure but fragmented clusters keep micro F1 at 1.0."""
        truth = {i: "A" for i in range(6)}
        assignment = {i: f"frag{i}" for i in range(6)}
        result = majority_f1(assignment, truth)
        assert result.micro_f1 == 1.0

    def test_unassigned_elements_hurt(self):
        truth = {1: "A", 2: "A"}
        assignment = {1: "c"}
        result = majority_f1(assignment, truth)
        assert result.micro_f1 == 0.5

    def test_assignment_ids_outside_truth_ignored(self):
        truth = {1: "A"}
        assignment = {1: "c", 99: "c"}
        assert majority_f1(assignment, truth).micro_f1 == 1.0

    def test_empty_truth(self):
        result = majority_f1({}, {})
        assert result.micro_f1 == 1.0 and result.macro_f1 == 1.0

    def test_headline_is_micro(self):
        truth = {1: "A", 2: "B"}
        assignment = {1: "c", 2: "c"}
        result = majority_f1(assignment, truth)
        assert result.headline == result.micro_f1

    @given(st.dictionaries(
        st.integers(0, 30), st.sampled_from(["A", "B", "C"]),
        min_size=1, max_size=30,
    ))
    @settings(max_examples=40, deadline=None)
    def test_scores_bounded_and_self_consistent(self, truth):
        """Truth-as-assignment is perfect; one-cluster is bounded."""
        assert f1_star(dict(truth), truth) == 1.0
        lumped = {k: "all" for k in truth}
        result = majority_f1(lumped, truth)
        assert 0.0 < result.micro_f1 <= 1.0
        assert 0.0 <= result.macro_f1 <= 1.0


class TestNemenyi:
    def test_average_ranks_order(self):
        scores = np.array([
            [0.9, 0.8, 0.1],
            [0.95, 0.7, 0.2],
            [0.99, 0.6, 0.3],
        ])
        ranks = average_ranks(scores)
        assert ranks[0] == 1.0 and ranks[1] == 2.0 and ranks[2] == 3.0

    def test_ties_share_rank(self):
        ranks = average_ranks(np.array([[0.5, 0.5, 0.1]]))
        assert ranks[0] == ranks[1] == 1.5

    def test_friedman_detects_consistent_winner(self):
        rng = np.random.default_rng(0)
        best = rng.uniform(0.8, 1.0, size=20)
        worst = rng.uniform(0.0, 0.2, size=20)
        mid = rng.uniform(0.4, 0.6, size=20)
        scores = np.column_stack([best, mid, worst])
        _, p_value = friedman_statistic(scores)
        assert p_value < 0.001

    def test_critical_distance_formula(self):
        cd = nemenyi_critical_distance(4, 40)
        assert cd == pytest.approx(2.569 * np.sqrt(4 * 5 / (6 * 40)))

    def test_untabulated_k(self):
        with pytest.raises(ValueError):
            nemenyi_critical_distance(42, 10)

    def test_full_test_significance_decisions(self):
        rng = np.random.default_rng(1)
        n = 40
        a = rng.uniform(0.9, 1.0, size=n)
        b = rng.uniform(0.88, 1.0, size=n)   # statistically close to a
        c = rng.uniform(0.3, 0.5, size=n)    # clearly worse
        result = nemenyi_test(
            np.column_stack([a, b, c]), ["A", "B", "C"]
        )
        assert result.significantly_different("A", "C")
        assert not result.significantly_different("A", "B")
        assert result.ranking()[0][0] in {"A", "B"}

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            nemenyi_test(np.zeros((3, 2)), ["only-one"])


class TestSamplingError:
    def test_homogeneous_property_has_zero_error(self):
        assert sampling_error([1, 2, 3] * 100, minimum=50) == 0.0

    def test_dirty_property_error_matches_clean_fraction(self):
        # Full scan says STRING (outliers); each sampled int disagrees.
        values = [1] * 95 + ["x"] * 5
        error = sampling_error(values, fraction=1.0, minimum=1)
        assert error == pytest.approx(0.95)

    def test_empty(self):
        assert sampling_error([]) == 0.0

    def test_graph_level_errors(self, figure1_graph):
        errors = datatype_sampling_errors(figure1_graph, minimum=10)
        assert "n:name" in errors
        assert "e:since" in errors
        assert all(0.0 <= v <= 1.0 for v in errors.values())

    def test_binning(self):
        errors = {"a": 0.0, "b": 0.07, "c": 0.15, "d": 0.9}
        bins = bin_errors(errors)
        assert bins["<0.05"] == 0.25
        assert bins["0.05-0.10"] == 0.25
        assert bins["0.10-0.20"] == 0.25
        assert bins[">=0.20"] == 0.25
        assert sum(bins.values()) == pytest.approx(1.0)


class TestHarness:
    def test_make_system_all_methods(self):
        for method in ALL_METHODS:
            assert make_system(method) is not None
        with pytest.raises(ValueError):
            make_system("Oracle")

    def test_run_system_records_scores(self):
        dataset = get_dataset("POLE", scale=0.2, seed=1)
        m = run_system("PG-HIVE-ELSH", dataset)
        assert not m.skipped
        assert m.node_f1 == pytest.approx(1.0)
        assert m.edge_f1 == pytest.approx(1.0)
        assert m.seconds > 0

    def test_baselines_skip_unlabeled(self):
        dataset = inject_noise(
            get_dataset("POLE", scale=0.2, seed=1), 0.0, 0.0, seed=2
        )
        m = run_system("SchemI", dataset, label_availability=0.0)
        assert m.skipped

    def test_gmm_has_no_edge_score(self):
        dataset = get_dataset("POLE", scale=0.2, seed=1)
        m = run_system("GMMSchema", dataset)
        assert m.edge_f1 is None

    def test_run_grid_produces_full_cartesian(self):
        grid = ExperimentGrid(
            datasets=("POLE",),
            methods=("PG-HIVE-ELSH", "SchemI"),
            noise_levels=(0.0, 0.2),
            label_availabilities=(1.0, 0.0),
            scale=0.15,
        )
        measurements = run_grid(grid)
        assert len(measurements) == 2 * 2 * 2
        skipped = [m for m in measurements if m.skipped]
        assert all(m.method == "SchemI" for m in skipped)


class TestReporting:
    def test_series_table_renders(self):
        grid = ExperimentGrid(
            datasets=("POLE",),
            methods=("PG-HIVE-ELSH",),
            noise_levels=(0.0,),
            label_availabilities=(1.0,),
            scale=0.15,
        )
        table = f1_series_table(run_grid(grid), "node_f1", "title")
        assert "title" in table and "noise=0%" in table

    def test_feature_matrix(self):
        table = feature_matrix_table()
        assert "PG-HIVE" in table and "Incremental" in table


class TestConfusion:
    def test_no_confusion_on_perfect_clustering(self):
        from repro.evaluation.confusion import confusion_pairs

        truth = {1: "A", 2: "A", 3: "B"}
        assignment = {1: "x", 2: "x", 3: "y"}
        assert confusion_pairs(assignment, truth) == []

    def test_minority_members_reported(self):
        from repro.evaluation.confusion import confusion_pairs

        truth = {1: "A", 2: "A", 3: "B", 4: "B", 5: "C"}
        assignment = {1: "x", 2: "x", 3: "x", 4: "y", 5: "y"}
        pairs = confusion_pairs(assignment, truth)
        as_tuples = {(c.true_type, c.predicted_type, c.count) for c in pairs}
        assert ("B", "A", 1) in as_tuples
        assert ("C", "B", 1) in as_tuples

    def test_ranked_by_count(self):
        from repro.evaluation.confusion import confusion_pairs

        truth = {i: ("A" if i < 6 else "B") for i in range(9)}
        assignment = {i: "one" for i in range(9)}  # majority A
        pairs = confusion_pairs(assignment, truth)
        assert pairs[0].true_type == "B" and pairs[0].count == 3

    def test_render(self):
        from repro.evaluation.confusion import (
            Confusion,
            render_confusions,
        )

        text = render_confusions([Confusion("A", "B", 7)])
        assert "A" in text and "7" in text
        assert "Top type confusions" in text

    def test_render_empty(self):
        from repro.evaluation.confusion import render_confusions

        assert "0" in render_confusions([])

    def test_diagnoses_schemi_on_mb6(self):
        """The MB6 story: SchemI's shared-label merge confuses the
        connectome types -- the confusion list names them."""
        from repro.datasets import get_dataset
        from repro.evaluation.confusion import confusion_pairs
        from repro.graph.store import GraphStore
        from repro.baselines import SchemI

        dataset = get_dataset("MB6", scale=0.3, seed=1)
        result = SchemI().discover(GraphStore(dataset.graph))
        pairs = confusion_pairs(result.node_assignment, dataset.truth.node_types)
        assert pairs, "SchemI must confuse something on MB6"
        involved = {pairs[0].true_type, pairs[0].predicted_type}
        assert involved <= {"Neuron", "Segment", "Synapse", "SynapseSet"}
