"""Scrub and repair of slab directories.

The contract under test: every injected corruption -- a flipped byte, a
sheared file, a half-renamed manifest -- is *detected* (scrub pinpoints
the exact file, the reader refuses to open), and repair rolls the
directory back to its newest fully verified generation so that a
resumed ingest reproduces byte-identical slabs.
"""

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.model import Node
from repro.graph.diskstore import write_graph_to_slabs
from repro.graph.scrub import (
    repair_slab_directory,
    scrub_slab_directory,
)
from repro.graph.slab import (
    MANIFEST_BACKUP_NAME,
    MANIFEST_NAME,
    SlabCorruptionError,
    SlabReader,
    SlabWriter,
)


def _nodes(start, count):
    return [
        Node(id=i, labels=frozenset({"P"}), properties={"x": i})
        for i in range(start, start + count)
    ]


def _two_commit_dir(directory):
    """A directory with two committed generations of nodes."""
    with SlabWriter(directory, name="t") as writer:
        writer.add_nodes(_nodes(0, 8))
        writer.commit({"src": 8})
        writer.add_nodes(_nodes(8, 8))
        writer.commit({"src": 16})
    return directory


def _flip_last_byte(path):
    with path.open("r+b") as handle:
        handle.seek(-1, 2)
        byte = handle.read(1)
        handle.seek(-1, 2)
        handle.write(bytes((byte[0] ^ 0xFF,)))


class TestScrub:
    def test_clean_directory_is_clean(self, tmp_path):
        directory = _two_commit_dir(tmp_path / "slabs")
        report = scrub_slab_directory(directory)
        assert report.clean
        assert report.manifest_status == "ok"
        assert report.generations >= 1
        assert all(v.status == "ok" for v in report.verdicts)
        assert report.describe().endswith("verdict: clean")

    def test_bitflip_pinpoints_the_exact_file(self, tmp_path):
        directory = _two_commit_dir(tmp_path / "slabs")
        _flip_last_byte(directory / "nodes-props.dat")
        report = scrub_slab_directory(directory)
        assert not report.clean
        bad = [v for v in report.verdicts if v.status != "ok"]
        assert [v.file for v in bad] == ["nodes-props.dat"]
        assert bad[0].status == "checksum"
        assert "nodes-props.dat" in report.describe()
        assert report.describe().endswith("verdict: corrupt")

    def test_truncated_file_detected(self, tmp_path):
        directory = _two_commit_dir(tmp_path / "slabs")
        path = directory / "nodes-ids.i64"
        with path.open("r+b") as handle:
            handle.truncate(path.stat().st_size - 8)
        bad = [
            v for v in scrub_slab_directory(directory).verdicts
            if v.status != "ok"
        ]
        assert [(v.file, v.status) for v in bad] == \
            [("nodes-ids.i64", "truncated")]

    def test_missing_file_detected(self, tmp_path):
        directory = _two_commit_dir(tmp_path / "slabs")
        (directory / "nodes-props.dat").unlink()
        bad = [
            v for v in scrub_slab_directory(directory).verdicts
            if v.status != "ok"
        ]
        assert [(v.file, v.status) for v in bad] == \
            [("nodes-props.dat", "missing")]

    def test_corrupt_manifest_falls_back_to_backup(self, tmp_path):
        directory = _two_commit_dir(tmp_path / "slabs")
        (directory / MANIFEST_NAME).write_text("{torn", encoding="utf-8")
        report = scrub_slab_directory(directory)
        assert report.manifest_status == "corrupt"
        assert not report.clean
        # Data files still verify against the backup's prefix lengths.
        assert all(v.status == "ok" for v in report.verdicts)

    def test_unreadable_when_backup_also_corrupt(self, tmp_path):
        directory = _two_commit_dir(tmp_path / "slabs")
        (directory / MANIFEST_NAME).write_text("{torn", encoding="utf-8")
        (directory / MANIFEST_BACKUP_NAME).write_text(
            "{also torn", encoding="utf-8"
        )
        report = scrub_slab_directory(directory)
        assert report.manifest_status == "unreadable"
        assert not report.clean
        assert report.verdicts == ()

    def test_not_a_slab_directory_raises(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(FileNotFoundError):
            scrub_slab_directory(empty)
        with pytest.raises(FileNotFoundError):
            repair_slab_directory(empty)


class TestRepair:
    def test_clean_directory_repair_is_a_noop(self, tmp_path):
        directory = _two_commit_dir(tmp_path / "slabs")
        report = repair_slab_directory(directory)
        assert report.repaired
        assert report.restored == "current"
        assert not any("rewrote manifest" in a for a in report.actions)

    def test_reader_refuses_corrupt_directory(self, tmp_path):
        directory = _two_commit_dir(tmp_path / "slabs")
        _flip_last_byte(directory / "nodes-props.dat")
        with pytest.raises(SlabCorruptionError) as info:
            SlabReader(directory)
        assert info.value.kind == "checksum"
        assert "nodes-props.dat" in str(info.value)

    def test_bitflip_rolls_back_one_generation(self, tmp_path):
        directory = _two_commit_dir(tmp_path / "slabs")
        # The last heap byte belongs to the second commit: generation -1
        # (the state after the first commit) still verifies.
        _flip_last_byte(directory / "nodes-props.dat")
        report = repair_slab_directory(directory)
        assert report.repaired
        assert report.restored == "generation -1"
        assert any("rejected current" in a for a in report.actions)
        assert scrub_slab_directory(directory).clean
        with SlabReader(directory) as reader:
            assert reader.node_count == 8
        with SlabWriter(directory) as writer:
            assert writer.source_progress("src") == 8

    def test_resume_after_rollback_is_byte_identical(self, tmp_path):
        directory = _two_commit_dir(tmp_path / "slabs")
        reference = _two_commit_dir(tmp_path / "reference")
        _flip_last_byte(directory / "nodes-props.dat")
        assert repair_slab_directory(directory).repaired
        with SlabWriter(directory) as writer:
            writer.add_nodes(_nodes(8, 8))
            writer.commit({"src": 16})
        for name in ("nodes-ids.i64", "nodes-props.dat"):
            assert (directory / name).read_bytes() == \
                (reference / name).read_bytes()

    def test_manifest_restored_from_backup(self, tmp_path):
        directory = _two_commit_dir(tmp_path / "slabs")
        (directory / MANIFEST_NAME).write_text("{torn", encoding="utf-8")
        report = repair_slab_directory(directory)
        assert report.repaired
        assert any(MANIFEST_BACKUP_NAME in a for a in report.actions)
        # The backup still describes the full durable state (the writer's
        # closing commit rewrote an unchanged manifest, pushing it into
        # the backup slot): nothing is lost, the directory opens cleanly.
        assert scrub_slab_directory(directory).clean
        with SlabReader(directory) as reader:
            assert reader.node_count == 16
            assert reader.source_progress("src") == 16

    def test_unrepairable_when_no_generation_verifies(self, tmp_path):
        directory = tmp_path / "slabs"
        builder = GraphBuilder("tiny")
        builder.node(["A"], {"x": 1})
        write_graph_to_slabs(builder.build(), directory).close()
        (directory / MANIFEST_NAME).write_text("{torn", encoding="utf-8")
        (directory / MANIFEST_BACKUP_NAME).write_text(
            "{also torn", encoding="utf-8"
        )
        report = repair_slab_directory(directory)
        assert not report.repaired
        assert "no parseable manifest" in report.detail
