"""Robustness tests: adversarial and degenerate inputs end to end.

Real graph dumps contain nulls, unicode labels, enormous values, nested
structures and pathological shapes; the pipeline must survive all of them
without crashing or producing inconsistent bookkeeping.
"""

import pytest

from repro.core.config import LSHMethod, PGHiveConfig
from repro.core.pipeline import PGHive
from repro.graph.builder import GraphBuilder
from repro.graph.store import GraphStore
from repro.schema.serialize_pgschema import serialize_pg_schema
from repro.schema.serialize_xsd import serialize_xsd


def _discover(graph, **kwargs):
    return PGHive(PGHiveConfig(**kwargs)).discover(GraphStore(graph))


class TestWeirdValues:
    def test_none_values(self):
        b = GraphBuilder()
        b.node(["T"], {"maybe": None, "name": "x"})
        b.node(["T"], {"maybe": None, "name": "y"})
        result = _discover(b.build())
        assert result.num_node_types == 1

    def test_nested_structures(self):
        b = GraphBuilder()
        b.node(["T"], {"blob": {"deeply": ["nested", {"stuff": 1}]}})
        b.node(["T"], {"blob": {"other": 2}})
        result = _discover(b.build())
        from repro.schema.model import DataType

        blob = result.schema.node_types["T"].properties["blob"]
        assert blob.datatype is DataType.STRING  # safely generalized

    def test_huge_string_values(self):
        b = GraphBuilder()
        b.node(["T"], {"text": "x" * 100_000})
        result = _discover(b.build())
        assert result.num_node_types == 1

    def test_unicode_labels_and_keys(self):
        b = GraphBuilder()
        a = b.node(["Πρόσωπο"], {"όνομα": "Αλίκη"})
        c = b.node(["Πρόσωπο"], {"όνομα": "Βασίλης"})
        b.edge(a, c, ["ΓΝΩΡΙΖΕΙ"], {"από": 2001})
        result = _discover(b.build())
        assert "Πρόσωπο" in result.schema.node_types
        # Serializers sanitize without crashing.
        assert serialize_pg_schema(result.schema)
        assert serialize_xsd(result.schema)

    def test_empty_string_property_values(self):
        b = GraphBuilder()
        b.node(["T"], {"s": ""})
        b.node(["T"], {"s": "nonempty"})
        result = _discover(b.build())
        assert result.schema.node_types["T"].property_counts["s"] == 2


class TestPathologicalShapes:
    def test_self_loops(self):
        b = GraphBuilder()
        node = b.node(["N"], {"k": 1})
        b.edge(node, node, ["SELF"], {})
        result = _discover(b.build())
        assert "SELF" in result.schema.edge_types
        from repro.schema.model import Cardinality

        assert result.schema.edge_types["SELF"].cardinality is (
            Cardinality.ONE_TO_ONE
        )

    def test_parallel_edges(self):
        b = GraphBuilder()
        a = b.node(["A"], {"k": 1})
        c = b.node(["B"], {"k": 2})
        for _ in range(5):
            b.edge(a, c, ["R"], {})
        result = _discover(b.build())
        r = result.schema.edge_types["R"]
        assert r.instance_count == 5
        assert r.max_out == 5

    def test_single_node_graph(self):
        b = GraphBuilder()
        b.node(["Lonely"], {"k": 1})
        result = _discover(b.build())
        assert result.num_node_types == 1
        assert result.num_edge_types == 0

    def test_star_graph(self):
        b = GraphBuilder()
        hub = b.node(["Hub"], {})
        for i in range(50):
            leaf = b.node(["Leaf"], {"i": i})
            b.edge(hub, leaf, ["SPOKE"], {})
        result = _discover(b.build())
        assert result.schema.edge_types["SPOKE"].max_out == 50

    def test_all_nodes_identical(self):
        b = GraphBuilder()
        for _ in range(40):
            b.node(["Clone"], {"k": 1})
        result = _discover(b.build())
        assert result.num_node_types == 1
        assert result.schema.node_types["Clone"].instance_count == 40

    def test_every_node_unique_label(self):
        b = GraphBuilder()
        for i in range(30):
            b.node([f"Type{i}"], {"k": i})
        result = _discover(b.build())
        assert result.num_node_types == 30

    def test_hundreds_of_property_keys(self):
        b = GraphBuilder()
        for i in range(10):
            b.node(["Wide"], {f"k{j}": j for j in range(200)})
        result = _discover(b.build())
        wide = result.schema.node_types["Wide"]
        assert len(wide.property_keys) == 200

    def test_minhash_on_pathological_shapes(self):
        b = GraphBuilder()
        node = b.node(["N"], {})
        b.edge(node, node, ["SELF"], {})
        result = _discover(b.build(), method=LSHMethod.MINHASH)
        assert result.num_node_types == 1

    def test_label_with_ampersand_separator(self):
        """Labels containing the '&' join character must not alias a
        genuine multi-label set at the type-name level."""
        b = GraphBuilder()
        b.node(["A&B"], {"k": 1})
        b.node(["A", "B"], {"k": 2})
        result = _discover(b.build())
        # Same canonical token, but distinct label sets -> distinct types
        # (one of them renamed for uniqueness).
        label_sets = {t.labels for t in result.schema.node_types.values()}
        assert frozenset({"A&B"}) in label_sets
        assert frozenset({"A", "B"}) in label_sets
