"""Tests for the Cypher and GraphQL SDL exporters."""

import pytest

from repro.core.pipeline import PGHive
from repro.schema.serialize_cypher import serialize_cypher
from repro.schema.serialize_graphql import serialize_graphql


@pytest.fixture
def discovered(figure1_store):
    return PGHive().discover(figure1_store).schema


class TestCypherExport:
    def test_existence_constraints_for_mandatory(self, discovered):
        text = serialize_cypher(discovered)
        assert (
            "CREATE CONSTRAINT person_name_exists IF NOT EXISTS "
            "FOR (n:Person) REQUIRE n.name IS NOT NULL;" in text
        )

    def test_no_existence_constraint_for_optional(self, discovered):
        text = serialize_cypher(discovered)
        # imgFile is optional on Post: no existence constraint.
        assert "post_imgfile_exists" not in text

    def test_type_constraints(self, discovered):
        text = serialize_cypher(discovered)
        assert "REQUIRE n.bday IS :: DATE;" in text
        assert "REQUIRE r.since IS :: INTEGER;" in text

    def test_edge_summary_includes_cardinality(self, discovered):
        text = serialize_cypher(discovered)
        assert "// edge type KNOWS" in text
        assert "cardinality" in text

    def test_weird_labels_escaped(self):
        from repro.schema.model import NodeType, PropertyStatus, SchemaGraph

        schema = SchemaGraph()
        node_type = NodeType("My Label", frozenset({"My Label"}),
                             instance_count=1)
        spec = node_type.ensure_property("a key")
        spec.status = PropertyStatus.MANDATORY
        text = serialize_cypher(schema if schema.node_types else _add(schema, node_type))
        assert "`My Label`" in text
        assert "`a key`" in text


def _add(schema, node_type):
    schema.add_node_type(node_type)
    return schema


class TestGraphQLExport:
    def test_types_rendered(self, discovered):
        text = serialize_graphql(discovered)
        assert "type Person {" in text
        assert "type Organization {" in text

    def test_mandatory_gets_bang(self, discovered):
        text = serialize_graphql(discovered)
        person_block = text.split("type Person {")[1].split("}")[0]
        assert "name: String!" in person_block
        assert "bday: Date!" in person_block

    def test_relationship_fields(self, discovered):
        text = serialize_graphql(discovered)
        person_block = text.split("type Person {")[1].split("}")[0]
        assert "works_at:" in person_block
        assert "Organization" in person_block

    def test_scalars_declared(self, discovered):
        text = serialize_graphql(discovered)
        assert "scalar Date" in text
        assert "scalar DateTime" in text

    def test_optional_field_no_bang(self, discovered):
        text = serialize_graphql(discovered)
        post_block = text.split("type Post {")[1].split("}")[0]
        assert "imgFile: String\n" in post_block
