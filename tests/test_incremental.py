"""Tests for incremental discovery (section 4.6)."""

import pytest

from repro.core.config import PGHiveConfig
from repro.core.incremental import IncrementalDiscovery
from repro.core.pipeline import PGHive
from repro.datasets import get_dataset
from repro.evaluation.f1star import majority_f1
from repro.graph.store import GraphStore
from repro.schema.diff import diff_schemas
from repro.schema.model import SchemaGraph


def _copy_schema(schema: SchemaGraph) -> SchemaGraph:
    """Cheap structural snapshot for monotonicity checks."""
    import copy

    return copy.deepcopy(schema)


class TestIncrementalEngine:
    def test_monotone_schema_chain(self):
        """S_i is always subsumed by S_{i+1} (paper's monotone chain)."""
        dataset = get_dataset("POLE", scale=0.4, seed=3)
        store = GraphStore(dataset.graph)
        engine = IncrementalDiscovery()
        previous = _copy_schema(engine.schema)
        for batch in store.batches(5, seed=1):
            engine.process_batch(batch.nodes, batch.edges, batch.endpoint_labels)
            diff = diff_schemas(previous, engine.schema)
            assert diff.is_monotone_extension, (
                f"batch {batch.index} removed schema information: {diff}"
            )
            previous = _copy_schema(engine.schema)

    def test_batch_reports(self):
        dataset = get_dataset("POLE", scale=0.3, seed=3)
        store = GraphStore(dataset.graph)
        engine = IncrementalDiscovery()
        for batch in store.batches(3, seed=1):
            report = engine.process_batch(
                batch.nodes, batch.edges, batch.endpoint_labels
            )
            assert report.seconds > 0
            assert report.num_nodes == len(batch.nodes)
        assert [r.index for r in engine.reports] == [0, 1, 2]

    def test_incremental_matches_static_types_on_clean_data(self):
        dataset = get_dataset("POLE", scale=0.4, seed=3)
        static = PGHive().discover(GraphStore(dataset.graph))
        incremental = PGHive().discover_incremental(
            GraphStore(dataset.graph), num_batches=4
        )
        assert set(static.schema.node_types) == set(
            incremental.schema.node_types
        )

    def test_incremental_f1_stays_high(self):
        dataset = get_dataset("POLE", scale=0.4, seed=3)
        result = PGHive().discover_incremental(
            GraphStore(dataset.graph), num_batches=5
        )
        scores = majority_f1(result.node_assignment, dataset.truth.node_types)
        assert scores.headline >= 0.99

    def test_property_constraints_exact_across_batches(self):
        """MANDATORY/OPTIONAL must match the static answer exactly,
        because per-type counters accumulate across batches."""
        dataset = get_dataset("POLE", scale=0.4, seed=3)
        static = PGHive().discover(GraphStore(dataset.graph))
        incremental = PGHive().discover_incremental(
            GraphStore(dataset.graph), num_batches=5
        )
        for name, static_type in static.schema.node_types.items():
            incr_type = incremental.schema.node_types[name]
            assert incr_type.instance_count == static_type.instance_count
            for key, spec in static_type.properties.items():
                assert incr_type.properties[key].status is spec.status, (
                    f"{name}.{key}"
                )

    def test_post_process_each_batch_flag(self):
        dataset = get_dataset("POLE", scale=0.2, seed=3)
        result = PGHive().discover_incremental(
            GraphStore(dataset.graph), num_batches=2,
            post_process_each_batch=True,
        )
        from repro.schema.model import DataType

        person = result.schema.node_types["Person"]
        assert person.properties["name"].datatype is not DataType.UNKNOWN

    def test_empty_batch_is_harmless(self):
        engine = IncrementalDiscovery()
        report = engine.process_batch([], [], {})
        assert report.num_nodes == 0
        assert engine.schema.num_types == 0

    def test_new_labels_in_later_batches(self):
        """A label first seen in batch 2 still becomes a type."""
        from repro.graph.builder import GraphBuilder

        engine = IncrementalDiscovery()
        b1 = GraphBuilder()
        b1.node(["A"], {"x": 1})
        graph1 = b1.build()
        engine.process_batch(list(graph1.nodes()), [], None)
        b2 = GraphBuilder()
        b2.node(["B"], {"y": 2})
        graph2 = b2.build()
        engine.process_batch(list(graph2.nodes()), [], None)
        labels = {
            frozenset(t.labels) for t in engine.schema.node_types.values()
        }
        assert frozenset({"A"}) in labels and frozenset({"B"}) in labels

    def test_ten_batch_run_completes(self):
        dataset = get_dataset("MB6", scale=0.3, seed=3)
        result = PGHive().discover_incremental(
            GraphStore(dataset.graph), num_batches=10
        )
        assert len(result.batches) == 10
        scores = majority_f1(result.node_assignment, dataset.truth.node_types)
        assert scores.headline >= 0.95
