"""Tests for the discovery daemon (schema API server).

Covers the full session lifecycle over real HTTP (ephemeral ports, no
fixtures on the network), the concurrency contract (parallel batch
posts to independent sessions, validate-during-ingest, no torn schema
reads), backpressure, checkpoint/restart, and single-batch equivalence
with the one-shot pipeline.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.config import PGHiveConfig
from repro.core.pipeline import PGHive
from repro.graph.store import GraphStore
from repro.schema.persist import schema_from_dict
from repro.server import ApiError, SchemaServer
from repro.server.models import (
    BatchRequest,
    parse_edges,
    parse_nodes,
    validate_session_name,
)
from repro.server.session import SessionManager


def _node(node_id, labels=("Person",), **properties):
    return {"id": node_id, "labels": list(labels), "properties": properties}


def _edge(edge_id, source, target, labels=("KNOWS",), **properties):
    return {
        "id": edge_id,
        "source": source,
        "target": target,
        "labels": list(labels),
        "properties": properties,
    }


def _batch(start=0, count=12, label="Person"):
    nodes = [
        _node(start + i, labels=(label,), name=f"n{start + i}", age=i)
        for i in range(count)
    ]
    edges = [
        _edge(10_000 + start + i, start + i, start + (i + 1) % count,
              since=2020)
        for i in range(count - 1)
    ]
    return {"nodes": nodes, "edges": edges}


class _Client:
    """Tiny urllib JSON client against one server."""

    def __init__(self, server: SchemaServer) -> None:
        self.base = f"http://127.0.0.1:{server.port}"

    def call(self, method, path, body=None):
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            self.base + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def wait_ticket(self, ticket_id, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, ticket = self.call("GET", f"/tickets/{ticket_id}")
            assert status == 200
            if ticket["status"] in ("done", "failed"):
                return ticket
            time.sleep(0.02)
        raise AssertionError(f"ticket {ticket_id} did not settle")

    def ingest(self, session, batch):
        status, ticket = self.call(
            "POST", f"/sessions/{session}/batches", batch
        )
        assert status == 202, ticket
        settled = self.wait_ticket(ticket["id"])
        assert settled["status"] == "done", settled.get("error")
        return settled


@pytest.fixture
def server():
    instance = SchemaServer(
        PGHiveConfig(server_port=0, server_workers=2)
    ).start_background()
    yield instance
    instance.shutdown()


@pytest.fixture
def client(server):
    return _Client(server)


class TestLifecycle:
    def test_health(self, client):
        status, body = client.call("GET", "/health")
        assert status == 200
        assert body["status"] == "ok"

    def test_full_session_lifecycle(self, client):
        status, body = client.call("POST", "/sessions", {"name": "s1"})
        assert status == 201 and body["name"] == "s1"

        status, _ = client.call("POST", "/sessions", {"name": "s1"})
        assert status == 409

        settled = client.ingest("s1", _batch())
        assert settled["batch_index"] == 0
        assert settled["report"]["num_nodes"] == 12

        status, info = client.call("GET", "/sessions/s1")
        assert status == 200
        assert info["batches"] == 1
        assert info["nodes_seen"] == 12
        assert info["node_types"] >= 1

        status, listing = client.call("GET", "/sessions")
        assert [s["name"] for s in listing["sessions"]] == ["s1"]

        status, deleted = client.call("DELETE", "/sessions/s1")
        assert status == 200 and deleted == {"deleted": "s1"}
        assert client.call("GET", "/sessions/s1")[0] == 404

    def test_schema_formats(self, client):
        client.call("POST", "/sessions", {"name": "fmt"})
        client.ingest("fmt", _batch())
        status, pg = client.call("GET", "/sessions/fmt/schema")
        assert status == 200
        assert "CREATE GRAPH TYPE" in pg["schema"]
        status, gql = client.call(
            "GET", "/sessions/fmt/schema?format=graphql"
        )
        assert "type Person" in gql["schema"]
        status, doc = client.call("GET", "/sessions/fmt/schema?format=json")
        schema = schema_from_dict(doc["schema"])
        assert any(
            t.labels == frozenset({"Person"})
            for t in schema.node_types.values()
        )
        assert client.call(
            "GET", "/sessions/fmt/schema?format=yaml"
        )[0] == 400

    def test_validate_endpoint(self, client):
        client.call("POST", "/sessions", {"name": "adm"})
        client.ingest("adm", _batch())
        good = {"nodes": [_node(500, name="ok", age=1)], "edges": []}
        status, body = client.call("POST", "/sessions/adm/validate", good)
        assert status == 200
        assert body["report"]["valid"] is True
        bad = {
            "nodes": [_node(501, labels=("Alien",), zap=3)],
            "edges": [],
            "mode": "STRICT",
        }
        status, body = client.call("POST", "/sessions/adm/validate", bad)
        assert body["report"]["valid"] is False
        assert body["report"]["violations"][0]["rule"] == "no-type"
        assert 0.0 <= body["report"]["violation_rate"] <= 1.0

    def test_validate_uses_session_label_memory(self, client):
        """Edges referencing nodes from earlier batches resolve labels."""
        client.call("POST", "/sessions", {"name": "mem"})
        client.ingest("mem", _batch(start=0, count=8))
        probe = {
            "nodes": [],
            "edges": [_edge(9_999, 0, 1, since=2024)],
            "mode": "STRICT",
        }
        status, body = client.call("POST", "/sessions/mem/validate", probe)
        assert status == 200
        assert body["report"]["valid"] is True, body["report"]

    def test_error_surface(self, client):
        assert client.call("GET", "/nope")[0] == 404
        assert client.call("DELETE", "/health")[0] == 405
        assert client.call("GET", "/sessions/ghost")[0] == 404
        assert client.call("GET", "/tickets/t-77")[0] == 404
        assert client.call(
            "POST", "/sessions", {"name": "../evil"}
        )[0] == 400
        status, body = client.call(
            "POST", "/sessions", {"name": "bad-batch"}
        )
        assert status == 201
        status, body = client.call(
            "POST", "/sessions/bad-batch/batches",
            {"nodes": [{"labels": "oops"}]},
        )
        assert status == 400
        assert body["error"] == "bad-request"


class TestConcurrency:
    def test_parallel_ingest_independent_sessions(self, client):
        """Concurrent batch posts to N sessions all land, schemas intact."""
        names = [f"c{i}" for i in range(3)]
        for name in names:
            assert client.call("POST", "/sessions", {"name": name})[0] == 201
        results = {}

        def run(name, offset):
            tickets = []
            for batch_number in range(3):
                status, ticket = client.call(
                    "POST", f"/sessions/{name}/batches",
                    _batch(start=offset + batch_number * 50, count=10),
                )
                assert status == 202
                tickets.append(ticket["id"])
            results[name] = [client.wait_ticket(t) for t in tickets]

        threads = [
            threading.Thread(target=run, args=(name, i * 1000))
            for i, name in enumerate(names)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        for name in names:
            settled = results[name]
            assert [t["status"] for t in settled] == ["done"] * 3
            # Per-session FIFO: batch indices in POST order.
            assert [t["batch_index"] for t in settled] == [0, 1, 2]
            status, info = client.call("GET", f"/sessions/{name}")
            assert info["batches"] == 3
            assert info["nodes_seen"] == 30

    def test_validate_during_ingest_never_tears(self, client):
        """Schema/validate reads during ingestion always see a
        well-formed snapshot (never a half-merged schema)."""
        client.call("POST", "/sessions", {"name": "torn"})
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                status, body = client.call(
                    "GET", "/sessions/torn/schema?format=json"
                )
                if status != 200:
                    failures.append(body)
                    return
                try:
                    schema_from_dict(body["schema"])
                except Exception as exc:  # noqa: BLE001 - recording
                    failures.append(repr(exc))
                    return
                status, verdict = client.call(
                    "POST", "/sessions/torn/validate",
                    {"nodes": [_node(1, name="x", age=1)], "edges": []},
                )
                if status != 200:
                    failures.append(verdict)
                    return

        thread = threading.Thread(target=reader)
        thread.start()
        tickets = []
        for batch_number in range(4):
            status, ticket = client.call(
                "POST", "/sessions/torn/batches",
                _batch(start=batch_number * 40, count=10,
                       label=f"L{batch_number}"),
            )
            assert status == 202
            tickets.append(ticket["id"])
        for ticket_id in tickets:
            assert client.wait_ticket(ticket_id)["status"] == "done"
        stop.set()
        thread.join(timeout=30)
        assert not failures, failures

    def test_backpressure_returns_503(self):
        config = PGHiveConfig(
            server_port=0, server_workers=1, server_queue_depth=2
        )
        with SchemaServer(config).start_background() as server:
            client = _Client(server)
            client.call("POST", "/sessions", {"name": "full"})
            statuses = []
            for batch_number in range(8):
                status, _ = client.call(
                    "POST", "/sessions/full/batches",
                    _batch(start=batch_number * 30, count=25),
                )
                statuses.append(status)
            assert 503 in statuses  # shed load past the queue depth
            assert statuses[0] == 202  # but the first post was accepted


class TestEquivalenceAndRestart:
    def test_single_batch_matches_oneshot_pipeline(
        self, client, figure1_graph
    ):
        """One posted batch discovers the same types as PGHive.discover."""
        expected = PGHive(PGHiveConfig()).discover(
            GraphStore(figure1_graph)
        ).schema
        client.call("POST", "/sessions", {"name": "fig1"})
        nodes = [
            {
                "id": n.id,
                "labels": sorted(n.labels),
                "properties": dict(n.properties),
            }
            for n in figure1_graph.nodes()
        ]
        edges = [
            {
                "id": e.id,
                "source": e.source,
                "target": e.target,
                "labels": sorted(e.labels),
                "properties": dict(e.properties),
            }
            for e in figure1_graph.edges()
        ]
        client.ingest("fig1", {"nodes": nodes, "edges": edges})
        _, doc = client.call("GET", "/sessions/fig1/schema?format=json")
        served = schema_from_dict(doc["schema"])
        assert {
            (t.labels, t.property_keys) for t in served.node_types.values()
        } == {
            (t.labels, t.property_keys)
            for t in expected.node_types.values()
        }

    def test_checkpoint_restart_restores_sessions(self, tmp_path):
        config = PGHiveConfig(
            server_port=0, checkpoint_dir=str(tmp_path / "ckpt")
        )
        with SchemaServer(config).start_background() as server:
            client = _Client(server)
            client.call("POST", "/sessions", {"name": "durable"})
            client.ingest("durable", _batch(count=10))
            _, before = client.call(
                "GET", "/sessions/durable/schema?format=json"
            )
        # A new daemon over the same checkpoint dir restores the session.
        with SchemaServer(config).start_background() as revived:
            client = _Client(revived)
            status, info = client.call("GET", "/sessions/durable")
            assert status == 200
            assert info["batches"] == 1
            assert info["nodes_seen"] == 10
            _, after = client.call(
                "GET", "/sessions/durable/schema?format=json"
            )
            assert after["schema"] == before["schema"]
            # And it keeps ingesting from where it left off.
            settled = client.ingest("durable", _batch(start=100, count=6))
            assert settled["batch_index"] == 1


class TestSessionLayerDirect:
    """Unit-level checks that do not need sockets."""

    def test_unsupported_config_rejected(self):
        with pytest.raises(ApiError) as excinfo:
            SessionManager(PGHiveConfig(memoize_patterns=True))
        assert excinfo.value.status == 400
        with pytest.raises(ApiError):
            SessionManager(PGHiveConfig(jobs=2))

    def test_session_name_validation(self):
        assert validate_session_name("ok-name_1") == "ok-name_1"
        for bad in ("", "a/b", "a b", "x" * 65, "dot.dot"):
            with pytest.raises(ApiError):
                validate_session_name(bad)

    def test_parse_rejects_malformed_elements(self):
        with pytest.raises(ApiError):
            parse_nodes([{"id": "seven"}])
        with pytest.raises(ApiError):
            parse_edges([{"id": 1, "source": 2}])
        request = BatchRequest.from_dict(
            {"nodes": [_node(1, name="a")], "edges": []}
        )
        assert request.nodes[0].labels == frozenset({"Person"})

    def test_shutdown_endpoint_stops_server(self):
        server = SchemaServer(
            PGHiveConfig(server_port=0)
        ).start_background()
        client = _Client(server)
        status, body = client.call("POST", "/shutdown")
        assert status == 200 and body == {"stopping": True}
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            try:
                client.call("GET", "/health")
            except (ConnectionError, OSError):
                break
            time.sleep(0.05)
        else:  # pragma: no cover - diagnostics only
            raise AssertionError("server still answering after /shutdown")
