"""Tests for the clustering substrate (GMM, agglomerative, quality)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.gmm import (
    DivisiveGMM,
    GaussianMixture,
    select_components_bic,
)
from repro.cluster.hierarchical import agglomerative_cluster
from repro.cluster.quality import (
    cluster_size_histogram,
    num_clusters,
    pairwise_f1,
    purity,
)


def _two_blobs(n=60, separation=8.0, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(0.0, 0.5, size=(n // 2, 3))
    b = rng.normal(separation, 0.5, size=(n // 2, 3))
    data = np.vstack([a, b])
    labels = np.array([0] * (n // 2) + [1] * (n // 2))
    return data, labels


class TestGaussianMixture:
    def test_separates_two_blobs(self):
        data, labels = _two_blobs()
        model = GaussianMixture(2, seed=1).fit(data)
        pred = model.predict(data)
        # Perfect separation up to label permutation.
        assert purity(pred.tolist(), labels.tolist()) == 1.0

    def test_score_improves_with_correct_k(self):
        data, _ = _two_blobs()
        one = GaussianMixture(1, seed=1).fit(data)
        two = GaussianMixture(2, seed=1).fit(data)
        assert two.score(data) > one.score(data)

    def test_bic_prefers_true_component_count(self):
        data, _ = _two_blobs(n=120)
        best, scores = select_components_bic(data, k_min=1, k_max=4, seed=2)
        assert best.n_components == 2
        assert len(scores) == 4

    def test_requires_enough_points(self):
        with pytest.raises(ValueError):
            GaussianMixture(5).fit(np.zeros((3, 2)))

    def test_invalid_component_count(self):
        with pytest.raises(ValueError):
            GaussianMixture(0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianMixture(2).predict(np.zeros((2, 2)))

    def test_deterministic_given_seed(self):
        data, _ = _two_blobs()
        a = GaussianMixture(2, seed=5).fit(data).predict(data)
        b = GaussianMixture(2, seed=5).fit(data).predict(data)
        assert np.array_equal(a, b)

    def test_handles_duplicate_rows(self):
        data = np.vstack([np.zeros((20, 2)), np.ones((20, 2))])
        model = GaussianMixture(2, seed=0).fit(data)
        pred = model.predict(data)
        assert len(set(pred[:20].tolist())) == 1
        assert pred[0] != pred[-1]


class TestDivisiveGMM:
    def test_splits_two_blobs(self):
        data, labels = _two_blobs(n=80)
        assignment = DivisiveGMM(seed=1).fit_predict(data)
        assert num_clusters(assignment) >= 2
        assert purity(assignment.tolist(), labels.tolist()) == 1.0

    def test_does_not_split_single_blob(self):
        rng = np.random.default_rng(3)
        data = rng.normal(0, 0.3, size=(50, 3))
        assignment = DivisiveGMM(seed=1).fit_predict(data)
        assert num_clusters(assignment) <= 2

    def test_degenerate_identical_rows(self):
        data = np.ones((30, 4))
        assignment = DivisiveGMM(seed=0).fit_predict(data)
        assert num_clusters(assignment) == 1

    def test_empty_input(self):
        assert DivisiveGMM().fit_predict(np.zeros((0, 3))).size == 0


class TestAgglomerative:
    def test_merges_below_threshold(self):
        data = np.array([[0.0], [0.1], [5.0], [5.1]])
        assignment = agglomerative_cluster(data, threshold=1.0)
        assert assignment[0] == assignment[1]
        assert assignment[2] == assignment[3]
        assert assignment[0] != assignment[2]

    def test_threshold_zero_keeps_distinct_points_apart(self):
        data = np.array([[0.0], [1.0], [2.0]])
        assignment = agglomerative_cluster(data, threshold=0.5)
        assert num_clusters(assignment) == 3

    def test_empty(self):
        assert agglomerative_cluster(np.zeros((0, 2)), 1.0).size == 0


class TestQuality:
    def test_purity_perfect(self):
        assert purity([0, 0, 1, 1], ["a", "a", "b", "b"]) == 1.0

    def test_purity_mixed(self):
        assert purity([0, 0, 0, 0], ["a", "a", "a", "b"]) == 0.75

    def test_purity_empty(self):
        assert purity([], []) == 1.0

    def test_purity_alignment_check(self):
        with pytest.raises(ValueError):
            purity([0], ["a", "b"])

    def test_pairwise_f1_perfect(self):
        p, r, f1 = pairwise_f1([0, 0, 1], ["x", "x", "y"])
        assert (p, r, f1) == (1.0, 1.0, 1.0)

    def test_pairwise_f1_overmerged_hurts_precision(self):
        p, r, _ = pairwise_f1([0, 0, 0, 0], ["x", "x", "y", "y"])
        assert r == 1.0 and p < 1.0

    def test_pairwise_f1_fragmented_hurts_recall(self):
        p, r, _ = pairwise_f1([0, 1, 2, 3], ["x", "x", "y", "y"])
        assert p == 1.0 and r == 0.0

    @given(st.lists(st.integers(0, 4), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_pairwise_f1_bounds(self, truth):
        """Scores stay in [0, 1] and self-clustering is perfect."""
        p, r, f1 = pairwise_f1(truth, truth)
        assert (p, r, f1) == (1.0, 1.0, 1.0)
        p2, r2, f2 = pairwise_f1([0] * len(truth), truth)
        assert 0.0 <= p2 <= 1.0 and 0.0 <= r2 <= 1.0 and 0.0 <= f2 <= 1.0

    def test_cluster_size_histogram(self):
        assert cluster_size_histogram([0, 0, 1, 2, 2, 2]) == {1: 1, 2: 1, 3: 1}
