"""Tests for the per-type pattern breakdown."""

import pytest

from repro.core.pipeline import PGHive
from repro.datasets import get_dataset, inject_noise
from repro.graph.store import GraphStore
from repro.schema.patterns_report import (
    pattern_breakdown,
    render_pattern_breakdown,
)


class TestPatternBreakdown:
    def test_figure1_post_type_has_two_patterns(self, figure1_store):
        result = PGHive().discover(figure1_store)
        breakdowns = pattern_breakdown(result.schema, figure1_store)
        post = breakdowns["Post"]
        # One Post has imgFile, the other content: two patterns, neither
        # instance carries the type's full (merged) key set.
        assert post.num_patterns == 2
        assert post.full_coverage == 0.0
        assert post.dominant_share == 0.5

    def test_uniform_type_single_pattern(self, figure1_store):
        result = PGHive().discover(figure1_store)
        breakdowns = pattern_breakdown(result.schema, figure1_store)
        person = breakdowns["Person"]
        # Bob, John, Alice: same keys, but Alice is unlabeled -> two
        # patterns (labels differ), full key coverage 100%.
        assert person.num_patterns == 2
        assert person.full_coverage == 1.0

    def test_noise_multiplies_patterns(self):
        clean = get_dataset("POLE", scale=0.4, seed=1)
        noisy = inject_noise(clean, 0.4, 1.0, seed=2)
        store_clean = GraphStore(clean.graph)
        store_noisy = GraphStore(noisy.graph)
        clean_b = pattern_breakdown(
            PGHive().discover(store_clean).schema, store_clean
        )
        noisy_b = pattern_breakdown(
            PGHive().discover(store_noisy).schema, store_noisy
        )
        assert (
            noisy_b["Crime"].num_patterns > clean_b["Crime"].num_patterns
        )

    def test_render(self, figure1_store):
        result = PGHive().discover(figure1_store)
        text = render_pattern_breakdown(
            pattern_breakdown(result.schema, figure1_store)
        )
        assert "Per-type pattern breakdown" in text
        assert "Post" in text
        assert "(unlabeled)" in text  # Alice's pattern under Person

    def test_empty_type_is_safe(self):
        from repro.schema.model import NodeType, SchemaGraph
        from repro.graph.model import PropertyGraph

        schema = SchemaGraph()
        schema.add_node_type(NodeType("Ghost", frozenset({"Ghost"})))
        breakdowns = pattern_breakdown(
            schema, GraphStore(PropertyGraph())
        )
        assert breakdowns["Ghost"].num_patterns == 0
        assert breakdowns["Ghost"].dominant_share == 1.0
