"""Unit tests for the zero-copy shard transport.

The lifecycle invariant under test: every segment a
:class:`SegmentRegistry` hands out -- published, reserved-then-created,
or reserved-and-abandoned -- is reclaimed by the time ``close()``
returns, on success and on every failure path.
"""

import os
import pickle

import numpy
import pytest

from repro.core.faults import FaultInjector, InjectedFault
from repro.core.transport import (
    SEGMENT_PREFIX,
    TRANSPORTS,
    ArrayRef,
    SegmentRegistry,
    Slab,
    SlabRef,
    attach_slab,
    publish_result_bytes,
    resolve_transport,
    shm_available,
)

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="host has no usable /dev/shm"
)

ZERO_COPY = ["shm", "memmap"] if shm_available() else ["memmap"]


def _registry(transport, tmp_path, injector=None):
    return SegmentRegistry(transport, str(tmp_path), injector)


class TestResolveTransport:
    def test_known_transports_resolve(self):
        assert resolve_transport("pickle") == "pickle"
        assert resolve_transport("memmap") == "memmap"
        assert resolve_transport("shm") in ("shm", "memmap")

    def test_unknown_transport_raises(self):
        with pytest.raises(ValueError):
            resolve_transport("carrier-pigeon")

    def test_transport_tuple_is_the_config_surface(self):
        assert TRANSPORTS == ("pickle", "shm", "memmap")


class TestBytesRoundtrip:
    @pytest.mark.parametrize("transport", ZERO_COPY)
    def test_publish_consume_roundtrip(self, transport, tmp_path):
        payload = pickle.dumps({"answer": 42, "blob": b"\x00" * 4096})
        with _registry(transport, tmp_path) as registry:
            ref = registry.publish_bytes(payload)
            assert ref.transport == transport
            assert ref.size == len(payload)
            assert registry.consume_bytes(ref) == payload

    @pytest.mark.parametrize("transport", ZERO_COPY)
    def test_empty_payload_roundtrip(self, transport, tmp_path):
        with _registry(transport, tmp_path) as registry:
            ref = registry.publish_bytes(b"")
            assert registry.consume_bytes(ref) == b""

    @pytest.mark.parametrize("transport", ZERO_COPY)
    def test_worker_published_result_roundtrip(self, transport, tmp_path):
        """The reserve-in-driver / publish-in-worker handshake."""
        data = b"shard result bytes" * 100
        with _registry(transport, tmp_path) as registry:
            name = registry.reserve()
            ref = publish_result_bytes(
                transport, registry.directory, name, data
            )
            assert ref.name == name
            assert registry.consume_bytes(ref) == data


class TestArraySlabs:
    @pytest.mark.parametrize("transport", ZERO_COPY)
    def test_arrays_roundtrip_byte_identical(self, transport, tmp_path):
        arrays = [
            numpy.arange(17, dtype=numpy.int64),
            numpy.array([], dtype=numpy.int64),
            numpy.linspace(0.0, 1.0, 9),
            numpy.arange(5, dtype=numpy.int32),
        ]
        with _registry(transport, tmp_path) as registry:
            slab_ref, refs = registry.publish_arrays(arrays)
            slab = attach_slab(slab_ref, in_worker=False)
            try:
                for original, ref in zip(arrays, refs):
                    view = slab.array(ref)
                    assert view.dtype == original.dtype
                    numpy.testing.assert_array_equal(view, original)
            finally:
                view = None  # drop the last live view before detaching
                slab.close()

    @pytest.mark.parametrize("transport", ZERO_COPY)
    def test_views_are_read_only(self, transport, tmp_path):
        with _registry(transport, tmp_path) as registry:
            slab_ref, refs = registry.publish_arrays(
                [numpy.arange(4, dtype=numpy.int64)]
            )
            slab = attach_slab(slab_ref, in_worker=False)
            try:
                view = slab.array(refs[0])
                with pytest.raises(ValueError):
                    view[0] = 99
            finally:
                view = None  # drop the live view before detaching
                slab.close()

    @pytest.mark.parametrize("transport", ZERO_COPY)
    def test_offsets_are_aligned(self, transport, tmp_path):
        with _registry(transport, tmp_path) as registry:
            _slab, refs = registry.publish_arrays(
                [
                    numpy.arange(3, dtype=numpy.int8),
                    numpy.arange(3, dtype=numpy.float64),
                ]
            )
            assert all(ref.offset % 16 == 0 for ref in refs)


class TestLifecycle:
    def _litter(self, tmp_path):
        litter = []
        if os.path.isdir("/dev/shm"):
            litter += [
                n for n in os.listdir("/dev/shm")
                if n.startswith(SEGMENT_PREFIX)
            ]
        for root, dirs, files in os.walk(tmp_path):
            litter += [os.path.join(root, f) for f in files]
        return litter

    @pytest.mark.parametrize("transport", ZERO_COPY)
    def test_close_sweeps_unconsumed_segments(self, transport, tmp_path):
        registry = _registry(transport, tmp_path)
        registry.publish_bytes(b"never consumed")
        registry.publish_arrays([numpy.arange(8)])
        registry.close()
        assert self._litter(tmp_path) == []

    @pytest.mark.parametrize("transport", ZERO_COPY)
    def test_reserved_but_never_created_names_are_fine(
        self, transport, tmp_path
    ):
        """A worker killed between reservation and creation leaves only
        a tracked name; the sweep must tolerate its absence."""
        registry = _registry(transport, tmp_path)
        registry.reserve()
        registry.reserve()
        registry.close()
        assert self._litter(tmp_path) == []

    @pytest.mark.parametrize("transport", ZERO_COPY)
    def test_release_reclaims_a_published_segment(
        self, transport, tmp_path
    ):
        registry = _registry(transport, tmp_path)
        ref = registry.publish_bytes(b"abandoned result")
        registry.release(ref.name)
        if transport == "shm":
            with pytest.raises(FileNotFoundError):
                Slab(ref)
        registry.close()
        assert self._litter(tmp_path) == []

    @pytest.mark.parametrize("transport", ZERO_COPY)
    def test_close_is_idempotent(self, transport, tmp_path):
        registry = _registry(transport, tmp_path)
        registry.publish_bytes(b"x")
        registry.close()
        registry.close()

    @pytest.mark.parametrize("transport", ZERO_COPY)
    def test_injected_unlink_fault_keeps_segment_tracked(
        self, transport, tmp_path
    ):
        """consume_bytes raising loses the result, never the segment:
        the final sweep still reclaims it."""
        injector = FaultInjector.from_spec("unlink:0:raise")
        registry = _registry(transport, tmp_path, injector)
        ref = registry.publish_bytes(b"doomed")
        with pytest.raises(InjectedFault):
            registry.consume_bytes(ref, index=0)
        registry.close()
        assert self._litter(tmp_path) == []

    def test_registry_rejects_pickle(self, tmp_path):
        with pytest.raises(ValueError):
            SegmentRegistry("pickle", str(tmp_path))


class TestAttachFaults:
    @pytest.mark.parametrize("transport", ZERO_COPY)
    def test_attach_fires_fault_site(self, transport, tmp_path):
        injector = FaultInjector.from_spec("attach:3:raise")
        with _registry(transport, tmp_path) as registry:
            ref = registry.publish_bytes(b"payload")
            with pytest.raises(InjectedFault):
                attach_slab(ref, injector, index=3, in_worker=False)
            # Other indices attach fine; the segment is untouched.
            slab = attach_slab(ref, injector, index=4, in_worker=False)
            assert slab.read_bytes() == b"payload"
            slab.close()

    def test_memmap_ref_requires_directory(self):
        with pytest.raises(ValueError):
            Slab(SlabRef("memmap", "nope", 3, None))
