"""Unit tests for the property graph data model (Definition 3.1)."""

import pytest

from repro.graph.model import Edge, Node, PropertyGraph, canonical_label


class TestNode:
    def test_defaults_are_empty(self):
        node = Node(1)
        assert node.labels == frozenset()
        assert dict(node.properties) == {}
        assert not node.is_labeled

    def test_property_keys(self):
        node = Node(1, frozenset({"Person"}), {"name": "x", "age": 3})
        assert node.property_keys == frozenset({"name", "age"})

    def test_label_token_sorts_and_joins(self):
        node = Node(1, frozenset({"Student", "Person"}))
        assert node.label_token() == "Person&Student"

    def test_label_token_empty_for_unlabeled(self):
        assert Node(1).label_token() == ""

    def test_with_labels_replaces(self):
        node = Node(1, frozenset({"A"}), {"k": 1})
        relabeled = node.with_labels(["B", "C"])
        assert relabeled.labels == frozenset({"B", "C"})
        assert relabeled.properties == {"k": 1}
        assert node.labels == frozenset({"A"})  # original untouched

    def test_without_properties(self):
        node = Node(1, frozenset(), {"a": 1, "b": 2, "c": 3})
        pruned = node.without_properties(["a", "c"])
        assert pruned.property_keys == frozenset({"b"})

    def test_equality_by_value(self):
        assert Node(1, frozenset({"A"})) == Node(1, frozenset({"A"}))
        assert Node(1, frozenset({"A"})) != Node(1, frozenset({"B"}))


class TestEdge:
    def test_endpoints_and_labels(self):
        edge = Edge(0, 1, 2, frozenset({"KNOWS"}), {"since": 2020})
        assert (edge.source, edge.target) == (1, 2)
        assert edge.is_labeled
        assert edge.label_token() == "KNOWS"

    def test_without_properties(self):
        edge = Edge(0, 1, 2, frozenset(), {"a": 1, "b": 2})
        assert edge.without_properties(["b"]).property_keys == frozenset({"a"})


class TestCanonicalLabel:
    def test_empty(self):
        assert canonical_label([]) == ""

    def test_single(self):
        assert canonical_label(["Person"]) == "Person"

    def test_sorted_concatenation(self):
        assert canonical_label(["Zed", "Alpha"]) == "Alpha&Zed"


class TestPropertyGraph:
    def test_add_and_lookup(self):
        graph = PropertyGraph()
        graph.add_node(Node(1, frozenset({"A"})))
        assert graph.has_node(1)
        assert graph.node(1).labels == frozenset({"A"})

    def test_duplicate_node_rejected(self):
        graph = PropertyGraph()
        graph.add_node(Node(1))
        with pytest.raises(ValueError, match="duplicate node"):
            graph.add_node(Node(1))

    def test_edge_requires_endpoints(self):
        graph = PropertyGraph()
        graph.add_node(Node(1))
        with pytest.raises(ValueError, match="unknown target"):
            graph.add_edge(Edge(0, 1, 99))
        with pytest.raises(ValueError, match="unknown source"):
            graph.add_edge(Edge(0, 99, 1))

    def test_duplicate_edge_rejected(self):
        graph = PropertyGraph()
        graph.add_node(Node(1))
        graph.add_node(Node(2))
        graph.add_edge(Edge(0, 1, 2))
        with pytest.raises(ValueError, match="duplicate edge"):
            graph.add_edge(Edge(0, 2, 1))

    def test_in_out_edges(self):
        graph = PropertyGraph()
        for i in range(3):
            graph.add_node(Node(i))
        graph.add_edge(Edge(0, 0, 1))
        graph.add_edge(Edge(1, 0, 2))
        graph.add_edge(Edge(2, 1, 2))
        assert [e.id for e in graph.out_edges(0)] == [0, 1]
        assert [e.id for e in graph.in_edges(2)] == [1, 2]
        assert graph.out_edges(2) == []

    def test_endpoints(self):
        graph = PropertyGraph()
        graph.add_node(Node(5, frozenset({"A"})))
        graph.add_node(Node(6, frozenset({"B"})))
        graph.add_edge(Edge(0, 5, 6))
        source, target = graph.endpoints(0)
        assert source.id == 5 and target.id == 6

    def test_global_key_and_label_sets(self, figure1_graph):
        assert "name" in figure1_graph.node_property_keys()
        assert "since" in figure1_graph.edge_property_keys()
        assert "Person" in figure1_graph.node_labels()
        assert "KNOWS" in figure1_graph.edge_labels()

    def test_replace_node(self):
        graph = PropertyGraph()
        graph.add_node(Node(1, frozenset({"A"})))
        graph.replace_node(Node(1, frozenset({"B"})))
        assert graph.node(1).labels == frozenset({"B"})
        with pytest.raises(KeyError):
            graph.replace_node(Node(99))

    def test_replace_edge_keeps_endpoints(self):
        graph = PropertyGraph()
        graph.add_node(Node(1))
        graph.add_node(Node(2))
        graph.add_edge(Edge(0, 1, 2, frozenset({"X"})))
        graph.replace_edge(Edge(0, 1, 2, frozenset({"Y"})))
        assert graph.edge(0).labels == frozenset({"Y"})
        with pytest.raises(ValueError, match="endpoints"):
            graph.replace_edge(Edge(0, 2, 1))

    def test_subgraph_keeps_internal_edges_only(self, figure1_graph):
        sub = figure1_graph.subgraph([0, 1])  # Bob and John
        assert sub.num_nodes == 2
        # Only the Bob->John KNOWS edge is internal.
        assert sub.num_edges == 1

    def test_copy_is_independent(self, figure1_graph):
        dup = figure1_graph.copy()
        assert dup.num_nodes == figure1_graph.num_nodes
        dup.add_node(Node(999))
        assert not figure1_graph.has_node(999)

    def test_len_is_node_count(self, figure1_graph):
        assert len(figure1_graph) == figure1_graph.num_nodes == 7
