"""Equivalence tests: batch-vectorized kernels vs. reference loops.

Every hot-path kernel (vectorization, MinHash feature sets and signatures,
banding, label refinement, cluster summarization) has an element-at-a-time
reference implementation; these properties assert byte-identical outputs
on random graphs, and that the two engine modes (``kernels="vectorized"``
vs ``kernels="reference"``) discover byte-identical schemas end to end.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.columns import edge_columns, node_columns
from repro.core.config import LSHMethod, PGHiveConfig
from repro.core.incremental import (
    IncrementalDiscovery,
    _refine_by_label_ids,
    _refine_by_labels,
)
from repro.core.pipeline import PGHive
from repro.core.type_extraction import (
    build_edge_clusters,
    build_edge_clusters_from_columns,
    build_node_clusters,
    build_node_clusters_from_columns,
)
from repro.core.vectorize import EdgeVectorizer, FeatureInterner, NodeVectorizer
from repro.embeddings.embedder import LabelEmbedder
from repro.graph.builder import GraphBuilder
from repro.graph.model import Edge, Node
from repro.graph.store import GraphStore
from repro.lsh.buckets import (
    cluster_by_band_union,
    cluster_by_band_union_reference,
)
from repro.schema import serialize_pg_schema

_LABELS = ["Person", "Org", "Post", ""]
_KEYS = ["name", "age", "url", "score"]


def _embedder() -> LabelEmbedder:
    embedder = LabelEmbedder()
    embedder.fit_tokens([
        ["Person", "KNOWS", "Person"],
        ["Org", "AT", "Post"],
        ["Person", "LIKES", "Post"],
    ])
    return embedder


@st.composite
def node_batches(draw):
    count = draw(st.integers(0, 25))
    nodes = []
    for i in range(count):
        label = draw(st.sampled_from(_LABELS))
        keys = draw(st.sets(st.sampled_from(_KEYS), max_size=3))
        nodes.append(
            Node(i, frozenset([label] if label else []), {k: 1 for k in keys})
        )
    return nodes


@st.composite
def edge_batches(draw):
    count = draw(st.integers(0, 25))
    num_endpoints = 8
    endpoint_labels = {}
    for nid in range(num_endpoints):
        label = draw(st.sampled_from(_LABELS))
        if draw(st.booleans()):
            endpoint_labels[nid] = frozenset([label] if label else [])
    edges = []
    for i in range(count):
        label = draw(st.sampled_from(["KNOWS", "LIKES", ""]))
        keys = draw(st.sets(st.sampled_from(["since", "w"]), max_size=2))
        edges.append(Edge(
            100 + i,
            draw(st.integers(0, num_endpoints - 1)),
            draw(st.integers(0, num_endpoints - 1)),
            frozenset([label] if label else []),
            {k: 1 for k in keys},
        ))
    return edges, endpoint_labels


@st.composite
def small_graphs(draw):
    """Random small property graphs (some unlabeled, arbitrary props)."""
    num_nodes = draw(st.integers(2, 12))
    builder = GraphBuilder("random")
    for _ in range(num_nodes):
        label = draw(st.sampled_from(_LABELS))
        keys = draw(st.sets(st.sampled_from(_KEYS), max_size=3))
        builder.node([label] if label else [], {k: 1 for k in keys})
    for _ in range(draw(st.integers(0, 16))):
        label = draw(st.sampled_from(["KNOWS", "LIKES", ""]))
        keys = draw(st.sets(st.sampled_from(["since", "w"]), max_size=2))
        builder.edge(
            draw(st.integers(0, num_nodes - 1)),
            draw(st.integers(0, num_nodes - 1)),
            [label] if label else [],
            {k: 1 for k in keys},
        )
    return builder.build()


class TestVectorizeKernels:
    @settings(max_examples=40, deadline=None)
    @given(node_batches())
    def test_node_vectorize_matches_reference(self, nodes):
        vectorizer = NodeVectorizer(_KEYS, _embedder())
        batch = vectorizer.vectorize(nodes)
        reference = vectorizer.vectorize_reference(nodes)
        assert batch.tobytes() == reference.tobytes()
        if nodes:
            compact, pattern_ids = vectorizer.vectorize_patterns(
                node_columns(nodes)
            )
            assert compact[pattern_ids].tobytes() == reference.tobytes()

    @settings(max_examples=40, deadline=None)
    @given(edge_batches())
    def test_edge_vectorize_matches_reference(self, batch):
        edges, endpoint_labels = batch
        vectorizer = EdgeVectorizer(["since", "w"], _embedder())
        vectorized = vectorizer.vectorize(edges, endpoint_labels)
        reference = vectorizer.vectorize_reference(edges, endpoint_labels)
        assert vectorized.tobytes() == reference.tobytes()
        if edges:
            compact, pattern_ids = vectorizer.vectorize_patterns(
                edge_columns(edges, endpoint_labels)
            )
            assert compact[pattern_ids].tobytes() == reference.tobytes()

    @settings(max_examples=40, deadline=None)
    @given(node_batches())
    def test_node_feature_sets_match_reference(self, nodes):
        """Sets AND interner state must match the element-order loop."""
        vectorizer = NodeVectorizer(_KEYS, _embedder())
        batch_interner = FeatureInterner()
        reference_interner = FeatureInterner()
        batch = vectorizer.feature_sets(nodes, batch_interner)
        reference = vectorizer.feature_sets_reference(
            nodes, reference_interner
        )
        assert batch == reference
        assert batch_interner._ids == reference_interner._ids
        if nodes:
            pattern_interner = FeatureInterner()
            compact, pattern_ids = vectorizer.feature_sets_patterns(
                node_columns(nodes), pattern_interner
            )
            assert [compact[p] for p in pattern_ids.tolist()] == reference
            assert pattern_interner._ids == reference_interner._ids

    @settings(max_examples=40, deadline=None)
    @given(edge_batches())
    def test_edge_feature_sets_match_reference(self, batch):
        edges, endpoint_labels = batch
        vectorizer = EdgeVectorizer(["since", "w"], _embedder())
        batch_interner = FeatureInterner()
        reference_interner = FeatureInterner()
        got = vectorizer.feature_sets(edges, endpoint_labels, batch_interner)
        reference = vectorizer.feature_sets_reference(
            edges, endpoint_labels, reference_interner
        )
        assert got == reference
        assert batch_interner._ids == reference_interner._ids
        if edges:
            pattern_interner = FeatureInterner()
            compact, pattern_ids = vectorizer.feature_sets_patterns(
                edge_columns(edges, endpoint_labels), pattern_interner
            )
            assert [compact[p] for p in pattern_ids.tolist()] == reference
            assert pattern_interner._ids == reference_interner._ids


class TestClusteringKernels:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(0, 40),
        st.integers(1, 20),
        st.integers(1, 8),
        st.integers(0, 2**31 - 1),
    )
    def test_band_union_matches_reference(self, n, width, rows_per_band, seed):
        signatures = np.random.default_rng(seed).integers(
            0, 4, size=(n, width)
        ).astype(np.int64)
        batch = cluster_by_band_union(signatures, rows_per_band)
        reference = cluster_by_band_union_reference(signatures, rows_per_band)
        assert np.array_equal(batch, reference)

    @settings(max_examples=40, deadline=None)
    @given(node_batches(), st.integers(0, 2**31 - 1))
    def test_refine_by_label_ids_matches_reference(self, nodes, seed):
        assignment = np.random.default_rng(seed).integers(
            0, max(1, len(nodes) // 2 + 1), size=len(nodes)
        ).astype(np.int64)
        reference = _refine_by_labels(nodes, assignment)
        columns = node_columns(nodes)
        batch = _refine_by_label_ids(
            assignment, columns.label_ids, len(columns.labels)
        )
        assert np.array_equal(batch, reference)

    @settings(max_examples=40, deadline=None)
    @given(node_batches(), st.integers(0, 2**31 - 1))
    def test_node_cluster_builder_matches_reference(self, nodes, seed):
        assignment = np.random.default_rng(seed).integers(
            0, max(1, len(nodes) // 2 + 1), size=len(nodes)
        ).astype(np.int64)
        for pseudo_tag in ("", "b0"):
            reference = build_node_clusters(nodes, assignment, pseudo_tag)
            batch = build_node_clusters_from_columns(
                node_columns(nodes), assignment, pseudo_tag
            )
            assert len(batch) == len(reference)
            for got, want in zip(batch, reference):
                assert got.labels == want.labels
                assert got.property_keys == want.property_keys
                assert got.members == want.members
                assert got.property_counts == want.property_counts
                assert got.cluster_tokens == want.cluster_tokens

    @settings(max_examples=40, deadline=None)
    @given(edge_batches(), st.integers(0, 2**31 - 1))
    def test_edge_cluster_builder_matches_reference(self, batch, seed):
        edges, endpoint_labels = batch
        # Mix in a pseudo-token endpoint, as the engine's hybrid step does.
        endpoint_labels = dict(endpoint_labels)
        endpoint_labels[0] = frozenset({"~b0:ABSTRACT_NODE_1"})
        assignment = np.random.default_rng(seed).integers(
            0, max(1, len(edges) // 2 + 1), size=len(edges)
        ).astype(np.int64)
        reference = build_edge_clusters(edges, assignment, endpoint_labels)
        got_clusters = build_edge_clusters_from_columns(
            edge_columns(edges, endpoint_labels), assignment
        )
        assert len(got_clusters) == len(reference)
        for got, want in zip(got_clusters, reference):
            assert got.labels == want.labels
            assert got.property_keys == want.property_keys
            assert got.members == want.members
            assert got.property_counts == want.property_counts
            assert got.source_labels == want.source_labels
            assert got.target_labels == want.target_labels
            assert got.source_tokens == want.source_tokens
            assert got.target_tokens == want.target_tokens


class TestEndToEndEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(small_graphs())
    def test_schemas_byte_identical_elsh(self, graph):
        self._assert_modes_agree(graph, LSHMethod.ELSH)

    @settings(max_examples=15, deadline=None)
    @given(small_graphs())
    def test_schemas_byte_identical_minhash(self, graph):
        self._assert_modes_agree(graph, LSHMethod.MINHASH)

    @staticmethod
    def _assert_modes_agree(graph, method):
        store = GraphStore(graph)
        serialized = {}
        for kernels in ("vectorized", "reference"):
            config = PGHiveConfig(method=method, kernels=kernels)
            result = PGHive(config).discover(store)
            serialized[kernels] = serialize_pg_schema(result.schema)
        assert serialized["vectorized"] == serialized["reference"]


class TestEmbedderReuse:
    def test_stable_vocabulary_reuses_embedder(self):
        """Identical-corpus batches skip retraining and flag the report."""
        engine = IncrementalDiscovery()
        nodes = [
            Node(i, frozenset({"Person"}), {"name": 1}) for i in range(6)
        ]
        first = engine.process_batch(nodes[:3], [], None)
        second = engine.process_batch(nodes[3:], [], None)
        assert not first.embedder_reused
        assert second.embedder_reused

    def test_vocabulary_change_refits(self):
        engine = IncrementalDiscovery()
        engine.process_batch(
            [Node(0, frozenset({"Person"}), {})], [], None
        )
        report = engine.process_batch(
            [Node(1, frozenset({"Org"}), {})], [], None
        )
        assert not report.embedder_reused

    def test_reuse_chain_identical_to_refit_chain(self):
        """Reusing the cached embedder must not change any batch schema.

        The reference mode refits Word2Vec every batch; training is
        deterministic, so the reused embedder is equivalent and the
        monotone schema chain must be byte-identical.
        """
        rng = np.random.default_rng(11)
        batches = []
        for b in range(4):
            nodes = [
                Node(
                    b * 100 + i,
                    frozenset({"Person"} if i % 2 else {"Org"}),
                    {"name": 1} if i % 3 else {"age": 1},
                )
                for i in range(10)
            ]
            edges = [
                Edge(
                    b * 1000 + i,
                    b * 100 + int(rng.integers(0, 10)),
                    b * 100 + int(rng.integers(0, 10)),
                    frozenset({"KNOWS"}),
                    {},
                )
                for i in range(8)
            ]
            batches.append((nodes, edges))
        chains = {}
        for kernels in ("vectorized", "reference"):
            engine = IncrementalDiscovery(PGHiveConfig(kernels=kernels))
            chain = []
            for nodes, edges in batches:
                engine.process_batch(nodes, edges, None)
                chain.append(serialize_pg_schema(engine.schema))
            chains[kernels] = chain
        assert chains["vectorized"] == chains["reference"]


class TestStageTiming:
    def test_batch_report_has_stage_seconds(self):
        for kernels in ("vectorized", "reference"):
            engine = IncrementalDiscovery(PGHiveConfig(kernels=kernels))
            report = engine.process_batch(
                [Node(0, frozenset({"A"}), {"x": 1})],
                [Edge(1, 0, 0, frozenset({"R"}), {})],
                None,
            )
            for stage in ("embed", "vectorize", "cluster", "extract", "merge"):
                assert stage in report.stage_seconds, (kernels, stage)
                assert report.stage_seconds[stage] >= 0.0
            assert sum(report.stage_seconds.values()) <= report.seconds + 0.05
