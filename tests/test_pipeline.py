"""End-to-end tests for the PGHive pipeline (Algorithm 1)."""

import pytest

from repro.core.config import LSHMethod, PGHiveConfig
from repro.core.pipeline import PGHive
from repro.datasets import get_dataset, inject_noise
from repro.evaluation.f1star import majority_f1
from repro.graph.store import GraphStore


class TestStaticDiscovery:
    def test_clean_pole_is_perfect(self):
        dataset = get_dataset("POLE", scale=0.4, seed=3)
        result = PGHive().discover(GraphStore(dataset.graph))
        node_scores = majority_f1(result.node_assignment, dataset.truth.node_types)
        edge_scores = majority_f1(result.edge_assignment, dataset.truth.edge_types)
        assert node_scores.headline == pytest.approx(1.0)
        assert edge_scores.headline == pytest.approx(1.0)
        assert result.num_node_types == 11

    def test_minhash_variant(self):
        dataset = get_dataset("POLE", scale=0.4, seed=3)
        config = PGHiveConfig(method=LSHMethod.MINHASH)
        result = PGHive(config).discover(GraphStore(dataset.graph))
        scores = majority_f1(result.node_assignment, dataset.truth.node_types)
        assert scores.headline == pytest.approx(1.0)

    def test_string_method_accepted(self):
        config = PGHiveConfig(method="minhash")
        assert config.method is LSHMethod.MINHASH

    def test_every_element_assigned(self, figure1_store):
        result = PGHive().discover(figure1_store)
        assert set(result.node_assignment) == set(range(7))
        assert set(result.edge_assignment) == set(range(6))

    def test_determinism(self, figure1_store):
        first = PGHive().discover(figure1_store)
        second = PGHive().discover(figure1_store)
        assert first.node_assignment == second.node_assignment
        assert set(first.schema.node_types) == set(second.schema.node_types)

    def test_noise_robustness_with_full_labels(self):
        dataset = inject_noise(
            get_dataset("POLE", scale=0.4, seed=3), 0.4, 1.0, seed=4
        )
        result = PGHive().discover(GraphStore(dataset.graph))
        scores = majority_f1(result.node_assignment, dataset.truth.node_types)
        assert scores.headline >= 0.95

    def test_zero_label_availability_still_works(self):
        dataset = inject_noise(
            get_dataset("POLE", scale=0.4, seed=3), 0.0, 0.0, seed=4
        )
        result = PGHive().discover(GraphStore(dataset.graph))
        scores = majority_f1(result.node_assignment, dataset.truth.node_types)
        assert scores.headline >= 0.85
        # All discovered node types must be ABSTRACT (no labels exist).
        assert all(t.abstract for t in result.schema.node_types.values())

    def test_manual_lsh_parameters_respected(self, figure1_store):
        config = PGHiveConfig(bucket_length=5.0, num_tables=19)
        result = PGHive(config).discover(figure1_store)
        assert "b=5.000 T=19" in result.parameters["batch0/nodes"]

    def test_timings_recorded(self, figure1_store):
        result = PGHive().discover(figure1_store)
        assert result.total_seconds > 0
        assert 0 < result.discovery_seconds <= result.total_seconds
        assert len(result.batches) == 1

    def test_empty_graph(self):
        from repro.graph.model import PropertyGraph

        result = PGHive().discover(GraphStore(PropertyGraph()))
        assert result.num_node_types == 0
        assert result.num_edge_types == 0


class TestConfigValidation:
    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            PGHiveConfig(jaccard_threshold=1.5)

    def test_bad_bucket_length(self):
        with pytest.raises(ValueError):
            PGHiveConfig(bucket_length=-1.0)

    def test_bad_num_tables(self):
        with pytest.raises(ValueError):
            PGHiveConfig(num_tables=0)

    def test_bad_label_weight(self):
        with pytest.raises(ValueError):
            PGHiveConfig(label_weight=-0.1)

    def test_bad_endpoint_threshold(self):
        with pytest.raises(ValueError):
            PGHiveConfig(endpoint_jaccard_threshold=2.0)

    def test_unknown_method_string(self):
        with pytest.raises(ValueError):
            PGHiveConfig(method="simhash")
