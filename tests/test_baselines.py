"""Tests for the GMMSchema and SchemI baselines."""

import pytest

from repro.baselines import GMMSchema, SchemI, UnsupportedDataError
from repro.baselines.gmmschema import GMMSchemaConfig
from repro.baselines.schemi import SchemIConfig
from repro.datasets import get_dataset, inject_noise
from repro.evaluation.f1star import majority_f1
from repro.graph.builder import GraphBuilder
from repro.graph.store import GraphStore


class TestGMMSchema:
    def test_perfect_on_clean_labeled_data(self):
        dataset = get_dataset("POLE", scale=0.4, seed=3)
        result = GMMSchema().discover(GraphStore(dataset.graph))
        scores = majority_f1(result.node_assignment, dataset.truth.node_types)
        assert scores.headline >= 0.99

    def test_no_edge_types(self):
        """Limitation (i): GMMSchema only discovers node types."""
        dataset = get_dataset("POLE", scale=0.3, seed=3)
        result = GMMSchema().discover(GraphStore(dataset.graph))
        assert result.schema.edge_types == {}
        assert result.edge_assignment == {}

    def test_rejects_unlabeled_nodes(self):
        """Limitation (ii): fully labeled data is assumed."""
        dataset = inject_noise(
            get_dataset("POLE", scale=0.3, seed=3), 0.0, 0.5, seed=5
        )
        with pytest.raises(UnsupportedDataError):
            GMMSchema().discover(GraphStore(dataset.graph))

    def test_noise_degrades_accuracy(self):
        """Limitation (iii): accuracy decays as property noise grows."""
        clean = get_dataset("LDBC", scale=0.5, seed=3)
        noisy = inject_noise(clean, 0.4, 1.0, seed=5)
        clean_f1 = majority_f1(
            GMMSchema().discover(GraphStore(clean.graph)).node_assignment,
            clean.truth.node_types,
        ).headline
        noisy_f1 = majority_f1(
            GMMSchema().discover(GraphStore(noisy.graph)).node_assignment,
            noisy.truth.node_types,
        ).headline
        assert noisy_f1 < clean_f1

    def test_sampling_config(self):
        dataset = get_dataset("POLE", scale=0.4, seed=3)
        config = GMMSchemaConfig(sample_size=100)
        result = GMMSchema(config).discover(GraphStore(dataset.graph))
        assert result.num_node_types >= 1

    def test_empty_graph(self):
        from repro.graph.model import PropertyGraph

        result = GMMSchema().discover(GraphStore(PropertyGraph()))
        assert result.num_node_types == 0


class TestSchemI:
    def test_perfect_on_flat_labeled_data(self):
        dataset = get_dataset("POLE", scale=0.4, seed=3)
        result = SchemI().discover(GraphStore(dataset.graph))
        scores = majority_f1(result.node_assignment, dataset.truth.node_types)
        assert scores.headline >= 0.99

    def test_discovers_edge_types(self):
        dataset = get_dataset("POLE", scale=0.3, seed=3)
        result = SchemI().discover(GraphStore(dataset.graph))
        assert result.num_edge_types > 0

    def test_rejects_unlabeled_nodes(self):
        dataset = inject_noise(
            get_dataset("POLE", scale=0.3, seed=3), 0.0, 0.5, seed=5
        )
        with pytest.raises(UnsupportedDataError):
            SchemI().discover(GraphStore(dataset.graph))

    def test_rejects_unlabeled_edges(self):
        b = GraphBuilder()
        x = b.node(["A"], {})
        y = b.node(["B"], {})
        b.edge(x, y, [], {})
        with pytest.raises(UnsupportedDataError):
            SchemI().discover(GraphStore(b.build()))

    def test_containment_merging_mixes_refined_types(self):
        """Shared-label grouping: {Neuron,Segment} nodes merge into
        {Segment} -- the documented SchemI accuracy gap on MB6-style data."""
        b = GraphBuilder()
        for i in range(6):
            b.node(["Segment"], {"bodyId": i})
        for i in range(4):
            b.node(["Neuron", "Segment"], {"bodyId": i, "name": "n"})
        result = SchemI().discover(GraphStore(b.build()))
        assert result.num_node_types == 1

    def test_containment_merging_can_be_disabled(self):
        b = GraphBuilder()
        b.node(["Segment"], {"bodyId": 1})
        b.node(["Neuron", "Segment"], {"bodyId": 2})
        config = SchemIConfig(merge_shared_labels=False)
        result = SchemI(config).discover(GraphStore(b.build()))
        assert result.num_node_types == 2

    def test_edges_typed_by_label_only(self):
        """Same-label edges over different endpoints collapse (unlike
        PG-HIVE's endpoint-aware edge types)."""
        b = GraphBuilder()
        p = b.node(["Person"], {})
        post = b.node(["Post"], {})
        comment = b.node(["Comment"], {})
        b.edge(p, post, ["LIKES"], {})
        b.edge(p, comment, ["LIKES"], {})
        result = SchemI().discover(GraphStore(b.build()))
        assert result.num_edge_types == 1

    def test_noise_does_not_affect_label_driven_f1(self):
        clean = get_dataset("POLE", scale=0.3, seed=3)
        noisy = inject_noise(clean, 0.4, 1.0, seed=5)
        f1_clean = majority_f1(
            SchemI().discover(GraphStore(clean.graph)).node_assignment,
            clean.truth.node_types,
        ).headline
        f1_noisy = majority_f1(
            SchemI().discover(GraphStore(noisy.graph)).node_assignment,
            noisy.truth.node_types,
        ).headline
        assert f1_noisy == pytest.approx(f1_clean)
