"""Property tests over randomly generated schemas.

Serializers and persistence must handle *any* schema the discovery
pipeline could produce -- arbitrary label text, empty property sets,
abstract types, multi-endpoint edge types -- without crashing, and the
persistence round trip must be structurally lossless.
"""

import xml.etree.ElementTree as ET
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schema.diff import diff_schemas
from repro.schema.model import (
    Cardinality,
    DataType,
    EdgeType,
    NodeType,
    PropertyStatus,
    SchemaGraph,
)
from repro.schema.persist import schema_from_dict, schema_to_dict
from repro.schema.serialize_cypher import serialize_cypher
from repro.schema.serialize_graphql import serialize_graphql
from repro.schema.serialize_pgschema import serialize_pg_schema
from repro.schema.serialize_xsd import serialize_xsd

_LABELS = st.sampled_from(
    ["Person", "Org", "my label!", "Ω", "x&y", "123start", "_ok"]
)
_KEYS = st.sampled_from(["name", "weird key", "ns:qualified", "ßeta", "k1"])
_DATATYPES = st.sampled_from(list(DataType))
_STATUS = st.sampled_from(list(PropertyStatus))


@st.composite
def schemas(draw):
    schema = SchemaGraph(draw(st.sampled_from(["g", "my graph", "Ωmega"])))
    node_names = []
    for index in range(draw(st.integers(1, 5))):
        labels = draw(st.frozensets(_LABELS, max_size=3))
        name = f"N{index}"
        node_type = NodeType(
            name,
            labels,
            abstract=not labels,
            instance_count=draw(st.integers(0, 100)),
        )
        for key in draw(st.sets(_KEYS, max_size=4)):
            spec = node_type.ensure_property(key)
            spec.datatype = draw(_DATATYPES)
            spec.status = draw(_STATUS)
            node_type.property_counts[key] = draw(st.integers(0, 100))
        schema.add_node_type(node_type)
        node_names.append(name)
    for index in range(draw(st.integers(0, 4))):
        labels = draw(st.frozensets(_LABELS, max_size=2))
        edge_type = EdgeType(
            f"E{index}",
            labels,
            abstract=not labels,
            source_labels=draw(st.frozensets(_LABELS, max_size=2)),
            target_labels=draw(st.frozensets(_LABELS, max_size=2)),
            source_types=set(draw(st.sets(
                st.sampled_from(node_names), max_size=2
            ))),
            target_types=set(draw(st.sets(
                st.sampled_from(node_names), max_size=2
            ))),
            cardinality=draw(st.sampled_from(list(Cardinality))),
            max_out=draw(st.integers(0, 9)),
            max_in=draw(st.integers(0, 9)),
            instance_count=draw(st.integers(0, 100)),
        )
        for key in draw(st.sets(_KEYS, max_size=3)):
            spec = edge_type.ensure_property(key)
            spec.datatype = draw(_DATATYPES)
            spec.status = draw(_STATUS)
        schema.add_edge_type(edge_type)
    return schema


@settings(max_examples=40, deadline=None)
@given(schemas())
def test_persistence_round_trip_is_lossless(schema):
    rebuilt = schema_from_dict(schema_to_dict(schema))
    assert diff_schemas(schema, rebuilt).is_empty
    assert diff_schemas(rebuilt, schema).is_empty
    # Bookkeeping survives too.
    for name, original in schema.node_types.items():
        clone = rebuilt.node_types[name]
        assert clone.instance_count == original.instance_count
        assert Counter(clone.property_counts) == Counter(
            original.property_counts
        )
    for name, original in schema.edge_types.items():
        clone = rebuilt.edge_types[name]
        assert clone.cardinality is original.cardinality
        assert clone.source_types == original.source_types


@settings(max_examples=40, deadline=None)
@given(schemas(), st.sampled_from(["STRICT", "LOOSE"]))
def test_pg_schema_serializer_never_crashes(schema, mode):
    text = serialize_pg_schema(schema, mode)
    assert text.startswith("CREATE GRAPH TYPE")
    assert text.rstrip().endswith("}")
    # One element per type.
    body = text.split("{", 1)[1]
    assert body.count("(") >= len(schema.node_types)


@settings(max_examples=40, deadline=None)
@given(schemas())
def test_xsd_serializer_emits_well_formed_xml(schema):
    root = ET.fromstring(serialize_xsd(schema))
    complex_types = [
        el for el in root if el.tag.endswith("complexType")
    ]
    assert len(complex_types) == schema.num_types


@settings(max_examples=40, deadline=None)
@given(schemas())
def test_cypher_serializer_never_crashes(schema):
    text = serialize_cypher(schema)
    assert text.startswith("// Schema discovered by PG-HIVE")
    # Every emitted constraint line is syntactically terminated.
    for line in text.splitlines():
        if line.startswith("CREATE CONSTRAINT"):
            assert line.endswith(";")


@settings(max_examples=40, deadline=None)
@given(schemas())
def test_graphql_serializer_balanced_blocks(schema):
    text = serialize_graphql(schema)
    assert text.count("{") == text.count("}")
    assert text.count("type ") >= len(schema.node_types)
