"""Shared fixtures: the paper's Figure 1 example graph and helpers."""

from __future__ import annotations

import os

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.model import PropertyGraph
from repro.graph.store import BaseGraphStore, GraphStore


@pytest.fixture
def figure1_graph() -> PropertyGraph:
    """The running example of the paper (Figure 1).

    Persons Bob and John (labeled), Alice (unlabeled but structurally a
    Person), an Organization, two structurally-different Posts, and a
    Place, wired with KNOWS / LIKES / WORKS_AT / LOCATED_IN edges.
    """
    b = GraphBuilder("figure1")
    bob = b.node(["Person"], {"name": "Bob", "gender": "m", "bday": "19/12/1999"})
    john = b.node(["Person"], {"name": "John", "gender": "m", "bday": "01/02/1988"})
    alice = b.node([], {"name": "Alice", "gender": "f", "bday": "05/06/1995"})
    org = b.node(["Organization"], {"name": "ICS", "url": "https://ics.example"})
    post_img = b.node(["Post"], {"imgFile": "cat.png"})
    post_txt = b.node(["Post"], {"content": "hello world"})
    place = b.node(["Place"], {"name": "Heraklion"})
    b.edge(alice, john, ["KNOWS"], {"since": 2015})
    b.edge(bob, john, ["KNOWS"], {})
    b.edge(alice, post_img, ["LIKES"], {})
    b.edge(john, post_txt, ["LIKES"], {})
    b.edge(bob, org, ["WORKS_AT"], {"from": 2020})
    b.edge(alice, place, ["LOCATED_IN"], {})
    return b.build()


@pytest.fixture
def figure1_store(figure1_graph, tmp_path_factory) -> BaseGraphStore:
    """Store over the Figure 1 graph.

    CI's out-of-core leg re-runs the suite with
    ``PGHIVE_TEST_STORE=disk``, swapping in a slab-backed
    :class:`~repro.graph.diskstore.DiskGraphStore`; the backends are
    byte-identical, so every consumer keeps its expectations.
    """
    if os.environ.get("PGHIVE_TEST_STORE", "memory") == "disk":
        from repro.graph.diskstore import write_graph_to_slabs

        store = write_graph_to_slabs(
            figure1_graph, tmp_path_factory.mktemp("slabs")
        )
        yield store
        store.close()
    else:
        yield GraphStore(figure1_graph)


@pytest.fixture
def test_jobs() -> int:
    """Worker count for the dedicated parallel-discovery tests.

    CI exercises the multi-process path with ``PGHIVE_TEST_JOBS=2``; the
    variable only feeds tests that request this fixture, so the rest of
    the suite keeps its sequential expectations.
    """
    return int(os.environ.get("PGHIVE_TEST_JOBS", "2"))


@pytest.fixture
def test_transport() -> str:
    """Shard transport for the dedicated parallel-discovery tests.

    CI's fault-injection leg re-runs the parallel suite with
    ``PGHIVE_TEST_TRANSPORT=shm`` so segment lifecycle bugs surface
    under the same crash scenarios as the pickle path.
    """
    return os.environ.get("PGHIVE_TEST_TRANSPORT", "shm")


def _segment_litter() -> set[str]:
    """Every shard-transport artifact currently visible on this host."""
    import tempfile

    litter: set[str] = set()
    shm_dir = "/dev/shm"
    if os.path.isdir(shm_dir):
        litter.update(
            f"{shm_dir}/{name}"
            for name in os.listdir(shm_dir)
            if name.startswith("pghive")
        )
    tmp_root = tempfile.gettempdir()
    litter.update(
        f"{tmp_root}/{name}"
        for name in os.listdir(tmp_root)
        if name.startswith("pghive-mm-")
    )
    return litter


@pytest.fixture(autouse=True)
def assert_no_segment_leaks():
    """Fail any test that orphans a shared-memory segment or memmap dir.

    The zero-copy shard transport guarantees segment cleanup on every
    exit path -- success, raised faults, SIGKILLed workers, timeouts.
    Comparing the host-wide artifact set before and after each test
    turns any violation into that test's failure instead of silent
    ``/dev/shm`` growth.
    """
    before = _segment_litter()
    yield
    leaked = _segment_litter() - before
    assert not leaked, f"leaked shard-transport segments: {sorted(leaked)}"


@pytest.fixture
def two_type_graph() -> PropertyGraph:
    """A minimal two-type graph with clean separation, handy for units."""
    b = GraphBuilder("twotypes")
    people = [
        b.node(["Person"], {"name": f"p{i}", "age": i}) for i in range(10)
    ]
    cities = [
        b.node(["City"], {"name": f"c{i}", "population": 1000 * i})
        for i in range(5)
    ]
    for i, person in enumerate(people):
        b.edge(person, cities[i % 5], ["LIVES_IN"], {})
    return b.build()
