"""Tests for the dynamic graph stream generator."""

import pytest

from repro.core.incremental import IncrementalDiscovery
from repro.datasets.registry import dataset_spec
from repro.datasets.stream import GraphStream, StreamBatchPlan
from repro.evaluation.f1star import majority_f1
from repro.schema.evolution import SchemaEvolutionTracker


class TestGraphStream:
    def test_emits_requested_batches(self):
        stream = GraphStream(dataset_spec("POLE"), num_batches=4, seed=1)
        batches = list(stream)
        assert len(batches) == 4
        assert all(len(b.nodes) == 100 for b in batches)

    def test_population_accumulates(self):
        stream = GraphStream(
            dataset_spec("POLE"), num_batches=3,
            plan=StreamBatchPlan(nodes_per_batch=50, edges_per_batch=60),
            seed=1,
        )
        list(stream)
        assert stream.graph.num_nodes == 150
        assert stream.graph.num_edges <= 180

    def test_edges_cross_batch_boundaries(self):
        stream = GraphStream(dataset_spec("POLE"), num_batches=5, seed=1)
        batches = list(stream)
        later = batches[-1]
        batch_node_ids = {n.id for n in later.nodes}
        crossing = [
            e for e in later.edges
            if e.source not in batch_node_ids or e.target not in batch_node_ids
        ]
        assert crossing, "a realistic stream links back to older nodes"

    def test_endpoint_labels_cover_all_edge_endpoints(self):
        stream = GraphStream(dataset_spec("POLE"), num_batches=3, seed=1)
        for batch in stream:
            for edge in batch.edges:
                assert edge.source in batch.endpoint_labels
                assert edge.target in batch.endpoint_labels

    def test_drift_delays_types(self):
        drift = {"Crime": 2, "PARTY_TO": 2}
        stream = GraphStream(
            dataset_spec("POLE"), num_batches=4, drift=drift, seed=1
        )
        batches = list(stream)
        early_types = {
            stream.truth.node_types[n.id]
            for b in batches[:2] for n in b.nodes
        }
        late_types = {
            stream.truth.node_types[n.id]
            for b in batches[2:] for n in b.nodes
        }
        assert "Crime" not in early_types
        assert "Crime" in late_types

    def test_ground_truth_complete(self):
        stream = GraphStream(dataset_spec("MB6"), num_batches=3, seed=2)
        list(stream)
        assert set(stream.truth.node_types) == {
            n.id for n in stream.graph.nodes()
        }
        assert set(stream.truth.edge_types) == {
            e.id for e in stream.graph.edges()
        }

    def test_invalid_batch_count(self):
        with pytest.raises(ValueError):
            GraphStream(dataset_spec("POLE"), num_batches=0)


class TestStreamShardPlans:
    def _batch_equal(self, a, b):
        return (
            a.nodes == b.nodes
            and a.edges == b.edges
            and a.endpoint_labels == b.endpoint_labels
            and a.index == b.index
        )

    def test_shards_match_live_emission(self):
        stream = GraphStream(dataset_spec("POLE"), num_batches=4, seed=1)
        live = list(stream)
        shards = [
            stream.materialize_shard(plan)
            for plan in stream.plan_shards()
        ]
        assert all(
            self._batch_equal(a, b) for a, b in zip(live, shards)
        )

    def test_materialization_does_not_disturb_stream(self):
        stream = GraphStream(dataset_spec("POLE"), num_batches=3, seed=2)
        plans = stream.plan_shards()
        stream.materialize_shard(plans[2])
        # The live stream still emits from the start with identical data.
        replica = GraphStream(dataset_spec("POLE"), num_batches=3, seed=2)
        assert all(
            self._batch_equal(a, b)
            for a, b in zip(stream.batches(), replica.batches())
        )

    def test_out_of_order_replay(self):
        reference = list(
            GraphStream(dataset_spec("POLE"), num_batches=4, seed=3)
        )
        stream = GraphStream(dataset_spec("POLE"), num_batches=4, seed=3)
        plans = stream.plan_shards()
        for index in (3, 0, 2, 2):
            shard = stream.materialize_shard(plans[index])
            assert self._batch_equal(shard, reference[index])

    def test_shard_count_must_match_batching(self):
        stream = GraphStream(dataset_spec("POLE"), num_batches=4, seed=1)
        with pytest.raises(ValueError):
            stream.plan_shards(3)
        assert len(stream.plan_shards(4)) == 4

    def test_out_of_range_index_rejected(self):
        from repro.datasets.stream import StreamShardPlan

        stream = GraphStream(dataset_spec("POLE"), num_batches=2, seed=1)
        with pytest.raises(ValueError):
            stream.materialize_shard(StreamShardPlan(5, 2, 1))


class TestStreamDiscovery:
    def test_incremental_discovery_over_stream_with_drift(self):
        """The schema grows when drifting types appear and the tracker
        sees the change; final accuracy stays high."""
        drift = {"Vehicle": 3, "PhoneCall": 3, "CALLER": 3, "CALLED": 3}
        stream = GraphStream(
            dataset_spec("POLE"), num_batches=6, drift=drift, seed=3,
            plan=StreamBatchPlan(nodes_per_batch=120, edges_per_batch=150),
        )
        engine = IncrementalDiscovery()
        tracker = SchemaEvolutionTracker(stability_window=2)
        changes = []
        for batch in stream:
            engine.process_batch(batch.nodes, batch.edges, batch.endpoint_labels)
            step = tracker.observe(engine.schema)
            changes.append(step.changed)
        # Something structurally new arrived mid-stream (the drift).
        assert any(changes[3:]),  "drifting types must extend the schema"
        assignment = {
            member: t.name
            for t in engine.schema.node_types.values()
            for member in t.members
        }
        score = majority_f1(assignment, stream.truth.node_types)
        assert score.headline >= 0.99
        labels = {
            frozenset(t.labels)
            for t in engine.schema.node_types.values()
        }
        assert frozenset({"Vehicle"}) in labels
