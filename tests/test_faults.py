"""Tests for the deterministic fault-injection harness."""

import errno

import pytest

from repro.core.config import PGHiveConfig
from repro.core.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)


class TestFaultPlanParsing:
    def test_parse_minimal(self):
        plan = FaultPlan.parse("shard:2:raise")
        assert len(plan.specs) == 1
        spec = plan.specs[0]
        assert spec.site == "shard"
        assert spec.index == 2
        assert spec.mode == "raise"
        assert spec.times == 1
        assert spec.probability == 1.0

    def test_parse_full_and_wildcard(self):
        plan = FaultPlan.parse("shard:*:hang:3:0.5:0.25,batch:1:kill")
        first, second = plan.specs
        assert first.index is None
        assert first.times == 3
        assert first.seconds == 0.5
        assert first.probability == 0.25
        assert second.site == "batch"
        assert second.mode == "kill"

    def test_serialize_roundtrip(self):
        text = "shard:*:hang:3:0.5:0.25,batch:1:kill:2:3600:1"
        plan = FaultPlan.parse(text)
        assert FaultPlan.parse(plan.serialize()) == plan

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.parse(None)
        assert not FaultPlan.parse("")
        assert FaultPlan.parse("shard:0:raise")

    @pytest.mark.parametrize("text", [
        "shard",                  # too few fields
        "shard:0",                # still too few
        "shard:zero:raise",       # non-integer index
        "shard:0:explode",        # unknown mode
        "shard:0:raise:0",        # times < 1
        "shard:0:raise:1:-1",     # negative seconds
        "shard:0:raise:1:0:2",    # probability out of range
    ])
    def test_malformed_specs_rejected(self, text):
        with pytest.raises(ValueError):
            FaultPlan.parse(text)

    def test_matching_prefers_first_spec(self):
        plan = FaultPlan.parse("shard:1:raise,shard:*:hang")
        assert plan.matching("shard", 1).mode == "raise"
        assert plan.matching("shard", 5).mode == "hang"
        assert plan.matching("batch", 1) is None


class TestFaultInjector:
    def test_raise_fires_within_times_budget(self):
        injector = FaultInjector(FaultPlan.parse("shard:3:raise:2"))
        with pytest.raises(InjectedFault):
            injector.fire("shard", 3, attempt=0)
        with pytest.raises(InjectedFault):
            injector.fire("shard", 3, attempt=1)
        injector.fire("shard", 3, attempt=2)  # budget exhausted
        injector.fire("shard", 0, attempt=0)  # different index untouched

    def test_internal_counter_tracks_attempts(self):
        injector = FaultInjector(FaultPlan.parse("batch:1:raise"))
        with pytest.raises(InjectedFault):
            injector.fire("batch", 1)
        injector.fire("batch", 1)  # second call counts as attempt 1

    def test_kill_is_noop_outside_worker(self):
        injector = FaultInjector(FaultPlan.parse("shard:0:kill:99"))
        injector.fire("shard", 0, attempt=0, in_worker=False)

    def test_hang_sleeps_given_seconds(self):
        injector = FaultInjector(FaultPlan.parse("shard:0:hang:1:0"))
        injector.fire("shard", 0, attempt=0)  # returns immediately

    def test_probability_is_deterministic_per_seed(self):
        plan = FaultPlan.parse("shard:*:raise:1:0:0.5")

        def outcomes(seed):
            injector = FaultInjector(plan, seed=seed)
            fired = []
            for index in range(32):
                try:
                    injector.fire("shard", index, attempt=0)
                    fired.append(False)
                except InjectedFault:
                    fired.append(True)
            return fired

        assert outcomes(7) == outcomes(7)
        assert any(outcomes(7)) and not all(outcomes(7))

    def test_probability_zero_never_fires(self):
        injector = FaultInjector(FaultPlan.parse("shard:*:raise:1:0:0"))
        for index in range(8):
            injector.fire("shard", index, attempt=0)

    def test_enospc_raises_oserror_with_errno(self):
        injector = FaultInjector(FaultPlan.parse("slab-enospc:0:enospc"))
        with pytest.raises(OSError) as info:
            injector.fire("slab-enospc", 0, attempt=0)
        assert info.value.errno == errno.ENOSPC
        injector.fire("slab-enospc", 0, attempt=1)  # budget exhausted

    def test_corrupts_answers_with_attempt_budget(self):
        injector = FaultInjector(FaultPlan.parse("slab-bitflip:1:corrupt"))
        assert not injector.corrupts("slab-bitflip", 0)
        assert injector.corrupts("slab-bitflip", 1)
        assert not injector.corrupts("slab-bitflip", 1)  # budget spent

    def test_corrupt_and_fire_never_cross_count(self):
        # A plan mixing both kinds at one site: fire() must only see the
        # raise spec and corrupts() only the corrupt spec, with separate
        # attempt counters.
        plan = FaultPlan.parse(
            "slab-bitflip:0:corrupt,slab-bitflip:0:raise"
        )
        injector = FaultInjector(plan)
        assert plan.matching("slab-bitflip", 0).mode == "raise"
        assert plan.matching(
            "slab-bitflip", 0, corrupting=True
        ).mode == "corrupt"
        assert injector.corrupts("slab-bitflip", 0)
        with pytest.raises(InjectedFault):
            injector.fire("slab-bitflip", 0)
        assert not injector.corrupts("slab-bitflip", 0)

    def test_fire_ignores_corrupt_specs(self):
        injector = FaultInjector(FaultPlan.parse("slab-torn-write:*:corrupt"))
        injector.fire("slab-torn-write", 0, attempt=0)  # no-op

    def test_from_spec_none_without_plan(self, monkeypatch):
        monkeypatch.delenv("PGHIVE_FAULTS", raising=False)
        assert FaultInjector.from_spec(None) is None
        assert FaultInjector.from_spec("") is None

    def test_from_spec_env_fallback(self, monkeypatch):
        monkeypatch.setenv("PGHIVE_FAULTS", "shard:1:raise")
        monkeypatch.setenv("PGHIVE_FAULTS_SEED", "13")
        injector = FaultInjector.from_spec(None)
        assert injector is not None
        assert injector.seed == 13
        explicit = FaultInjector.from_spec("batch:0:raise")
        assert explicit.plan.specs[0].site == "batch"

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("shard", 0, "explode")
        with pytest.raises(ValueError):
            FaultSpec("shard", 0, "raise", times=0)


class TestConfigIntegration:
    def test_config_validates_fault_plan_eagerly(self):
        PGHiveConfig(faults="shard:0:raise")  # valid
        with pytest.raises(ValueError):
            PGHiveConfig(faults="shard:0:explode")

    def test_config_corrupt_slab_policy_validation(self):
        PGHiveConfig(corrupt_slab_policy="raise")
        PGHiveConfig(corrupt_slab_policy="skip")
        with pytest.raises(ValueError):
            PGHiveConfig(corrupt_slab_policy="ignore")

    def test_config_recovery_knob_validation(self):
        with pytest.raises(ValueError):
            PGHiveConfig(shard_timeout=0)
        with pytest.raises(ValueError):
            PGHiveConfig(shard_retries=-1)
        with pytest.raises(ValueError):
            PGHiveConfig(shard_retry_backoff=-0.1)
        with pytest.raises(ValueError):
            PGHiveConfig(checkpoint_every=0)
