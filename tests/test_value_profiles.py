"""Tests for value profiling: enumerations and bounded ranges."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PGHiveConfig
from repro.core.pipeline import PGHive
from repro.core.value_profiles import (
    PropertyPartial,
    ValueProfile,
    profile_values,
)
from repro.graph.builder import GraphBuilder
from repro.graph.store import GraphStore
from repro.schema.model import DataType


class TestEnumDetection:
    def test_small_closed_string_set_is_enum(self):
        values = ["open", "closed", "open", "pending"] * 25
        profile = profile_values(values)
        assert profile.is_enum
        assert profile.enum_values == ("closed", "open", "pending")

    def test_all_distinct_values_not_enum(self):
        values = [f"id-{i}" for i in range(10)]
        profile = profile_values(values)
        assert not profile.is_enum

    def test_booleans_are_enums(self):
        profile = profile_values([True, False] * 20)
        assert profile.is_enum
        assert set(profile.enum_values) == {True, False}

    def test_enum_cap_respected(self):
        values = [f"v{i % 30}" for i in range(300)]
        assert not profile_values(values, enum_cap=12).is_enum
        assert profile_values(values, enum_cap=40).is_enum

    def test_floats_never_enum(self):
        profile = profile_values([1.5, 2.5] * 50)
        assert not profile.is_enum


class TestRanges:
    def test_integer_range(self):
        profile = profile_values(list(range(18, 66)) * 3)
        assert profile.minimum == 18
        assert profile.maximum == 65

    def test_float_range(self):
        profile = profile_values([0.5, 9.25, 3.0])
        assert profile.minimum == 0.5
        assert profile.maximum == 9.25

    def test_date_range(self):
        profile = profile_values(["2020-05-01", "2019-01-31", "2021-12-01"])
        assert profile.minimum == "2019-01-31"
        assert profile.maximum == "2021-12-01"

    def test_string_has_no_range(self):
        profile = profile_values([f"word{i}" for i in range(20)])
        assert profile.minimum is None and profile.maximum is None

    def test_render(self):
        assert "range 18..65" in profile_values(
            list(range(18, 66)) * 3
        ).render()
        assert "enum {a, b}" == profile_values(["a", "b"] * 10).render()
        assert ValueProfile().render() == ""

    def test_empty_values(self):
        profile = profile_values([])
        assert not profile.is_enum
        assert profile.observation_count == 0

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_range_bounds_are_sound(self, values):
        """Every observed value lies inside the inferred range."""
        profile = profile_values(values)
        assert profile.minimum <= min(values)
        assert profile.maximum >= max(values)
        assert profile.observation_count == len(values)


_VALUE = st.one_of(
    st.integers(-50, 50),
    st.floats(-50, 50, allow_nan=False),
    st.booleans(),
    st.sampled_from(["open", "closed", "2024-01-15", "id-7", ""]),
    st.none(),
)


def _sharded_partial(values, chunks, rng):
    """Observe ``values`` split into ``chunks`` partials, merge shuffled."""
    partials = [PropertyPartial() for _ in range(chunks)]
    for value in values:
        rng.choice(partials).observe(value)
    rng.shuffle(partials)
    merged = partials[0]
    for other in partials[1:]:
        merged.merge(other)
    return merged


class TestPropertyPartial:
    """The mergeable partial must reconstruct a serial scan exactly."""

    @given(
        st.lists(_VALUE, min_size=1, max_size=40),
        st.integers(1, 5),
        st.integers(0, 1000),
    )
    @settings(max_examples=80, deadline=None)
    def test_sharded_partial_matches_serial_profile(
        self, values, chunks, seed
    ):
        """Any sharding and merge order yields the serial profile."""
        rng = random.Random(seed)
        merged = _sharded_partial(values, chunks, rng)
        assert merged.to_profile() == profile_values(values)

    @given(
        st.lists(_VALUE, min_size=1, max_size=40),
        st.integers(1, 5),
        st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_journal_round_trip_preserves_state(self, values, chunks, seed):
        rng = random.Random(seed)
        merged = _sharded_partial(values, chunks, rng)
        rebuilt = PropertyPartial.from_dict(merged.to_dict())
        assert rebuilt.to_profile() == merged.to_profile()
        assert rebuilt.datatype is merged.datatype
        assert rebuilt.observations == merged.observations

    def test_int_float_tie_is_order_independent(self):
        """1 and 1.0 compare equal; the canonical key must pick the same
        bound regardless of observation order."""
        forward, backward = PropertyPartial(), PropertyPartial()
        for value in (1, 1.0, 2.5):
            forward.observe(value)
        for value in (2.5, 1.0, 1):
            backward.observe(value)
        assert forward.to_profile() == backward.to_profile()
        assert forward.to_profile() == profile_values([1, 1.0, 2.5])
        assert forward.to_profile() == profile_values([2.5, 1.0, 1])

    def test_observe_matches_single_value_profile(self):
        partial = PropertyPartial()
        partial.observe("open")
        assert partial.datatype is DataType.STRING
        assert partial.observations == 1


class TestPipelineIntegration:
    def test_profiles_attached_when_enabled(self):
        b = GraphBuilder()
        for i in range(60):
            b.node(["Account"], {
                "status": ["open", "closed", "frozen"][i % 3],
                "balance_age_days": i % 20,
            })
        config = PGHiveConfig(infer_value_profiles=True)
        result = PGHive(config).discover(GraphStore(b.build()))
        account = result.schema.node_types["Account"]
        status = account.properties["status"]
        assert status.profile is not None and status.profile.is_enum
        age = account.properties["balance_age_days"]
        assert age.profile.minimum == 0 and age.profile.maximum == 19

    def test_profiles_render_in_pg_schema(self):
        from repro.schema.serialize_pgschema import serialize_pg_schema

        b = GraphBuilder()
        for i in range(40):
            b.node(["T"], {"state": ["on", "off"][i % 2]})
        config = PGHiveConfig(infer_value_profiles=True)
        result = PGHive(config).discover(GraphStore(b.build()))
        text = serialize_pg_schema(result.schema, "STRICT")
        assert "enum {off, on}" in text

    def test_profiles_absent_by_default(self, figure1_store):
        result = PGHive().discover(figure1_store)
        person = result.schema.node_types["Person"]
        assert person.properties["name"].profile is None
