"""Fixture: a payload type smuggling parent state, a lambda handed to a
pool, and a worker function that takes the parent store as a parameter.

Never imported -- only parsed -- so the dangling names are fine.
"""

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass


@dataclass
class ShardPlan:
    index: int
    store: GraphStore  # noqa: F821 -- deliberately unresolvable


def run(pool: ProcessPoolExecutor) -> None:
    pool.submit(lambda: None)


def shard_worker(store: GraphStore, index: int) -> int:  # noqa: F821
    """Worker: fixture worker smuggling parent state through a param."""
    return index
