"""Fixture: bare except, mutable default argument, unannotated def."""


def swallow() -> int:
    try:
        return 1
    except:  # noqa: E722 -- the planted violation
        return 0


def accumulate(item: int, bucket: list = []) -> list:
    bucket.append(item)
    return bucket


def untyped(value):
    return value
