"""Fixture CLI: exposes ``--seed`` and nothing else."""

import argparse


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="fixture")
    parser.add_argument("--seed", type=int, default=7)
    return parser
