"""Fixture CLI: exposes ``--seed`` plus an undocumented subcommand."""

import argparse


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="fixture")
    parser.add_argument("--seed", type=int, default=7)
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("ghost-command", help="not mentioned in docs/API.md")
    return parser
