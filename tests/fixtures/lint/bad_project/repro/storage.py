"""Planted ``slab-lifecycle`` violations: handles with no owner."""

from __future__ import annotations

import mmap
from multiprocessing import shared_memory


def leak_mapping(fileno: int) -> bytes:
    mapped = mmap.mmap(fileno, 0, access=mmap.ACCESS_READ)  # leaked
    return bytes(mapped[:16])


def leak_segment(name: str) -> int:
    segment = shared_memory.SharedMemory(name=name)  # leaked
    return segment.size


class SegmentHolder:
    """Keeps a segment forever: the class defines no ``close()``."""

    def __init__(self, name: str) -> None:
        self.segment = shared_memory.SharedMemory(name=name)


def context_managed(fileno: int) -> bytes:
    with mmap.mmap(fileno, 0, access=mmap.ACCESS_READ) as mapped:
        return bytes(mapped[:16])


def closed_in_scope(name: str) -> int:
    segment = shared_memory.SharedMemory(name=name)
    size = int(segment.size)
    segment.close()
    return size


def returned_to_caller(name: str) -> shared_memory.SharedMemory:
    return shared_memory.SharedMemory(name=name)
