"""Fixture package root.

``__all__`` plants two init-exports violations: ``ghost_export`` is
never bound, and ``undocumented_thing`` is bound but absent from the
fixture ``docs/API.md``.
"""

documented_thing = 1
undocumented_thing = 2

__all__ = ["documented_thing", "ghost_export", "undocumented_thing"]
