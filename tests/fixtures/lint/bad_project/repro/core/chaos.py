"""Fixture: one of each unseeded-RNG shape."""

import random

import numpy as np


def draw() -> float:
    rng = random.Random()
    return rng.random()


def global_draw() -> float:
    return random.random()


def np_draw() -> float:
    gen = np.random.default_rng()
    return float(gen.random())
