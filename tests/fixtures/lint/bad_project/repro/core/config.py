"""Fixture config: ``secret_knob`` has no CLI flag, alias, or allowlist
entry, so ``config-cli-surface`` must flag it.  The ``os.environ`` read
is legal here -- ``core/config.py`` is a sanctioned env-read module --
and ``PGHIVE_DOCUMENTED`` appears in the fixture docs.
"""

import os
from dataclasses import dataclass


@dataclass
class PGHiveConfig:
    seed: int = 7
    secret_knob: float = 0.5

    @staticmethod
    def from_environment() -> "PGHiveConfig":
        return PGHiveConfig(seed=int(os.environ.get("PGHIVE_DOCUMENTED", "7")))
