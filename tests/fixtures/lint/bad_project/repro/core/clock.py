"""Fixture: wall-clock read, env read outside the sanctioned modules,
and a reference to an environment variable the docs never mention."""

import os
import time


def stamp() -> float:
    return time.time()


def env_mode() -> str:
    return os.environ.get("PGHIVE_UNDOCUMENTED", "off")
