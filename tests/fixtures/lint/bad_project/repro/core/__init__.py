"""Fixture core subpackage."""
