"""Fixture: hash-order leak, id()-keyed dict, load-bearing assert."""


def leak_order(labels: frozenset) -> list:
    pool = set(labels)
    return list(pool)


def id_key(element: object, table: dict) -> None:
    table[id(element)] = element


def checked(count: int) -> int:
    assert count >= 0
    return count
