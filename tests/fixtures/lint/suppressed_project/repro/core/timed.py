"""Fixture: a justified suppression, an unexplained one, a stale one."""

import time


def justified() -> float:
    return time.time()  # pghive-lint: disable=wall-clock -- operator log only


def unexplained() -> float:
    # pghive-lint: disable=wall-clock
    return time.time()


def stale(count: int) -> int:  # pghive-lint: disable=id-keyed-dict -- nothing here
    return count
