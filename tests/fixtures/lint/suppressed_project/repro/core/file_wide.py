"""Fixture: a file-wide suppression covering every def below."""
# pghive-lint: disable-file=missing-annotations -- pretend generated code


def one(value):
    return value


def two(value):
    return value
