"""Fixture core subpackage."""
