"""Fixture package exercising suppression directives."""
