"""Fixture pool workers: each violation is hidden behind call hops.

Never imported -- only parsed.  The module mirrors the real package's
root names (``_discover_one`` & co.) so the interprocedural rules
resolve them by suffix, and plants:

* a wall-clock read two hops below ``_discover_one``;
* an environment read inside a *recursive* helper (the fixpoint must
  propagate the effect through the cycle without diverging);
* unseeded RNG resolved through a function-valued *class attribute*;
* a ``getattr``-computed call that must degrade conservatively to a
  dynamic-call finding, not silently resolve;
* a module-global write two hops below ``_bucket_edges_task``.
"""

from __future__ import annotations

import os
import random
import time
from typing import Any

#: Module-level mutable state a worker helper writes into (the race).
_HITS: dict[str, int] = {}


def _stamp() -> float:
    return time.time()  # plant: wall-clock, two hops from the root


def _audit(label: str) -> float:
    del label
    return _stamp()


def _discover_one(payload: Any) -> float:
    """Worker root: reaches the clock via _audit -> _stamp."""
    del payload
    return _audit("discover")


def _walk(depth: int) -> int:
    """Recursive helper: env read must survive the cycle."""
    if depth <= 0:
        return int(os.environ.get("PGHIVE_FIXTURE_DEPTH", "0"))
    return _walk(depth - 1)


def _discover_plan_chunk(payload: Any) -> int:
    """Worker root: reaches an env read through recursion."""
    del payload
    return _walk(3)


def _rng_kernel() -> float:
    return random.random()  # plant: unseeded RNG


class Kernel:
    """Dispatches to its kernel through a class-attribute binding."""

    impl = _rng_kernel


def _discover_columns_chunk(payload: Any) -> float:
    """Worker root: class-attribute dispatch plus a dynamic call."""
    kernel = Kernel()
    value = kernel.impl()
    op = getattr(payload, payload.name)  # non-literal: unresolvable
    op()
    return value


def _record(key: str) -> None:
    _HITS[key] = _HITS.get(key, 0) + 1  # plant: module-global write


def _bucket_edges_task(payload: Any) -> None:
    """Worker root: writes module state two hops down."""
    del payload
    _record("bucket")


def combine_shard_results(results: list[Any]) -> Any:
    """Merge root that is genuinely pure: must produce no findings."""
    merged = results[0]
    for item in results[1:]:
        merged = merged + item
    return merged
