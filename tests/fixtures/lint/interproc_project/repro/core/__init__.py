"""Fixture core package."""
