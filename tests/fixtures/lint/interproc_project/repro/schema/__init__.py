"""Fixture schema package."""
