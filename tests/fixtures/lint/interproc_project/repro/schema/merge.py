"""Fixture merge fold: impure two hops down, and mutates the config.

Never imported -- only parsed.  ``merge_schemas`` reaches a filesystem
write via ``_audit_merge -> _note``; ``merge_schema_tree`` mutates its
``config`` parameter, which the purity rule flags wherever it happens
in the reachable set.
"""

from __future__ import annotations

from typing import Any


def _note(line: str) -> None:
    with open("/tmp/merge-fixture.log", "a", encoding="utf-8") as fh:
        fh.write(line)  # plant: fs write inside the fold


def _audit_merge(schema: Any) -> None:
    del schema
    _note("merged\n")


def _merge_stats(left: Any, right: Any) -> Any:
    del right
    return left


def merge_schemas(left: Any, right: Any) -> Any:
    """Merge root: reaches the fs write via _audit_merge -> _note."""
    _audit_merge(left)
    return _merge_stats(left, right)


def merge_schema_tree(schemas: list[Any], config: Any) -> Any:
    """Merge root: mutates the shared config (the purity breach)."""
    config.threshold = 0.5  # plant: config-parameter mutation
    merged = schemas[0]
    for item in schemas[1:]:
        merged = merge_schemas(merged, item)
    return merged
