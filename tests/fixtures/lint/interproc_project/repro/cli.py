"""Fixture CLI: a deep raise escapes ``main`` past a wrong handler.

Never imported -- only parsed.  ``RuntimeError`` from ``_run`` escapes
(the handler only catches ``ValueError``); the ``SystemExit`` raise is
on the sanctioned escape list and must *not* be flagged.
"""

from __future__ import annotations


def _run(argv: list[str] | None) -> int:
    del argv
    raise RuntimeError("fixture failure")  # plant: escapes main


def main(argv: list[str] | None = None) -> int:
    try:
        return _run(argv)
    except ValueError:
        return 1
    raise SystemExit(2)  # sanctioned escape: never a finding
