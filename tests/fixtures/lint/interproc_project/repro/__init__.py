"""Fixture package for the whole-program (interprocedural) rules."""
