"""Tests for datatype inference (section 4.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.datatypes import (
    infer_datatype,
    infer_datatype_sampled,
    infer_value_type,
    is_value_compatible,
    join_types,
)
from repro.schema.model import DataType


class TestValueTypes:
    @pytest.mark.parametrize("value,expected", [
        (5, DataType.INTEGER),
        (-3, DataType.INTEGER),
        ("42", DataType.INTEGER),
        ("+7", DataType.INTEGER),
        (3.5, DataType.FLOAT),
        ("3.5", DataType.FLOAT),
        ("1e-3", DataType.FLOAT),
        (True, DataType.BOOLEAN),
        (False, DataType.BOOLEAN),
        ("true", DataType.BOOLEAN),
        ("FALSE", DataType.BOOLEAN),
        ("2024-01-31", DataType.DATE),
        ("19/12/1999", DataType.DATE),
        ("2024-01-31T10:30:00Z", DataType.TIMESTAMP),
        ("2024-01-31 10:30", DataType.TIMESTAMP),
        ("hello", DataType.STRING),
        ("2024-13-99-junk", DataType.STRING),
        (None, DataType.STRING),
    ])
    def test_individual_values(self, value, expected):
        assert infer_value_type(value) is expected

    def test_bool_checked_before_int(self):
        """bool is an int subclass; it must classify as BOOLEAN."""
        assert infer_value_type(True) is DataType.BOOLEAN

    def test_integer_valued_float_is_integer(self):
        """Paper: v in R \\ Z is float; 2.0 is in Z."""
        assert infer_value_type(2.0) is DataType.INTEGER


class TestCalendarValidation:
    """Shape-matching alone typed ``99/99/9999`` as DATE; the component
    ranges must be validated after the regex match."""

    @pytest.mark.parametrize("text", [
        "99/99/9999",
        "2024-13-45",
        "2024-00-10",   # month 0
        "2024-01-00",   # day 0
        "2024-01-32",   # day past any month
        "2024-04-31",   # April has 30 days
        "31/04/2024",   # DD/MM form of the same
        "00/01/2024",   # day 0, DMY
        "2023-02-29",   # not a leap year
        "1900-02-29",   # century non-leap year
    ])
    def test_invalid_dates_fall_back_to_string(self, text):
        assert infer_value_type(text) is DataType.STRING

    @pytest.mark.parametrize("text", [
        "2024-02-29",   # leap year
        "29/02/2024",   # DD/MM leap day
        "2000-02-29",   # divisible-by-400 leap year
        "2024-12-31",
        "01/01/1970",
        "19/12/1999",   # day > 12 disambiguates DD/MM
    ])
    def test_valid_dates_still_infer_date(self, text):
        assert infer_value_type(text) is DataType.DATE

    @pytest.mark.parametrize("text", [
        "2024-02-30T25:99",       # invalid date AND time components
        "2024-01-31T24:00",       # hour 24
        "2024-01-31T10:60",       # minute 60
        "2024-01-31T10:30:61",    # second 61
        "2024-13-01T10:00",       # invalid month under valid time
        "2023-02-29 10:30",       # non-leap date part
        "2024-01-31T10:30+25:00", # offset hour out of range
        "2024-01-31T10:30+05:61", # offset minute out of range
    ])
    def test_invalid_timestamps_fall_back_to_string(self, text):
        assert infer_value_type(text) is DataType.STRING

    @pytest.mark.parametrize("text", [
        "2024-02-29T23:59:59",
        "2024-02-29T23:59:59.999+05:30",
        "2024-01-31 10:30",
        "2024-12-31T00:00Z",
    ])
    def test_valid_timestamps_still_infer_timestamp(self, text):
        assert infer_value_type(text) is DataType.TIMESTAMP

    def test_invalid_dates_join_to_string_in_columns(self):
        values = ["2024-01-15", "99/99/9999"]
        assert infer_datatype(values) is DataType.STRING


class TestJoin:
    def test_int_float_joins_to_float(self):
        assert join_types(DataType.INTEGER, DataType.FLOAT) is DataType.FLOAT

    def test_date_timestamp_joins_to_timestamp(self):
        assert join_types(DataType.DATE, DataType.TIMESTAMP) is DataType.TIMESTAMP

    def test_incomparable_join_to_string(self):
        assert join_types(DataType.BOOLEAN, DataType.DATE) is DataType.STRING
        assert join_types(DataType.INTEGER, DataType.DATE) is DataType.STRING

    def test_unknown_is_identity(self):
        assert join_types(DataType.UNKNOWN, DataType.DATE) is DataType.DATE
        assert join_types(DataType.DATE, DataType.UNKNOWN) is DataType.DATE

    def test_join_idempotent(self):
        for datatype in DataType:
            if datatype is DataType.UNKNOWN:
                continue
            assert join_types(datatype, datatype) is datatype

    @given(st.sampled_from(list(DataType)), st.sampled_from(list(DataType)))
    def test_join_commutative(self, a, b):
        assert join_types(a, b) is join_types(b, a)


class TestInferDatatype:
    def test_homogeneous_ints(self):
        assert infer_datatype([1, 2, 3]) is DataType.INTEGER

    def test_mixed_numeric_generalizes(self):
        assert infer_datatype([1, 2.5]) is DataType.FLOAT

    def test_outlier_string_forces_string(self):
        assert infer_datatype([1, 2, "oops"]) is DataType.STRING

    def test_empty_is_unknown(self):
        assert infer_datatype([]) is DataType.UNKNOWN

    def test_dates(self):
        assert infer_datatype(["2020-01-01", "1999-12-19"]) is DataType.DATE

    @given(st.lists(st.one_of(
        st.integers(), st.floats(allow_nan=False, allow_infinity=False),
        st.booleans(), st.text(max_size=12),
    ), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_inferred_type_compatible_with_every_value(self, values):
        """Soundness guarantee of section 4.7: all values conform."""
        inferred = infer_datatype(values)
        assert all(is_value_compatible(v, inferred) for v in values)


class TestSampledInference:
    def test_small_data_equals_full_scan(self):
        values = [1, 2, 3, "x"]
        assert infer_datatype_sampled(values, minimum=10) is infer_datatype(values)

    def test_sampling_can_miss_outliers(self):
        # 10,000 ints with a single trailing string outlier; a 100-value
        # sample will usually miss it.
        values = list(range(10_000)) + ["outlier"]
        sampled = infer_datatype_sampled(
            values, fraction=0.01, minimum=100, seed=3
        )
        full = infer_datatype(values)
        assert full is DataType.STRING
        assert sampled is DataType.INTEGER

    def test_empty(self):
        assert infer_datatype_sampled([]) is DataType.UNKNOWN


class TestCompatibility:
    def test_string_accepts_anything(self):
        assert is_value_compatible(object(), DataType.STRING)

    def test_int_value_compatible_with_float(self):
        assert is_value_compatible(3, DataType.FLOAT)

    def test_float_not_compatible_with_int(self):
        assert not is_value_compatible(3.7, DataType.INTEGER)

    def test_date_compatible_with_timestamp(self):
        assert is_value_compatible("2020-01-01", DataType.TIMESTAMP)


class TestListValues:
    def test_list_value_type(self):
        from repro.schema.model import DataType

        assert infer_value_type(["a", "b"]) is DataType.LIST
        assert infer_value_type(()) is DataType.LIST

    def test_homogeneous_lists(self):
        from repro.schema.model import DataType

        assert infer_datatype([["GR"], ["FR", "DE"]]) is DataType.LIST

    def test_list_mixed_with_scalar_generalizes(self):
        from repro.schema.model import DataType

        assert infer_datatype([["GR"], "plain"]) is DataType.STRING

    def test_list_compatibility(self):
        from repro.schema.model import DataType

        assert is_value_compatible(["x"], DataType.LIST)
        assert not is_value_compatible("x", DataType.LIST)

    def test_list_discovered_end_to_end(self):
        from repro.core.pipeline import PGHive
        from repro.graph.builder import GraphBuilder
        from repro.graph.store import GraphStore
        from repro.schema.model import DataType

        b = GraphBuilder()
        for i in range(5):
            b.node(["Officer"], {"country_codes": ["GR", "FR"][: 1 + i % 2]})
        result = PGHive().discover(GraphStore(b.build()))
        officer = result.schema.node_types["Officer"]
        assert officer.properties["country_codes"].datatype is DataType.LIST
