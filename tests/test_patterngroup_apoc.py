"""Tests for the PatternGroup baseline and the APOC JSONL importer."""

import json

import pytest

from repro.baselines import PatternGroup
from repro.datasets import get_dataset, inject_noise
from repro.evaluation.f1star import majority_f1
from repro.graph.io import load_graph_apoc_jsonl
from repro.graph.store import GraphStore


class TestPatternGroup:
    def test_perfect_on_clean_data(self, figure1_store):
        result = PatternGroup().discover(figure1_store)
        truth = {i: "n" for i in range(7)}  # placement sanity only
        assert set(result.node_assignment) == set(truth)

    def test_one_type_per_pattern(self, figure1_store):
        result = PatternGroup().discover(figure1_store)
        # Figure 1 has 6 node patterns and 6 edge patterns (Example 2).
        assert result.num_node_types == 6
        assert result.num_edge_types == 6

    def test_runs_on_unlabeled_data(self):
        dataset = inject_noise(
            get_dataset("POLE", scale=0.2, seed=1), 0.0, 0.0, seed=2
        )
        result = PatternGroup().discover(GraphStore(dataset.graph))
        score = majority_f1(result.node_assignment, dataset.truth.node_types)
        assert score.headline > 0.8

    def test_noise_explodes_type_count(self):
        clean = get_dataset("POLE", scale=0.4, seed=1)
        noisy = inject_noise(clean, 0.4, 1.0, seed=2)
        clean_types = PatternGroup().discover(
            GraphStore(clean.graph)
        ).num_node_types
        noisy_types = PatternGroup().discover(
            GraphStore(noisy.graph)
        ).num_node_types
        assert noisy_types > 3 * clean_types


class TestApocImport:
    def _write_dump(self, tmp_path):
        lines = [
            {"type": "node", "id": "100", "labels": ["Person"],
             "properties": {"name": "Ada", "born": 1815}},
            {"type": "node", "id": "101", "labels": ["Person"],
             "properties": {"name": "Charles"}},
            {"type": "node", "id": "200", "labels": ["Machine"],
             "properties": {"name": "Analytical Engine"}},
            {"type": "relationship", "id": "9000", "label": "KNOWS",
             "start": {"id": "100", "labels": ["Person"]},
             "end": {"id": "101", "labels": ["Person"]},
             "properties": {"since": 1833}},
            {"type": "relationship", "id": "9001", "label": "DESIGNED",
             "start": {"id": "101", "labels": ["Person"]},
             "end": {"id": "200", "labels": ["Machine"]},
             "properties": {}},
        ]
        path = tmp_path / "dump.jsonl"
        path.write_text(
            "\n".join(json.dumps(line) for line in lines), encoding="utf-8"
        )
        return path

    def test_import_structure(self, tmp_path):
        graph = load_graph_apoc_jsonl(self._write_dump(tmp_path))
        assert graph.num_nodes == 3
        assert graph.num_edges == 2
        assert graph.node(0).labels == frozenset({"Person"})
        assert graph.node(0).properties["born"] == 1815

    def test_relationships_remapped(self, tmp_path):
        graph = load_graph_apoc_jsonl(self._write_dump(tmp_path))
        knows = next(e for e in graph.edges() if "KNOWS" in e.labels)
        source, target = graph.endpoints(knows.id)
        assert source.properties["name"] == "Ada"
        assert target.properties["name"] == "Charles"

    def test_discovery_over_import(self, tmp_path):
        from repro.core.pipeline import PGHive

        graph = load_graph_apoc_jsonl(self._write_dump(tmp_path))
        result = PGHive().discover(GraphStore(graph))
        assert {"Person", "Machine"} <= set(result.schema.node_types)

    def test_unknown_record_type(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "hypergraph"}', encoding="utf-8")
        with pytest.raises(ValueError, match="unknown APOC record"):
            load_graph_apoc_jsonl(path)
