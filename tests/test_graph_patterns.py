"""Tests for pattern extraction (Definitions 3.5/3.6) and statistics."""

from repro.graph.patterns import (
    EdgePattern,
    NodePattern,
    edge_pattern_of,
    extract_patterns,
    node_pattern_of,
)
from repro.graph.stats import compute_statistics


class TestPatterns:
    def test_figure1_node_patterns(self, figure1_graph):
        node_patterns, _ = extract_patterns(figure1_graph)
        # Paper's Example 2 lists six node patterns for Figure 1.
        assert len(node_patterns) == 6
        assert NodePattern(
            frozenset({"Person"}), frozenset({"name", "gender", "bday"})
        ) in node_patterns

    def test_figure1_edge_patterns(self, figure1_graph):
        _, edge_patterns = extract_patterns(figure1_graph)
        # Example 2 lists six edge patterns (LIKES appears twice with
        # different source label sets: labeled vs unlabeled Person).
        assert len(edge_patterns) == 6
        knows_with_since = EdgePattern(
            labels=frozenset({"KNOWS"}),
            property_keys=frozenset({"since"}),
            source_labels=frozenset(),
            target_labels=frozenset({"Person"}),
        )
        assert knows_with_since in edge_patterns

    def test_pattern_counts_sum_to_elements(self, figure1_graph):
        node_patterns, edge_patterns = extract_patterns(figure1_graph)
        assert sum(node_patterns.values()) == figure1_graph.num_nodes
        assert sum(edge_patterns.values()) == figure1_graph.num_edges

    def test_node_pattern_of(self, figure1_graph):
        pattern = node_pattern_of(figure1_graph.node(0))
        assert pattern.labels == frozenset({"Person"})
        assert pattern.is_labeled()

    def test_edge_pattern_of_uses_endpoints(self, figure1_graph):
        edge = figure1_graph.edge(4)  # WORKS_AT Bob -> Org
        pattern = edge_pattern_of(edge, figure1_graph)
        assert pattern.labels == frozenset({"WORKS_AT"})
        assert pattern.source_labels == frozenset({"Person"})
        assert pattern.target_labels == frozenset({"Organization"})


class TestStatistics:
    def test_with_ground_truth(self, figure1_graph):
        truth_nodes = {i: "T" for i in range(7)}
        truth_edges = {i: ("A" if i < 3 else "B") for i in range(6)}
        stats = compute_statistics(figure1_graph, truth_nodes, truth_edges)
        assert stats.node_types == 1
        assert stats.edge_types == 2
        assert stats.nodes == 7 and stats.edges == 6

    def test_without_ground_truth_counts_label_sets(self, figure1_graph):
        stats = compute_statistics(figure1_graph)
        # Label sets: Person, {}, Organization, Post, Place -> 5
        assert stats.node_types == 5
        assert stats.node_labels == 4  # Person, Organization, Post, Place

    def test_as_row_width(self, figure1_graph):
        stats = compute_statistics(figure1_graph)
        assert len(stats.as_row()) == 9
