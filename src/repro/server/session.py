"""Named incremental discovery sessions and their manager.

Each session owns one :class:`~repro.core.incremental.IncrementalDiscovery`
engine and processes its posted batches strictly in POST order on the
shared :class:`~repro.server.pool.SessionWorkerPool`.  Concurrency
contract:

* **Per-session FIFO** -- a session schedules at most one drain task at a
  time and re-enqueues itself after each batch, so batches of one
  session never run concurrently or out of order, while batches of
  *different* sessions overlap freely on the pool.
* **No torn schema reads** -- the running schema is only mutated (merge +
  endpoint resolution) under the session's schema lock, and every read
  path (schema snapshot, bulk validate, session info) deep-copies the
  schema under the same lock before serializing or validating outside
  it.  Readers therefore always observe a schema that was the complete
  result of some batch prefix.
* **Backpressure** -- at most ``server_queue_depth`` batches may be
  queued-or-running per session; excess posts fail with 503 instead of
  buffering unboundedly.

With ``checkpoint_dir`` set, a session journals its engine state (plus
the accumulated endpoint-label memory and partial post-processing
stats) after every ``checkpoint_every`` batches under
``<checkpoint_dir>/sessions/<name>/``, and the manager restores every
journaled session on daemon start -- a crashed daemon resumes with the
exact schemas it last checkpointed.
"""

from __future__ import annotations

import copy
import enum
import threading
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque

from repro.core.columns import edge_columns, node_columns
from repro.core.config import PGHiveConfig
from repro.core.incremental import IncrementalDiscovery
from repro.core.postprocess import (
    apply_partial_stats,
    attach_partial_stats,
    clear_partial_stats,
    schema_stats_from_dict,
    schema_stats_to_dict,
    sharded_postprocess_enabled,
)
from repro.core.result import BatchReport
from repro.core.type_extraction import resolve_edge_endpoints
from repro.graph.model import Edge, Node
from repro.schema.merge import merge_schemas
from repro.schema.model import SchemaGraph
from repro.schema.persist import load_checkpoint
from repro.schema.validate import ValidationReport, validate_batch
from repro.server.models import (
    ApiError,
    BatchRequest,
    SessionInfo,
    TicketInfo,
    ValidateRequest,
    validate_session_name,
)
from repro.server.pool import SessionWorkerPool


class TicketStatus(enum.Enum):
    """Lifecycle of an asynchronous batch ingestion."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class Ticket:
    """Tracks one posted batch through the ingestion pipeline."""

    id: str
    session: str
    status: TicketStatus = TicketStatus.QUEUED
    batch_index: int | None = None
    error: str | None = None
    report: dict[str, Any] | None = field(default=None)

    def info(self) -> TicketInfo:
        """The wire view of this ticket."""
        return TicketInfo(
            id=self.id,
            session=self.session,
            status=self.status.value,
            batch_index=self.batch_index,
            error=self.error,
            report=self.report,
        )


#: PGHiveConfig features a daemon session cannot honor, with the reason.
#: Rejected at session creation rather than surprising at batch time.
UNSUPPORTED_SESSION_FEATURES = {
    "memoize_patterns": "mutates schema types outside the merge step",
    "infer_datatypes_by_sampling": "needs a global store-backed pass",
    "exact_cardinality_bounds": "needs a global store-backed pass",
}


def check_session_config(config: PGHiveConfig) -> None:
    """Reject config features the session processing model cannot honor."""
    for feature, reason in sorted(UNSUPPORTED_SESSION_FEATURES.items()):
        if getattr(config, feature):
            raise ApiError(
                400,
                "unsupported-config",
                f"daemon sessions do not support {feature}: {reason}",
            )
    if config.jobs > 1:
        raise ApiError(
            400,
            "unsupported-config",
            "daemon sessions process batches on the shared server pool; "
            "per-session process pools (jobs > 1) ride the one-shot "
            "'pghive discover' path",
        )


class DiscoverySession:
    """One named incremental discovery stream inside the daemon."""

    def __init__(
        self,
        name: str,
        config: PGHiveConfig,
        pool: SessionWorkerPool,
        checkpoint_dir: Path | None,
    ) -> None:
        self.name = name
        self.config = config
        self._pool = pool
        self._checkpoint_dir = checkpoint_dir
        # _state_lock guards the work queue / scheduling flags;
        # _schema_lock guards the running schema and label memory.  A
        # drain task takes them one at a time, never nested.
        self._state_lock = threading.Lock()
        self._schema_lock = threading.Lock()
        self._work: Deque[tuple[Ticket, BatchRequest]] = deque()
        self._scheduled = False
        self._in_flight = 0
        self._node_labels: dict[int, frozenset[str]] = {}
        self._nodes_seen = 0
        self._edges_seen = 0
        self.engine = IncrementalDiscovery(config, name=name)
        if checkpoint_dir is not None and IncrementalDiscovery.has_checkpoint(
            checkpoint_dir
        ):
            self._restore(checkpoint_dir)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def enqueue(self, ticket: Ticket, request: BatchRequest) -> None:
        """Enqueue a batch; raises 503 when the session queue is full."""
        with self._state_lock:
            if (
                len(self._work) + self._in_flight
                >= self.config.server_queue_depth
            ):
                raise ApiError(
                    503,
                    "queue-full",
                    f"session {self.name!r} has "
                    f"{self.config.server_queue_depth} batches queued or "
                    "running; retry after tickets complete",
                )
            self._work.append((ticket, request))
            if not self._scheduled:
                self._scheduled = True
                self._pool.dispatch(self._drain)

    def _drain(self) -> None:
        """Process exactly one queued batch, then reschedule if needed."""
        with self._state_lock:
            if not self._work:
                self._scheduled = False
                return
            ticket, request = self._work.popleft()
            self._in_flight += 1
        ticket.status = TicketStatus.RUNNING
        try:
            report = self._process(request)
        except Exception as exc:
            ticket.error = f"{type(exc).__name__}: {exc}"
            ticket.status = TicketStatus.FAILED
        else:
            ticket.batch_index = report.index
            ticket.report = report.to_dict()
            ticket.status = TicketStatus.DONE
        finally:
            with self._state_lock:
                self._in_flight -= 1
                if self._work:
                    self._pool.dispatch(self._drain)
                else:
                    self._scheduled = False

    def _process(self, request: BatchRequest) -> BatchReport:
        """Run one batch through discovery and merge it into the schema.

        The expensive pipeline (columnize, embed, LSH, extract -- the
        exact payload :mod:`repro.core.parallel` ships to its workers)
        runs *outside* the schema lock; only the monotone merge and the
        label-memory update hold it, so readers block for the merge
        alone, never a discovery.
        """
        nodes, edges = request.nodes, request.edges
        with self._schema_lock:
            endpoint_labels = dict(self._node_labels)
        endpoint_labels.update({node.id: node.labels for node in nodes})
        if request.endpoint_labels:
            endpoint_labels.update(request.endpoint_labels)
        ncols = node_columns(nodes)
        ecols = edge_columns(edges, endpoint_labels)
        batch_schema, report = self.engine.discover_batch_columns(
            ncols, ecols
        )
        if sharded_postprocess_enabled(self.config):
            attach_partial_stats(
                batch_schema,
                nodes,
                edges,
                track_values=self.config.infer_value_profiles,
            )
        with self._schema_lock:
            merge_schemas(
                self.engine.schema,
                batch_schema,
                self.config.jaccard_threshold,
                self.config.endpoint_jaccard_threshold,
            )
            resolve_edge_endpoints(self.engine.schema)
            self.engine.reports.append(report)
            for node in nodes:
                self._node_labels[node.id] = node.labels
            self._nodes_seen += len(nodes)
            self._edges_seen += len(edges)
            if (
                self._checkpoint_dir is not None
                and len(self.engine.reports) % self.config.checkpoint_every
                == 0
            ):
                self._save_checkpoint()
        return report

    # ------------------------------------------------------------------
    # Reads (snapshot semantics -- no torn reads)
    # ------------------------------------------------------------------
    def snapshot_schema(self) -> SchemaGraph:
        """A consistent, post-processed copy of the running schema.

        Deep-copied under the schema lock, so the copy always reflects a
        complete batch prefix.  Partial post-processing stats are applied
        to the *copy* (statuses, datatypes, cardinalities); the live
        schema keeps its foldable stats for future merges.
        """
        with self._schema_lock:
            schema = copy.deepcopy(self.engine.schema)
        if not apply_partial_stats(schema, self.config):
            clear_partial_stats(schema)
        return schema

    def validate(self, request: ValidateRequest) -> ValidationReport:
        """Bulk admission check of a batch against the current schema.

        Endpoint labels resolve from the request's own nodes first, then
        the explicit ``endpoint_labels`` map, then the session's
        accumulated label memory (endpoints ingested in earlier batches).
        """
        schema = self.snapshot_schema()
        with self._schema_lock:
            endpoint_labels = dict(self._node_labels)
        endpoint_labels.update(
            {node.id: node.labels for node in request.nodes}
        )
        if request.endpoint_labels:
            endpoint_labels.update(request.endpoint_labels)
        return validate_batch(
            request.nodes,
            request.edges,
            schema,
            request.mode,
            endpoint_labels,
        )

    def info(self) -> SessionInfo:
        """Current session counters (consistent but non-blocking)."""
        with self._state_lock:
            pending = len(self._work) + self._in_flight
        with self._schema_lock:
            return SessionInfo(
                name=self.name,
                batches=len(self.engine.reports),
                pending=pending,
                nodes_seen=self._nodes_seen,
                edges_seen=self._edges_seen,
                node_types=len(self.engine.schema.node_types),
                edge_types=len(self.engine.schema.edge_types),
            )

    def pending(self) -> int:
        """Batches queued or running right now."""
        with self._state_lock:
            return len(self._work) + self._in_flight

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def _save_checkpoint(self) -> None:
        """Journal engine + session state (caller holds the schema lock)."""
        if self._checkpoint_dir is None:
            return
        context = {
            "session": self.name,
            "nodes_seen": self._nodes_seen,
            "edges_seen": self._edges_seen,
            "node_labels": [
                [node_id, sorted(labels)]
                for node_id, labels in sorted(self._node_labels.items())
            ],
            "stats": schema_stats_to_dict(self.engine.schema),
        }
        self.engine.save_checkpoint(self._checkpoint_dir, context)

    def _restore(self, directory: Path) -> None:
        """Rebuild session state from a previous daemon's checkpoint."""
        self.engine = IncrementalDiscovery.from_checkpoint(
            directory, self.config, expected_context={"session": self.name}
        )
        _, manifest = load_checkpoint(
            IncrementalDiscovery.checkpoint_path(directory)
        )
        context = manifest.get("context", {})
        schema_stats_from_dict(self.engine.schema, context.get("stats", {}))
        self._node_labels = {
            int(node_id): frozenset(labels)
            for node_id, labels in context.get("node_labels", [])
        }
        self._nodes_seen = int(context.get("nodes_seen", 0))
        self._edges_seen = int(context.get("edges_seen", 0))


class SessionManager:
    """Registry of live sessions plus the shared ingestion pool."""

    def __init__(self, config: PGHiveConfig | None = None) -> None:
        self.config = config or PGHiveConfig()
        check_session_config(self.config)
        self._pool = SessionWorkerPool(self.config.server_workers)
        self._lock = threading.Lock()
        self._sessions: dict[str, DiscoverySession] = {}
        self._tickets: dict[str, Ticket] = {}
        self._ticket_counter = 0
        if self.config.checkpoint_dir is not None:
            self._restore_sessions(Path(self.config.checkpoint_dir))

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def _session_checkpoint_dir(self, name: str) -> Path | None:
        if self.config.checkpoint_dir is None:
            return None
        return Path(self.config.checkpoint_dir) / "sessions" / name

    def _restore_sessions(self, checkpoint_root: Path) -> None:
        """Recreate every session journaled under ``checkpoint_dir``."""
        sessions_dir = checkpoint_root / "sessions"
        if not sessions_dir.is_dir():
            return
        for entry in sorted(sessions_dir.iterdir()):
            if not entry.is_dir() or not IncrementalDiscovery.has_checkpoint(
                entry
            ):
                continue
            name = validate_session_name(entry.name)
            self._sessions[name] = DiscoverySession(
                name, self.config, self._pool, entry
            )

    def create(self, name: str) -> DiscoverySession:
        """Create a named session; 409 when the name is taken."""
        validate_session_name(name)
        with self._lock:
            if name in self._sessions:
                raise ApiError(
                    409, "session-exists", f"session {name!r} already exists"
                )
            session = DiscoverySession(
                name,
                self.config,
                self._pool,
                self._session_checkpoint_dir(name),
            )
            self._sessions[name] = session
            return session

    def get_session(self, name: str) -> DiscoverySession:
        """Look up a session; 404 when unknown."""
        with self._lock:
            session = self._sessions.get(name)
        if session is None:
            raise ApiError(
                404, "no-such-session", f"no session named {name!r}"
            )
        return session

    def delete(self, name: str) -> None:
        """Drop a session from the registry; 409 while work is pending.

        The checkpoint directory (if any) is left on disk -- deletion
        removes the live session, not its durable history.
        """
        session = self.get_session(name)
        if session.pending():
            raise ApiError(
                409,
                "session-busy",
                f"session {name!r} has batches in flight; "
                "wait for its tickets to finish",
            )
        with self._lock:
            self._sessions.pop(name, None)

    def list_sessions(self) -> list[DiscoverySession]:
        """All live sessions, sorted by name."""
        with self._lock:
            return [
                self._sessions[name] for name in sorted(self._sessions)
            ]

    # ------------------------------------------------------------------
    # Tickets
    # ------------------------------------------------------------------
    def submit_batch(self, name: str, request: BatchRequest) -> Ticket:
        """Enqueue a batch on ``name``'s session; returns the ticket."""
        session = self.get_session(name)
        with self._lock:
            self._ticket_counter += 1
            ticket = Ticket(f"t-{self._ticket_counter}", session=name)
            self._tickets[ticket.id] = ticket
        try:
            session.enqueue(ticket, request)
        except ApiError:
            with self._lock:
                self._tickets.pop(ticket.id, None)
            raise
        return ticket

    def ticket(self, ticket_id: str) -> Ticket:
        """Look up a ticket; 404 when unknown."""
        with self._lock:
            ticket = self._tickets.get(ticket_id)
        if ticket is None:
            raise ApiError(
                404, "no-such-ticket", f"no ticket named {ticket_id!r}"
            )
        return ticket

    def shutdown(self) -> None:
        """Stop the worker pool (queued work is drained first)."""
        self._pool.shutdown()
