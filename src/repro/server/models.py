"""Wire models of the discovery service.

Request and response payloads are plain dataclasses with explicit
``from_dict`` / ``to_dict`` conversions (the repo carries no pydantic):
parsing is total -- any malformed field raises :class:`ApiError` with a
``400`` status and a message naming the offending field, never a bare
``KeyError``/``TypeError`` escaping into the HTTP layer.

Graph payloads use the JSONL element shape the rest of the repo reads
(``{"id": int, "labels": [...], "properties": {...}}`` for nodes, plus
``source``/``target`` for edges).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.graph.model import Edge, Node
from repro.schema.validate import ValidationMode

#: Characters allowed in session names -- they become checkpoint
#: directory names, so path separators and dots are rejected outright.
SESSION_NAME_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-"
)

#: Schema response formats understood by ``GET .../schema``.
SCHEMA_FORMATS = ("json", "pgschema", "graphql")


class ApiError(RuntimeError):
    """A structured HTTP-mappable service error.

    Subclasses ``RuntimeError`` so the CLI's existing top-level handler
    (``pghive`` exception surface) needs no new leak-proofing for
    server-originated failures.
    """

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    def to_dict(self) -> dict[str, Any]:
        """The error response body."""
        return {"error": self.code, "message": self.message}


def validate_session_name(name: str) -> str:
    """Return ``name`` or raise 400 when it is unusable as a session id."""
    if not name or len(name) > 64 or not set(name) <= SESSION_NAME_CHARS:
        raise ApiError(
            400,
            "bad-session-name",
            "session names are 1-64 characters from [A-Za-z0-9_-], "
            f"got {name!r}",
        )
    return name


def _require(body: Mapping[str, Any], key: str, kind: type, where: str) -> Any:
    value = body.get(key)
    if not isinstance(value, kind) or isinstance(value, bool):
        raise ApiError(
            400,
            "bad-request",
            f"{where}: field {key!r} must be {kind.__name__}, "
            f"got {type(value).__name__}",
        )
    return value


def _parse_labels(record: Mapping[str, Any], where: str) -> frozenset[str]:
    labels = record.get("labels", [])
    if not isinstance(labels, list) or not all(
        isinstance(label, str) for label in labels
    ):
        raise ApiError(
            400, "bad-request", f"{where}: 'labels' must be a list of strings"
        )
    return frozenset(labels)


def _parse_properties(
    record: Mapping[str, Any], where: str
) -> dict[str, Any]:
    properties = record.get("properties", {})
    if not isinstance(properties, dict) or not all(
        isinstance(key, str) for key in properties
    ):
        raise ApiError(
            400,
            "bad-request",
            f"{where}: 'properties' must be an object with string keys",
        )
    return properties


def parse_nodes(records: Any, where: str = "nodes") -> list[Node]:
    """Parse a JSON array of node records into model nodes."""
    if not isinstance(records, list):
        raise ApiError(400, "bad-request", f"{where!r} must be an array")
    nodes: list[Node] = []
    for position, record in enumerate(records):
        label = f"{where}[{position}]"
        if not isinstance(record, dict):
            raise ApiError(400, "bad-request", f"{label} must be an object")
        nodes.append(Node(
            id=int(_require(record, "id", int, label)),
            labels=_parse_labels(record, label),
            properties=_parse_properties(record, label),
        ))
    return nodes


def parse_edges(records: Any, where: str = "edges") -> list[Edge]:
    """Parse a JSON array of edge records into model edges."""
    if not isinstance(records, list):
        raise ApiError(400, "bad-request", f"{where!r} must be an array")
    edges: list[Edge] = []
    for position, record in enumerate(records):
        label = f"{where}[{position}]"
        if not isinstance(record, dict):
            raise ApiError(400, "bad-request", f"{label} must be an object")
        edges.append(Edge(
            id=int(_require(record, "id", int, label)),
            source=int(_require(record, "source", int, label)),
            target=int(_require(record, "target", int, label)),
            labels=_parse_labels(record, label),
            properties=_parse_properties(record, label),
        ))
    return edges


def parse_endpoint_labels(
    value: Any, where: str = "endpoint_labels"
) -> dict[int, frozenset[str]] | None:
    """Parse the optional endpoint-label map (JSON keys arrive as strings)."""
    if value is None:
        return None
    if not isinstance(value, dict):
        raise ApiError(
            400, "bad-request", f"{where!r} must map node ids to label lists"
        )
    parsed: dict[int, frozenset[str]] = {}
    for raw_id, labels in value.items():
        try:
            node_id = int(raw_id)
        except (TypeError, ValueError):
            raise ApiError(
                400, "bad-request",
                f"{where}: key {raw_id!r} is not an integer node id",
            ) from None
        if not isinstance(labels, list) or not all(
            isinstance(label, str) for label in labels
        ):
            raise ApiError(
                400, "bad-request",
                f"{where}[{raw_id}] must be a list of strings",
            )
        parsed[node_id] = frozenset(labels)
    return parsed


def parse_mode(value: Any) -> ValidationMode:
    """Parse the optional ``mode`` field (default STRICT)."""
    if value is None:
        return ValidationMode.STRICT
    if isinstance(value, str):
        try:
            return ValidationMode(value.upper())
        except ValueError:
            pass
    raise ApiError(
        400, "bad-request", f"'mode' must be STRICT or LOOSE, got {value!r}"
    )


@dataclass(frozen=True, slots=True)
class BatchRequest:
    """``POST /sessions/{name}/batches`` body."""

    nodes: list[Node]
    edges: list[Edge]
    endpoint_labels: dict[int, frozenset[str]] | None = None

    @classmethod
    def from_dict(cls, body: Mapping[str, Any]) -> "BatchRequest":
        """Parse and validate a batch ingestion request."""
        return cls(
            nodes=parse_nodes(body.get("nodes", [])),
            edges=parse_edges(body.get("edges", [])),
            endpoint_labels=parse_endpoint_labels(
                body.get("endpoint_labels")
            ),
        )


@dataclass(frozen=True, slots=True)
class ValidateRequest:
    """``POST /sessions/{name}/validate`` body."""

    nodes: list[Node]
    edges: list[Edge]
    mode: ValidationMode = ValidationMode.STRICT
    endpoint_labels: dict[int, frozenset[str]] | None = None

    @classmethod
    def from_dict(cls, body: Mapping[str, Any]) -> "ValidateRequest":
        """Parse and validate a bulk admission-check request."""
        return cls(
            nodes=parse_nodes(body.get("nodes", [])),
            edges=parse_edges(body.get("edges", [])),
            mode=parse_mode(body.get("mode")),
            endpoint_labels=parse_endpoint_labels(
                body.get("endpoint_labels")
            ),
        )


@dataclass(frozen=True, slots=True)
class CreateSessionRequest:
    """``POST /sessions`` body."""

    name: str

    @classmethod
    def from_dict(cls, body: Mapping[str, Any]) -> "CreateSessionRequest":
        """Parse and validate a session creation request."""
        name = body.get("name")
        if not isinstance(name, str):
            raise ApiError(400, "bad-request", "'name' must be a string")
        return cls(name=validate_session_name(name))


@dataclass(frozen=True, slots=True)
class SessionInfo:
    """``GET /sessions/{name}`` response body."""

    name: str
    batches: int
    pending: int
    nodes_seen: int
    edges_seen: int
    node_types: int
    edge_types: int

    def to_dict(self) -> dict[str, Any]:
        """JSON response form."""
        return {
            "name": self.name,
            "batches": self.batches,
            "pending": self.pending,
            "nodes_seen": self.nodes_seen,
            "edges_seen": self.edges_seen,
            "node_types": self.node_types,
            "edge_types": self.edge_types,
        }


@dataclass(frozen=True, slots=True)
class TicketInfo:
    """``GET /tickets/{id}`` response body."""

    id: str
    session: str
    status: str
    batch_index: int | None = None
    error: str | None = None
    report: dict[str, Any] | None = field(default=None)

    def to_dict(self) -> dict[str, Any]:
        """JSON response form; unset optional fields are omitted."""
        record: dict[str, Any] = {
            "id": self.id,
            "session": self.session,
            "status": self.status,
        }
        if self.batch_index is not None:
            record["batch_index"] = self.batch_index
        if self.error is not None:
            record["error"] = self.error
        if self.report is not None:
            record["report"] = self.report
        return record
