"""HTTP surface of the discovery daemon.

Stdlib-only (``http.server.ThreadingHTTPServer``): one handler thread
per connection parses the request, and all actual work happens in
:class:`SchemaService` / the session layer -- the handler owns no
state, so concurrent clients contend only on the per-session locks.

Routes (see ``docs/API.md`` for payloads):

=======  ===================================  ==========================
Method   Path                                 Action
=======  ===================================  ==========================
GET      ``/health``                          liveness + session count
POST     ``/sessions``                        create a named session
GET      ``/sessions``                        list sessions
GET      ``/sessions/{name}``                 session counters
DELETE   ``/sessions/{name}``                 drop a session
POST     ``/sessions/{name}/batches``         enqueue a batch (ticket)
GET      ``/tickets/{id}``                    ticket status
GET      ``/sessions/{name}/schema``          live schema snapshot
POST     ``/sessions/{name}/validate``        bulk admission check
POST     ``/shutdown``                        stop the daemon
=======  ===================================  ==========================
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, ClassVar
from urllib.parse import parse_qs, urlsplit

from repro.core.config import PGHiveConfig
from repro.schema.persist import schema_to_dict
from repro.schema.serialize_graphql import serialize_graphql
from repro.schema.serialize_pgschema import serialize_pg_schema
from repro.server.models import (
    SCHEMA_FORMATS,
    ApiError,
    BatchRequest,
    CreateSessionRequest,
    ValidateRequest,
    parse_mode,
)
from repro.server.session import SessionManager

#: Request bodies beyond this are rejected with 413 before parsing.
MAX_BODY_BYTES = 64 << 20


class SchemaService:
    """Routing and request semantics, independent of the HTTP plumbing.

    ``handle`` maps ``(method, path, query, body)`` to
    ``(status, response dict)``; every failure is an :class:`ApiError`,
    which the transport layer renders uniformly.  Keeping this free of
    ``http.server`` types makes the full surface drivable from tests
    without sockets.
    """

    def __init__(self, config: PGHiveConfig | None = None) -> None:
        self.sessions = SessionManager(config)
        #: Set by :class:`SchemaServer`; invoked by ``POST /shutdown``.
        self.on_shutdown: Callable[[], None] | None = None

    _ROUTES: ClassVar[list[tuple[str, re.Pattern[str], str]]] = [
        ("GET", re.compile(r"^/health$"), "health"),
        ("POST", re.compile(r"^/sessions$"), "create_session"),
        ("GET", re.compile(r"^/sessions$"), "list_sessions"),
        ("GET", re.compile(r"^/sessions/([^/]+)$"), "session_info"),
        ("DELETE", re.compile(r"^/sessions/([^/]+)$"), "delete_session"),
        ("POST", re.compile(r"^/sessions/([^/]+)/batches$"), "post_batch"),
        ("GET", re.compile(r"^/sessions/([^/]+)/schema$"), "get_schema"),
        ("POST", re.compile(r"^/sessions/([^/]+)/validate$"), "validate"),
        ("GET", re.compile(r"^/tickets/([^/]+)$"), "ticket_status"),
        ("POST", re.compile(r"^/shutdown$"), "shutdown"),
    ]

    def handle(
        self,
        method: str,
        path: str,
        query: dict[str, list[str]],
        body: dict[str, Any],
    ) -> tuple[int, dict[str, Any]]:
        """Dispatch one request; raises :class:`ApiError` on failure."""
        allowed: list[str] = []
        for route_method, pattern, endpoint in self._ROUTES:
            match = pattern.match(path)
            if match is None:
                continue
            if route_method != method:
                allowed.append(route_method)
                continue
            handler: Callable[..., tuple[int, dict[str, Any]]] = getattr(
                self, f"_do_{endpoint}"
            )
            return handler(*match.groups(), query=query, body=body)
        if allowed:
            raise ApiError(
                405,
                "method-not-allowed",
                f"{path} supports {sorted(set(allowed))}, not {method}",
            )
        raise ApiError(404, "no-such-route", f"no route for {path}")

    # -- endpoints ------------------------------------------------------
    def _do_health(
        self, query: dict[str, list[str]], body: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        return 200, {
            "status": "ok",
            "sessions": len(self.sessions.list_sessions()),
        }

    def _do_create_session(
        self, query: dict[str, list[str]], body: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        request = CreateSessionRequest.from_dict(body)
        session = self.sessions.create(request.name)
        return 201, session.info().to_dict()

    def _do_list_sessions(
        self, query: dict[str, list[str]], body: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        return 200, {
            "sessions": [
                session.info().to_dict()
                for session in self.sessions.list_sessions()
            ]
        }

    def _do_session_info(
        self, name: str, query: dict[str, list[str]], body: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        return 200, self.sessions.get_session(name).info().to_dict()

    def _do_delete_session(
        self, name: str, query: dict[str, list[str]], body: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        self.sessions.delete(name)
        return 200, {"deleted": name}

    def _do_post_batch(
        self, name: str, query: dict[str, list[str]], body: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        request = BatchRequest.from_dict(body)
        ticket = self.sessions.submit_batch(name, request)
        return 202, ticket.info().to_dict()

    def _do_ticket_status(
        self, ticket_id: str, query: dict[str, list[str]],
        body: dict[str, Any],
    ) -> tuple[int, dict[str, Any]]:
        return 200, self.sessions.ticket(ticket_id).info().to_dict()

    def _do_get_schema(
        self, name: str, query: dict[str, list[str]], body: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        fmt = query.get("format", ["pgschema"])[0]
        if fmt not in SCHEMA_FORMATS:
            raise ApiError(
                400,
                "bad-format",
                f"format must be one of {sorted(SCHEMA_FORMATS)}, "
                f"got {fmt!r}",
            )
        mode = parse_mode(query.get("mode", [None])[0])
        schema = self.sessions.get_session(name).snapshot_schema()
        serialized: str | dict[str, Any]
        if fmt == "json":
            serialized = schema_to_dict(schema, include_members=False)
        elif fmt == "graphql":
            serialized = serialize_graphql(schema)
        else:
            serialized = serialize_pg_schema(schema, mode=mode.value)
        return 200, {"session": name, "format": fmt, "schema": serialized}

    def _do_validate(
        self, name: str, query: dict[str, list[str]], body: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        request = ValidateRequest.from_dict(body)
        report = self.sessions.get_session(name).validate(request)
        return 200, {"session": name, "report": report.to_dict()}

    def _do_shutdown(
        self, query: dict[str, list[str]], body: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        hook = self.on_shutdown
        if hook is None:
            raise ApiError(
                409, "not-stoppable", "this service has no shutdown hook"
            )
        # Stop from a helper thread: BaseServer.shutdown() blocks until
        # serve_forever() returns, and this handler is *inside* a
        # serve_forever-spawned thread -- the response must flush first.
        threading.Thread(
            target=hook, name="pghive-serve-shutdown", daemon=True
        ).start()
        return 200, {"stopping": True}


class _Handler(BaseHTTPRequestHandler):
    """Thin JSON transport around :class:`SchemaService`."""

    service: ClassVar[SchemaService]
    server_version = "pghive-serve"
    protocol_version = "HTTP/1.1"

    # The default implementation stamps wall-clock lines onto stderr for
    # every request; the daemon stays quiet (and deterministic).
    def log_message(self, format: str, *args: Any) -> None:
        return

    def _read_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise ApiError(
                413, "body-too-large",
                f"request body exceeds {MAX_BODY_BYTES} bytes",
            )
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ApiError(
                400, "bad-json", f"request body is not JSON: {exc}"
            ) from None
        if not isinstance(body, dict):
            raise ApiError(
                400, "bad-json", "request body must be a JSON object"
            )
        return body

    def _respond(self, status: int, payload: dict[str, Any]) -> None:
        data = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _dispatch(self, method: str) -> None:
        try:
            split = urlsplit(self.path)
            body = self._read_body()
            status, payload = self.service.handle(
                method, split.path, parse_qs(split.query), body
            )
        except ApiError as exc:
            self._respond(exc.status, exc.to_dict())
        except Exception as exc:
            self._respond(
                500,
                {"error": "internal", "message": f"{type(exc).__name__}: {exc}"},
            )
        else:
            self._respond(status, payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server contract
        self._dispatch("DELETE")


class SchemaServer:
    """The daemon: a threading HTTP server bound to a :class:`SchemaService`.

    ``server_port=0`` binds an ephemeral port (tests); :attr:`port`
    reports the bound one either way.  Use as a context manager or call
    :meth:`shutdown` explicitly -- it stops the listener *and* the shared
    session worker pool.
    """

    def __init__(self, config: PGHiveConfig | None = None) -> None:
        self.config = config or PGHiveConfig()
        self.service = SchemaService(self.config)

        bound_service = self.service

        class BoundHandler(_Handler):
            service = bound_service

        self._httpd = ThreadingHTTPServer(
            (self.config.server_host, self.config.server_port), BoundHandler
        )
        self._httpd.daemon_threads = True
        self.service.on_shutdown = self.shutdown
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        """The bound address."""
        return str(self._httpd.server_address[0])

    @property
    def port(self) -> int:
        """The bound TCP port (resolved even for ``server_port=0``)."""
        return int(self._httpd.server_address[1])

    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (blocking)."""
        self._httpd.serve_forever()

    def start_background(self) -> "SchemaServer":
        """Serve from a daemon thread; returns self (test harness)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="pghive-serve", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop accepting, close the socket, stop the worker pool."""
        self._httpd.shutdown()
        self._httpd.server_close()
        self.service.sessions.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "SchemaServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
