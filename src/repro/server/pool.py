"""Shared ingestion worker pool of the discovery daemon.

One bounded set of daemon threads drains batch work for *every*
session, mirroring how :mod:`repro.core.parallel` multiplexes shard
payloads onto one process pool: the unit of work a thread executes is a
session's columnized-batch discovery (the same
``discover_batch_columns`` payload the parallel driver ships to pool
workers), and fairness comes from sessions re-enqueueing themselves
after each batch rather than draining their whole backlog at once.

Threads (not processes) carry the daemon's ingestion because sessions
are long-lived and mutate shared running schemas under locks; the
process pool's fork-inherited snapshot model cannot host that.  The
heavy per-batch work drops the GIL inside numpy kernels, so ``N``
workers still overlap distinct sessions' batches.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable


class SessionWorkerPool:
    """Fixed-size thread pool draining session work items in FIFO order."""

    def __init__(self, workers: int) -> None:
        self._tasks: "queue.Queue[Callable[[], None] | None]" = queue.Queue()
        self._threads = [
            threading.Thread(
                target=self._run,
                name=f"pghive-serve-worker-{index}",
                daemon=True,
            )
            for index in range(max(workers, 1))
        ]
        for thread in self._threads:
            thread.start()

    def dispatch(self, task: Callable[[], None]) -> None:
        """Enqueue one work item; returns immediately.

        Named ``dispatch`` rather than ``submit`` deliberately: the
        ``worker-closure`` lint rule polices ``submit()`` call sites for
        *process*-pool pickle safety, and this thread pool runs in-process
        callables (bound drain methods) by design.
        """
        self._tasks.put(task)

    def _run(self) -> None:
        while True:
            task = self._tasks.get()
            if task is None:
                return
            try:
                task()
            except Exception:  # pragma: no cover - tasks catch their own
                # A task that leaks is a bug in the session layer (every
                # session drain wraps its batch in a try/except that
                # fails the ticket); the pool still must survive it or
                # one poisoned batch would silently halve the pool.
                continue

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the workers after the queued work drains."""
        for _ in self._threads:
            self._tasks.put(None)
        for thread in self._threads:
            thread.join(timeout=timeout)
