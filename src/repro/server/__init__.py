"""Discovery-as-a-service: the schema API daemon.

Long-lived HTTP service exposing named incremental discovery sessions:
asynchronous batch ingestion (ticketed), live merged-schema snapshots in
three formats, and a columnar bulk admission validator -- the
"validation processes" the paper motivates constraint inference with,
made reachable over the wire.  See ``docs/API.md`` for the endpoint
reference and ``DESIGN.md`` ("Service architecture") for the
concurrency model.
"""

from repro.server.app import SchemaServer, SchemaService
from repro.server.models import ApiError
from repro.server.session import SessionManager

__all__ = [
    "ApiError",
    "SchemaServer",
    "SchemaService",
    "SessionManager",
]
