"""Dataset registry: lookup and generation by name."""

from __future__ import annotations

from repro.datasets.iyp import IYP
from repro.datasets.spec import DatasetSpec
from repro.datasets.specs import CORD19, FIB25, HETIO, ICIJ, LDBC, MB6, POLE
from repro.datasets.synthetic import GeneratedDataset, generate

_SPECS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (POLE, MB6, HETIO, FIB25, ICIJ, CORD19, LDBC, IYP)
}


def list_datasets() -> list[str]:
    """Dataset names in the paper's Table 2 order."""
    return list(_SPECS)


def dataset_spec(name: str) -> DatasetSpec:
    """The spec for a dataset name (case-insensitive; '.' optional)."""
    key = name.upper().replace("HETIO", "HET.IO")
    spec = _SPECS.get(key) or _SPECS.get(name.upper())
    if spec is None:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(_SPECS)}"
        )
    return spec


def get_dataset(
    name: str, scale: float = 1.0, seed: int = 0
) -> GeneratedDataset:
    """Generate a dataset by name at the given scale."""
    return generate(dataset_spec(name), scale=scale, seed=seed)
