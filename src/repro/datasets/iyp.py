"""Programmatic spec for IYP, the Internet Yellow Pages knowledge graph.

The real IYP is the paper's hardest dataset: 86 node types expressed with
only 33 distinct labels (types are label *sets*, several of which share
labels and are distinguished only by structure), 25 edge types, and over a
thousand node patterns.  Writing 86 literal type specs would be noise, so
this module derives them systematically:

* 22 base categories (AS, Prefix, IP, DomainName, ...), each with its own
  property profile;
* 11 modifier labels (GeoLocated, BGPCollector, ...) attached to base
  categories to form multi-label refinements -- each (base, modifier
  subset) combination is its own ground-truth type, as in the real IYP
  where e.g. an AS tagged by different data sources is modeled separately;
* a handful of types deliberately *share* a label set while differing in
  properties, reproducing the IYP trait the paper highlights (and that
  caps PG-HIVE's accuracy there).

The result is validated to hit exactly 86 node types and 33 labels.
"""

from __future__ import annotations

from repro.datasets.spec import (
    DatasetSpec,
    EdgeTypeSpec,
    LabelVariant,
    NodeTypeSpec,
    PropertyGen,
)

_BASE_CATEGORIES: tuple[tuple[str, tuple[PropertyGen, ...], float], ...] = (
    ("AS", (
        PropertyGen("asn", "int"),
        PropertyGen("name", "string", presence=0.9),
        PropertyGen("country", "code", presence=0.7),
    ), 4.0),
    ("Prefix", (
        PropertyGen("prefix", "code"),
        PropertyGen("af", "int"),
        PropertyGen("visibility", "float_with_ints", presence=0.5),
    ), 4.0),
    ("IP", (
        PropertyGen("ip", "code"),
        PropertyGen("af", "int"),
    ), 3.0),
    ("DomainName", (
        PropertyGen("name", "url"),
        PropertyGen("rank", "int", presence=0.4, dirty_rate=0.04),
    ), 3.0),
    ("HostName", (
        PropertyGen("name", "url"),
    ), 2.0),
    ("Country", (
        PropertyGen("country_code", "code"),
        PropertyGen("name", "string"),
    ), 0.5),
    ("IXP", (
        PropertyGen("name", "string"),
        PropertyGen("ix_id", "int", presence=0.8),
    ), 1.0),
    ("Organization", (
        PropertyGen("name", "string"),
        PropertyGen("website", "url", presence=0.4),
    ), 1.5),
    ("Facility", (
        PropertyGen("name", "string"),
        PropertyGen("city", "string_with_ints", presence=0.7),
    ), 1.0),
    ("Tag", (
        PropertyGen("label", "string"),
    ), 1.0),
    ("Ranking", (
        PropertyGen("name", "string"),
        PropertyGen("rank", "int", dirty_rate=0.05),
    ), 1.0),
    ("AtlasProbe", (
        PropertyGen("id", "int"),
        PropertyGen("status", "string", presence=0.8),
    ), 1.0),
    ("AtlasMeasurement", (
        PropertyGen("id", "int"),
        PropertyGen("interval", "int", presence=0.6),
    ), 1.0),
    ("BGPCollector", (
        PropertyGen("name", "string"),
        PropertyGen("project", "string"),
    ), 0.5),
    ("PeeringLAN", (
        PropertyGen("prefix", "code"),
    ), 0.5),
    ("Name", (
        PropertyGen("name", "string"),
    ), 1.0),
    ("URL", (
        PropertyGen("url", "url"),
        PropertyGen("status_code", "int", presence=0.5, dirty_rate=0.06),
    ), 1.0),
    ("Estimate", (
        PropertyGen("name", "string"),
        PropertyGen("value", "float_with_ints", presence=0.8, dirty_rate=0.03),
    ), 0.5),
    ("OpaqueID", (
        PropertyGen("id", "code"),
    ), 0.5),
    ("CaidaIXID", (
        PropertyGen("id", "int"),
    ), 0.5),
    ("Point", (
        PropertyGen("position", "string"),
    ), 0.5),
    ("AuthoritativeNameServer", (
        PropertyGen("name", "url"),
        PropertyGen("ttl", "int", presence=0.6),
    ), 0.5),
)

# Modifier labels attached to base categories.  Each (base, modifiers)
# combination listed here is a distinct ground-truth type.
_MODIFIERS: dict[str, tuple[tuple[str, ...], ...]] = {
    "AS": (
        ("GeoLocated",), ("Transit",), ("Stub",), ("Anycast",), ("Sibling",),
        ("GeoLocated", "Transit"), ("GeoLocated", "Stub"),
        ("Anycast", "GeoLocated"), ("Sibling", "Transit"),
        ("Sibling", "Stub"), ("Anycast", "Transit"),
        ("GeoLocated", "Sibling"),
    ),
    "Prefix": (
        ("GeoLocated",), ("RPKI",), ("Bogon",), ("Anycast",), ("Covering",),
        ("GeoLocated", "RPKI"), ("Anycast", "RPKI"), ("Bogon", "GeoLocated"),
        ("Covering", "RPKI"), ("Anycast", "GeoLocated"),
        ("Covering", "GeoLocated"),
    ),
    "IP": (
        ("GeoLocated",), ("Anycast",), ("Resolver",),
        ("Anycast", "GeoLocated"), ("GeoLocated", "Resolver"),
        ("Anycast", "Resolver"), ("Anycast", "GeoLocated", "Resolver"),
    ),
    "DomainName": (
        ("Apex",), ("Popular",), ("Apex", "Popular"), ("Popular", "Regional"),
        ("Apex", "Regional"), ("Apex", "Popular", "Regional"),
    ),
    "HostName": (("Resolver",), ("Popular",), ("Popular", "Resolver")),
    "IXP": (("GeoLocated",), ("Regional",)),
    "Organization": (("Sibling",), ("Regional",), ("Regional", "Sibling")),
    "Facility": (("GeoLocated",), ("Regional",), ("GeoLocated", "Regional")),
    "AtlasProbe": (("Anchor",), ("Anchor", "GeoLocated")),
    "AtlasMeasurement": (("Anchor",),),
    "BGPCollector": (("Regional",),),
    "Tag": (("Popular",),),
    "Ranking": (("Regional",), ("Popular",)),
    "Country": (("Regional",),),
    "URL": (("Popular",),),
    "Name": (("Popular",),),
    "Estimate": (("Regional",),),
    "Point": (("GeoLocated",),),
    "PeeringLAN": (("GeoLocated",),),
    "AuthoritativeNameServer": (("Popular",),),
}

# Extra property added per modifier, so refined types also differ
# structurally (IYP patterns come from both labels and properties).
_MODIFIER_PROPS: dict[str, PropertyGen] = {
    "GeoLocated": PropertyGen("position", "string", presence=0.9),
    "Transit": PropertyGen("transit_degree", "int", presence=0.8),
    "Stub": PropertyGen("stub_since", "date", presence=0.5),
    "Anycast": PropertyGen("anycast_sites", "int", presence=0.7),
    "Sibling": PropertyGen("sibling_of", "code", presence=0.8),
    "RPKI": PropertyGen("rpki_status", "string", presence=0.9),
    "Bogon": PropertyGen("bogon_reason", "string", presence=0.6),
    "Covering": PropertyGen("covering_prefix", "code", presence=0.8),
    "Resolver": PropertyGen("open_resolver", "bool", presence=0.8),
    "Apex": PropertyGen("apex_of", "url", presence=0.7),
    "Popular": PropertyGen("popularity", "float", presence=0.8,
                           dirty_rate=0.04),
    "Anchor": PropertyGen("anchor_since", "date", presence=0.6),
    "Regional": PropertyGen("region", "string", presence=0.9),
}

# Types that intentionally share a label set with their base type while
# differing only in properties -- the "identical labels, different
# structure" IYP trait the paper calls out as its open challenge.
_SHADOW_TYPES: tuple[tuple[str, tuple[PropertyGen, ...]], ...] = (
    ("AS", (PropertyGen("asn", "int"), PropertyGen("as_hegemony", "float"))),
    ("Prefix", (PropertyGen("prefix", "code"),
                PropertyGen("irr_status", "string"))),
    ("DomainName", (PropertyGen("name", "url"),
                    PropertyGen("nameservers", "int"))),
)

_EDGE_DEFS: tuple[tuple[str, str, str, str, float], ...] = (
    ("ORIGINATE", "AS", "Prefix", "1:N", 3.0),
    ("DEPENDS_ON", "AS", "AS", "M:N", 2.0),
    ("PEERS_WITH", "AS", "AS", "M:N", 3.0),
    ("MEMBER_OF", "AS", "IXP", "M:N", 1.5),
    ("MANAGED_BY", "AS", "Organization", "N:1", 1.5),
    ("COUNTRY", "AS", "Country", "N:1", 2.0),
    ("LOCATED_IN", "Facility", "Country", "N:1", 0.8),
    ("PART_OF", "IP", "Prefix", "N:1", 2.5),
    ("RESOLVES_TO", "HostName", "IP", "M:N", 2.0),
    ("ALIAS_OF", "HostName", "DomainName", "N:1", 1.5),
    ("RANK", "AS", "Ranking", "M:N", 1.5),
    ("CATEGORIZED", "AS", "Tag", "M:N", 1.5),
    ("ASSIGNED", "AtlasProbe", "AtlasMeasurement", "M:N", 1.0),
    ("TARGETS", "AtlasMeasurement", "IP", "M:N", 1.0),
    ("MONITORS", "BGPCollector", "AS", "M:N", 0.8),
    ("WEBSITE", "Organization", "URL", "1:N", 0.6),
    ("NAME", "AS", "Name", "N:1", 1.2),
    ("EXTERNAL_ID", "Organization", "OpaqueID", "1:N", 0.6),
    ("IX_ID", "IXP", "CaidaIXID", "1:1", 0.4),
    ("POPULATION", "Country", "Estimate", "1:N", 0.4),
    ("QUERIED_FROM", "DomainName", "AuthoritativeNameServer", "M:N", 0.8),
    ("AVAILABLE_AT", "PeeringLAN", "IXP", "N:1", 0.4),
    ("PREFIX_OF", "PeeringLAN", "Prefix", "1:1", 0.3),
    ("SIBLING_OF", "Organization", "Organization", "M:N", 0.5),
    ("POINTS", "Ranking", "Point", "1:N", 0.4),
)

_EDGE_PROPS: dict[str, tuple[PropertyGen, ...]] = {
    "ORIGINATE": (PropertyGen("count", "int", presence=0.7),
                  PropertyGen("seen_by", "string", presence=0.5)),
    "PEERS_WITH": (PropertyGen("rel", "string", presence=0.6),),
    "DEPENDS_ON": (PropertyGen("hegemony", "float", presence=0.8),),
    "RANK": (PropertyGen("rank", "int"),
             PropertyGen("reference_time", "timestamp", presence=0.5)),
    "CATEGORIZED": (PropertyGen("reference_name", "string", presence=0.6),),
    "RESOLVES_TO": (PropertyGen("ttl", "int", presence=0.4),),
    "COUNTRY": (PropertyGen("reference_org", "string", presence=0.5),),
}


def build_iyp_spec() -> DatasetSpec:
    """Assemble the IYP dataset spec (86 node types, 33 labels, 25 edges)."""
    node_types: list[NodeTypeSpec] = []
    for base, props, weight in _BASE_CATEGORIES:
        node_types.append(NodeTypeSpec(
            base, (LabelVariant((base,)),), props, weight=weight
        ))
        for modifiers in _MODIFIERS.get(base, ()):
            labels = tuple(sorted((base, *modifiers)))
            extra = tuple(_MODIFIER_PROPS[m] for m in modifiers)
            name = base + "+" + "+".join(modifiers)
            node_types.append(NodeTypeSpec(
                name,
                (LabelVariant(labels),),
                props + extra,
                weight=weight / (2.0 + len(modifiers)),
            ))
    for base, props in _SHADOW_TYPES:
        node_types.append(NodeTypeSpec(
            f"{base}~shadow",
            (LabelVariant((base,)),),
            props,
            weight=0.4,
        ))
    edge_types = tuple(
        EdgeTypeSpec(
            label, (label,), source, target, card,
            _EDGE_PROPS.get(label, ()), weight=weight,
        )
        for label, source, target, card, weight in _EDGE_DEFS
    )
    return DatasetSpec(
        name="IYP",
        description="Internet Yellow Pages: internet measurement knowledge graph",
        real=True,
        num_nodes=3000,
        num_edges=8000,
        node_types=tuple(node_types),
        edge_types=edge_types,
    )


IYP = build_iyp_spec()
