"""Declarative dataset specifications.

A :class:`DatasetSpec` describes one synthetic dataset: its node types
(each with weighted label variants, mandatory and optional properties),
its edge types (with endpoint types, cardinality style and properties),
and the target node/edge counts at scale 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class PropertyGen:
    """Generator spec for one property.

    Attributes:
        key: Property name.
        kind: Value generator kind -- one of ``int``, ``float``, ``bool``,
            ``date``, ``timestamp``, ``string``, ``name``, ``text``,
            ``url``, ``code``.
        presence: Probability the property is present on an instance
            (1.0 = mandatory, < 1.0 creates additional patterns).
        dirty_rate: Probability a value is generated as a free-form string
            instead of its nominal kind.  Nonzero rates model the
            heterogeneous real datasets (ICIJ, CORD19, IYP) whose outlier
            values drive the Figure 8 sampling errors.
    """

    key: str
    kind: str = "string"
    presence: float = 1.0
    dirty_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.presence <= 1.0:
            raise ValueError("presence must be in (0, 1]")
        if not 0.0 <= self.dirty_rate <= 1.0:
            raise ValueError("dirty_rate must be in [0, 1]")


@dataclass(frozen=True, slots=True)
class LabelVariant:
    """One label-set variant of a type with a relative weight.

    Ground-truth types keep a single name while instances may carry
    different label sets (multi-label datasets such as MB6/FIB25/IYP).
    """

    labels: tuple[str, ...]
    weight: float = 1.0


@dataclass(frozen=True, slots=True)
class NodeTypeSpec:
    """One ground-truth node type."""

    name: str
    variants: tuple[LabelVariant, ...]
    properties: tuple[PropertyGen, ...] = ()
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.variants:
            raise ValueError(f"node type {self.name}: needs >= 1 variant")
        if self.weight <= 0:
            raise ValueError(f"node type {self.name}: weight must be > 0")


@dataclass(frozen=True, slots=True)
class EdgeTypeSpec:
    """One ground-truth edge type.

    Attributes:
        name: Ground-truth type name (unique within the dataset).
        labels: Edge label set (may be shared across types, matching the
            paper's datasets where #edge types > #edge labels).
        source / target: Node type *names* the edge connects.
        cardinality: ``"M:N"``, ``"N:1"``, ``"1:N"`` or ``"1:1"`` -- shapes
            the generated degree distribution so cardinality inference has
            ground truth to recover.
        properties: Property generators.
        weight: Relative share of the dataset's edges.
    """

    name: str
    labels: tuple[str, ...]
    source: str
    target: str
    cardinality: str = "M:N"
    properties: tuple[PropertyGen, ...] = ()
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.cardinality not in {"M:N", "N:1", "1:N", "1:1"}:
            raise ValueError(
                f"edge type {self.name}: bad cardinality {self.cardinality!r}"
            )
        if self.weight <= 0:
            raise ValueError(f"edge type {self.name}: weight must be > 0")


@dataclass(frozen=True, slots=True)
class DatasetSpec:
    """A whole dataset: types plus target sizes at scale 1.0."""

    name: str
    node_types: tuple[NodeTypeSpec, ...]
    edge_types: tuple[EdgeTypeSpec, ...]
    num_nodes: int
    num_edges: int
    description: str = ""
    real: bool = False  # R/S column of Table 2

    def __post_init__(self) -> None:
        names = [t.name for t in self.node_types]
        if len(names) != len(set(names)):
            raise ValueError(f"{self.name}: duplicate node type names")
        edge_names = [t.name for t in self.edge_types]
        if len(edge_names) != len(set(edge_names)):
            raise ValueError(f"{self.name}: duplicate edge type names")
        known = set(names)
        for edge_type in self.edge_types:
            if edge_type.source not in known or edge_type.target not in known:
                raise ValueError(
                    f"{self.name}/{edge_type.name}: unknown endpoint type"
                )

    @property
    def node_type_names(self) -> list[str]:
        """Ground-truth node type names."""
        return [t.name for t in self.node_types]

    @property
    def edge_type_names(self) -> list[str]:
        """Ground-truth edge type names."""
        return [t.name for t in self.edge_types]
