"""Dynamic graph streams: evolving data for the incremental engine.

The paper motivates incrementality with "dynamic environments where
updates are frequent".  :class:`GraphStream` simulates such an
environment on top of a dataset spec: it emits batches of *new* nodes and
edges over time, where

* edges may attach to nodes from earlier batches (the stream remembers
  the growing population), and
* type *drift* can be scheduled: selected node/edge types only start
  appearing after a given batch index, so the schema genuinely evolves
  mid-stream instead of being fully determined by batch one.

Each emitted batch is a :class:`~repro.graph.store.GraphBatch`-compatible
record (nodes, edges, endpoint labels), and the stream accumulates the
full graph plus ground truth so results remain scorable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.datasets.spec import DatasetSpec, EdgeTypeSpec, NodeTypeSpec
from repro.datasets.synthetic import (
    GroundTruth,
    _make_properties,
    _pick_variant,
)
from repro.graph.model import Edge, Node, PropertyGraph
from repro.graph.store import GraphBatch


@dataclass
class StreamBatchPlan:
    """Sizing of each emitted batch."""

    nodes_per_batch: int = 100
    edges_per_batch: int = 200


@dataclass(frozen=True)
class StreamShardPlan:
    """Recipe for re-materializing one batch of a seeded stream.

    Unlike :class:`repro.graph.store.ShardPlan`, a stream shard cannot be
    built in isolation: batch ``index`` depends on the node population of
    batches ``0..index-1``, so materialization replays a pristine replica
    of the stream up to ``index``.  The replay is seeded and therefore
    byte-identical to the live stream's emission.
    """

    index: int
    num_shards: int
    seed: int


class GraphStream:
    """Emits batches of an evolving property graph.

    Args:
        spec: The dataset spec to draw types from.
        num_batches: How many batches to emit.
        plan: Per-batch sizing.
        drift: Mapping of type name (node or edge) -> first batch index at
            which the type may appear.  Unlisted types appear from batch 0.
        seed: RNG seed.
    """

    def __init__(
        self,
        spec: DatasetSpec,
        num_batches: int = 10,
        plan: StreamBatchPlan | None = None,
        drift: dict[str, int] | None = None,
        seed: int = 0,
    ) -> None:
        if num_batches < 1:
            raise ValueError("num_batches must be >= 1")
        self.spec = spec
        self.num_batches = num_batches
        self.plan = plan or StreamBatchPlan()
        self.drift = dict(drift or {})
        self._seed = seed
        self._rng = random.Random(seed)
        self._replay: tuple[GraphStream, int] | None = None
        self.graph = PropertyGraph(f"{spec.name}-stream")
        self.truth = GroundTruth()
        self._nodes_by_type: dict[str, list[int]] = {
            t.name: [] for t in spec.node_types
        }
        self._next_node_id = 0
        self._next_edge_id = 0

    @property
    def seed(self) -> int:
        """The stream's RNG seed (identifies the replayable sequence)."""
        return self._seed

    def __iter__(self) -> Iterator[GraphBatch]:
        return self.batches()

    def batches(self) -> Iterator[GraphBatch]:
        """Generate the stream."""
        for index in range(self.num_batches):
            yield self._make_batch(index)

    def plan_shards(self, num_shards: int | None = None) -> list[StreamShardPlan]:
        """Plans for re-materializing each batch independently of the stream.

        A stream's batching is fixed at construction, so ``num_shards``
        (when given) must equal ``num_batches``.  Materializing a plan
        does not consume or disturb the live stream: it replays a seeded
        replica, so the same batch can be produced any number of times
        and in any order.
        """
        if num_shards is None:
            num_shards = self.num_batches
        if num_shards != self.num_batches:
            raise ValueError(
                f"a stream is pre-batched: num_shards must equal "
                f"num_batches ({self.num_batches}), got {num_shards}"
            )
        return [
            StreamShardPlan(index, num_shards, self._seed)
            for index in range(num_shards)
        ]

    def materialize_shard(self, plan: StreamShardPlan) -> GraphBatch:
        """Rebuild the batch at ``plan.index`` by seeded replay.

        A replay cursor is cached, so materializing shards in ascending
        order costs one pass over the stream in total; asking for an
        earlier index restarts the replica.
        """
        if not 0 <= plan.index < self.num_batches:
            raise ValueError(
                f"shard index {plan.index} out of range for "
                f"{self.num_batches} batches"
            )
        if self._replay is None or self._replay[1] > plan.index:
            replica = GraphStream(
                self.spec, self.num_batches, self.plan, self.drift,
                self._seed,
            )
            self._replay = (replica, 0)
        replica, cursor = self._replay
        batch = replica._make_batch(cursor)
        while cursor < plan.index:
            cursor += 1
            batch = replica._make_batch(cursor)
        self._replay = (replica, cursor + 1)
        return batch

    # ------------------------------------------------------------------
    def _active_node_types(self, batch_index: int) -> list[NodeTypeSpec]:
        return [
            t for t in self.spec.node_types
            if self.drift.get(t.name, 0) <= batch_index
        ]

    def _active_edge_types(self, batch_index: int) -> list[EdgeTypeSpec]:
        return [
            t for t in self.spec.edge_types
            if self.drift.get(t.name, 0) <= batch_index
            and self._nodes_by_type[t.source]
            and self._nodes_by_type[t.target]
        ]

    def _make_batch(self, index: int) -> GraphBatch:
        rng = self._rng
        node_types = self._active_node_types(index)
        new_nodes: list[Node] = []
        weights = [t.weight for t in node_types]
        for _ in range(self.plan.nodes_per_batch):
            type_spec = rng.choices(node_types, weights=weights, k=1)[0]
            node = Node(
                id=self._next_node_id,
                labels=frozenset(_pick_variant(type_spec, rng)),
                properties=_make_properties(type_spec.properties, rng),
            )
            self._next_node_id += 1
            self.graph.add_node(node)
            self.truth.node_types[node.id] = type_spec.name
            self._nodes_by_type[type_spec.name].append(node.id)
            new_nodes.append(node)
        edge_types = self._active_edge_types(index)
        new_edges: list[Edge] = []
        if edge_types:
            edge_weights = [t.weight for t in edge_types]
            for _ in range(self.plan.edges_per_batch):
                edge_spec = rng.choices(edge_types, weights=edge_weights, k=1)[0]
                # Endpoints drawn from the whole population so far: edges
                # routinely cross batch boundaries, as in real streams.
                source = rng.choice(self._nodes_by_type[edge_spec.source])
                target = rng.choice(self._nodes_by_type[edge_spec.target])
                edge = Edge(
                    id=self._next_edge_id,
                    source=source,
                    target=target,
                    labels=frozenset(edge_spec.labels),
                    properties=_make_properties(edge_spec.properties, rng),
                )
                self._next_edge_id += 1
                self.graph.add_edge(edge)
                self.truth.edge_types[edge.id] = edge_spec.name
                new_edges.append(edge)
        endpoint_labels = {
            node_id: self.graph.node(node_id).labels
            for edge in new_edges
            for node_id in (edge.source, edge.target)
        }
        return GraphBatch(index, new_nodes, new_edges, endpoint_labels)
