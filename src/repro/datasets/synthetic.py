"""Synthetic property graph generation from a dataset spec.

``generate(spec, scale, seed)`` materializes a graph of roughly
``scale * spec.num_nodes`` nodes and ``scale * spec.num_edges`` edges and
returns it together with the ground-truth type of every element, which the
evaluation's majority-based F1* needs.

Edge endpoints respect each edge type's declared cardinality style so the
cardinality-inference pass has recoverable ground truth:

* ``M:N`` -- both endpoints drawn uniformly (degrees > 1 on both sides);
* ``N:1`` -- each source node used at most once, targets reused;
* ``1:N`` -- each target node used at most once, sources reused;
* ``1:1`` -- both endpoints used at most once.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.datasets.spec import (
    DatasetSpec,
    EdgeTypeSpec,
    NodeTypeSpec,
    PropertyGen,
)
from repro.datasets.values import generate_value
from repro.graph.builder import GraphBuilder
from repro.graph.model import PropertyGraph


@dataclass
class GroundTruth:
    """True type of every generated element."""

    node_types: dict[int, str] = field(default_factory=dict)
    edge_types: dict[int, str] = field(default_factory=dict)


@dataclass
class GeneratedDataset:
    """A generated graph plus its ground truth and originating spec."""

    graph: PropertyGraph
    truth: GroundTruth
    spec: DatasetSpec


def generate(
    spec: DatasetSpec, scale: float = 1.0, seed: int = 0
) -> GeneratedDataset:
    """Materialize a dataset spec into a graph with ground truth."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = random.Random(seed)
    builder = GraphBuilder(spec.name)
    truth = GroundTruth()
    nodes_by_type = _generate_nodes(spec, scale, rng, builder, truth)
    _generate_edges(spec, scale, rng, builder, truth, nodes_by_type)
    return GeneratedDataset(graph=builder.build(), truth=truth, spec=spec)


def _generate_nodes(
    spec: DatasetSpec,
    scale: float,
    rng: random.Random,
    builder: GraphBuilder,
    truth: GroundTruth,
) -> dict[str, list[int]]:
    """Create nodes per type proportionally to weights; >= 2 per type."""
    total = max(len(spec.node_types) * 2, int(round(spec.num_nodes * scale)))
    weight_sum = sum(t.weight for t in spec.node_types)
    nodes_by_type: dict[str, list[int]] = {}
    for type_spec in spec.node_types:
        count = max(2, int(round(total * type_spec.weight / weight_sum)))
        ids = [
            _make_node(type_spec, rng, builder) for _ in range(count)
        ]
        nodes_by_type[type_spec.name] = ids
        for node_id in ids:
            truth.node_types[node_id] = type_spec.name
    return nodes_by_type


def _make_node(
    type_spec: NodeTypeSpec, rng: random.Random, builder: GraphBuilder
) -> int:
    """One node: pick a label variant, generate properties."""
    labels = _pick_variant(type_spec, rng)
    properties = _make_properties(type_spec.properties, rng)
    return builder.node(labels, properties)


def _pick_variant(type_spec: NodeTypeSpec, rng: random.Random) -> tuple[str, ...]:
    """Weighted choice among the type's label variants."""
    variants = type_spec.variants
    if len(variants) == 1:
        return variants[0].labels
    weights = [v.weight for v in variants]
    return rng.choices(variants, weights=weights, k=1)[0].labels


def _make_properties(
    property_specs: Sequence[PropertyGen], rng: random.Random
) -> dict[str, object]:
    """Generate the present properties of one element."""
    properties = {}
    for prop in property_specs:
        if prop.presence >= 1.0 or rng.random() < prop.presence:
            properties[prop.key] = generate_value(
                prop.kind, rng, prop.dirty_rate
            )
    return properties


def _generate_edges(
    spec: DatasetSpec,
    scale: float,
    rng: random.Random,
    builder: GraphBuilder,
    truth: GroundTruth,
    nodes_by_type: dict[str, list[int]],
) -> None:
    """Create edges per type, respecting cardinality styles."""
    total = max(len(spec.edge_types), int(round(spec.num_edges * scale)))
    weight_sum = sum(t.weight for t in spec.edge_types)
    for edge_spec in spec.edge_types:
        count = max(1, int(round(total * edge_spec.weight / weight_sum)))
        sources = nodes_by_type[edge_spec.source]
        targets = nodes_by_type[edge_spec.target]
        pairs = _endpoint_pairs(edge_spec, sources, targets, count, rng)
        for source, target in pairs:
            properties = _make_properties(edge_spec.properties, rng)
            edge_id = builder.edge(source, target, edge_spec.labels, properties)
            truth.edge_types[edge_id] = edge_spec.name


def _endpoint_pairs(
    edge_spec: EdgeTypeSpec,
    sources: list[int],
    targets: list[int],
    count: int,
    rng: random.Random,
) -> list[tuple[int, int]]:
    """Endpoint pairs honoring the cardinality style."""
    style = edge_spec.cardinality
    if style == "M:N":
        return [
            (rng.choice(sources), rng.choice(targets)) for _ in range(count)
        ]
    if style == "N:1":
        # Each source at most one edge of this type; targets reused.
        usable = min(count, len(sources))
        chosen_sources = rng.sample(sources, usable)
        return [(s, rng.choice(targets)) for s in chosen_sources]
    if style == "1:N":
        usable = min(count, len(targets))
        chosen_targets = rng.sample(targets, usable)
        return [(rng.choice(sources), t) for t in chosen_targets]
    # 1:1 -- both sides used at most once.
    usable = min(count, len(sources), len(targets))
    chosen_sources = rng.sample(sources, usable)
    chosen_targets = rng.sample(targets, usable)
    return list(zip(chosen_sources, chosen_targets))
