"""Noise injection (paper section 5, "Noise injection").

Two orthogonal degradations, both deterministic under a seed:

* **property noise** -- each property instance (node or edge) is removed
  independently with probability ``property_noise`` (the paper sweeps
  0 %-40 %);
* **label availability** -- each element keeps its labels with probability
  ``label_availability`` and is stripped of all labels otherwise (the paper
  tests 100 %, 50 % and 0 %).

Ground truth is untouched: element ids survive, so evaluation still knows
every element's true type.
"""

from __future__ import annotations

import random
from typing import Mapping

from repro.datasets.synthetic import GeneratedDataset, GroundTruth
from repro.graph.model import Edge, Node, PropertyGraph


def inject_noise(
    dataset: GeneratedDataset,
    property_noise: float = 0.0,
    label_availability: float = 1.0,
    seed: int = 0,
) -> GeneratedDataset:
    """Return a noisy copy of a generated dataset.

    Args:
        dataset: The clean dataset.
        property_noise: Per-property removal probability in [0, 1].
        label_availability: Per-element probability of keeping labels.
        seed: RNG seed (independent of the generation seed).
    """
    if not 0.0 <= property_noise <= 1.0:
        raise ValueError("property_noise must be in [0, 1]")
    if not 0.0 <= label_availability <= 1.0:
        raise ValueError("label_availability must be in [0, 1]")
    if property_noise == 0.0 and label_availability == 1.0:
        return dataset
    rng = random.Random(seed)
    noisy = PropertyGraph(dataset.graph.name)
    for node in dataset.graph.nodes():
        noisy.add_node(Node(
            id=node.id,
            labels=_maybe_strip_labels(node.labels, label_availability, rng),
            properties=_drop_properties(node.properties, property_noise, rng),
        ))
    for edge in dataset.graph.edges():
        noisy.add_edge(Edge(
            id=edge.id,
            source=edge.source,
            target=edge.target,
            labels=_maybe_strip_labels(edge.labels, label_availability, rng),
            properties=_drop_properties(edge.properties, property_noise, rng),
        ))
    truth = GroundTruth(
        node_types=dict(dataset.truth.node_types),
        edge_types=dict(dataset.truth.edge_types),
    )
    return GeneratedDataset(graph=noisy, truth=truth, spec=dataset.spec)


def _maybe_strip_labels(
    labels: frozenset[str], availability: float, rng: random.Random
) -> frozenset[str]:
    """Keep all labels with probability ``availability``, else none."""
    if availability >= 1.0:
        return labels
    if availability <= 0.0 or rng.random() >= availability:
        return frozenset()
    return labels


def _drop_properties(
    properties: Mapping[str, object], noise: float, rng: random.Random
) -> dict[str, object]:
    """Remove each property independently with probability ``noise``."""
    if noise <= 0.0:
        return dict(properties)
    return {
        key: value
        for key, value in properties.items()
        if rng.random() >= noise
    }
