"""Specifications of seven of the paper's eight datasets (IYP is built
programmatically in :mod:`repro.datasets.iyp`).

Each spec mirrors the corresponding Table 2 row structurally: the same
number of ground-truth node/edge types, the same distinct label counts
(including multi-label variants and integration labels such as HET.IO's
shared ``HetionetNode``), pattern diversity via optional properties, and
per-edge-type cardinality styles.  Sizes are scaled to laptop budgets while
preserving the node:edge ratios of the originals.
"""

from __future__ import annotations

from repro.datasets.spec import (
    DatasetSpec,
    EdgeTypeSpec,
    LabelVariant,
    NodeTypeSpec,
    PropertyGen,
)


def _single(name: str, *labels: str) -> tuple[LabelVariant, ...]:
    """A type with exactly one label variant."""
    return (LabelVariant(labels or (name,)),)


# ---------------------------------------------------------------------------
# POLE -- crime investigation (11 node types / 17 edge types,
#         11 / 16 labels, synthetic in the paper)
# ---------------------------------------------------------------------------

POLE = DatasetSpec(
    name="POLE",
    description="Person-Object-Location-Event crime investigation graph",
    real=False,
    num_nodes=1200,
    num_edges=2100,
    node_types=(
        NodeTypeSpec("Person", _single("Person"), (
            PropertyGen("name", "name"),
            PropertyGen("surname", "name"),
            PropertyGen("nhs_no", "code"),
            PropertyGen("age", "int", presence=0.85),
        ), weight=5.0),
        NodeTypeSpec("Officer", _single("Officer"), (
            PropertyGen("badge_no", "code"),
            PropertyGen("rank", "string"),
            PropertyGen("name", "name"),
        ), weight=1.0),
        NodeTypeSpec("Crime", _single("Crime"), (
            PropertyGen("crime_id", "int"),
            PropertyGen("crime_type", "string"),
            PropertyGen("date", "date"),
            PropertyGen("charge", "string", presence=0.6),
            PropertyGen("last_outcome", "string", presence=0.7),
        ), weight=3.0),
        NodeTypeSpec("Location", _single("Location"), (
            PropertyGen("address", "text"),
            PropertyGen("postcode", "code"),
            PropertyGen("latitude", "float"),
            PropertyGen("longitude", "float"),
        ), weight=3.0),
        NodeTypeSpec("Object", _single("Object"), (
            PropertyGen("description", "text"),
            PropertyGen("object_type", "string"),
        ), weight=1.0),
        NodeTypeSpec("Vehicle", _single("Vehicle"), (
            PropertyGen("reg", "code"),
            PropertyGen("make", "string"),
            PropertyGen("model", "string"),
            PropertyGen("year", "int", presence=0.8),
        ), weight=1.0),
        NodeTypeSpec("Phone", _single("Phone"), (
            PropertyGen("phoneNo", "code"),
        ), weight=2.0),
        NodeTypeSpec("PhoneCall", _single("PhoneCall"), (
            PropertyGen("call_date", "date"),
            PropertyGen("call_time", "string"),
            PropertyGen("call_duration", "int"),
            PropertyGen("call_type", "string"),
        ), weight=3.0),
        NodeTypeSpec("Email", _single("Email"), (
            PropertyGen("email_address", "string"),
        ), weight=1.0),
        NodeTypeSpec("Area", _single("Area"), (
            PropertyGen("areaCode", "code"),
        ), weight=0.5),
        NodeTypeSpec("PostCode", _single("PostCode"), (
            PropertyGen("code", "code"),
        ), weight=0.5),
    ),
    edge_types=(
        EdgeTypeSpec("KNOWS", ("KNOWS",), "Person", "Person",
                     "M:N", (), weight=3.0),
        EdgeTypeSpec("KNOWS_LW", ("KNOWS_LW",), "Person", "Person",
                     "M:N", (), weight=1.0),
        EdgeTypeSpec("KNOWS_SN", ("KNOWS_SN",), "Person", "Person",
                     "M:N", (), weight=1.0),
        EdgeTypeSpec("FAMILY_REL", ("FAMILY_REL",), "Person", "Person",
                     "M:N", (PropertyGen("rel_type", "string"),), weight=1.0),
        EdgeTypeSpec("CURRENT_ADDRESS", ("CURRENT_ADDRESS",), "Person",
                     "Location", "N:1", (), weight=2.0),
        EdgeTypeSpec("HAS_PHONE", ("HAS_PHONE",), "Person", "Phone",
                     "N:1", (), weight=1.5),
        EdgeTypeSpec("HAS_EMAIL", ("HAS_EMAIL",), "Person", "Email",
                     "N:1", (), weight=1.0),
        EdgeTypeSpec("PARTY_TO", ("PARTY_TO",), "Person", "Crime",
                     "M:N", (), weight=2.0),
        EdgeTypeSpec("INVESTIGATED_BY", ("INVESTIGATED_BY",), "Crime",
                     "Officer", "N:1", (), weight=1.5),
        EdgeTypeSpec("OCCURRED_AT", ("OCCURRED_AT",), "Crime", "Location",
                     "N:1", (), weight=1.5),
        # Same label, two endpoint pairs: 17 edge types over 16 labels.
        EdgeTypeSpec("INVOLVED_IN_obj", ("INVOLVED_IN",), "Object", "Crime",
                     "M:N", (), weight=1.0),
        EdgeTypeSpec("INVOLVED_IN_veh", ("INVOLVED_IN",), "Vehicle", "Crime",
                     "M:N", (), weight=1.0),
        EdgeTypeSpec("CALLER", ("CALLER",), "PhoneCall", "Phone",
                     "N:1", (), weight=1.5),
        EdgeTypeSpec("CALLED", ("CALLED",), "PhoneCall", "Phone",
                     "N:1", (), weight=1.5),
        EdgeTypeSpec("LOCATION_IN_AREA", ("LOCATION_IN_AREA",), "Location",
                     "Area", "N:1", (), weight=1.0),
        EdgeTypeSpec("AREA_HAS_POSTCODE", ("AREA_HAS_POSTCODE",), "Area",
                     "PostCode", "1:N", (), weight=0.5),
        EdgeTypeSpec("POSTCODE_IN_AREA", ("POSTCODE_IN_AREA",), "PostCode",
                     "Area", "N:1", (), weight=0.5),
    ),
)


# ---------------------------------------------------------------------------
# MB6 -- mushroom body connectome (4 node types / 5 edge types,
#        10 / 3 labels, heavily multi-labeled, 52 node patterns)
# ---------------------------------------------------------------------------

# In the neuPrint data model every Neuron node is also a Segment, so the
# ground-truth types Neuron and Segment have containment-related label sets.
# Label-driven approaches that merge types by shared labels (SchemI) mix the
# two; approaches keyed on exact label sets keep them apart.
_NEURON_PROPS_MB6 = (
    PropertyGen("bodyId", "int"),
    PropertyGen("name", "string", presence=0.8),
    PropertyGen("status", "string", presence=0.7),
    PropertyGen("cropped", "bool", presence=0.45),
)

MB6 = DatasetSpec(
    name="MB6",
    description="Drosophila mushroom-body connectome (neuPrint model)",
    real=False,
    num_nodes=1600,
    num_edges=3200,
    node_types=(
        NodeTypeSpec("Neuron", (
            LabelVariant(("Neuron", "Segment", "mb6"), 4.0),
            LabelVariant(("Cell", "Neuron", "Segment", "mb6"), 1.0),
            LabelVariant(("KC", "Neuron", "Segment", "mb6"), 1.5),
            LabelVariant(("MBON", "Neuron", "Segment", "mb6"), 1.0),
        ), _NEURON_PROPS_MB6, weight=2.5),
        NodeTypeSpec("Segment", _single("Segment", "Segment", "mb6"), (
            PropertyGen("bodyId", "int"),
            PropertyGen("status", "string", presence=0.6),
            PropertyGen("instance", "string", presence=0.4),
        ), weight=1.5),
        NodeTypeSpec("Synapse", (
            LabelVariant(("Synapse", "mb6"), 2.0),
            LabelVariant(("PreSyn", "Synapse", "mb6"), 1.0),
            LabelVariant(("PostSyn", "Synapse", "mb6"), 1.0),
        ), (
            PropertyGen("location", "string"),
            PropertyGen("confidence", "float", presence=0.9),
        ), weight=4.0),
        NodeTypeSpec("SynapseSet", _single("SynapseSet", "SynapseSet", "mb6"), (
            PropertyGen("setId", "int"),
        ), weight=1.0),
    ),
    edge_types=(
        EdgeTypeSpec("ConnectsTo", ("ConnectsTo",), "Neuron", "Neuron",
                     "M:N", (PropertyGen("weight", "int"),), weight=2.5),
        EdgeTypeSpec("ConnectsTo_seg", ("ConnectsTo",), "Segment", "Segment",
                     "M:N", (), weight=1.0),
        EdgeTypeSpec("SynapsesTo", ("SynapsesTo",), "Synapse", "Synapse",
                     "M:N", (), weight=3.0),
        EdgeTypeSpec("Contains_nss", ("Contains",), "Neuron", "SynapseSet",
                     "1:N", (), weight=1.5),
        EdgeTypeSpec("Contains_sss", ("Contains",), "SynapseSet", "Synapse",
                     "M:N", (), weight=2.0),
    ),
)


# ---------------------------------------------------------------------------
# FIB25 -- medulla connectome: same shape as MB6 with its own label space
#          (4 / 5 types, 10 / 3 labels, 31 node patterns)
# ---------------------------------------------------------------------------

_NEURON_PROPS_FIB25 = (
    PropertyGen("bodyId", "int"),
    PropertyGen("name", "string", presence=0.8),
    PropertyGen("status", "string", presence=0.65),
)

FIB25 = DatasetSpec(
    name="FIB25",
    description="Drosophila medulla connectome (neuPrint model)",
    real=False,
    num_nodes=1600,
    num_edges=3200,
    node_types=(
        NodeTypeSpec("Neuron", (
            LabelVariant(("Neuron", "Segment", "fib25"), 4.0),
            LabelVariant(("Neuron", "Segment", "Tm", "fib25"), 1.0),
            LabelVariant(("Mi", "Neuron", "Segment", "fib25"), 1.0),
        ), _NEURON_PROPS_FIB25, weight=2.5),
        NodeTypeSpec("Segment", _single("Segment", "Segment", "fib25"), (
            PropertyGen("bodyId", "int"),
            PropertyGen("size", "int", presence=0.5),
        ), weight=1.5),
        NodeTypeSpec("Synapse", (
            LabelVariant(("Synapse", "fib25"), 2.0),
            LabelVariant(("PreSyn", "Synapse", "fib25"), 1.0),
            LabelVariant(("PostSyn", "Synapse", "fib25"), 1.0),
        ), (
            PropertyGen("location", "string"),
            PropertyGen("confidence", "float", presence=0.9),
        ), weight=4.0),
        NodeTypeSpec("SynapseSet", _single("SynapseSet", "SynapseSet", "fib25"), (
            PropertyGen("setId", "int"),
        ), weight=1.0),
    ),
    edge_types=(
        EdgeTypeSpec("ConnectsTo", ("ConnectsTo",), "Neuron", "Neuron",
                     "M:N", (PropertyGen("weight", "int"),), weight=2.5),
        EdgeTypeSpec("ConnectsTo_seg", ("ConnectsTo",), "Segment", "Segment",
                     "M:N", (), weight=1.0),
        EdgeTypeSpec("SynapsesTo", ("SynapsesTo",), "Synapse", "Synapse",
                     "M:N", (), weight=3.0),
        EdgeTypeSpec("Contains_nss", ("Contains",), "Neuron", "SynapseSet",
                     "1:N", (), weight=1.5),
        EdgeTypeSpec("Contains_sss", ("Contains",), "SynapseSet", "Synapse",
                     "M:N", (), weight=2.0),
    ),
)


# ---------------------------------------------------------------------------
# HET.IO -- integrated biomedical knowledge graph (11 / 24 types,
#           12 / 24 labels: every node carries the shared HetionetNode
#           label, the integration scenario the paper calls out)
# ---------------------------------------------------------------------------

def _hetio_node(name: str, *props: PropertyGen, weight: float = 1.0) -> NodeTypeSpec:
    """A HET.IO node type: its own label plus the shared integration label."""
    return NodeTypeSpec(
        name,
        (LabelVariant((name, "HetionetNode")),),
        tuple(props) or (
            PropertyGen("identifier", "code"),
            PropertyGen("name", "string"),
        ),
        weight=weight,
    )


HETIO = DatasetSpec(
    name="HET.IO",
    description="Hetionet: genes, diseases, drugs and their relations",
    real=True,
    num_nodes=900,
    num_edges=5400,
    node_types=(
        _hetio_node("Gene",
                    PropertyGen("identifier", "int"),
                    PropertyGen("name", "string"),
                    PropertyGen("chromosome", "string", presence=0.9),
                    weight=4.0),
        _hetio_node("Disease",
                    PropertyGen("identifier", "code"),
                    PropertyGen("name", "string"), weight=1.0),
        _hetio_node("Compound",
                    PropertyGen("identifier", "code"),
                    PropertyGen("name", "string"),
                    PropertyGen("inchikey", "code", presence=0.95),
                    weight=2.0),
        # Each integrated source contributes its own identifier scheme
        # (UBERON, GO, Reactome, NDF-RT, UMLS, MeSH), so types remain
        # structurally distinguishable even without labels -- the paper
        # counts HET.IO among the datasets that stay easy at 0 % labels.
        _hetio_node("Anatomy",
                    PropertyGen("uberon_id", "code"),
                    PropertyGen("name", "string"),
                    PropertyGen("mesh_id", "code", presence=0.6),
                    weight=1.0),
        _hetio_node("BiologicalProcess",
                    PropertyGen("go_id", "code"),
                    PropertyGen("name", "string"),
                    weight=2.0),
        _hetio_node("CellularComponent",
                    PropertyGen("go_id", "code"),
                    PropertyGen("name", "string"),
                    PropertyGen("synonyms", "text", presence=0.9),
                    weight=1.0),
        _hetio_node("MolecularFunction",
                    PropertyGen("go_id", "code"),
                    PropertyGen("name", "string"),
                    PropertyGen("ec_number", "code", presence=0.9),
                    weight=1.0),
        _hetio_node("Pathway",
                    PropertyGen("reactome_id", "code"),
                    PropertyGen("name", "string"),
                    PropertyGen("n_genes", "int"),
                    weight=1.0),
        _hetio_node("PharmacologicClass",
                    PropertyGen("ndfrt_id", "code"),
                    PropertyGen("name", "string"),
                    PropertyGen("class_type", "string"),
                    weight=0.5),
        _hetio_node("SideEffect",
                    PropertyGen("umls_id", "code"),
                    PropertyGen("name", "string"),
                    weight=1.5),
        _hetio_node("Symptom",
                    PropertyGen("mesh_id", "code"),
                    PropertyGen("name", "string"),
                    weight=0.5),
    ),
    edge_types=tuple(
        EdgeTypeSpec(label, (label,), source, target, card, props, weight=w)
        for label, source, target, card, props, w in (
            ("BINDS_CbG", "Compound", "Gene", "M:N",
             (PropertyGen("affinity", "float", presence=0.5),), 2.0),
            ("TREATS_CtD", "Compound", "Disease", "M:N", (), 1.0),
            ("PALLIATES_CpD", "Compound", "Disease", "M:N", (), 0.5),
            ("CAUSES_CcSE", "Compound", "SideEffect", "M:N", (), 2.0),
            ("RESEMBLES_CrC", "Compound", "Compound", "M:N", (), 1.0),
            ("ASSOCIATES_DaG", "Disease", "Gene", "M:N", (), 2.0),
            ("UPREGULATES_DuG", "Disease", "Gene", "M:N", (), 1.0),
            ("DOWNREGULATES_DdG", "Disease", "Gene", "M:N", (), 1.0),
            ("LOCALIZES_DlA", "Disease", "Anatomy", "M:N", (), 1.0),
            ("PRESENTS_DpS", "Disease", "Symptom", "M:N", (), 1.0),
            ("RESEMBLES_DrD", "Disease", "Disease", "M:N", (), 0.5),
            ("EXPRESSES_AeG", "Anatomy", "Gene", "M:N", (), 2.0),
            ("UPREGULATES_AuG", "Anatomy", "Gene", "M:N", (), 1.0),
            ("DOWNREGULATES_AdG", "Anatomy", "Gene", "M:N", (), 1.0),
            ("PARTICIPATES_GpBP", "Gene", "BiologicalProcess", "M:N", (), 2.0),
            ("PARTICIPATES_GpCC", "Gene", "CellularComponent", "M:N", (), 1.0),
            ("PARTICIPATES_GpMF", "Gene", "MolecularFunction", "M:N", (), 1.0),
            ("PARTICIPATES_GpPW", "Gene", "Pathway", "M:N", (), 1.0),
            ("INTERACTS_GiG", "Gene", "Gene", "M:N", (), 2.0),
            ("COVARIES_GcG", "Gene", "Gene", "M:N", (), 1.0),
            ("REGULATES_GrG", "Gene", "Gene", "M:N", (), 1.0),
            ("INCLUDES_PCiC", "PharmacologicClass", "Compound", "1:N", (), 0.5),
            ("UPREGULATES_CuG", "Compound", "Gene", "M:N", (), 1.0),
            ("DOWNREGULATES_CdG", "Compound", "Gene", "M:N", (), 1.0),
        )
    ),
)


# ---------------------------------------------------------------------------
# ICIJ -- offshore leaks (5 / 14 types, 6 / 14 labels, 208 node patterns:
#         very heterogeneous optional + dirty properties)
# ---------------------------------------------------------------------------

ICIJ = DatasetSpec(
    name="ICIJ",
    description="ICIJ offshore leaks (Panama Papers et al.)",
    real=True,
    num_nodes=2000,
    num_edges=3300,
    node_types=(
        NodeTypeSpec("Entity", (
            LabelVariant(("Entity",), 3.0),
            LabelVariant(("Entity", "Leak"), 1.0),
        ), (
            PropertyGen("name", "string"),
            PropertyGen("jurisdiction", "code", presence=0.8),
            PropertyGen("incorporation_date", "date", presence=0.6,
                        dirty_rate=0.04),
            PropertyGen("inactivation_date", "date", presence=0.3,
                        dirty_rate=0.04),
            PropertyGen("status", "string_with_dates", presence=0.7),
            PropertyGen("company_type", "string_with_ints", presence=0.4),
            PropertyGen("ibcRUC", "code", presence=0.5, dirty_rate=0.03),
            PropertyGen("service_provider", "string", presence=0.45),
        ), weight=4.0),
        NodeTypeSpec("Officer", (
            LabelVariant(("Officer",), 3.0),
            LabelVariant(("Leak", "Officer"), 1.0),
        ), (
            PropertyGen("name", "name"),
            PropertyGen("countries", "string", presence=0.7),
            PropertyGen("country_codes", "string_list", presence=0.6),
            PropertyGen("valid_until", "date", presence=0.4, dirty_rate=0.05),
        ), weight=3.0),
        NodeTypeSpec("Intermediary", _single("Intermediary"), (
            PropertyGen("name", "string"),
            PropertyGen("address", "text", presence=0.6),
            PropertyGen("status", "string_with_ints", presence=0.5),
            PropertyGen("internal_id", "int", presence=0.7, dirty_rate=0.05),
        ), weight=1.0),
        NodeTypeSpec("Address", _single("Address"), (
            PropertyGen("address", "text"),
            PropertyGen("country_codes", "string_list", presence=0.8),
            PropertyGen("valid_until", "date", presence=0.3, dirty_rate=0.06),
        ), weight=1.5),
        NodeTypeSpec("Other", _single("Other"), (
            PropertyGen("name", "string"),
            PropertyGen("note", "text", presence=0.4),
        ), weight=0.5),
    ),
    edge_types=tuple(
        EdgeTypeSpec(label, (label,), source, target, card, props, weight=w)
        for label, source, target, card, props, w in (
            ("registered_address", "Entity", "Address", "N:1", (), 2.5),
            ("officer_of", "Officer", "Entity", "M:N",
             (PropertyGen("link", "string", presence=0.6),), 3.0),
            ("intermediary_of", "Intermediary", "Entity", "M:N", (), 2.0),
            ("similar", "Entity", "Entity", "M:N", (), 0.7),
            ("connected_to", "Entity", "Other", "M:N", (), 0.5),
            ("probably_same_officer_as", "Officer", "Officer", "M:N", (), 0.7),
            ("same_name_as", "Entity", "Entity", "M:N", (), 0.7),
            ("same_id_as", "Entity", "Entity", "M:N", (), 0.3),
            ("underlying", "Intermediary", "Officer", "M:N", (), 0.4),
            ("shareholder_of", "Officer", "Entity", "M:N",
             (PropertyGen("shares", "string", presence=0.5),), 1.0),
            ("director_of", "Officer", "Entity", "M:N", (), 1.0),
            ("beneficiary_of", "Officer", "Entity", "M:N", (), 0.6),
            ("secretary_of", "Officer", "Entity", "M:N", (), 0.4),
            ("same_as", "Officer", "Officer", "M:N", (), 0.2),
        )
    ),
)


# ---------------------------------------------------------------------------
# CORD19 -- COVID-19 knowledge graph (16 / 16 types, 16 / 16 labels,
#           89 node patterns)
# ---------------------------------------------------------------------------

def _cord_node(name: str, props: tuple[PropertyGen, ...], weight: float) -> NodeTypeSpec:
    return NodeTypeSpec(name, _single(name), props, weight=weight)


CORD19 = DatasetSpec(
    name="CORD19",
    description="CovidGraph: papers, authors, genes and clinical data",
    real=True,
    num_nodes=2200,
    num_edges=2300,
    node_types=(
        _cord_node("Paper", (
            PropertyGen("cord_uid", "code"),
            PropertyGen("title", "text"),
            PropertyGen("publish_time", "date", presence=0.8, dirty_rate=0.05),
            PropertyGen("journal", "string_with_ints", presence=0.7),
            PropertyGen("doi", "code", presence=0.75),
            PropertyGen("url", "url", presence=0.5),
        ), 4.0),
        _cord_node("Author", (
            PropertyGen("first", "name"),
            PropertyGen("last", "name"),
            PropertyGen("email", "string", presence=0.3),
        ), 4.0),
        _cord_node("Affiliation", (
            PropertyGen("institution", "string"),
            PropertyGen("laboratory", "string", presence=0.4),
        ), 1.5),
        _cord_node("PaperID", (
            PropertyGen("id_type", "string"),
            PropertyGen("id_value", "code"),
        ), 2.0),
        _cord_node("Abstract", (
            PropertyGen("text", "text"),
        ), 2.0),
        _cord_node("BodyText", (
            PropertyGen("text", "text"),
            PropertyGen("section", "string", presence=0.8),
        ), 3.0),
        _cord_node("Citation", (
            PropertyGen("ref_id", "code"),
            PropertyGen("title", "text", presence=0.9),
        ), 2.0),
        _cord_node("Gene", (
            PropertyGen("sid", "code"),
            PropertyGen("name", "string"),
            PropertyGen("taxid", "int", presence=0.9, dirty_rate=0.03),
        ), 1.5),
        _cord_node("Protein", (
            PropertyGen("sid", "code"),
            PropertyGen("name", "string"),
            PropertyGen("mass", "float_with_ints", presence=0.6),
        ), 1.5),
        _cord_node("Disease", (
            PropertyGen("doid", "code"),
            PropertyGen("name", "string"),
            PropertyGen("definition", "text", presence=0.6),
        ), 1.0),
        _cord_node("Pathway", (
            PropertyGen("sid", "code"),
            PropertyGen("name", "string"),
            PropertyGen("org", "string", presence=0.7),
        ), 0.8),
        _cord_node("GeneSymbol", (
            PropertyGen("sid", "code"),
            PropertyGen("status", "string", presence=0.5),
        ), 1.0),
        _cord_node("Transcript", (
            PropertyGen("sid", "code"),
        ), 0.8),
        _cord_node("ClinicalTrial", (
            PropertyGen("nct_id", "code"),
            PropertyGen("phase", "string", presence=0.6),
            PropertyGen("start_date", "date", presence=0.7, dirty_rate=0.04),
        ), 0.6),
        _cord_node("Patent", (
            PropertyGen("publication_number", "code"),
            PropertyGen("filing_date", "date", presence=0.8, dirty_rate=0.04),
        ), 0.5),
        _cord_node("Fragment", (
            PropertyGen("kind", "string"),
            PropertyGen("text", "text"),
        ), 0.8),
    ),
    edge_types=tuple(
        EdgeTypeSpec(label, (label,), source, target, card, (), weight=w)
        for label, source, target, card, w in (
            ("PAPER_HAS_AUTHOR", "Paper", "Author", "M:N", 3.0),
            ("AUTHOR_HAS_AFFILIATION", "Author", "Affiliation", "N:1", 2.0),
            ("PAPER_HAS_PAPERID", "Paper", "PaperID", "1:N", 2.0),
            ("PAPER_HAS_ABSTRACT", "Paper", "Abstract", "1:1", 1.5),
            ("PAPER_HAS_BODYTEXT", "Paper", "BodyText", "1:N", 2.0),
            ("PAPER_HAS_CITATION", "Paper", "Citation", "1:N", 2.0),
            ("MENTIONS_GENE", "BodyText", "Gene", "M:N", 1.5),
            ("MENTIONS_DISEASE", "BodyText", "Disease", "M:N", 1.0),
            ("CODES_FOR", "Gene", "Protein", "1:N", 1.0),
            ("MEMBER_OF_PATHWAY", "Protein", "Pathway", "M:N", 1.0),
            ("MAPS_TO", "Gene", "GeneSymbol", "N:1", 1.0),
            ("HAS_TRANSCRIPT", "Gene", "Transcript", "1:N", 0.8),
            ("ASSOCIATED_WITH", "Disease", "Gene", "M:N", 0.8),
            ("INVESTIGATES", "ClinicalTrial", "Disease", "M:N", 0.6),
            ("PROTECTS", "Patent", "Protein", "M:N", 0.4),
            ("HAS_FRAGMENT", "Abstract", "Fragment", "1:N", 0.8),
        )
    ),
)


# ---------------------------------------------------------------------------
# LDBC -- social network benchmark (7 / 17 types, 8 / 15 labels:
#         Post and Comment share the Message label; LIKES and HAS_CREATOR
#         and HAS_TAG span two endpoint pairs each)
# ---------------------------------------------------------------------------

LDBC = DatasetSpec(
    name="LDBC",
    description="LDBC Social Network Benchmark interactive schema",
    real=False,
    num_nodes=1800,
    num_edges=7000,
    node_types=(
        NodeTypeSpec("Person", _single("Person"), (
            PropertyGen("firstName", "name"),
            PropertyGen("lastName", "name"),
            PropertyGen("gender", "string"),
            PropertyGen("birthday", "date"),
            PropertyGen("creationDate", "timestamp"),
            PropertyGen("locationIP", "string", presence=0.9),
            PropertyGen("browserUsed", "string", presence=0.9),
        ), weight=2.0),
        NodeTypeSpec("Forum", _single("Forum"), (
            PropertyGen("title", "text"),
            PropertyGen("creationDate", "timestamp"),
        ), weight=1.0),
        NodeTypeSpec("Post", (LabelVariant(("Message", "Post")),), (
            PropertyGen("content", "text", presence=0.7),
            PropertyGen("imageFile", "string", presence=0.3),
            PropertyGen("creationDate", "timestamp"),
            PropertyGen("length", "int"),
        ), weight=3.0),
        NodeTypeSpec("Comment", (LabelVariant(("Comment", "Message")),), (
            PropertyGen("content", "text"),
            PropertyGen("creationDate", "timestamp"),
            PropertyGen("length", "int"),
        ), weight=3.0),
        NodeTypeSpec("Tag", _single("Tag"), (
            PropertyGen("name", "string"),
            PropertyGen("url", "url"),
        ), weight=0.8),
        NodeTypeSpec("TagClass", _single("TagClass"), (
            PropertyGen("name", "string"),
            PropertyGen("url", "url"),
        ), weight=0.3),
        NodeTypeSpec("Place", _single("Place"), (
            PropertyGen("name", "string"),
            PropertyGen("url", "url"),
            PropertyGen("placeType", "string"),
        ), weight=0.5),
    ),
    edge_types=tuple(
        EdgeTypeSpec(name, (label,), source, target, card, props, weight=w)
        for name, label, source, target, card, props, w in (
            ("KNOWS", "KNOWS", "Person", "Person", "M:N",
             (PropertyGen("creationDate", "timestamp"),), 2.0),
            ("HAS_INTEREST", "HAS_INTEREST", "Person", "Tag", "M:N", (), 1.0),
            ("LIKES_post", "LIKES", "Person", "Post", "M:N",
             (PropertyGen("creationDate", "timestamp"),), 1.5),
            ("LIKES_comment", "LIKES", "Person", "Comment", "M:N",
             (PropertyGen("creationDate", "timestamp"),), 1.5),
            ("HAS_CREATOR_post", "HAS_CREATOR", "Post", "Person", "N:1",
             (), 1.5),
            ("HAS_CREATOR_comment", "HAS_CREATOR", "Comment", "Person", "N:1",
             (), 1.5),
            ("CONTAINER_OF", "CONTAINER_OF", "Forum", "Post", "1:N", (), 1.5),
            ("HAS_MEMBER", "HAS_MEMBER", "Forum", "Person", "M:N",
             (PropertyGen("joinDate", "timestamp"),), 1.5),
            ("HAS_MODERATOR", "HAS_MODERATOR", "Forum", "Person", "N:1",
             (), 0.5),
            ("HAS_TAG", "HAS_TAG", "Post", "Tag", "M:N", (), 1.0),
            ("STUDY_AT", "STUDY_AT", "Person", "Place", "M:N",
             (PropertyGen("classYear", "int"),), 0.5),
            ("REPLY_OF", "REPLY_OF", "Comment", "Post", "N:1", (), 1.5),
            ("IS_LOCATED_IN", "IS_LOCATED_IN", "Person", "Place", "N:1",
             (), 1.0),
            ("IS_PART_OF", "IS_PART_OF", "Place", "Place", "N:1", (), 0.3),
            ("HAS_TYPE", "HAS_TYPE", "Tag", "TagClass", "N:1", (), 0.5),
            ("IS_SUBCLASS_OF", "IS_SUBCLASS_OF", "TagClass", "TagClass",
             "N:1", (), 0.2),
            ("WORK_AT", "WORK_AT", "Person", "Place", "M:N",
             (PropertyGen("workFrom", "int"),), 0.5),
        )
    ),
)
