"""Synthetic reproductions of the paper's eight evaluation datasets.

The originals (POLE, MB6, HET.IO, FIB25, ICIJ, CORD19, LDBC, IYP -- Table 2
of the paper) range up to 44.5M nodes and are distributed as Neo4j dumps.
This package replaces them with parameterized generators that replicate the
*structural* characteristics F1* depends on -- node/edge type counts, label
sets (including multi-label variants), pattern diversity via optional
properties, heterogeneity and dirty values -- at laptop scale.

Use :func:`get_dataset` / :func:`list_datasets` to obtain them, and
:func:`inject_noise` for the noise/label-availability scenarios of the
evaluation.
"""

from repro.datasets.spec import (
    DatasetSpec,
    EdgeTypeSpec,
    LabelVariant,
    NodeTypeSpec,
    PropertyGen,
)
from repro.datasets.synthetic import GeneratedDataset, GroundTruth, generate
from repro.datasets.noise import inject_noise
from repro.datasets.registry import dataset_spec, get_dataset, list_datasets

__all__ = [
    "DatasetSpec",
    "EdgeTypeSpec",
    "GeneratedDataset",
    "GroundTruth",
    "LabelVariant",
    "NodeTypeSpec",
    "PropertyGen",
    "dataset_spec",
    "generate",
    "get_dataset",
    "inject_noise",
    "list_datasets",
]
