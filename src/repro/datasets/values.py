"""Property value generators.

Each kind produces values whose inferred datatype is predictable, so the
datatype-inference experiments have ground truth.  ``dirty_rate`` in the
property spec replaces a fraction of values with free-form strings; a full
scan then generalizes the property to STRING while a small sample may miss
the outliers -- exactly the sampling error Figure 8 measures.
"""

from __future__ import annotations

import random
from typing import Any

_FIRST_NAMES = [
    "Alice", "Bob", "Carol", "Dave", "Eve", "Frank", "Grace", "Heidi",
    "Ivan", "Judy", "Mallory", "Niaj", "Olivia", "Peggy", "Rupert", "Sybil",
]
_WORDS = [
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
    "iota", "kappa", "lambda", "sigma", "omega", "nova", "lumen", "terra",
]


def generate_value(kind: str, rng: random.Random, dirty_rate: float = 0.0) -> Any:
    """One value of the given kind (possibly dirty)."""
    if dirty_rate > 0.0 and rng.random() < dirty_rate:
        return _dirty_string(rng)
    generator = _GENERATORS.get(kind)
    if generator is None:
        raise ValueError(f"unknown value kind {kind!r}")
    return generator(rng)


def _dirty_string(rng: random.Random) -> str:
    """A free-form string outlier (forces STRING on full scan)."""
    return f"{rng.choice(_WORDS)}-{rng.choice(_WORDS)}/{rng.randrange(10, 99)}?"


def _gen_int(rng: random.Random) -> int:
    return rng.randrange(0, 100_000)


def _gen_float(rng: random.Random) -> float:
    # Avoid integer-valued floats, which would legitimately infer INTEGER.
    return round(rng.uniform(0.0, 1000.0), 4) + 0.0001


def _gen_bool(rng: random.Random) -> bool:
    return rng.random() < 0.5


def _gen_date(rng: random.Random) -> str:
    year = rng.randrange(1950, 2026)
    month = rng.randrange(1, 13)
    day = rng.randrange(1, 29)
    return f"{year:04d}-{month:02d}-{day:02d}"


def _gen_timestamp(rng: random.Random) -> str:
    return (
        f"{_gen_date(rng)}T{rng.randrange(24):02d}:"
        f"{rng.randrange(60):02d}:{rng.randrange(60):02d}Z"
    )


def _gen_string(rng: random.Random) -> str:
    return f"{rng.choice(_WORDS)} {rng.choice(_WORDS)}"


def _gen_name(rng: random.Random) -> str:
    return f"{rng.choice(_FIRST_NAMES)} {rng.choice(_WORDS).title()}son"


def _gen_text(rng: random.Random) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(rng.randrange(4, 12)))


def _gen_url(rng: random.Random) -> str:
    return f"https://{rng.choice(_WORDS)}.example.org/{rng.randrange(10_000)}"


def _gen_code(rng: random.Random) -> str:
    return f"{rng.choice('ABCDEFGH')}{rng.randrange(100, 999)}-{rng.randrange(10)}"


def _gen_string_list(rng: random.Random) -> list[str]:
    """A list-valued property (Neo4j array), e.g. country code lists."""
    return [
        rng.choice(["GR", "FR", "DE", "US", "JP", "BR"])
        for _ in range(rng.randint(1, 3))
    ]


def _gen_float_with_ints(rng: random.Random) -> float | int:
    """Mostly floats with a minority of ints.

    The full scan generalizes the property to DOUBLE; a sampled int's
    individual type (INT) disagrees, so these properties land in the
    low-but-nonzero sampling-error bins of Figure 8.
    """
    if rng.random() < 0.12:
        return _gen_int(rng)
    return _gen_float(rng)


def _gen_string_with_dates(rng: random.Random) -> str:
    """Mostly free-form strings with a minority of date-shaped values."""
    if rng.random() < 0.1:
        return _gen_date(rng)
    return _gen_string(rng)


def _gen_string_with_ints(rng: random.Random) -> str:
    """Mostly strings with a minority of numeric strings."""
    if rng.random() < 0.15:
        return str(_gen_int(rng))
    return _gen_text(rng)


_GENERATORS = {
    "int": _gen_int,
    "float": _gen_float,
    "bool": _gen_bool,
    "date": _gen_date,
    "timestamp": _gen_timestamp,
    "string": _gen_string,
    "name": _gen_name,
    "text": _gen_text,
    "url": _gen_url,
    "code": _gen_code,
    "string_list": _gen_string_list,
    "float_with_ints": _gen_float_with_ints,
    "string_with_dates": _gen_string_with_dates,
    "string_with_ints": _gen_string_with_ints,
}

KNOWN_KINDS = frozenset(_GENERATORS)

# What a full scan over clean (dirty_rate = 0) values of each kind infers.
EXPECTED_DATATYPE = {
    "int": "INT",
    "float": "DOUBLE",
    "bool": "BOOLEAN",
    "date": "DATE",
    "timestamp": "TIMESTAMP",
    "string": "STRING",
    "name": "STRING",
    "text": "STRING",
    "url": "STRING",
    "code": "STRING",
    "string_list": "LIST",
    "float_with_ints": "DOUBLE",
    "string_with_dates": "STRING",
    "string_with_ints": "STRING",
}
