"""Label embedding substrate.

The paper trains a Word2Vec model on the node and edge labels observed in
the dataset so identical label sets map to identical vectors and labels that
co-occur on connected elements land near each other.  This subpackage
implements that from scratch: a vocabulary over canonical label tokens, a
skip-gram Word2Vec trained with negative sampling (pure numpy), and the
:class:`LabelEmbedder` facade the pipeline uses.
"""

from repro.embeddings.vocab import Vocabulary, build_label_corpus
from repro.embeddings.word2vec import Word2Vec, Word2VecConfig
from repro.embeddings.embedder import LabelEmbedder

__all__ = [
    "LabelEmbedder",
    "Vocabulary",
    "Word2Vec",
    "Word2VecConfig",
    "build_label_corpus",
]
