"""Vocabulary and corpus construction over property graph labels.

Following section 4.1 of the paper, a multi-labeled element is treated as a
single vocabulary token: its labels are sorted alphabetically and
concatenated.  The training corpus is built from label co-occurrence:

* every edge contributes the "sentence" ``[src_token, edge_token, tgt_token]``
  (skipping empty tokens), so edge labels sit between the node labels they
  connect, and
* every labeled node contributes its own token as a unigram occurrence so
  isolated labels still enter the vocabulary.

This gives the skip-gram model meaningful context windows even though the
raw data is a graph rather than text.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.graph.model import PropertyGraph, canonical_label


class Vocabulary:
    """Bidirectional token <-> index mapping with frequency counts."""

    def __init__(self) -> None:
        self._index: dict[str, int] = {}
        self._tokens: list[str] = []
        self._counts: Counter[str] = Counter()

    def add(self, token: str, count: int = 1) -> int:
        """Register ``count`` occurrences of ``token``; return its index."""
        if not token:
            raise ValueError("empty token cannot enter the vocabulary")
        if token not in self._index:
            self._index[token] = len(self._tokens)
            self._tokens.append(token)
        self._counts[token] += count
        return self._index[token]

    def index(self, token: str) -> int:
        """Index of a known token (raises ``KeyError`` otherwise)."""
        return self._index[token]

    def __contains__(self, token: str) -> bool:
        return token in self._index

    def __len__(self) -> int:
        return len(self._tokens)

    def token(self, index: int) -> str:
        """Token at a given index."""
        return self._tokens[index]

    def count(self, token: str) -> int:
        """Number of recorded occurrences of ``token``."""
        return self._counts.get(token, 0)

    def tokens(self) -> Sequence[str]:
        """All tokens in index order."""
        return tuple(self._tokens)

    def counts_in_index_order(self) -> list[int]:
        """Occurrence counts aligned with token indices."""
        return [self._counts[token] for token in self._tokens]


def build_label_corpus(
    graph: PropertyGraph,
) -> tuple[Vocabulary, list[list[int]]]:
    """Build the label vocabulary and skip-gram sentences for a graph.

    Returns:
        ``(vocabulary, sentences)`` where each sentence is a list of token
        indices.  Unlabeled elements contribute nothing (they are embedded
        as zero vectors downstream).
    """
    vocabulary = Vocabulary()
    sentences: list[list[int]] = []
    for edge in graph.edges():
        source, target = graph.endpoints(edge.id)
        sentence = [
            canonical_label(source.labels),
            canonical_label(edge.labels),
            canonical_label(target.labels),
        ]
        indices = [vocabulary.add(tok) for tok in sentence if tok]
        if len(indices) >= 2:
            sentences.append(indices)
        # Single-token "sentences" still register vocabulary occurrences via
        # the add() calls above; they carry no context so are not kept.
    for node in graph.nodes():
        token = canonical_label(node.labels)
        if token:
            vocabulary.add(token)
    return vocabulary, sentences


def tokens_for_labels(label_sets: Iterable[frozenset[str]]) -> list[str]:
    """Canonical tokens for a collection of label sets, dropping empties."""
    tokens = []
    for labels in label_sets:
        token = canonical_label(labels)
        if token:
            tokens.append(token)
    return tokens
