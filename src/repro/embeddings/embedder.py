"""The label-embedding facade used by the PG-HIVE pipeline.

:class:`LabelEmbedder` wires the vocabulary, corpus builder and Word2Vec
model together and answers the only question the vectorizer asks: *what is
the d-dimensional vector for this label set?*  Per section 4.1, a missing
label maps to the zero vector and a multi-label set maps to the embedding of
its sorted-concatenated token.

Tokens that were never seen during fitting (possible in incremental mode
when a later batch introduces a new label) receive a deterministic
pseudo-random unit vector derived from the token text, so the same unseen
label always maps to the same point and distinct labels stay separated.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

from repro.embeddings.vocab import Vocabulary, build_label_corpus
from repro.embeddings.word2vec import Word2Vec, Word2VecConfig
from repro.graph.model import PropertyGraph, canonical_label


class LabelEmbedder:
    """Maps label sets to fixed-dimensional vectors."""

    def __init__(self, config: Word2VecConfig | None = None) -> None:
        self.config = config or Word2VecConfig()
        self._vocabulary = Vocabulary()
        self._model: Word2Vec | None = None
        self._fallback_cache: dict[str, np.ndarray] = {}

    @property
    def dimension(self) -> int:
        """Embedding dimensionality ``d``."""
        return self.config.dimension

    @property
    def vocabulary(self) -> Vocabulary:
        """The fitted label vocabulary."""
        return self._vocabulary

    def fit(self, graph: PropertyGraph) -> "LabelEmbedder":
        """Train the Word2Vec model on a graph's label co-occurrences."""
        self._vocabulary, sentences = build_label_corpus(graph)
        self._model = Word2Vec(len(self._vocabulary), self.config)
        self._model.train(sentences, self._vocabulary.counts_in_index_order())
        return self

    def fit_tokens(self, sentences: list[list[str]]) -> "LabelEmbedder":
        """Train directly from token sentences (used by incremental mode)."""
        self._vocabulary = Vocabulary()
        indexed: list[list[int]] = []
        for sentence in sentences:
            indices = [self._vocabulary.add(tok) for tok in sentence if tok]
            if len(indices) >= 2:
                indexed.append(indices)
        self._model = Word2Vec(len(self._vocabulary), self.config)
        self._model.train(indexed, self._vocabulary.counts_in_index_order())
        return self

    def embed(self, labels: Iterable[str]) -> np.ndarray:
        """Vector for a label set; the zero vector when it is empty."""
        token = canonical_label(labels)
        return self.embed_token(token)

    def embed_token(self, token: str) -> np.ndarray:
        """Vector for a canonical label token ('' means unlabeled)."""
        if not token:
            return np.zeros(self.dimension)
        if self._model is not None and token in self._vocabulary:
            return self._model.vector(self._vocabulary.index(token))
        return self._fallback_vector(token)

    def most_similar(
        self, token: str, k: int = 5
    ) -> list[tuple[str, float]]:
        """The k vocabulary tokens closest to ``token`` by cosine.

        Useful for diagnosing what the contextual signal of the label
        aligner "sees".  The query token itself is excluded.
        """
        if self._model is None or len(self._vocabulary) == 0:
            return []
        query = self.embed_token(token)
        query_norm = float(np.linalg.norm(query))
        if query_norm == 0.0:
            return []
        matrix = self._model.vectors
        norms = np.linalg.norm(matrix, axis=1)
        norms[norms == 0.0] = 1.0
        scores = (matrix @ query) / (norms * query_norm)
        ranked = np.argsort(-scores)
        results = []
        for index in ranked:
            candidate = self._vocabulary.token(int(index))
            if candidate == token:
                continue
            results.append((candidate, float(scores[index])))
            if len(results) == k:
                break
        return results

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """Serializable snapshot of the fitted embedder."""
        if self._model is None:
            raise RuntimeError("embedder has not been fitted")
        return {
            "dimension": self.config.dimension,
            "tokens": list(self._vocabulary.tokens()),
            "counts": self._vocabulary.counts_in_index_order(),
            "vectors": self._model.vectors.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "LabelEmbedder":
        """Rebuild a fitted embedder from :meth:`to_dict` output."""
        from repro.embeddings.vocab import Vocabulary
        from repro.embeddings.word2vec import Word2Vec

        config = Word2VecConfig(dimension=int(data["dimension"]))
        embedder = cls(config)
        vocabulary = Vocabulary()
        for token, count in zip(data["tokens"], data["counts"]):
            vocabulary.add(token, count)
        model = Word2Vec(len(vocabulary), config)
        vectors = np.asarray(data["vectors"], dtype=np.float64)
        if vectors.shape != (len(vocabulary), config.dimension):
            raise ValueError("vector matrix does not match vocabulary")
        model._center = vectors
        model._trained = True
        embedder._vocabulary = vocabulary
        embedder._model = model
        return embedder

    def _fallback_vector(self, token: str) -> np.ndarray:
        """Deterministic unit vector for tokens unseen at fit time."""
        cached = self._fallback_cache.get(token)
        if cached is not None:
            return cached.copy()
        digest = hashlib.sha256(token.encode("utf-8")).digest()
        seed = int.from_bytes(digest[:8], "little")
        rng = np.random.default_rng(seed)
        vector = rng.standard_normal(self.dimension)
        norm = float(np.linalg.norm(vector))
        if norm > 0:
            vector = vector / norm * 0.5
        self._fallback_cache[token] = vector
        return vector.copy()
