"""Skip-gram Word2Vec with negative sampling, implemented in numpy.

This is the classic Mikolov et al. formulation: for each (center, context)
pair drawn from a sentence window, maximize ``log sigma(u_ctx . v_center)``
and minimize ``log sigma(u_neg . v_center)`` for ``k`` negative samples
drawn from the unigram distribution raised to the 3/4 power.

The corpora here are tiny (one sentence per edge over at most a few dozen
distinct label tokens), so a straightforward mini-batched numpy
implementation trains in milliseconds while giving the property the paper
relies on: identical label tokens get identical embeddings, and label
tokens that co-occur on connected elements end up close in the embedding
space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class Word2VecConfig:
    """Hyperparameters for skip-gram training.

    Attributes:
        dimension: Embedding size ``d`` (the paper's example uses 5; we
            default to 16 which separates label tokens comfortably).
        window: Context window radius.
        negatives: Negative samples per positive pair.
        epochs: Passes over the training pairs.
        learning_rate: Initial SGD step size (linearly decayed).
        seed: RNG seed for initialization and sampling.
    """

    dimension: int = 16
    window: int = 2
    negatives: int = 5
    epochs: int = 5
    learning_rate: float = 0.05
    seed: int = 13


class Word2Vec:
    """A trained skip-gram model over an integer-token corpus."""

    def __init__(self, vocab_size: int, config: Word2VecConfig | None = None) -> None:
        self.config = config or Word2VecConfig()
        self.vocab_size = vocab_size
        rng = np.random.default_rng(self.config.seed)
        d = self.config.dimension
        bound = 0.5 / d
        self._center = rng.uniform(-bound, bound, size=(vocab_size, d))
        self._context = np.zeros((vocab_size, d))
        self._trained = False

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train(self, sentences: list[list[int]], counts: list[int] | None = None) -> None:
        """Fit embeddings on sentences of token indices.

        Args:
            sentences: Token-index sentences; pairs are generated with the
                configured window.
            counts: Optional per-token occurrence counts used for the
                negative-sampling distribution; uniform when omitted.
        """
        if self.vocab_size == 0:
            self._trained = True
            return
        pairs = self._make_pairs(sentences)
        if pairs.size == 0:
            self._trained = True
            return
        noise = self._noise_distribution(counts)
        rng = np.random.default_rng(self.config.seed + 1)
        cfg = self.config
        total_steps = cfg.epochs * len(pairs)
        step = 0
        for epoch in range(cfg.epochs):
            order = rng.permutation(len(pairs))
            for idx in order:
                center, context = pairs[idx]
                lr = cfg.learning_rate * max(
                    0.05, 1.0 - step / max(1, total_steps)
                )
                negatives = rng.choice(
                    self.vocab_size, size=cfg.negatives, p=noise
                )
                self._sgd_step(center, context, negatives, lr)
                step += 1
        self._trained = True

    def _make_pairs(self, sentences: list[list[int]]) -> np.ndarray:
        """Expand sentences into (center, context) index pairs."""
        window = self.config.window
        pairs: list[tuple[int, int]] = []
        for sentence in sentences:
            for position, center in enumerate(sentence):
                lo = max(0, position - window)
                hi = min(len(sentence), position + window + 1)
                for other in range(lo, hi):
                    if other != position:
                        pairs.append((center, sentence[other]))
        if not pairs:
            return np.empty((0, 2), dtype=np.int64)
        return np.asarray(pairs, dtype=np.int64)

    def _noise_distribution(self, counts: list[int] | None) -> np.ndarray:
        """Unigram^0.75 negative-sampling distribution."""
        if counts is None or len(counts) != self.vocab_size:
            return np.full(self.vocab_size, 1.0 / self.vocab_size)
        freq = np.asarray(counts, dtype=np.float64)
        freq = np.maximum(freq, 1.0) ** 0.75
        return freq / freq.sum()

    def _sgd_step(
        self, center: int, context: int, negatives: np.ndarray, lr: float
    ) -> None:
        """One negative-sampling SGD update."""
        v = self._center[center]
        u_pos = self._context[context]
        score = _sigmoid(u_pos @ v)
        grad_v = (score - 1.0) * u_pos
        self._context[context] = u_pos - lr * (score - 1.0) * v
        for neg in negatives:
            if neg == context:
                continue
            u_neg = self._context[neg]
            score_neg = _sigmoid(u_neg @ v)
            grad_v = grad_v + score_neg * u_neg
            self._context[neg] = u_neg - lr * score_neg * v
        self._center[center] = v - lr * grad_v

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def vector(self, index: int) -> np.ndarray:
        """Embedding of one token (read-only copy)."""
        if not 0 <= index < self.vocab_size:
            raise IndexError(index)
        return self._center[index].copy()

    @property
    def vectors(self) -> np.ndarray:
        """The full (vocab_size, dimension) embedding matrix (copy)."""
        return self._center.copy()

    @property
    def is_trained(self) -> bool:
        """True once :meth:`train` has been called."""
        return self._trained

    def similarity(self, a: int, b: int) -> float:
        """Cosine similarity between two token embeddings."""
        va, vb = self._center[a], self._center[b]
        denom = float(np.linalg.norm(va) * np.linalg.norm(vb))
        if denom == 0.0:
            return 0.0
        return float(va @ vb / denom)


def _sigmoid(x: float) -> float:
    """Numerically-clamped logistic function."""
    if x >= 0:
        z = np.exp(-min(x, 35.0))
        return 1.0 / (1.0 + z)
    z = np.exp(max(x, -35.0))
    return z / (1.0 + z)
