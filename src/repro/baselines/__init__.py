"""Reimplementations of the comparison systems.

* :class:`GMMSchema` -- hierarchical GMM-based node type discovery
  (Bonifati, Dumbrava, Mir; EDBT 2022).  Fits a BIC-selected Gaussian
  mixture on a *sample* of low-dimensional node features (label code +
  property indicators) and assigns every node to its most likely component.
  Nodes only; requires labeled data.
* :class:`SchemI` -- label-driven schema inference (Lbath, Bonifati,
  Harmer; EDBT 2021).  Types are distinct label sets, related types are
  merged by label-set containment, and edges are typed by label plus
  endpoint label sets.  Requires fully labeled data.

Both return the same :class:`~repro.core.result.DiscoveryResult` shape as
PG-HIVE so the evaluation harness treats all systems uniformly, and both
raise :class:`UnsupportedDataError` when the input violates their
full-labeling assumption (the paper's Figures 3-5 show them only at 100 %
label availability for this reason).
"""

from repro.baselines.errors import UnsupportedDataError
from repro.baselines.gmmschema import GMMSchema, GMMSchemaConfig
from repro.baselines.patterngroup import PatternGroup
from repro.baselines.schemi import SchemI, SchemIConfig

__all__ = [
    "GMMSchema",
    "GMMSchemaConfig",
    "PatternGroup",
    "SchemI",
    "SchemIConfig",
    "UnsupportedDataError",
]
