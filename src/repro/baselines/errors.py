"""Errors raised by baseline systems."""


class UnsupportedDataError(ValueError):
    """Raised when a baseline's input assumptions are violated.

    GMMSchema and SchemI both assume fully labeled data; feeding them a
    graph with unlabeled elements raises this error, mirroring the paper's
    evaluation where neither produces results at 50 % or 0 % label
    availability.
    """
