"""GMMSchema baseline (Bonifati, Dumbrava, Mir; EDBT 2022).

Node-type discovery by Gaussian mixture clustering, reconstructed from the
published description and the limitations the PG-HIVE paper enumerates:

(i)   node clustering only -- no edge types are produced;
(ii)  assumes fully labeled datasets (raises otherwise);
(iii) no special handling for missing/noisy properties;
(iv)  fits on a *sample* for performance and assigns the rest by maximum
      component likelihood, which trades completeness/precision for speed.

Features are the node's binary property-indicator vector plus a scalar
label code (each distinct label set maps to a point in [0, 1]).  The number
of mixture components is chosen by a BIC scan whose upper bound tracks the
number of distinct structural patterns observed in the sample -- on clean
data the scan reaches the true pattern count and clusters are pure, while
under noise the pattern count explodes past the scan cap, forcing broad
components that mix types (the degradation the paper reports beyond ~20 %
noise).  The widening scan is also why GMMSchema slows down as noise grows.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.baselines.errors import UnsupportedDataError
from repro.cluster.gmm import GaussianMixture
from repro.core.result import BatchReport, DiscoveryResult
from repro.graph.model import Node, canonical_label
from repro.graph.store import GraphStore
from repro.schema.model import NodeType, SchemaGraph


@dataclass
class GMMSchemaConfig:
    """Knobs of the GMMSchema baseline.

    Attributes:
        sample_size: Nodes used to fit the mixture (the rest are assigned
            by likelihood).  The original applies sampling "to improve
            performance on large graphs".
        component_cap: Hard upper bound of the BIC scan.
        scan_points: How many k values the BIC scan evaluates (spread
            geometrically between 1 and the scan bound).
        max_iter: EM iteration cap per fit.
        seed: RNG seed.
    """

    sample_size: int = 1500
    component_cap: int = 48
    scan_points: int = 6
    max_iter: int = 50
    label_scale: float = 4.0
    seed: int = 11


class GMMSchema:
    """Hierarchical-GMM node type discovery (baseline)."""

    def __init__(self, config: GMMSchemaConfig | None = None) -> None:
        self.config = config or GMMSchemaConfig()

    def discover(self, store: GraphStore) -> DiscoveryResult:
        """Cluster the store's nodes into types.

        Raises:
            UnsupportedDataError: If any node is unlabeled.
        """
        started = time.perf_counter()
        nodes = list(store.scan_nodes())
        if any(not node.labels for node in nodes):
            raise UnsupportedDataError(
                "GMMSchema requires fully labeled nodes"
            )
        if not nodes:
            return DiscoveryResult(schema=SchemaGraph("gmmschema"))
        features, label_codes = _featurize(nodes, self.config.label_scale)
        assignment = self._cluster(features)
        schema = _schema_from_assignment(nodes, assignment)
        elapsed = time.perf_counter() - started
        result = DiscoveryResult(
            schema=schema,
            batches=[BatchReport(
                index=0,
                num_nodes=len(nodes),
                num_edges=0,
                node_clusters=len(set(assignment.tolist())),
                edge_clusters=0,
                seconds=elapsed,
            )],
            discovery_seconds=elapsed,
            total_seconds=elapsed,
        )
        result.refresh_assignments()
        return result

    def _cluster(self, features: np.ndarray) -> np.ndarray:
        """Sampled fit with a BIC scan, then full assignment."""
        cfg = self.config
        n = features.shape[0]
        rng = np.random.default_rng(cfg.seed)
        if n > cfg.sample_size:
            sample_rows = rng.choice(n, size=cfg.sample_size, replace=False)
            sample = features[sample_rows]
        else:
            sample = features
        scan_cap = self._scan_cap(sample)
        best_model: GaussianMixture | None = None
        best_bic = np.inf
        for k in _scan_grid(scan_cap, cfg.scan_points):
            if k > sample.shape[0]:
                break
            model = GaussianMixture(
                k, max_iter=cfg.max_iter, seed=cfg.seed + k
            ).fit(sample)
            bic = model.bic(sample)
            if bic < best_bic:
                best_model, best_bic = model, bic
        if best_model is None:  # unreachable: the scan always fits k=1
            raise RuntimeError("BIC scan fitted no model")
        return best_model.predict(features)

    def _scan_cap(self, sample: np.ndarray) -> int:
        """Upper bound of the BIC scan: distinct patterns in the sample.

        Clean data has few distinct rows (one per type pattern); noise
        multiplies them, widening -- and slowing -- the scan, up to the
        configured cap.
        """
        distinct = len({tuple(row) for row in sample.round(6).tolist()})
        return max(1, min(self.config.component_cap, distinct))


def _featurize(
    nodes: list[Node], label_scale: float = 4.0
) -> tuple[np.ndarray, dict[str, float]]:
    """Binary property indicators plus a scalar label code per node.

    The label code spreads distinct label sets over ``[0, label_scale]`` so
    label identity separates components on clean data, while staying a
    single dimension -- under property noise, broad components fitted across
    many noisy patterns attract points regardless of the label code, which
    is the baseline's documented failure mode.
    """
    keys = sorted({key for node in nodes for key in node.properties})
    key_index = {key: i for i, key in enumerate(keys)}
    tokens = sorted({node.label_token() for node in nodes})
    label_codes = {
        token: label_scale * (i + 1) / (len(tokens) + 1)
        for i, token in enumerate(tokens)
    }
    features = np.zeros((len(nodes), len(keys) + 1))
    for row, node in enumerate(nodes):
        features[row, 0] = label_codes[node.label_token()]
        for key in node.properties:
            features[row, 1 + key_index[key]] = 1.0
    return features, label_codes


def _schema_from_assignment(
    nodes: list[Node], assignment: np.ndarray
) -> SchemaGraph:
    """Name each component after its majority label set."""
    schema = SchemaGraph("gmmschema")
    groups: dict[int, list[Node]] = {}
    for node, cluster in zip(nodes, assignment.tolist()):
        groups.setdefault(int(cluster), []).append(node)
    for cluster_id in sorted(groups):
        members = groups[cluster_id]
        label_votes = Counter(m.label_token() for m in members)
        majority = label_votes.most_common(1)[0][0]
        name = majority or f"CLUSTER_{cluster_id}"
        if name in schema.node_types:
            name = f"{name}_{cluster_id}"
        labels: frozenset[str] = frozenset()
        for member in members:
            labels |= member.labels
        node_type = NodeType(
            name=name,
            labels=labels,
            instance_count=len(members),
            property_counts=Counter(
                key for member in members for key in member.properties
            ),
            members=[member.id for member in members],
        )
        for member in members:
            for key in member.properties:
                node_type.ensure_property(key)
        schema.add_node_type(node_type)
    return schema


def _scan_grid(cap: int, points: int) -> list[int]:
    """Geometric grid of candidate component counts 1..cap."""
    if cap <= 1:
        return [1]
    grid = np.unique(
        np.round(np.geomspace(1, cap, num=max(2, points))).astype(int)
    )
    return [int(k) for k in grid]
