"""Naive exact-pattern grouping: the no-LSH, no-merging reference point.

Not one of the paper's published competitors, but the natural strawman its
design argues against: treat every distinct *pattern* (label set +
property key set, Definitions 3.5/3.6) as its own type, with no clustering
and no merging.  On clean data this is perfect by construction; under
property noise the pattern space explodes (every random property subset
becomes a "type"), and with missing labels structurally identical
patterns from different types collapse.  The ablation benchmark uses it
to quantify how much of PG-HIVE's behaviour comes from the LSH + merge
machinery rather than from the data being easy.

Unlike GMMSchema/SchemI it runs on unlabeled data (patterns do not need
labels), which also makes it the only baseline comparable to PG-HIVE in
the 0 % label scenarios.
"""

from __future__ import annotations

import time
from collections import Counter

from repro.core.result import BatchReport, DiscoveryResult
from repro.graph.model import canonical_label
from repro.graph.store import GraphStore
from repro.schema.model import EdgeType, NodeType, SchemaGraph


class PatternGroup:
    """One type per distinct structural pattern."""

    def discover(self, store: GraphStore) -> DiscoveryResult:
        """Group elements by exact pattern."""
        started = time.perf_counter()
        schema = SchemaGraph("patterngroup")
        node_groups: dict[tuple, list] = {}
        for node in store.scan_nodes():
            key = (node.labels, node.property_keys)
            node_groups.setdefault(key, []).append(node)
        for index, ((labels, keys), members) in enumerate(
            sorted(node_groups.items(), key=lambda kv: repr(kv[0]))
        ):
            name = canonical_label(labels) or "UNLABELED"
            name = f"{name}#{index}"
            node_type = NodeType(
                name=name,
                labels=labels,
                abstract=not labels,
                instance_count=len(members),
                property_counts=Counter(
                    key for m in members for key in m.properties
                ),
                members=[m.id for m in members],
            )
            for key in keys:
                node_type.ensure_property(key)
            schema.add_node_type(node_type)
        edge_groups: dict[tuple, list] = {}
        for edge in store.scan_edges():
            source, target = store.endpoints(edge)
            key = (
                edge.labels, edge.property_keys,
                source.labels, target.labels,
            )
            edge_groups.setdefault(key, []).append(edge)
        for index, ((labels, keys, src, tgt), members) in enumerate(
            sorted(edge_groups.items(), key=lambda kv: repr(kv[0]))
        ):
            name = canonical_label(labels) or "UNLABELED"
            name = f"{name}#{index}"
            edge_type = EdgeType(
                name=name,
                labels=labels,
                abstract=not labels,
                source_labels=src,
                target_labels=tgt,
                instance_count=len(members),
                property_counts=Counter(
                    key for m in members for key in m.properties
                ),
                members=[m.id for m in members],
            )
            for key in keys:
                edge_type.ensure_property(key)
            schema.add_edge_type(edge_type)
        elapsed = time.perf_counter() - started
        result = DiscoveryResult(
            schema=schema,
            batches=[BatchReport(
                index=0,
                num_nodes=store.count_nodes(),
                num_edges=store.count_edges(),
                node_clusters=len(node_groups),
                edge_clusters=len(edge_groups),
                seconds=elapsed,
            )],
            discovery_seconds=elapsed,
            total_seconds=elapsed,
        )
        result.refresh_assignments()
        return result
