"""SchemI baseline (Lbath, Bonifati, Harmer; EDBT 2021).

Label-driven schema inference, reconstructed from the published description
and the limitations the PG-HIVE paper enumerates: SchemI "assumes that all
nodes and edges are labeled, and groups similar node types based on shared
labels", and "cannot infer schemas when labels and properties are missing
or inconsistent".

The reconstruction:

1. every node is aggregated into a candidate type keyed by its exact label
   set (a linear scan over the candidate list per node, as in the original
   prototype's fold);
2. candidate node types are merged when their label sets overlap
   substantially ("grouping similar node types based on shared labels",
   overlap coefficient >= 0.5 by default; containment is the special case
   of overlap 1) -- this is what costs SchemI accuracy on multi-labeled
   and integration datasets, where ground-truth types differ precisely by
   label refinements or share a generic integration label;
3. edges are aggregated by label set and then merged by the same
   containment rule;
4. property sets are unioned per type with a property-frequency histogram,
   and -- unlike PG-HIVE, which defers this to an optional post-processing
   pass -- SchemI folds per-value datatype inference into the single
   discovery pass, since its output schema carries property types.  This
   value-level work is the main reason SchemI trails PG-HIVE's
   time-until-type-discovery in Figure 5.

The per-instance aggregation is intentionally the straightforward
pure-Python fold of the original (no hashing/LSH shortcuts), which is why
SchemI trails PG-HIVE in execution time on larger graphs.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping

from repro.baselines.errors import UnsupportedDataError
from repro.core.datatypes import infer_value_type, join_types
from repro.core.result import BatchReport, DiscoveryResult
from repro.schema.model import DataType
from repro.graph.model import canonical_label
from repro.graph.store import GraphStore
from repro.schema.model import EdgeType, NodeType, SchemaGraph


@dataclass
class SchemIConfig:
    """Knobs of the SchemI baseline.

    Attributes:
        merge_shared_labels: Merge types whose label sets overlap (SchemI's
            "shared labels" grouping).  Kept configurable for ablations.
        label_overlap_threshold: Minimum overlap coefficient
            |A & B| / min(|A|, |B|) for two label sets to denote the same
            conceptual type.
    """

    merge_shared_labels: bool = True
    label_overlap_threshold: float = 0.5


@dataclass
class _Candidate:
    """Accumulator for one candidate type during the fold."""

    labels: frozenset[str]
    property_counts: Counter[str] = field(default_factory=Counter)
    members: list[int] = field(default_factory=list)
    source_labels: frozenset[str] = frozenset()
    target_labels: frozenset[str] = frozenset()
    endpoint_key: tuple[str, ...] = ()
    datatypes: dict[str, DataType] = field(default_factory=dict)

    def observe_properties(self, properties: Mapping[str, object]) -> None:
        """Fold one instance's properties: counts plus datatype joins."""
        for key, value in properties.items():
            self.property_counts[key] += 1
            current = self.datatypes.get(key, DataType.UNKNOWN)
            if current is not DataType.STRING:
                self.datatypes[key] = join_types(
                    current, infer_value_type(value)
                )


class SchemI:
    """Label-set schema inference (baseline)."""

    def __init__(self, config: SchemIConfig | None = None) -> None:
        self.config = config or SchemIConfig()

    def discover(self, store: GraphStore) -> DiscoveryResult:
        """Infer node and edge types from a fully labeled store.

        Raises:
            UnsupportedDataError: If any node or edge is unlabeled.
        """
        started = time.perf_counter()
        node_candidates = self._fold_nodes(store)
        edge_candidates = self._fold_edges(store)
        if self.config.merge_shared_labels:
            threshold = self.config.label_overlap_threshold
            node_candidates = _merge_by_shared_labels(node_candidates, threshold)
            edge_candidates = _merge_by_shared_labels(edge_candidates, threshold)
        schema = _build_schema(node_candidates, edge_candidates)
        elapsed = time.perf_counter() - started
        result = DiscoveryResult(
            schema=schema,
            batches=[BatchReport(
                index=0,
                num_nodes=store.count_nodes(),
                num_edges=store.count_edges(),
                node_clusters=len(node_candidates),
                edge_clusters=len(edge_candidates),
                seconds=elapsed,
            )],
            discovery_seconds=elapsed,
            total_seconds=elapsed,
        )
        result.refresh_assignments()
        return result

    def _fold_nodes(self, store: GraphStore) -> list[_Candidate]:
        """Aggregate nodes into candidates by exact label set."""
        candidates: list[_Candidate] = []
        for node in store.scan_nodes():
            if not node.labels:
                raise UnsupportedDataError(
                    "SchemI requires fully labeled nodes"
                )
            candidate = _find_candidate(candidates, node.labels)
            if candidate is None:
                candidate = _Candidate(labels=node.labels)
                candidates.append(candidate)
            candidate.observe_properties(node.properties)
            candidate.members.append(node.id)
        return candidates

    def _fold_edges(self, store: GraphStore) -> list[_Candidate]:
        """Aggregate edges by label set.

        SchemI types relationships by their labels; endpoint label sets are
        accumulated as metadata but do not split types, so same-label edges
        over different endpoint types collapse into one candidate (one of
        the accuracy gaps against PG-HIVE's endpoint-aware edge types).
        """
        candidates: list[_Candidate] = []
        by_key: dict[frozenset[str], _Candidate] = {}
        for edge in store.scan_edges():
            if not edge.labels:
                raise UnsupportedDataError(
                    "SchemI requires fully labeled edges"
                )
            source, target = store.endpoints(edge)
            candidate = by_key.get(edge.labels)
            if candidate is None:
                candidate = _Candidate(
                    labels=edge.labels,
                    source_labels=source.labels,
                    target_labels=target.labels,
                    endpoint_key=("edge",),
                )
                by_key[edge.labels] = candidate
                candidates.append(candidate)
            candidate.source_labels = candidate.source_labels | source.labels
            candidate.target_labels = candidate.target_labels | target.labels
            candidate.observe_properties(edge.properties)
            candidate.members.append(edge.id)
        return candidates


def _find_candidate(
    candidates: list[_Candidate], labels: frozenset[str]
) -> _Candidate | None:
    """Linear scan for an exact label-set match (the original's fold)."""
    for candidate in candidates:
        if candidate.labels == labels and not candidate.endpoint_key:
            return candidate
    return None


def _merge_by_shared_labels(
    candidates: list[_Candidate], threshold: float = 0.5
) -> list[_Candidate]:
    """Merge candidates whose label sets share enough labels.

    Pairwise over candidates (the O(G^2) step of the original): when the
    overlap coefficient of two label sets reaches the threshold, the two
    are deemed the same conceptual type and merged into the more general
    one.  Containment is the overlap-1 special case; a shared integration
    label (e.g. HET.IO's HetionetNode on every node) chains whole families
    together, which is exactly the behaviour that costs SchemI accuracy on
    such datasets.
    """
    from repro.util.similarity import overlap_coefficient

    merged: list[_Candidate] = []
    for candidate in sorted(candidates, key=lambda c: len(c.labels)):
        host = None
        for existing in merged:
            if overlap_coefficient(existing.labels, candidate.labels) < threshold:
                continue
            host = existing
            break
        if host is None:
            merged.append(candidate)
        else:
            host.property_counts.update(candidate.property_counts)
            for key, datatype in candidate.datatypes.items():
                host.datatypes[key] = join_types(
                    host.datatypes.get(key, DataType.UNKNOWN), datatype
                )
            host.members.extend(candidate.members)
            host.source_labels = host.source_labels | candidate.source_labels
            host.target_labels = host.target_labels | candidate.target_labels
    return merged


def _build_schema(
    node_candidates: list[_Candidate], edge_candidates: list[_Candidate]
) -> SchemaGraph:
    """Materialize candidates into a schema graph."""
    schema = SchemaGraph("schemi")
    for candidate in node_candidates:
        name = canonical_label(candidate.labels)
        if name in schema.node_types:
            name = f"{name}_{len(schema.node_types)}"
        node_type = NodeType(
            name=name,
            labels=candidate.labels,
            instance_count=len(candidate.members),
            property_counts=Counter(candidate.property_counts),
            members=list(candidate.members),
        )
        for key in candidate.property_counts:
            spec = node_type.ensure_property(key)
            spec.datatype = candidate.datatypes.get(key, DataType.UNKNOWN)
        schema.add_node_type(node_type)
    for candidate in edge_candidates:
        name = canonical_label(candidate.labels)
        src = canonical_label(candidate.source_labels)
        tgt = canonical_label(candidate.target_labels)
        full_name = f"{name}({src}->{tgt})"
        if full_name in schema.edge_types:
            full_name = f"{full_name}_{len(schema.edge_types)}"
        edge_type = EdgeType(
            name=full_name,
            labels=candidate.labels,
            source_labels=candidate.source_labels,
            target_labels=candidate.target_labels,
            instance_count=len(candidate.members),
            property_counts=Counter(candidate.property_counts),
            members=list(candidate.members),
        )
        for key in candidate.property_counts:
            spec = edge_type.ensure_property(key)
            spec.datatype = candidate.datatypes.get(key, DataType.UNKNOWN)
        schema.add_edge_type(edge_type)
    return schema
