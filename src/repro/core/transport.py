"""Zero-copy shard transport: shared-memory and memmap column slabs.

The parallel driver's original payload contract pickled everything that
crossed the process-pool pipe: column arrays travelling to the workers
and per-shard schemas travelling back.  Pickling numpy arrays copies
them twice (serialize + deserialize), and the pipe itself is a byte
stream -- at LDBC scale 32 a run moved ~2.7 MB through it.  This module
replaces the pipe with *named shared segments*:

* the driver writes arrays (or pickled result bytes) into a segment --
  a POSIX shared-memory object (``transport="shm"``) or a plain file
  under a scratch directory (``transport="memmap"``) -- and ships only a
  tiny :class:`SlabRef` (name, size) plus :class:`ArrayRef` offsets;
* workers *attach* to the segment and build read-only
  ``numpy.frombuffer`` views at the given offsets -- no copy, no
  unpickling;
* workers ship results the same way in reverse: the driver *reserves* a
  segment name per task, the worker creates the segment and writes its
  pickled results into it, and only the name crosses the pipe back.

Cleanup protocol
----------------
Segment lifetime is owned entirely by the driver through a
:class:`SegmentRegistry` context manager.  Every name -- driver-created
or merely reserved for a worker -- is tracked from the moment it exists;
a segment is untracked only once it has been successfully unlinked.  On
any exit path (success, task failure, ``BrokenProcessPool`` respawn,
SIGKILL of a hung pool, an exception in the driver itself) the
registry's ``close()`` sweeps every still-tracked name, ignoring the
ones a crashed worker never got to create.  The shared-memory
``resource_tracker`` cooperates: parent and forked workers share one
tracker process, its registry has set semantics, and a single unlink
unregisters a name no matter how many processes attached to it, so the
driver-side sweep leaves nothing for the tracker to warn about.

Fault sites
-----------
``attach`` fires in the worker before attaching to a payload segment
(a transient attach failure flows through the ordinary shard retry
machinery); ``unlink`` fires in the driver before consuming a result
segment (the result is lost, the shard re-runs, and the final sweep
still reclaims the segment).  Both are exercised by
``tests/test_recovery.py`` under the leak-check fixture.
"""

from __future__ import annotations

import mmap
import os
import shutil
import tempfile
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Sequence

import numpy

from repro.core.faults import FaultInjector

__all__ = [
    "ArrayRef",
    "SegmentRegistry",
    "Slab",
    "SlabRef",
    "TRANSPORTS",
    "attach_slab",
    "publish_result_bytes",
    "resolve_transport",
    "shm_available",
]

#: The recognized shard transports, in decreasing order of ambition.
TRANSPORTS = ("pickle", "shm", "memmap")

#: Name prefix of every segment (and memmap scratch directory) this
#: module creates; the test suite's leak fixture greps for it.
SEGMENT_PREFIX = "pghive"

#: Per-array alignment inside a slab, generous enough for any dtype.
_ALIGN = 16


def shm_available() -> bool:
    """Whether POSIX shared memory actually works on this host.

    Probes by creating and unlinking a tiny segment: containers mounting
    a read-only or absent ``/dev/shm`` fail here rather than mid-run.
    """
    try:
        segment = shared_memory.SharedMemory(create=True, size=16)
    except (OSError, ValueError):
        return False
    segment.close()
    segment.unlink()
    return True


def resolve_transport(requested: str) -> str:
    """Resolve a configured transport to one that works on this host.

    ``shm`` silently degrades to ``memmap`` when shared memory is
    unavailable (files always work); ``pickle`` and ``memmap`` resolve
    to themselves.  An unknown name raises -- config validation should
    have caught it earlier.
    """
    if requested not in TRANSPORTS:
        raise ValueError(
            f"shard_transport must be one of {TRANSPORTS}, got {requested!r}"
        )
    if requested == "shm" and not shm_available():
        return "memmap"
    return requested


@dataclass(frozen=True)
class SlabRef:
    """Pipe-sized handle to one shared segment.

    Attributes:
        transport: ``"shm"``, ``"memmap"`` or ``"file"`` (pickle
            payloads never carry a ref).
        name: Segment name (shm) or file name inside ``directory``.
        size: Logical payload size in bytes (shm rounds segments up to a
            page, so readers slice to this).
        directory: The memmap scratch (or ``"file"`` owner) directory;
            ``None`` for shm.

    The ``"file"`` transport is the store-owned flavour: the ref points
    at a plain file managed by its creator (the disk store's partition
    spill), attachable exactly like a memmap segment but *never* tracked
    or unlinked by a :class:`SegmentRegistry` -- lifetime belongs to the
    store, so a ref can be attached by any number of pool runs.
    """

    transport: str
    name: str
    size: int
    directory: str | None = None


@dataclass(frozen=True)
class ArrayRef:
    """Location of one array inside a slab: offset, length, dtype."""

    offset: int
    count: int
    dtype: str


class Slab:
    """A read-side attachment to a shared segment.

    Provides zero-copy ``numpy.frombuffer`` views at :class:`ArrayRef`
    offsets.  Views are marked read-only: several workers may map the
    same slab concurrently, and the driver's copy is the only mutable
    one.  ``close()`` tolerates still-exported views (a worker that
    retained a view simply keeps the mapping alive until the view dies;
    the driver-side *unlink* is what reclaims the segment name).
    """

    def __init__(self, ref: SlabRef) -> None:
        self.ref = ref
        self._shm: shared_memory.SharedMemory | None = None
        self._mmap: mmap.mmap | None = None
        self._buffer: memoryview | bytes
        if ref.transport == "shm":
            self._shm = shared_memory.SharedMemory(name=ref.name)
            self._buffer = self._shm.buf
        elif ref.transport in ("memmap", "file"):
            if ref.directory is None:
                raise ValueError(
                    f"{ref.transport} SlabRef carries no directory"
                )
            path = os.path.join(ref.directory, ref.name)
            if ref.size == 0:
                self._buffer = b""
            else:
                with open(path, "rb") as handle:
                    self._mmap = mmap.mmap(
                        handle.fileno(), 0, access=mmap.ACCESS_READ
                    )
                self._buffer = memoryview(self._mmap)
        else:
            raise ValueError(f"cannot attach transport {ref.transport!r}")

    def array(self, ref: ArrayRef) -> numpy.ndarray:
        """Read-only view of the array at ``ref`` (no copy for shm)."""
        view = numpy.frombuffer(
            self._buffer,
            dtype=numpy.dtype(ref.dtype),
            count=ref.count,
            offset=ref.offset,
        )
        view.flags.writeable = False
        return view

    def read_bytes(self) -> bytes:
        """The slab's logical payload as bytes (copies once)."""
        return bytes(self._buffer[: self.ref.size])

    def close(self) -> None:
        """Detach; never unlinks (the driver's registry owns names)."""
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:
                # A live numpy view still exports the buffer; the
                # mapping is reclaimed when the view is garbage
                # collected, and the segment name by the driver sweep.
                pass
            self._shm = None
        if self._mmap is not None:
            if isinstance(self._buffer, memoryview):
                try:
                    self._buffer.release()
                except BufferError:
                    pass
            try:
                self._mmap.close()
            except BufferError:
                pass
            self._mmap = None


def attach_slab(
    ref: SlabRef,
    injector: FaultInjector | None = None,
    index: int = 0,
    attempt: int | None = None,
    in_worker: bool = True,
) -> Slab:
    """Worker-side attach with the ``attach`` fault-injection site."""
    if injector is not None:
        injector.fire("attach", index, attempt, in_worker=in_worker)
    return Slab(ref)


def publish_result_bytes(
    transport: str, directory: str | None, name: str, data: bytes
) -> SlabRef:
    """Worker-side: create the driver-reserved segment and fill it.

    The driver never learns more than the name it reserved plus the
    size; a worker killed between reservation and creation leaves
    nothing behind, and one killed after creation leaves a segment the
    driver's sweep reclaims by name.
    """
    if transport == "shm":
        segment = shared_memory.SharedMemory(
            create=True, name=name, size=max(len(data), 1)
        )
        segment.buf[: len(data)] = data
        segment.close()
    elif transport == "memmap":
        if directory is None:
            raise ValueError("memmap transport requires a scratch directory")
        with open(os.path.join(directory, name), "wb") as handle:
            handle.write(data)
    else:
        raise ValueError(f"cannot publish through transport {transport!r}")
    return SlabRef(transport, name, len(data), directory)


class SegmentRegistry:
    """Driver-side owner of every segment of one pool run.

    Context manager: ``close()`` (or ``__exit__``) unlinks every
    still-tracked segment -- including names that were only *reserved*
    for workers that crashed before creating them -- and removes the
    memmap scratch directory.  Tracking is by name; a name leaves the
    registry only on successful unlink, so no exit path can leak.
    """

    def __init__(
        self,
        transport: str,
        directory: str | None = None,
        injector: FaultInjector | None = None,
    ) -> None:
        if transport not in ("shm", "memmap"):
            raise ValueError(
                f"SegmentRegistry handles shm/memmap, got {transport!r}"
            )
        self.transport = transport
        self.injector = injector
        self._counter = 0
        self._tracked: set[str] = set()
        self._closed = False
        self.directory: str | None = None
        if transport == "memmap":
            root = directory or tempfile.gettempdir()
            os.makedirs(root, exist_ok=True)
            self.directory = tempfile.mkdtemp(
                prefix=f"{SEGMENT_PREFIX}-mm-", dir=root
            )

    # ------------------------------------------------------------------
    # Names
    # ------------------------------------------------------------------
    def _next_name(self) -> str:
        self._counter += 1
        return f"{SEGMENT_PREFIX}_{os.getpid()}_{self._counter}"

    def reserve(self) -> str:
        """Reserve (and track) a name for a worker-created segment."""
        name = self._next_name()
        self._tracked.add(name)
        return name

    # ------------------------------------------------------------------
    # Driver-side writes
    # ------------------------------------------------------------------
    def publish_bytes(self, data: bytes) -> SlabRef:
        """Create a segment holding ``data``; returns its ref."""
        name = self._next_name()
        self._tracked.add(name)
        if self.transport == "shm":
            segment = shared_memory.SharedMemory(
                create=True, name=name, size=max(len(data), 1)
            )
            segment.buf[: len(data)] = data
            segment.close()
        else:
            if self.directory is None:
                raise RuntimeError("memmap registry lost its directory")
            with open(os.path.join(self.directory, name), "wb") as handle:
                handle.write(data)
        return SlabRef(self.transport, name, len(data), self.directory)

    def publish_arrays(
        self, arrays: Sequence[numpy.ndarray]
    ) -> tuple[SlabRef, list[ArrayRef]]:
        """Pack arrays into one slab; returns (slab ref, array refs)."""
        refs: list[ArrayRef] = []
        offset = 0
        chunks: list[bytes] = []
        for array in arrays:
            contiguous = numpy.ascontiguousarray(array)
            refs.append(
                ArrayRef(offset, int(contiguous.size), contiguous.dtype.str)
            )
            raw = contiguous.tobytes()
            padded = -len(raw) % _ALIGN
            chunks.append(raw)
            if padded:
                chunks.append(b"\x00" * padded)
            offset += len(raw) + padded
        slab = self.publish_bytes(b"".join(chunks))
        return slab, refs

    # ------------------------------------------------------------------
    # Driver-side reads and cleanup
    # ------------------------------------------------------------------
    def consume_bytes(self, ref: SlabRef, index: int = 0) -> bytes:
        """Read a worker-created segment, then unlink it.

        Fires the ``unlink`` fault site first: an injected failure here
        loses the result (the shard re-runs) but never the segment --
        it stays tracked and the final sweep reclaims it.
        """
        if self.injector is not None:
            self.injector.fire("unlink", index)
        slab = Slab(ref)
        try:
            data = slab.read_bytes()
        finally:
            slab.close()
        self._unlink(ref.name)
        self._tracked.discard(ref.name)
        return data

    def release(self, name: str) -> None:
        """Unlink one tracked segment (missing segments are fine)."""
        self._unlink(name)
        self._tracked.discard(name)

    def _unlink(self, name: str) -> None:
        if self.transport == "shm":
            try:
                segment = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                return  # reserved but never created, or already gone
            segment.close()
            segment.unlink()
        else:
            if self.directory is None:
                return
            try:
                os.unlink(os.path.join(self.directory, name))
            except FileNotFoundError:
                return

    def close(self) -> None:
        """Sweep every tracked segment and the memmap scratch dir."""
        if self._closed:
            return
        self._closed = True
        for name in sorted(self._tracked):
            try:
                self._unlink(name)
            except OSError:  # pragma: no cover - sweep is best-effort
                continue
        self._tracked.clear()
        if self.directory is not None:
            shutil.rmtree(self.directory, ignore_errors=True)
            self.directory = None

    def __enter__(self) -> "SegmentRegistry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
