"""Value profiles: enumerations and bounded ranges (paper future work).

Section 4.4 leaves "the identification of more detailed datatypes, such as
enumerated types or bounded ranges" for future work.  This module
implements both:

* **enumerations** -- a property whose observed values come from a small
  closed set (at most ``enum_cap`` distinct values and no more than
  ``enum_ratio`` of the observation count) is profiled as an ENUM of those
  values;
* **bounded ranges** -- numeric properties get (min, max) bounds, and
  temporal properties get (earliest, latest) bounds.

Profiles attach to :class:`~repro.schema.model.PropertySpec` and render in
the STRICT PG-Schema output, e.g. ``status STRING /* enum {open, closed}
*/`` or ``age INT /* range 0..120 */``.

:class:`PropertyPartial` is the *mergeable* form of the same statistics:
parallel shard workers accumulate one partial per (type, property key),
the schema merge tree folds them with :meth:`PropertyPartial.merge`, and
:meth:`PropertyPartial.to_profile` reconstructs the exact profile a
serial :func:`profile_values` scan over the concatenated values would
produce.  Every constituent statistic is an associative, commutative
fold (count sum, set union, canonical min/max), so the result is
independent of shard count and merge order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.datatypes import infer_datatype, infer_value_type, join_types
from repro.schema.model import DataType

_DEFAULT_ENUM_CAP = 12
_DEFAULT_ENUM_RATIO = 0.5
_NUMERIC = (DataType.INTEGER, DataType.FLOAT)
_TEMPORAL = (DataType.DATE, DataType.TIMESTAMP)


@dataclass(frozen=True, slots=True)
class ValueProfile:
    """Refined description of a property's value domain.

    Attributes:
        is_enum: True when the value domain is a small closed set.
        enum_values: The sorted enum members (empty unless ``is_enum``).
        minimum / maximum: Range bounds for numeric or temporal properties
            (``None`` when not applicable).
        distinct_count: Number of distinct observed values.
        observation_count: Number of observed values.
    """

    is_enum: bool = False
    enum_values: tuple[bool | int | float | str | None, ...] = ()
    minimum: int | float | str | None = None
    maximum: int | float | str | None = None
    distinct_count: int = 0
    observation_count: int = 0

    def render(self) -> str:
        """Annotation text for serializers; empty when nothing applies."""
        if self.is_enum:
            members = ", ".join(str(v) for v in self.enum_values)
            return f"enum {{{members}}}"
        if self.minimum is not None and self.maximum is not None:
            return f"range {self.minimum}..{self.maximum}"
        return ""


def profile_values(
    values: Sequence[Any],
    enum_cap: int = _DEFAULT_ENUM_CAP,
    enum_ratio: float = _DEFAULT_ENUM_RATIO,
    datatype: DataType | None = None,
) -> ValueProfile:
    """Analyze a property's observed values.

    Args:
        values: All (or sampled) values of one property.
        enum_cap: Maximum distinct values for an enumeration.
        enum_ratio: Distinct/observed ratio ceiling -- a property with ten
            values, all distinct, is not an enum; one with three distinct
            values over a thousand observations is.
        datatype: The property's inferred datatype (computed if omitted).
    """
    if not values:
        return ValueProfile()
    if datatype is None or datatype is DataType.UNKNOWN:
        datatype = infer_datatype(values)
    hashable = [_freeze(v) for v in values]
    distinct = set(hashable)
    is_enum = (
        len(distinct) <= enum_cap
        and len(distinct) <= max(1, int(enum_ratio * len(values)))
        and datatype in (DataType.STRING, DataType.BOOLEAN, DataType.INTEGER)
    )
    enum_values: tuple[bool | int | float | str | None, ...] = ()
    if is_enum:
        enum_values = _thaw_sorted(distinct)
    minimum = maximum = None
    if datatype in _NUMERIC:
        numeric = [v for v in values if isinstance(v, (int, float))
                   and not isinstance(v, bool)]
        numeric += [
            number
            for number in (
                _parse_number(v) for v in values if isinstance(v, str)
            )
            if number is not None
        ]
        if numeric:
            minimum = min(numeric, key=_numeric_sort_key)
            maximum = max(numeric, key=_numeric_sort_key)
    elif datatype in _TEMPORAL:
        temporal = sorted(str(v) for v in values)
        minimum, maximum = temporal[0], temporal[-1]
    return ValueProfile(
        is_enum=is_enum,
        enum_values=enum_values,
        minimum=minimum,
        maximum=maximum,
        distinct_count=len(distinct),
        observation_count=len(values),
    )


@dataclass
class PropertyPartial:
    """Mergeable per-shard statistics of one property's values.

    A worker observes each value exactly once; the driver folds partials
    from different shards with :meth:`merge`.  All fields are commutative
    monoid folds, so any merge order over any sharding of the same value
    multiset reaches the same state:

    * ``datatype`` -- shard-local lattice join
      (:func:`~repro.core.datatypes.join_types` is associative and
      commutative, so per-shard joins fold exactly);
    * ``observations`` / ``distinct`` -- count sum and union of frozen
      values (the enum-candidate sketch);
    * ``numeric_min`` / ``numeric_max`` -- bounds over native numbers and
      numeric strings under the canonical :func:`_numeric_sort_key`
      order (tie between an equal int and float resolves the same way
      everywhere);
    * ``text_min`` / ``text_max`` -- lexicographic bounds over ``str(v)``
      of *all* values, consulted only when the final datatype turns out
      temporal (temporal datatypes only arise from all-string values, so
      these equal the serial temporal bounds).
    """

    datatype: DataType = DataType.UNKNOWN
    observations: int = 0
    distinct: set[tuple[str, bool | int | float | str | None]] = field(
        default_factory=set
    )
    numeric_min: int | float | None = None
    numeric_max: int | float | None = None
    text_min: str | None = None
    text_max: str | None = None

    def observe_datatype(self, value: Any) -> None:
        """Fold only the datatype lattice and the observation count.

        The bounded-memory form used when value profiles are disabled:
        retaining the distinct-value sketch and the min/max bounds would
        make the driver-side stats merge O(data) -- the whole value
        multiset rides the shard schemas home -- for statistics
        :func:`~repro.core.postprocess.apply_partial_stats` then never
        reads.  Datatype and count are all the profile-less passes
        consume, and both stay exact.
        """
        self.datatype = join_types(self.datatype, infer_value_type(value))
        self.observations += 1

    def observe(self, value: Any) -> None:
        """Fold one observed value into the partial."""
        self.datatype = join_types(self.datatype, infer_value_type(value))
        self.observations += 1
        self.distinct.add(_freeze(value))
        number: int | float | None = None
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            number = value
        elif isinstance(value, str):
            number = _parse_number(value)
        if number is not None:
            if (
                self.numeric_min is None
                or _numeric_sort_key(number) < _numeric_sort_key(self.numeric_min)
            ):
                self.numeric_min = number
            if (
                self.numeric_max is None
                or _numeric_sort_key(number) > _numeric_sort_key(self.numeric_max)
            ):
                self.numeric_max = number
        text = str(value)
        if self.text_min is None or text < self.text_min:
            self.text_min = text
        if self.text_max is None or text > self.text_max:
            self.text_max = text

    def merge(self, other: "PropertyPartial") -> "PropertyPartial":
        """Fold another shard's partial into this one (returns self)."""
        self.datatype = join_types(self.datatype, other.datatype)
        self.observations += other.observations
        self.distinct |= other.distinct
        for number in (other.numeric_min, other.numeric_max):
            if number is None:
                continue
            if (
                self.numeric_min is None
                or _numeric_sort_key(number) < _numeric_sort_key(self.numeric_min)
            ):
                self.numeric_min = number
            if (
                self.numeric_max is None
                or _numeric_sort_key(number) > _numeric_sort_key(self.numeric_max)
            ):
                self.numeric_max = number
        for text in (other.text_min, other.text_max):
            if text is None:
                continue
            if self.text_min is None or text < self.text_min:
                self.text_min = text
            if self.text_max is None or text > self.text_max:
                self.text_max = text
        return self

    def to_profile(
        self,
        enum_cap: int = _DEFAULT_ENUM_CAP,
        enum_ratio: float = _DEFAULT_ENUM_RATIO,
    ) -> ValueProfile:
        """The profile a serial scan over the same values would produce."""
        is_enum = (
            len(self.distinct) <= enum_cap
            and len(self.distinct)
            <= max(1, int(enum_ratio * self.observations))
            and self.datatype
            in (DataType.STRING, DataType.BOOLEAN, DataType.INTEGER)
        )
        enum_values: tuple[bool | int | float | str | None, ...] = ()
        if is_enum:
            enum_values = _thaw_sorted(self.distinct)
        minimum: int | float | str | None = None
        maximum: int | float | str | None = None
        if self.datatype in _NUMERIC:
            minimum, maximum = self.numeric_min, self.numeric_max
        elif self.datatype in _TEMPORAL:
            minimum, maximum = self.text_min, self.text_max
        return ValueProfile(
            is_enum=is_enum,
            enum_values=enum_values,
            minimum=minimum,
            maximum=maximum,
            distinct_count=len(self.distinct),
            observation_count=self.observations,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (used by the parallel shard journal)."""
        return {
            "datatype": self.datatype.name,
            "observations": self.observations,
            "distinct": [
                list(item)
                for item in sorted(
                    self.distinct,
                    key=lambda item: (item[0], repr(item[1])),
                )
            ],
            "numeric_min": self.numeric_min,
            "numeric_max": self.numeric_max,
            "text_min": self.text_min,
            "text_max": self.text_max,
        }

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> "PropertyPartial":
        """Inverse of :meth:`to_dict`."""
        return cls(
            datatype=DataType[str(record.get("datatype", "UNKNOWN"))],
            observations=int(record.get("observations", 0)),
            distinct={
                (str(tag), value)
                for tag, value in record.get("distinct", ())
            },
            numeric_min=record.get("numeric_min"),
            numeric_max=record.get("numeric_max"),
            text_min=record.get("text_min"),
            text_max=record.get("text_max"),
        )


def _numeric_sort_key(value: int | float) -> tuple[int | float, bool]:
    """Total order over mixed int/float numbers, ties broken by kind.

    ``1`` and ``1.0`` compare equal but render differently (``1`` vs
    ``1.0``), so a plain ``min()``/``max()`` would depend on scan order.
    The tuple key makes the choice canonical -- the minimum prefers the
    int, the maximum the float -- which keeps bounds associative under
    partial merging and identical between serial and sharded scans.
    """
    return (value, isinstance(value, float))


def _freeze(value: Any) -> tuple[str, bool | int | float | str | None]:
    """Canonical hashable stand-in for a value, tagged with its type.

    Cross-type equality (``0 == False``, ``1 == True``, ``1 == 1.0``)
    would otherwise let a plain set keep whichever representative was
    inserted first, making the distinct set -- and the enum members built
    from it -- depend on scan order. Tagging every frozen form with the
    value's type name keeps such values distinct, so serial scans and
    merged shard partials agree on the frozen set byte for byte.
    Non-primitive values (lists, dicts, hashable composites) freeze to
    their ``repr`` under a dedicated tag.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return (type(value).__name__, value)
    return ("repr", repr(value))


def _thaw_sorted(
    distinct: set[tuple[str, bool | int | float | str | None]],
) -> tuple[bool | int | float | str | None, ...]:
    """Deterministic enum ordering over a set of frozen values.

    Sorts by the ``repr`` of the original value (matching the rendered
    form), with the type tag breaking exact-repr ties.
    """
    return tuple(
        value
        for _tag, value in sorted(
            distinct, key=lambda item: (repr(item[1]), item[0])
        )
    )


def _parse_number(text: str) -> float | None:
    """Numeric value of a string, if it is one."""
    try:
        return float(text)
    except ValueError:
        return None
