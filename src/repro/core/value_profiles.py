"""Value profiles: enumerations and bounded ranges (paper future work).

Section 4.4 leaves "the identification of more detailed datatypes, such as
enumerated types or bounded ranges" for future work.  This module
implements both:

* **enumerations** -- a property whose observed values come from a small
  closed set (at most ``enum_cap`` distinct values and no more than
  ``enum_ratio`` of the observation count) is profiled as an ENUM of those
  values;
* **bounded ranges** -- numeric properties get (min, max) bounds, and
  temporal properties get (earliest, latest) bounds.

Profiles attach to :class:`~repro.schema.model.PropertySpec` and render in
the STRICT PG-Schema output, e.g. ``status STRING /* enum {open, closed}
*/`` or ``age INT /* range 0..120 */``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.datatypes import infer_datatype
from repro.schema.model import DataType

_DEFAULT_ENUM_CAP = 12
_DEFAULT_ENUM_RATIO = 0.5
_NUMERIC = (DataType.INTEGER, DataType.FLOAT)
_TEMPORAL = (DataType.DATE, DataType.TIMESTAMP)


@dataclass(frozen=True, slots=True)
class ValueProfile:
    """Refined description of a property's value domain.

    Attributes:
        is_enum: True when the value domain is a small closed set.
        enum_values: The sorted enum members (empty unless ``is_enum``).
        minimum / maximum: Range bounds for numeric or temporal properties
            (``None`` when not applicable).
        distinct_count: Number of distinct observed values.
        observation_count: Number of observed values.
    """

    is_enum: bool = False
    enum_values: tuple[str | bool | int, ...] = ()
    minimum: int | float | str | None = None
    maximum: int | float | str | None = None
    distinct_count: int = 0
    observation_count: int = 0

    def render(self) -> str:
        """Annotation text for serializers; empty when nothing applies."""
        if self.is_enum:
            members = ", ".join(str(v) for v in self.enum_values)
            return f"enum {{{members}}}"
        if self.minimum is not None and self.maximum is not None:
            return f"range {self.minimum}..{self.maximum}"
        return ""


def profile_values(
    values: Sequence[Any],
    enum_cap: int = _DEFAULT_ENUM_CAP,
    enum_ratio: float = _DEFAULT_ENUM_RATIO,
    datatype: DataType | None = None,
) -> ValueProfile:
    """Analyze a property's observed values.

    Args:
        values: All (or sampled) values of one property.
        enum_cap: Maximum distinct values for an enumeration.
        enum_ratio: Distinct/observed ratio ceiling -- a property with ten
            values, all distinct, is not an enum; one with three distinct
            values over a thousand observations is.
        datatype: The property's inferred datatype (computed if omitted).
    """
    if not values:
        return ValueProfile()
    if datatype is None or datatype is DataType.UNKNOWN:
        datatype = infer_datatype(values)
    hashable = [_freeze(v) for v in values]
    distinct = set(hashable)
    is_enum = (
        len(distinct) <= enum_cap
        and len(distinct) <= max(1, int(enum_ratio * len(values)))
        and datatype in (DataType.STRING, DataType.BOOLEAN, DataType.INTEGER)
    )
    enum_values: tuple[str | bool | int, ...] = ()
    if is_enum:
        enum_values = tuple(sorted(distinct, key=repr))
    minimum = maximum = None
    if datatype in _NUMERIC:
        numeric = [v for v in values if isinstance(v, (int, float))
                   and not isinstance(v, bool)]
        numeric += [
            _parse_number(v) for v in values if isinstance(v, str)
        ]
        numeric = [v for v in numeric if v is not None]
        if numeric:
            minimum, maximum = min(numeric), max(numeric)
    elif datatype in _TEMPORAL:
        temporal = sorted(str(v) for v in values)
        minimum, maximum = temporal[0], temporal[-1]
    return ValueProfile(
        is_enum=is_enum,
        enum_values=enum_values,
        minimum=minimum,
        maximum=maximum,
        distinct_count=len(distinct),
        observation_count=len(values),
    )


def _freeze(value: Any) -> Any:
    """Hashable stand-in for a value (lists/dicts become their repr)."""
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


def _parse_number(text: str) -> float | None:
    """Numeric value of a string, if it is one."""
    try:
        return float(text)
    except ValueError:
        return None
