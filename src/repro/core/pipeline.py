"""PG-HIVE: the end-to-end schema discovery pipeline (Algorithm 1).

:class:`PGHive` ties the substrates together.  A *static* run processes the
whole graph as a single batch; an *incremental* run streams the store in
batches through the same engine.  Both end with the optional post-processing
passes (property constraints, datatypes, cardinalities) and produce a
:class:`~repro.core.result.DiscoveryResult` whose ``schema`` can be
serialized with :func:`repro.schema.serialize_pg_schema` /
:func:`repro.schema.serialize_xsd`.

Example:
    >>> from repro.graph import GraphBuilder, GraphStore
    >>> builder = GraphBuilder()
    >>> a = builder.node(["Person"], {"name": "Ada"})
    >>> b = builder.node(["Person"], {"name": "Bob"})
    >>> _ = builder.edge(a, b, ["KNOWS"], {"since": 2021})
    >>> result = PGHive().discover(GraphStore(builder.build()))
    >>> sorted(result.schema.node_types)
    ['Person']
"""

from __future__ import annotations

import time

from repro.core.config import PGHiveConfig
from repro.core.incremental import IncrementalDiscovery
from repro.core.postprocess import (
    compute_cardinalities,
    infer_datatypes,
    infer_property_constraints,
)
from repro.core.result import DiscoveryResult
from repro.graph.store import GraphStore


class PGHive:
    """Hybrid incremental schema discovery for property graphs."""

    def __init__(self, config: PGHiveConfig | None = None) -> None:
        self.config = config or PGHiveConfig()

    def discover(self, store: GraphStore) -> DiscoveryResult:
        """Run static discovery over an entire graph store."""
        return self.discover_incremental(store, num_batches=1)

    def discover_incremental(
        self,
        store: GraphStore,
        num_batches: int,
        post_process_each_batch: bool = False,
    ) -> DiscoveryResult:
        """Run discovery over ``num_batches`` random batches of the store.

        Args:
            store: The graph store to discover.
            num_batches: How many batches to stream (1 = static run).
            post_process_each_batch: Run the post-processing passes after
                every batch instead of only at the end (Algorithm 1's
                ``postProcessing`` flag).  The final schema is identical;
                intermediate schemas are then always fully annotated.
        """
        started = time.perf_counter()
        engine = IncrementalDiscovery(self.config, name=store.graph.name)
        discovery_seconds = 0.0
        for batch in store.batches(num_batches, seed=self.config.seed):
            report = engine.process_batch(
                batch.nodes, batch.edges, batch.endpoint_labels
            )
            discovery_seconds += report.seconds
            if post_process_each_batch and self.config.post_processing:
                self._post_process(engine, store)
        if self.config.post_processing and not post_process_each_batch:
            self._post_process(engine, store)
        result = DiscoveryResult(
            schema=engine.schema,
            batches=engine.reports,
            parameters=dict(engine.parameters),
            discovery_seconds=discovery_seconds,
            total_seconds=time.perf_counter() - started,
        )
        result.refresh_assignments()
        return result

    def _post_process(
        self, engine: IncrementalDiscovery, store: GraphStore
    ) -> None:
        """Constraints, datatypes, cardinalities (section 4.4)."""
        infer_property_constraints(engine.schema)
        infer_datatypes(engine.schema, store, self.config)
        compute_cardinalities(engine.schema, store)
        if self.config.exact_cardinality_bounds:
            from repro.core.cardinality_bounds import (
                compute_cardinality_bounds,
            )

            bounds = compute_cardinality_bounds(engine.schema, store)
            for name, edge_bounds in bounds.items():
                engine.schema.edge_types[name].bounds = edge_bounds
