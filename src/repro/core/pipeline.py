"""PG-HIVE: the end-to-end schema discovery pipeline (Algorithm 1).

:class:`PGHive` ties the substrates together.  A *static* run processes the
whole graph as a single batch; an *incremental* run streams the store in
batches through the same engine.  Both end with the optional post-processing
passes (property constraints, datatypes, cardinalities) and produce a
:class:`~repro.core.result.DiscoveryResult` whose ``schema`` can be
serialized with :func:`repro.schema.serialize_pg_schema` /
:func:`repro.schema.serialize_xsd`.

Example:
    >>> from repro.graph import GraphBuilder, GraphStore
    >>> builder = GraphBuilder()
    >>> a = builder.node(["Person"], {"name": "Ada"})
    >>> b = builder.node(["Person"], {"name": "Bob"})
    >>> _ = builder.edge(a, b, ["KNOWS"], {"since": 2021})
    >>> result = PGHive().discover(GraphStore(builder.build()))
    >>> sorted(result.schema.node_types)
    ['Person']
"""

from __future__ import annotations

import time
from typing import Iterator

from repro.core.config import PGHiveConfig
from repro.core.faults import FaultInjector
from repro.core.incremental import IncrementalDiscovery
from repro.core.postprocess import (
    apply_partial_stats,
    clear_partial_stats,
    compute_cardinalities,
    infer_datatypes,
    infer_property_constraints,
)
from repro.core.result import DiscoveryResult, ShardFailure
from repro.datasets.stream import GraphStream
from repro.graph.slab import SlabCorruptionError
from repro.graph.store import BaseGraphStore, GraphBatch, GraphStore
from repro.schema.model import SchemaGraph


def _iter_batches(
    store: BaseGraphStore,
    num_batches: int,
    config: PGHiveConfig,
    failures: list[ShardFailure],
) -> Iterator[GraphBatch]:
    """Stream the store's batches, honouring ``corrupt_slab_policy``.

    With ``"skip"`` each batch is planned and materialized individually
    so a :class:`~repro.graph.slab.SlabCorruptionError` quarantines only
    the damaged shard (appended to ``failures`` as a ``"corruption"``
    record) while the surviving batches still stream.  The default
    ``"raise"`` policy takes the plain path and lets corruption
    propagate -- corrupt storage is never silently read either way.
    """
    if config.corrupt_slab_policy != "skip":
        yield from store.batches(num_batches, seed=config.seed)
        return
    for plan in store.plan_shards(num_batches, seed=config.seed):
        try:
            yield store.materialize_shard(plan)
        except SlabCorruptionError as exc:
            failures.append(
                ShardFailure(plan.index, 0, "corruption", str(exc))
            )


class PGHive:
    """Hybrid incremental schema discovery for property graphs."""

    def __init__(self, config: PGHiveConfig | None = None) -> None:
        self.config = config or PGHiveConfig()

    def discover(self, store: BaseGraphStore) -> DiscoveryResult:
        """Run static discovery over an entire graph store."""
        return self.discover_incremental(store, num_batches=1)

    def discover_incremental(
        self,
        store: BaseGraphStore | GraphStream,
        num_batches: int,
        post_process_each_batch: bool = False,
        resume: bool = False,
    ) -> DiscoveryResult:
        """Run discovery over ``num_batches`` batches of the source.

        Args:
            store: The graph store to discover, or a seeded
                :class:`~repro.datasets.stream.GraphStream` whose
                batches are discovered as they are generated (with
                ``jobs > 1`` the workers *replay* the seeded generation
                themselves, so the live stream is never consumed).
            num_batches: How many batches to stream (1 = static run).
                For a stream this must equal ``stream.num_batches``.
            post_process_each_batch: Run the post-processing passes after
                every batch instead of only at the end (Algorithm 1's
                ``postProcessing`` flag).  The final schema is identical;
                intermediate schemas are then always fully annotated.
            resume: Continue from the checkpoint in
                ``config.checkpoint_dir`` if one exists (no-op when the
                directory is unset or empty).  Batch partitioning is
                deterministic for a fixed seed, so a run killed at batch
                ``i`` and resumed here replays batches ``i..`` and ends
                with a schema identical to an uninterrupted run.  The
                checkpoint records the source name, batch count and seed;
                resuming against a different plan raises
                :class:`~repro.schema.persist.SchemaPersistError`.
        """
        if isinstance(store, GraphStream):
            return self._discover_stream(
                store, num_batches, post_process_each_batch, resume
            )
        started = time.perf_counter()
        fallback_reason = self._parallel_fallback_reason(
            num_batches, post_process_each_batch
        )
        if (
            self.config.jobs > 1
            and num_batches > 1
            and fallback_reason is None
        ):
            from repro.core.parallel import ParallelDiscovery

            result = ParallelDiscovery(self.config).discover_store(
                store, num_batches, resume=resume
            )
            if self.config.post_processing:
                # The shard workers already folded the post-processing
                # statistics; applying them here reproduces the serial
                # passes without re-reading the store.  Configurations
                # the partial fold cannot express (sampling mode, or a
                # journal written with stats off) fall back to the
                # store-backed passes -- the schema is identical either
                # way.
                if not apply_partial_stats(result.schema, self.config):
                    clear_partial_stats(result.schema)
                    self._post_process(result.schema, store)
                elif self.config.exact_cardinality_bounds:
                    self._apply_exact_bounds(result.schema, store)
            else:
                clear_partial_stats(result.schema)
            result.total_seconds = time.perf_counter() - started
            result.refresh_assignments()
            return result
        config = self.config
        injector = FaultInjector.from_spec(config.faults)
        checkpoint_dir = config.checkpoint_dir
        context: dict[str, object] = {
            "source": store.name,
            "num_batches": num_batches,
            "seed": config.seed,
        }
        fingerprint = store.journal_fingerprint()
        if fingerprint is not None:
            # Durable stores key the checkpoint to their on-disk state,
            # so a resume never replays against a different slab
            # generation (appends change the fingerprint).
            context["store"] = fingerprint
        engine: IncrementalDiscovery | None = None
        if (
            checkpoint_dir
            and resume
            and IncrementalDiscovery.has_checkpoint(checkpoint_dir)
        ):
            engine = IncrementalDiscovery.from_checkpoint(
                checkpoint_dir, config, expected_context=context
            )
        if engine is None:
            engine = IncrementalDiscovery(config, name=store.name)
        resumed_from = engine._batch_counter
        discovery_seconds = sum(r.seconds for r in engine.reports)
        shard_failures: list[ShardFailure] = []
        for batch in _iter_batches(
            store, num_batches, config, shard_failures
        ):
            if batch.index < resumed_from:
                continue  # deterministic partition: already checkpointed
            if injector is not None:
                injector.fire("batch", batch.index)
            report = engine.process_batch(
                batch.nodes, batch.edges, batch.endpoint_labels
            )
            discovery_seconds += report.seconds
            if post_process_each_batch and config.post_processing:
                self._post_process(engine.schema, store)
            if checkpoint_dir and (
                (batch.index + 1) % config.checkpoint_every == 0
                or batch.index + 1 == num_batches
            ):
                engine.save_checkpoint(checkpoint_dir, context=context)
        if config.post_processing and not post_process_each_batch:
            self._post_process(engine.schema, store)
        if config.strict_recovery and shard_failures:
            from repro.core.parallel import ShardRecoveryError

            raise ShardRecoveryError(shard_failures)
        result = DiscoveryResult(
            schema=engine.schema,
            batches=engine.reports,
            parameters=dict(engine.parameters),
            discovery_seconds=discovery_seconds,
            total_seconds=time.perf_counter() - started,
            resumed_from=resumed_from,
            parallel_fallback=fallback_reason,
            shard_failures=shard_failures,
        )
        result.refresh_assignments()
        return result

    def _discover_stream(
        self,
        stream: GraphStream,
        num_batches: int,
        post_process_each_batch: bool,
        resume: bool,
    ) -> DiscoveryResult:
        """Discover a seeded stream, batch by batch or on the pool.

        The stream's batching is fixed at construction, so
        ``num_batches`` must equal ``stream.num_batches``.  With
        ``jobs > 1`` the parallel driver ships only
        :class:`~repro.datasets.stream.StreamShardPlan` scalars and the
        workers replay the seeded generation themselves; the live
        stream stays pristine and is drained afterwards only if a
        store-backed post-processing pass needs the accumulated graph.
        """
        if num_batches != stream.num_batches:
            raise ValueError(
                f"a stream is pre-batched: num_batches must equal "
                f"stream.num_batches ({stream.num_batches}), "
                f"got {num_batches}"
            )
        started = time.perf_counter()
        config = self.config
        fallback_reason = self._parallel_fallback_reason(
            num_batches, post_process_each_batch, streaming=True
        )
        if config.jobs > 1 and fallback_reason is None:
            from repro.core.parallel import ParallelDiscovery

            result = ParallelDiscovery(config).discover_stream(
                stream, resume=resume
            )
            backing: GraphStore | None = None
            if config.post_processing:
                if not apply_partial_stats(result.schema, config):
                    clear_partial_stats(result.schema)
                    backing = self._stream_store(stream)
                    self._post_process(result.schema, backing)
                elif config.exact_cardinality_bounds:
                    backing = self._stream_store(stream)
                    self._apply_exact_bounds(result.schema, backing)
            else:
                clear_partial_stats(result.schema)
            result.total_seconds = time.perf_counter() - started
            result.refresh_assignments()
            return result
        injector = FaultInjector.from_spec(config.faults)
        checkpoint_dir = config.checkpoint_dir
        context = {
            "source": stream.graph.name,
            "num_batches": num_batches,
            "seed": stream.seed,
        }
        engine: IncrementalDiscovery | None = None
        if (
            checkpoint_dir
            and resume
            and IncrementalDiscovery.has_checkpoint(checkpoint_dir)
        ):
            engine = IncrementalDiscovery.from_checkpoint(
                checkpoint_dir, config, expected_context=context
            )
        if engine is None:
            engine = IncrementalDiscovery(config, name=stream.graph.name)
        resumed_from = engine._batch_counter
        discovery_seconds = sum(r.seconds for r in engine.reports)
        for batch in stream.batches():
            # Skip *after* generating: the generator's side effects keep
            # the stream RNG and population on track for later batches.
            if batch.index < resumed_from:
                continue
            if injector is not None:
                injector.fire("batch", batch.index)
            report = engine.process_batch(
                batch.nodes, batch.edges, batch.endpoint_labels
            )
            discovery_seconds += report.seconds
            if post_process_each_batch and config.post_processing:
                self._post_process(engine.schema, GraphStore(stream.graph))
            if checkpoint_dir and (
                (batch.index + 1) % config.checkpoint_every == 0
                or batch.index + 1 == num_batches
            ):
                engine.save_checkpoint(checkpoint_dir, context=context)
        if config.post_processing and not post_process_each_batch:
            self._post_process(engine.schema, GraphStore(stream.graph))
        result = DiscoveryResult(
            schema=engine.schema,
            batches=engine.reports,
            parameters=dict(engine.parameters),
            discovery_seconds=discovery_seconds,
            total_seconds=time.perf_counter() - started,
            resumed_from=resumed_from,
            parallel_fallback=fallback_reason,
        )
        result.refresh_assignments()
        return result

    @staticmethod
    def _stream_store(stream: GraphStream) -> GraphStore:
        """Store over a stream's accumulated graph, draining it if needed.

        Only valid on a stream whose live generator has not been
        partially consumed: either pristine (the parallel path never
        touches it -- workers replay seeded replicas) or fully drained.
        Draining a pristine stream here advances its RNG exactly as a
        sequential pass would, so the accumulated graph matches what the
        workers replayed.
        """
        if not stream.graph.num_nodes:
            for _ in stream.batches():
                pass
        return GraphStore(stream.graph)

    def _parallel_fallback_reason(
        self,
        num_batches: int,
        post_process_each_batch: bool,
        streaming: bool = False,
    ) -> str | None:
        """Why a ``jobs > 1`` request cannot use the multi-process driver.

        Returns ``None`` when parallel execution is possible (or when
        parallelism was never requested: ``jobs=1`` always takes the
        sequential path, whose output the parallel path matches byte for
        byte on labeled data).  Parallel sharding requires independent
        batch schemas, so per-batch post-processing forces the
        sequential engine, as does the reference-kernel mode (the worker
        payload is columnized).  Pattern memoization no longer forces it
        for stores: the pool decouples it through the two-phase snapshot
        protocol of :mod:`repro.core.absorption` (stream batches still
        couple to the running schema, so memoized streams stay
        sequential).  Checkpointed parallel runs journal completed
        shards under ``checkpoint_dir/shards/`` and resume mid-pool, so
        ``checkpoint_dir`` no longer forces the sequential engine
        either.
        """
        from repro.core.parallel import fork_available

        if self.config.jobs <= 1:
            return None
        if num_batches <= 1:
            return "a single batch cannot be sharded"
        if post_process_each_batch:
            return "per-batch post-processing couples batches sequentially"
        if streaming and self.config.memoize_patterns:
            return (
                "pattern memoization couples stream batches to the "
                "running schema"
            )
        if self.config.kernels != "vectorized":
            return "reference kernels only run on the sequential engine"
        if not fork_available():
            return "fork start method unavailable on this platform"
        return None

    def _post_process(
        self, schema: SchemaGraph, store: BaseGraphStore
    ) -> None:
        """Constraints, datatypes, cardinalities (section 4.4)."""
        infer_property_constraints(schema)
        infer_datatypes(schema, store, self.config)
        compute_cardinalities(schema, store)
        if self.config.exact_cardinality_bounds:
            self._apply_exact_bounds(schema, store)

    def _apply_exact_bounds(
        self, schema: SchemaGraph, store: BaseGraphStore
    ) -> None:
        """Exact per-endpoint cardinality bounds (store-backed pass)."""
        from repro.core.cardinality_bounds import compute_cardinality_bounds

        bounds = compute_cardinality_bounds(schema, store)
        for name, edge_bounds in bounds.items():
            schema.edge_types[name].bounds = edge_bounds
