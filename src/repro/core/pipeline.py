"""PG-HIVE: the end-to-end schema discovery pipeline (Algorithm 1).

:class:`PGHive` ties the substrates together.  A *static* run processes the
whole graph as a single batch; an *incremental* run streams the store in
batches through the same engine.  Both end with the optional post-processing
passes (property constraints, datatypes, cardinalities) and produce a
:class:`~repro.core.result.DiscoveryResult` whose ``schema`` can be
serialized with :func:`repro.schema.serialize_pg_schema` /
:func:`repro.schema.serialize_xsd`.

Example:
    >>> from repro.graph import GraphBuilder, GraphStore
    >>> builder = GraphBuilder()
    >>> a = builder.node(["Person"], {"name": "Ada"})
    >>> b = builder.node(["Person"], {"name": "Bob"})
    >>> _ = builder.edge(a, b, ["KNOWS"], {"since": 2021})
    >>> result = PGHive().discover(GraphStore(builder.build()))
    >>> sorted(result.schema.node_types)
    ['Person']
"""

from __future__ import annotations

import time

from repro.core.config import PGHiveConfig
from repro.core.faults import FaultInjector
from repro.core.incremental import IncrementalDiscovery
from repro.core.postprocess import (
    compute_cardinalities,
    infer_datatypes,
    infer_property_constraints,
)
from repro.core.result import DiscoveryResult
from repro.graph.store import GraphStore
from repro.schema.model import SchemaGraph


class PGHive:
    """Hybrid incremental schema discovery for property graphs."""

    def __init__(self, config: PGHiveConfig | None = None) -> None:
        self.config = config or PGHiveConfig()

    def discover(self, store: GraphStore) -> DiscoveryResult:
        """Run static discovery over an entire graph store."""
        return self.discover_incremental(store, num_batches=1)

    def discover_incremental(
        self,
        store: GraphStore,
        num_batches: int,
        post_process_each_batch: bool = False,
        resume: bool = False,
    ) -> DiscoveryResult:
        """Run discovery over ``num_batches`` random batches of the store.

        Args:
            store: The graph store to discover.
            num_batches: How many batches to stream (1 = static run).
            post_process_each_batch: Run the post-processing passes after
                every batch instead of only at the end (Algorithm 1's
                ``postProcessing`` flag).  The final schema is identical;
                intermediate schemas are then always fully annotated.
            resume: Continue from the checkpoint in
                ``config.checkpoint_dir`` if one exists (no-op when the
                directory is unset or empty).  Batch partitioning is
                deterministic for a fixed seed, so a run killed at batch
                ``i`` and resumed here replays batches ``i..`` and ends
                with a schema identical to an uninterrupted run.  The
                checkpoint records the source name, batch count and seed;
                resuming against a different plan raises
                :class:`~repro.schema.persist.SchemaPersistError`.
        """
        started = time.perf_counter()
        if self._parallel_eligible(num_batches, post_process_each_batch):
            from repro.core.parallel import ParallelDiscovery

            result = ParallelDiscovery(self.config).discover_store(
                store, num_batches
            )
            if self.config.post_processing:
                self._post_process(result.schema, store)
            result.total_seconds = time.perf_counter() - started
            result.refresh_assignments()
            return result
        config = self.config
        injector = FaultInjector.from_spec(config.faults)
        checkpoint_dir = config.checkpoint_dir
        context = {
            "source": store.graph.name,
            "num_batches": num_batches,
            "seed": config.seed,
        }
        engine: IncrementalDiscovery | None = None
        if (
            checkpoint_dir
            and resume
            and IncrementalDiscovery.has_checkpoint(checkpoint_dir)
        ):
            engine = IncrementalDiscovery.from_checkpoint(
                checkpoint_dir, config, expected_context=context
            )
        if engine is None:
            engine = IncrementalDiscovery(config, name=store.graph.name)
        resumed_from = engine._batch_counter
        discovery_seconds = sum(r.seconds for r in engine.reports)
        for batch in store.batches(num_batches, seed=config.seed):
            if batch.index < resumed_from:
                continue  # deterministic partition: already checkpointed
            if injector is not None:
                injector.fire("batch", batch.index)
            report = engine.process_batch(
                batch.nodes, batch.edges, batch.endpoint_labels
            )
            discovery_seconds += report.seconds
            if post_process_each_batch and config.post_processing:
                self._post_process(engine.schema, store)
            if checkpoint_dir and (
                (batch.index + 1) % config.checkpoint_every == 0
                or batch.index + 1 == num_batches
            ):
                engine.save_checkpoint(checkpoint_dir, context=context)
        if config.post_processing and not post_process_each_batch:
            self._post_process(engine.schema, store)
        result = DiscoveryResult(
            schema=engine.schema,
            batches=engine.reports,
            parameters=dict(engine.parameters),
            discovery_seconds=discovery_seconds,
            total_seconds=time.perf_counter() - started,
            resumed_from=resumed_from,
        )
        result.refresh_assignments()
        return result

    def _parallel_eligible(
        self, num_batches: int, post_process_each_batch: bool
    ) -> bool:
        """Whether this run routes through the multi-process driver.

        Parallel sharding requires independent batch schemas, so the
        memoization fast path (which couples each batch to the running
        schema) and per-batch post-processing force the sequential
        engine, as does the reference-kernel mode (the worker payload is
        columnized).  Checkpointed runs also stay sequential: the
        journal tracks a linear batch frontier, while the parallel
        driver recovers through retries and fallback instead.
        ``jobs=1`` always takes the sequential path, whose output the
        parallel path matches byte for byte on labeled data.
        """
        from repro.core.parallel import fork_available

        return (
            self.config.jobs > 1
            and num_batches > 1
            and not post_process_each_batch
            and not self.config.memoize_patterns
            and not self.config.checkpoint_dir
            and self.config.kernels == "vectorized"
            and fork_available()
        )

    def _post_process(self, schema: SchemaGraph, store: GraphStore) -> None:
        """Constraints, datatypes, cardinalities (section 4.4)."""
        infer_property_constraints(schema)
        infer_datatypes(schema, store, self.config)
        compute_cardinalities(schema, store)
        if self.config.exact_cardinality_bounds:
            from repro.core.cardinality_bounds import (
                compute_cardinality_bounds,
            )

            bounds = compute_cardinality_bounds(schema, store)
            for name, edge_bounds in bounds.items():
                schema.edge_types[name].bounds = edge_bounds
