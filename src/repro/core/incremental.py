"""The incremental discovery engine (paper section 4.6).

Each batch of nodes and edges goes through the same pipeline as a static
run -- embed labels, vectorize, LSH-cluster, extract types (Algorithm 2) --
and the resulting batch schema is merged into the running schema with the
monotone rules of :func:`repro.schema.merge.merge_schemas`.  The running
schema therefore forms the monotone chain S_1 <= S_2 <= ... of the paper.

The engine is deliberately independent of :class:`PGHive` so it can be
driven directly by streaming code (see ``examples/incremental_streaming``).

Two execution modes exist, selected by ``PGHiveConfig.kernels``:

* ``"vectorized"`` (default): each batch is columnized once
  (:mod:`repro.core.columns`) and every expensive stage -- embedding
  corpus construction, vectorization, LSH hashing, mu estimation,
  refinement and cluster summarization -- runs once per *distinct
  pattern* and expands to elements with fancy indexing.  A trained
  embedder is also reused across batches whose deduplicated sentence
  corpus is unchanged (stable-vocabulary streams skip Word2Vec
  retraining entirely).
* ``"reference"``: the original element-at-a-time loops, kept as the
  executable specification and as the measurement baseline of
  ``benchmarks/bench_hotpath.py``.

Both modes produce byte-identical schemas for a fixed seed
(``tests/test_hotpath_kernels.py`` enforces this).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.core.adaptive import choose_parameters
from repro.core.columns import (
    EdgeColumns,
    NodeColumns,
    dense_first_appearance,
    edge_columns,
    node_columns,
    union_of,
)
from repro.core.config import LSHMethod, PGHiveConfig
from repro.core.result import BatchReport
from repro.core.type_extraction import (
    build_edge_clusters,
    build_edge_clusters_from_columns,
    build_node_clusters,
    build_node_clusters_from_columns,
    extract_edge_types,
    extract_node_types,
    resolve_edge_endpoints,
)
from repro.core.vectorize import (
    EdgeVectorizer,
    EmbeddingCache,
    FeatureInterner,
    NodeVectorizer,
)
from repro.embeddings.embedder import LabelEmbedder
from repro.graph.model import Edge, Node, canonical_label
from repro.lsh.buckets import (
    cluster_by_band_union,
    cluster_by_band_union_reference,
    cluster_by_full_signature,
)
from repro.lsh.elsh import EuclideanLSH
from repro.lsh.minhash import MinHashLSH
from repro.schema.merge import merge_schemas
from repro.schema.model import SchemaGraph
from repro.util.timing import StageTimer


def _refine_by_labels(elements: Sequence, assignment: np.ndarray) -> np.ndarray:
    """Split each LSH cluster by canonical label token.

    Per Definitions 3.2/3.3, elements with different label sets belong to
    different types; an (unlikely) LSH collision between them must not
    survive into type extraction, where merging is union-only.  Unlabeled
    elements (empty token) keep their structural cluster, so the
    Jaccard-based merging of section 4.3 still sees them whole.

    This is the element-at-a-time reference; the vectorized engine uses
    :func:`_refine_by_label_ids` over interned label ids instead.
    """
    if assignment.size == 0:
        return assignment
    # Keyed on the label *frozenset* (not the concatenated token), so a
    # literal "A&B" label never aliases the {A, B} label set.
    refined: dict[tuple[int, frozenset], int] = {}
    out = np.empty_like(assignment)
    for index, (element, cluster_id) in enumerate(
        zip(elements, assignment.tolist())
    ):
        key = (int(cluster_id), element.labels)
        out[index] = refined.setdefault(key, len(refined))
    return out


def _refine_by_label_ids(
    assignment: np.ndarray, label_ids: np.ndarray, num_label_sets: int
) -> np.ndarray:
    """Vectorized :func:`_refine_by_labels` over interned label-set ids.

    Each (cluster id, label-set id) pair becomes one refined cluster,
    numbered densely in first-appearance order -- exactly the
    ``setdefault(key, len(refined))`` numbering of the reference loop,
    because interned ids are in bijection with the label frozensets.
    """
    if assignment.size == 0:
        return assignment
    combined = assignment * np.int64(max(num_label_sets, 1)) + label_ids
    refined, _ = dense_first_appearance(combined)
    return refined


class IncrementalDiscovery:
    """Stateful schema discovery over a stream of graph batches."""

    def __init__(
        self,
        config: PGHiveConfig | None = None,
        name: str = "stream",
        schema: SchemaGraph | None = None,
    ) -> None:
        """Create an engine, optionally resuming a persisted schema.

        Args:
            config: Pipeline configuration.
            name: Name for a freshly created schema.
            schema: A previously discovered schema (e.g. loaded with
                :func:`repro.schema.persist.load_schema`) to keep
                extending; batches merge into it monotonically.
        """
        self.config = config or PGHiveConfig()
        self.schema = schema if schema is not None else SchemaGraph(name)
        self.reports: list[BatchReport] = []
        self.parameters: dict[str, str] = {}
        self._batch_counter = 0
        # Embedder reuse across batches (vectorized mode): key is the
        # deduplicated, sorted sentence corpus; Word2Vec training is
        # deterministic, so an unchanged corpus implies identical
        # embeddings and retraining would be pure waste.
        self._embedder_corpus_key: tuple | None = None
        self._cached_embedder: LabelEmbedder | None = None

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    CHECKPOINT_FILENAME = "pghive-checkpoint.json"

    @classmethod
    def checkpoint_path(cls, directory: str | Path) -> Path:
        """The checkpoint file inside ``directory``."""
        return Path(directory) / cls.CHECKPOINT_FILENAME

    def save_checkpoint(
        self, directory: str | Path, context: dict[str, Any] | None = None
    ) -> Path:
        """Journal the engine's full resumable state into ``directory``.

        Written atomically (one document, temp file + rename): the
        running schema plus a manifest of how many batches completed,
        the per-batch reports and LSH parameters, and an optional caller
        ``context`` (e.g. the batch plan) that resume can validate
        against.  The embedder cache is deliberately *not* persisted --
        it is a pure-cost cache, and a resumed engine simply refits.

        Returns:
            The checkpoint file path.
        """
        from repro.schema.persist import save_checkpoint

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest: dict[str, Any] = {
            "next_batch": self._batch_counter,
            "schema_name": self.schema.name,
            "parameters": dict(self.parameters),
            "reports": [report.to_dict() for report in self.reports],
            "context": dict(context or {}),
        }
        path = self.checkpoint_path(directory)
        save_checkpoint(path, self.schema, manifest)
        return path

    @classmethod
    def from_checkpoint(
        cls,
        directory: str | Path,
        config: PGHiveConfig | None = None,
        expected_context: dict[str, Any] | None = None,
    ) -> "IncrementalDiscovery":
        """Rebuild an engine from :meth:`save_checkpoint` output.

        The resumed engine continues exactly where the checkpointed one
        stopped: its batch counter, parameter log and reports pick up at
        ``next_batch``, so feeding it the remaining batches of the same
        sequence produces a final schema identical to an uninterrupted
        run (the kill-at-batch-i equivalence test enforces this).

        Args:
            directory: Directory holding the checkpoint.
            config: Configuration for the resumed engine.
            expected_context: When given, every key must match the
                checkpoint's stored context -- a cheap guard against
                resuming with a different batch plan, seed or input, which
                would silently corrupt the schema chain.

        Raises:
            FileNotFoundError: No checkpoint in ``directory``.
            SchemaPersistError: Corrupt checkpoint or context mismatch.
        """
        from repro.core.result import BatchReport
        from repro.schema.persist import SchemaPersistError, load_checkpoint

        path = cls.checkpoint_path(directory)
        schema, manifest = load_checkpoint(path)
        stored_context = manifest.get("context", {})
        for key, expected in (expected_context or {}).items():
            stored = stored_context.get(key)
            if stored != expected:
                raise SchemaPersistError(
                    f"{path}: checkpoint context mismatch for {key!r}: "
                    f"checkpoint has {stored!r}, this run expects "
                    f"{expected!r}"
                )
        engine = cls(config, schema=schema)
        engine._batch_counter = int(manifest.get("next_batch", 0))
        engine.parameters = dict(manifest.get("parameters", {}))
        engine.reports = [
            BatchReport.from_dict(record)
            for record in manifest.get("reports", ())
        ]
        return engine

    @classmethod
    def has_checkpoint(cls, directory: str | Path) -> bool:
        """Whether ``directory`` holds a checkpoint file."""
        return cls.checkpoint_path(directory).is_file()

    def process_batch(
        self,
        nodes: Sequence[Node],
        edges: Sequence[Edge],
        endpoint_labels: dict[int, frozenset[str]] | None = None,
    ) -> BatchReport:
        """Cluster one batch and merge its types into the running schema.

        Args:
            nodes: Batch nodes.
            edges: Batch edges (sources/targets may live in other batches).
            endpoint_labels: node id -> label set for every endpoint the
                edges reference; defaults to the labels of the batch's own
                nodes.

        Returns:
            A :class:`BatchReport` with timings (total and per stage) and
            cluster counts.
        """
        started = time.perf_counter()
        stages = StageTimer()
        if endpoint_labels is None:
            endpoint_labels = {node.id: node.labels for node in nodes}
        memo_node_hits = memo_edge_hits = 0
        if self.config.memoize_patterns:
            nodes, edges, memo_node_hits, memo_edge_hits = (
                self._absorb_known_patterns(nodes, edges, endpoint_labels)
            )
        batch_schema = SchemaGraph(f"batch{self._batch_counter}")
        embedder_reused = False
        if self.config.kernels == "vectorized":
            node_clusters, edge_clusters, embedder_reused = (
                self._process_batch_vectorized(
                    nodes, edges, endpoint_labels, batch_schema, stages
                )
            )
        else:
            node_clusters, edge_clusters = self._process_batch_reference(
                nodes, edges, endpoint_labels, batch_schema, stages
            )
        with stages.stage("merge"):
            merge_schemas(
                self.schema,
                batch_schema,
                self.config.jaccard_threshold,
                self.config.endpoint_jaccard_threshold,
            )
            resolve_edge_endpoints(self.schema)
        elapsed = time.perf_counter() - started
        report = BatchReport(
            index=self._batch_counter,
            num_nodes=len(nodes) + memo_node_hits,
            num_edges=len(edges) + memo_edge_hits,
            node_clusters=len(node_clusters),
            edge_clusters=len(edge_clusters),
            seconds=elapsed,
            memo_node_hits=memo_node_hits,
            memo_edge_hits=memo_edge_hits,
            stage_seconds=dict(stages.seconds),
            embedder_reused=embedder_reused,
        )
        self.reports.append(report)
        self._batch_counter += 1
        return report

    # ------------------------------------------------------------------
    # Batch bodies (vectorized kernels vs. reference loops)
    # ------------------------------------------------------------------
    def _process_batch_vectorized(
        self,
        nodes: Sequence[Node],
        edges: Sequence[Edge],
        endpoint_labels: dict[int, frozenset[str]],
        batch_schema: SchemaGraph,
        stages: StageTimer,
    ) -> tuple[list, list, bool]:
        """Columnized pipeline: every stage works per distinct pattern."""
        with stages.stage("vectorize"):
            ncols = node_columns(nodes)
            ecols = edge_columns(edges, endpoint_labels)
        return self._process_batch_from_columns(
            ncols, ecols, batch_schema, stages
        )

    def _process_batch_from_columns(
        self,
        ncols: NodeColumns,
        ecols: EdgeColumns,
        batch_schema: SchemaGraph,
        stages: StageTimer,
    ) -> tuple[list, list, bool]:
        """Vectorized batch body over pre-built columns.

        This is the worker payload contract of the parallel driver
        (:mod:`repro.core.parallel`): everything downstream of
        columnization needs only the compact integer-id arrays, never the
        original :class:`Node`/:class:`Edge` objects.
        """
        with stages.stage("embed"):
            embedder, embedder_reused = self._fit_embedder_columns(
                ncols, ecols
            )
        # One embedding cache for both element kinds: endpoint label sets
        # embedded during the node pass are free in the edge pass.
        cache = EmbeddingCache(embedder, self.config.label_weight)
        raw_nodes = self._cluster_nodes_columns(
            ncols, len(ncols), embedder, cache, stages
        )
        with stages.stage("cluster"):
            node_assignment = _refine_by_label_ids(
                raw_nodes, ncols.label_ids, len(ncols.labels)
            )
        with stages.stage("extract"):
            node_clusters = build_node_clusters_from_columns(
                ncols, node_assignment
            )
            extract_node_types(
                batch_schema, node_clusters, self.config.jaccard_threshold
            )
        overrides = self._endpoint_label_overrides_columns(
            batch_schema, ncols
        )
        ecols = ecols.with_endpoint_overrides(overrides)
        raw_edges = self._cluster_edges_columns(
            ecols, len(ecols), embedder, cache, stages
        )
        with stages.stage("cluster"):
            edge_assignment = _refine_by_label_ids(
                raw_edges, ecols.label_ids, len(ecols.labels)
            )
        with stages.stage("extract"):
            edge_clusters = build_edge_clusters_from_columns(
                ecols, edge_assignment
            )
            extract_edge_types(
                batch_schema,
                edge_clusters,
                self.config.jaccard_threshold,
                self.config.endpoint_jaccard_threshold,
            )
            resolve_edge_endpoints(batch_schema)
        return node_clusters, edge_clusters, embedder_reused

    def _process_batch_reference(
        self,
        nodes: Sequence[Node],
        edges: Sequence[Edge],
        endpoint_labels: dict[int, frozenset[str]],
        batch_schema: SchemaGraph,
        stages: StageTimer,
    ) -> tuple[list, list]:
        """Element-at-a-time pipeline (the pre-kernel implementation)."""
        with stages.stage("embed"):
            embedder = self._fit_embedder(nodes, edges, endpoint_labels)
        # Nodes first: cluster, then extract node types so the edge stage
        # can reuse them.  Clusters are refined by label token: Definition
        # 3.2 makes distinct label sets distinct types, so a rare LSH
        # collision between differently-labeled elements must not merge
        # them (unlabeled elements keep their structural cluster).
        raw_nodes = self._cluster_nodes(nodes, embedder, stages)
        with stages.stage("cluster"):
            node_assignment = _refine_by_labels(nodes, raw_nodes)
        with stages.stage("extract"):
            node_clusters = build_node_clusters(nodes, node_assignment)
            extract_node_types(
                batch_schema, node_clusters, self.config.jaccard_threshold
            )
        # Hybrid step: endpoints whose labels are missing are typed by the
        # node *type* they were extracted into, so edge vectors and
        # edge-type merging still see structural endpoint identity at 0 %
        # label availability.
        effective_labels = self._effective_endpoint_labels(
            batch_schema, nodes, endpoint_labels
        )
        raw_edges = self._cluster_edges(
            edges, effective_labels, embedder, stages
        )
        with stages.stage("cluster"):
            edge_assignment = _refine_by_labels(edges, raw_edges)
        with stages.stage("extract"):
            edge_clusters = build_edge_clusters(
                edges, edge_assignment, effective_labels
            )
            extract_edge_types(
                batch_schema,
                edge_clusters,
                self.config.jaccard_threshold,
                self.config.endpoint_jaccard_threshold,
            )
            resolve_edge_endpoints(batch_schema)
        return node_clusters, edge_clusters

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------
    def _absorb_known_patterns(
        self,
        nodes: Sequence[Node],
        edges: Sequence[Edge],
        endpoint_labels: dict[int, frozenset[str]],
    ) -> tuple[list[Node], list[Edge], int, int]:
        """DiscoPG-style fast path: absorb elements matching known types.

        A labeled node whose label set names an existing type and whose
        property keys are a subset of that type's keys would end up merged
        into it anyway; absorb it directly (update counts and membership)
        and leave it out of the expensive pipeline.  Likewise for labeled
        edges whose label, keys and endpoint labels all match an existing
        edge type.  Returns the remaining elements and the hit counts.
        """
        from repro.schema.merge import endpoints_compatible
        from repro.schema.model import EdgeType

        node_types_by_labels = {
            t.labels: t for t in self.schema.node_types.values() if t.labels
        }
        remaining_nodes: list[Node] = []
        node_hits = 0
        for node in nodes:
            host = node_types_by_labels.get(node.labels)
            if host is not None and node.property_keys <= host.property_keys:
                host.instance_count += 1
                host.property_counts.update(node.properties.keys())
                host.members.append(node.id)
                node_hits += 1
            else:
                remaining_nodes.append(node)
        empty: frozenset[str] = frozenset()
        remaining_edges: list[Edge] = []
        edge_hits = 0
        for edge in edges:
            host = None
            if edge.labels:
                probe = EdgeType(
                    "?", edge.labels,
                    source_labels=endpoint_labels.get(edge.source, empty),
                    target_labels=endpoint_labels.get(edge.target, empty),
                )
                for edge_type in self.schema.edge_types_for_labels(edge.labels):
                    if (
                        edge.property_keys <= edge_type.property_keys
                        and probe.source_labels <= edge_type.source_labels
                        and probe.target_labels <= edge_type.target_labels
                        and endpoints_compatible(
                            edge_type, probe,
                            self.config.endpoint_jaccard_threshold,
                        )
                    ):
                        host = edge_type
                        break
            if host is not None:
                host.instance_count += 1
                host.property_counts.update(edge.properties.keys())
                host.members.append(edge.id)
                edge_hits += 1
            else:
                remaining_edges.append(edge)
        return remaining_nodes, remaining_edges, node_hits, edge_hits

    def _endpoint_label_overrides(
        self,
        batch_schema: SchemaGraph,
        nodes: Sequence[Node],
        endpoint_labels: dict[int, frozenset[str]],
    ) -> dict[int, frozenset[str]]:
        """Type-derived label overrides for this batch's unlabeled nodes.

        An unlabeled node that was merged into a *labeled* node type (the
        paper's Example 5: Alice joins the Person type) adopts that type's
        labels as its effective endpoint identity.  Unlabeled nodes in
        ABSTRACT types get the type's pseudo cluster token instead, so edges
        still see structural endpoint identity at 0 % label availability.
        Only changed entries are returned; endpoints outside this batch
        (possible for cross-batch edges) keep whatever labels the stream
        reported for them.
        """
        from repro.core.type_extraction import PSEUDO_PREFIX

        batch_tag = f"b{self._batch_counter}"
        node_token: dict[int, frozenset[str]] = {}
        for node_type in batch_schema.node_types.values():
            if node_type.labels:
                token_set = node_type.labels
            else:
                token = f"{PSEUDO_PREFIX}{batch_tag}:{node_type.name}"
                node_type.cluster_tokens.add(token)
                token_set = frozenset({token})
            for member in node_type.members:
                node_token[member] = token_set
        return {
            node.id: node_token[node.id]
            for node in nodes
            if not node.labels and node.id in node_token
        }

    def _endpoint_label_overrides_columns(
        self, batch_schema: SchemaGraph, ncols: NodeColumns
    ) -> dict[int, frozenset[str]]:
        """Columnized :meth:`_endpoint_label_overrides`.

        Identical output: only unlabeled batch nodes (empty canonical
        token) that were extracted into a node type receive an override,
        in batch node order.
        """
        from repro.core.type_extraction import PSEUDO_PREFIX

        batch_tag = f"b{self._batch_counter}"
        node_token: dict[int, frozenset[str]] = {}
        for node_type in batch_schema.node_types.values():
            if node_type.labels:
                token_set = node_type.labels
            else:
                token = f"{PSEUDO_PREFIX}{batch_tag}:{node_type.name}"
                node_type.cluster_tokens.add(token)
                token_set = frozenset({token})
            for member in node_type.members:
                node_token[member] = token_set
        tokens = ncols.labels.tokens
        return {
            node_id: node_token[node_id]
            for node_id, label_id in zip(
                ncols.ids.tolist(), ncols.label_ids.tolist()
            )
            if not tokens[label_id] and node_id in node_token
        }

    def discover_batch_columns(
        self,
        ncols: NodeColumns,
        ecols: EdgeColumns,
        batch_index: int | None = None,
    ) -> tuple[SchemaGraph, BatchReport]:
        """Build one batch's schema from columnized arrays, without merging.

        This is the unit of work the parallel driver ships to pool
        workers: the caller (or the worker itself) columnizes a shard
        once, and this method runs the vectorized pipeline on the compact
        arrays, returning the *batch* schema and its report.  The running
        schema is not touched -- shard schemas combine downstream through
        the merge tree of :func:`repro.schema.merge.merge_schema_tree`.

        Args:
            ncols / ecols: Columnized shard (see :mod:`repro.core.columns`).
            batch_index: Global shard index; keeps pseudo-label tags and
                parameter keys identical to a sequential run over the
                same batch sequence.  Defaults to the engine's internal
                counter.
        """
        if batch_index is not None:
            self._batch_counter = batch_index
        started = time.perf_counter()
        stages = StageTimer()
        batch_schema = SchemaGraph(f"batch{self._batch_counter}")
        node_clusters, edge_clusters, embedder_reused = (
            self._process_batch_from_columns(
                ncols, ecols, batch_schema, stages
            )
        )
        report = BatchReport(
            index=self._batch_counter,
            num_nodes=len(ncols),
            num_edges=len(ecols),
            node_clusters=len(node_clusters),
            edge_clusters=len(edge_clusters),
            seconds=time.perf_counter() - started,
            stage_seconds=dict(stages.seconds),
            embedder_reused=embedder_reused,
        )
        self._batch_counter += 1
        return batch_schema, report

    def _effective_endpoint_labels(
        self,
        batch_schema: SchemaGraph,
        nodes: Sequence[Node],
        endpoint_labels: dict[int, frozenset[str]],
    ) -> dict[int, frozenset[str]]:
        """Endpoint labels with type-derived pseudo-labels for unlabeled nodes."""
        effective = dict(endpoint_labels)
        effective.update(
            self._endpoint_label_overrides(batch_schema, nodes, endpoint_labels)
        )
        return effective

    def _fit_embedder(
        self,
        nodes: Sequence[Node],
        edges: Sequence[Edge],
        endpoint_labels: dict[int, frozenset[str]],
    ) -> LabelEmbedder:
        """Train Word2Vec on this batch's label co-occurrences.

        Sentences are deduplicated: thousands of edges share the handful of
        distinct (src, edge, tgt) label-token triples, and training once per
        distinct triple preserves the co-occurrence structure at a fraction
        of the cost.
        """
        token_cache: dict[frozenset[str], str] = {}
        empty: frozenset[str] = frozenset()

        def token_of(labels: frozenset[str]) -> str:
            cached = token_cache.get(labels)
            if cached is None:
                cached = canonical_label(labels)
                token_cache[labels] = cached
            return cached

        sentences: set[tuple[str, ...]] = set()
        for edge in edges:
            sentence = tuple(
                token
                for token in (
                    token_of(endpoint_labels.get(edge.source, empty)),
                    token_of(edge.labels),
                    token_of(endpoint_labels.get(edge.target, empty)),
                )
                if token
            )
            if sentence:
                sentences.add(sentence)
        for node in nodes:
            token = token_of(node.labels)
            if token:
                sentences.add((token,))
        embedder = LabelEmbedder(self.config.word2vec)
        embedder.fit_tokens([list(s) for s in sorted(sentences)])
        return embedder

    def _fit_embedder_columns(
        self, ncols: NodeColumns, ecols: EdgeColumns
    ) -> tuple[LabelEmbedder, bool]:
        """Columnized corpus build + cross-batch embedder reuse.

        The sentence corpus is assembled from *distinct* (src, edge, tgt)
        label-id triples and distinct node label ids -- the same
        deduplicated, sorted corpus the reference builds one element at a
        time.  If it matches the previous batch's corpus, the cached
        trained embedder is returned (Word2Vec training is deterministic,
        so the embeddings are identical to a fresh fit); otherwise a fresh
        embedder is fitted and cached.

        Returns:
            ``(embedder, reused)``.
        """
        sentences: set[tuple[str, ...]] = set()
        if len(ecols):
            tokens = ecols.labels.tokens
            width = max(len(tokens), 1)
            combined = (
                ecols.src_label_ids * np.int64(width) + ecols.label_ids
            ) * np.int64(width) + ecols.tgt_label_ids
            for value in np.unique(combined).tolist():
                tgt_id = value % width
                rest = value // width
                edge_id = rest % width
                src_id = rest // width
                sentence = tuple(
                    token
                    for token in (
                        tokens[src_id], tokens[edge_id], tokens[tgt_id]
                    )
                    if token
                )
                if sentence:
                    sentences.add(sentence)
        if len(ncols):
            node_tokens = ncols.labels.tokens
            for label_id in np.unique(ncols.label_ids).tolist():
                token = node_tokens[label_id]
                if token:
                    sentences.add((token,))
        corpus = sorted(sentences)
        key = tuple(corpus)
        if (
            self._cached_embedder is not None
            and self._embedder_corpus_key == key
        ):
            return self._cached_embedder, True
        embedder = LabelEmbedder(self.config.word2vec)
        embedder.fit_tokens([list(s) for s in corpus])
        self._embedder_corpus_key = key
        self._cached_embedder = embedder
        return embedder, False

    def _cluster_nodes(
        self,
        nodes: Sequence[Node],
        embedder: LabelEmbedder,
        stages: StageTimer,
    ) -> np.ndarray:
        """Reference node clustering; returns dense cluster ids."""
        if not nodes:
            return np.empty(0, dtype=np.int64)
        property_keys = sorted({k for n in nodes for k in n.properties})
        num_labels = len({label for n in nodes for label in n.labels})
        vectorizer = NodeVectorizer(
            property_keys, embedder, self.config.label_weight
        )
        if self.config.method is LSHMethod.ELSH:
            with stages.stage("vectorize"):
                vectors = vectorizer.vectorize_reference(nodes)
            with stages.stage("cluster"):
                return self._elsh_assign(vectors, num_labels, kind="node")
        with stages.stage("vectorize"):
            interner = FeatureInterner()
            feature_sets = vectorizer.feature_sets_reference(nodes, interner)
        with stages.stage("cluster"):
            return self._minhash_assign(feature_sets, len(nodes), kind="node")

    def _cluster_nodes_columns(
        self,
        columns: NodeColumns,
        count: int,
        embedder: LabelEmbedder,
        cache: EmbeddingCache,
        stages: StageTimer,
    ) -> np.ndarray:
        """Batch node clustering over distinct patterns."""
        if count == 0:
            return np.empty(0, dtype=np.int64)
        property_keys = sorted(union_of(columns.keys.sets))
        num_labels = len(union_of(columns.labels.sets))
        vectorizer = NodeVectorizer(
            property_keys,
            embedder,
            self.config.label_weight,
            embedding_cache=cache,
        )
        if self.config.method is LSHMethod.ELSH:
            with stages.stage("vectorize"):
                compact, pattern_ids = vectorizer.vectorize_patterns(columns)
            with stages.stage("cluster"):
                return self._elsh_assign(
                    compact, num_labels, kind="node", pattern_ids=pattern_ids
                )
        with stages.stage("vectorize"):
            interner = FeatureInterner()
            compact_sets, pattern_ids = vectorizer.feature_sets_patterns(
                columns, interner
            )
        with stages.stage("cluster"):
            return self._minhash_assign(
                compact_sets, count, kind="node", pattern_ids=pattern_ids
            )

    def _cluster_edges(
        self,
        edges: Sequence[Edge],
        endpoint_labels: dict[int, frozenset[str]],
        embedder: LabelEmbedder,
        stages: StageTimer,
    ) -> np.ndarray:
        """Reference edge clustering; returns dense cluster ids."""
        if not edges:
            return np.empty(0, dtype=np.int64)
        property_keys = sorted({k for e in edges for k in e.properties})
        num_labels = len({label for e in edges for label in e.labels})
        vectorizer = EdgeVectorizer(
            property_keys, embedder, self.config.label_weight
        )
        if self.config.method is LSHMethod.ELSH:
            with stages.stage("vectorize"):
                vectors = vectorizer.vectorize_reference(
                    edges, endpoint_labels
                )
            with stages.stage("cluster"):
                return self._elsh_assign(vectors, num_labels, kind="edge")
        with stages.stage("vectorize"):
            interner = FeatureInterner()
            feature_sets = vectorizer.feature_sets_reference(
                edges, endpoint_labels, interner
            )
        with stages.stage("cluster"):
            return self._minhash_assign(feature_sets, len(edges), kind="edge")

    def _cluster_edges_columns(
        self,
        columns: EdgeColumns,
        count: int,
        embedder: LabelEmbedder,
        cache: EmbeddingCache,
        stages: StageTimer,
    ) -> np.ndarray:
        """Batch edge clustering over distinct patterns."""
        if count == 0:
            return np.empty(0, dtype=np.int64)
        property_keys = sorted(union_of(columns.keys.sets))
        # Distinct labels over *edge* label sets only (the shared label
        # space also holds endpoint label sets).
        edge_label_sets = [
            columns.labels.sets[i]
            for i in np.unique(columns.label_ids).tolist()
        ]
        num_labels = len(union_of(edge_label_sets))
        vectorizer = EdgeVectorizer(
            property_keys,
            embedder,
            self.config.label_weight,
            embedding_cache=cache,
        )
        if self.config.method is LSHMethod.ELSH:
            with stages.stage("vectorize"):
                compact, pattern_ids = vectorizer.vectorize_patterns(columns)
            with stages.stage("cluster"):
                return self._elsh_assign(
                    compact, num_labels, kind="edge", pattern_ids=pattern_ids
                )
        with stages.stage("vectorize"):
            interner = FeatureInterner()
            compact_sets, pattern_ids = vectorizer.feature_sets_patterns(
                columns, interner
            )
        with stages.stage("cluster"):
            return self._minhash_assign(
                compact_sets, count, kind="edge", pattern_ids=pattern_ids
            )

    def _elsh_assign(
        self,
        vectors: np.ndarray,
        num_labels: int,
        kind: str,
        pattern_ids: np.ndarray | None = None,
    ) -> np.ndarray:
        """Adaptive ELSH clustering by full-signature grouping.

        With ``pattern_ids``, ``vectors`` is the compact per-pattern matrix:
        parameters, hashing and grouping all run on the handful of distinct
        patterns and the group ids expand by fancy indexing.  Because
        pattern ids are dense in first-appearance order, the expanded
        assignment carries the exact numbering of the full-matrix path.
        """
        params = choose_parameters(
            vectors,
            num_labels,
            kind=kind,
            sample_size=self.config.adaptive_sample_size,
            sample_fraction=self.config.adaptive_sample_fraction,
            seed=self.config.seed,
            bucket_length=self.config.bucket_length,
            num_tables=self.config.num_tables,
            alpha=self.config.alpha,
            pattern_ids=pattern_ids,
        )
        self.parameters[f"batch{self._batch_counter}/{kind}s"] = params.describe()
        lsh = EuclideanLSH(
            dimension=vectors.shape[1],
            bucket_length=params.bucket_length,
            num_tables=params.num_tables,
            seed=self.config.seed,
        )
        groups = cluster_by_full_signature(lsh.signatures(vectors))
        if pattern_ids is None:
            return groups
        return groups[pattern_ids]

    def _minhash_assign(
        self,
        feature_sets: list[set[int]],
        count: int,
        kind: str,
        pattern_ids: np.ndarray | None = None,
    ) -> np.ndarray:
        """MinHash clustering with banding.

        With ``pattern_ids``, ``feature_sets`` holds the distinct-pattern
        sets: signatures and banding run per pattern and the cluster ids
        expand by fancy indexing (identical rows band identically, so the
        partition and its first-appearance numbering are unchanged).
        """
        if self.config.num_tables is not None:
            num_hashes = self.config.num_tables
        else:
            # Same spirit as the ELSH heuristic: more hashes for larger
            # batches, inside the practical range.
            num_hashes = int(min(35, max(15, 5 * np.log10(max(count, 10)))))
        self.parameters[f"batch{self._batch_counter}/{kind}s"] = (
            f"minhash T={num_hashes} r={self.config.minhash_rows_per_band}"
        )
        lsh = MinHashLSH(num_hashes=num_hashes, seed=self.config.seed)
        if self.config.kernels == "vectorized":
            signatures = lsh.signatures(feature_sets)
            groups = cluster_by_band_union(
                signatures, self.config.minhash_rows_per_band
            )
        else:
            signatures = lsh.signatures_reference(feature_sets)
            groups = cluster_by_band_union_reference(
                signatures, self.config.minhash_rows_per_band
            )
        if pattern_ids is None:
            return groups
        return groups[pattern_ids]
