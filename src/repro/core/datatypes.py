"""Property datatype inference (paper section 4.4).

A priority-based scheme: INTEGER before FLOAT before BOOLEAN before
DATE/TIMESTAMP (via ISO-format regexes) before the STRING fallback.  The
type of a *property* is the most specific type compatible with all of its
observed values, computed by joining per-value types in a small
generalization lattice (INTEGER < FLOAT < STRING; BOOLEAN < STRING;
DATE < TIMESTAMP < STRING).

``infer_datatype_sampled`` implements the paper's optional sampling mode:
inspect 10 % of the values but at least 1000 (section 4.4), falling back to
STRING-compatible generalization exactly like the full scan.
"""

from __future__ import annotations

import random
import re
from typing import Any, Iterable, Sequence

from repro.schema.model import DataType

_INT_RE = re.compile(r"^[+-]?\d+$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$")
_BOOL_LITERALS = {"true", "false"}
# ISO dates plus the DD/MM/YYYY form of the paper's Example 7.
_DATE_RE = re.compile(r"^(\d{4}-\d{2}-\d{2}|\d{2}/\d{2}/\d{4})$")
_TIMESTAMP_RE = re.compile(
    r"^\d{4}-\d{2}-\d{2}[T ]\d{2}:\d{2}(:\d{2}(\.\d+)?)?(Z|[+-]\d{2}:?\d{2})?$"
)

# Generalization lattice: child -> parent (STRING is the top element).
# LIST (Neo4j array properties) sits directly under STRING: joining a list
# with any scalar type generalizes to STRING.
_PARENT: dict[DataType, DataType] = {
    DataType.INTEGER: DataType.FLOAT,
    DataType.FLOAT: DataType.STRING,
    DataType.BOOLEAN: DataType.STRING,
    DataType.DATE: DataType.TIMESTAMP,
    DataType.TIMESTAMP: DataType.STRING,
    DataType.LIST: DataType.STRING,
    DataType.STRING: DataType.STRING,
}


def infer_value_type(value: Any) -> DataType:
    """Most specific datatype of a single value.

    Python native types are trusted directly (``bool`` is checked before
    ``int`` since it subclasses it); strings go through the priority regex
    cascade of section 4.4.
    """
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.INTEGER if value.is_integer() else DataType.FLOAT
    if isinstance(value, (list, tuple)):
        return DataType.LIST
    if isinstance(value, str):
        text = value.strip()
        if _INT_RE.match(text):
            return DataType.INTEGER
        if _FLOAT_RE.match(text):
            return DataType.FLOAT
        if text.lower() in _BOOL_LITERALS:
            return DataType.BOOLEAN
        if _DATE_RE.match(text):
            return DataType.DATE
        if _TIMESTAMP_RE.match(text):
            return DataType.TIMESTAMP
        return DataType.STRING
    return DataType.STRING


def join_types(a: DataType, b: DataType) -> DataType:
    """Least upper bound of two datatypes in the generalization lattice."""
    if a is DataType.UNKNOWN:
        return b
    if b is DataType.UNKNOWN or a is b:
        return a
    ancestors_a = _ancestors(a)
    current = b
    while current not in ancestors_a:
        current = _PARENT[current]
    return current


def _ancestors(datatype: DataType) -> set[DataType]:
    """The value itself plus everything above it in the lattice."""
    out = {datatype}
    current = datatype
    while current is not DataType.STRING:
        current = _PARENT[current]
        out.add(current)
    return out


def infer_datatype(values: Iterable[Any]) -> DataType:
    """Most specific datatype compatible with every value (full scan)."""
    result = DataType.UNKNOWN
    for value in values:
        result = join_types(result, infer_value_type(value))
        if result is DataType.STRING:
            break  # top of the lattice; no point scanning further
    return result


def infer_datatype_sampled(
    values: Sequence[Any],
    fraction: float = 0.1,
    minimum: int = 1000,
    seed: int = 0,
) -> DataType:
    """Datatype from a random sample of the values (paper's fast mode).

    Takes ``max(minimum, fraction * len(values))`` values (all of them if
    fewer exist).  Cheaper than the full scan but can miss outliers, which
    is exactly the error the paper quantifies in Figure 8.
    """
    if not values:
        return DataType.UNKNOWN
    target = max(minimum, int(round(fraction * len(values))))
    if target >= len(values):
        sample: Sequence[Any] = values
    else:
        sample = random.Random(seed).sample(list(values), target)
    return infer_datatype(sample)


def is_value_compatible(value: Any, datatype: DataType) -> bool:
    """True when a value conforms to (or specializes) a declared datatype."""
    if datatype in (DataType.UNKNOWN, DataType.STRING):
        return True
    return datatype in _ancestors(infer_value_type(value))
