"""Property datatype inference (paper section 4.4).

A priority-based scheme: INTEGER before FLOAT before BOOLEAN before
DATE/TIMESTAMP (format regexes plus calendar-range validation, so
impossible literals like ``2024-13-45`` stay STRING) before the STRING
fallback.  The
type of a *property* is the most specific type compatible with all of its
observed values, computed by joining per-value types in a small
generalization lattice (INTEGER < FLOAT < STRING; BOOLEAN < STRING;
DATE < TIMESTAMP < STRING).

``infer_datatype_sampled`` implements the paper's optional sampling mode:
inspect 10 % of the values but at least 1000 (section 4.4), falling back to
STRING-compatible generalization exactly like the full scan.
"""

from __future__ import annotations

import random
import re
from typing import Any, Iterable, Sequence

from repro.schema.model import DataType

_INT_RE = re.compile(r"^[+-]?\d+$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$")
_BOOL_LITERALS = {"true", "false"}
# ISO dates plus the DD/MM/YYYY form of the paper's Example 7.  The
# regexes only check shape; the component ranges (month 1-12, day valid
# for the month including leap years, hour/minute/second in range) are
# validated afterwards so that "2024-13-45" or "99/99/9999" fall back to
# STRING instead of declaring a DATE the instance does not satisfy.
_DATE_ISO_RE = re.compile(r"^(\d{4})-(\d{2})-(\d{2})$")
_DATE_DMY_RE = re.compile(r"^(\d{2})/(\d{2})/(\d{4})$")
_TIMESTAMP_RE = re.compile(
    r"^(\d{4})-(\d{2})-(\d{2})[T ](\d{2}):(\d{2})(?::(\d{2})(?:\.\d+)?)?"
    r"(?:Z|[+-](\d{2}):?(\d{2}))?$"
)

_DAYS_IN_MONTH = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)


def _is_leap_year(year: int) -> bool:
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


def _valid_calendar_date(year: int, month: int, day: int) -> bool:
    """Whether (year, month, day) names a real calendar date."""
    if not 1 <= month <= 12:
        return False
    days = _DAYS_IN_MONTH[month - 1]
    if month == 2 and _is_leap_year(year):
        days = 29
    return 1 <= day <= days


def _is_date(text: str) -> bool:
    """Shape *and* calendar validity of a date literal."""
    match = _DATE_ISO_RE.match(text)
    if match is not None:
        return _valid_calendar_date(
            int(match[1]), int(match[2]), int(match[3])
        )
    match = _DATE_DMY_RE.match(text)
    if match is not None:
        return _valid_calendar_date(
            int(match[3]), int(match[2]), int(match[1])
        )
    return False


def _is_timestamp(text: str) -> bool:
    """Shape and component validity of a timestamp literal."""
    match = _TIMESTAMP_RE.match(text)
    if match is None:
        return False
    if not _valid_calendar_date(int(match[1]), int(match[2]), int(match[3])):
        return False
    hour, minute = int(match[4]), int(match[5])
    second = int(match[6]) if match[6] else 0
    if hour > 23 or minute > 59 or second > 59:
        return False
    if match[7] and (int(match[7]) > 23 or int(match[8]) > 59):
        return False
    return True

# Generalization lattice: child -> parent (STRING is the top element).
# LIST (Neo4j array properties) sits directly under STRING: joining a list
# with any scalar type generalizes to STRING.
_PARENT: dict[DataType, DataType] = {
    DataType.INTEGER: DataType.FLOAT,
    DataType.FLOAT: DataType.STRING,
    DataType.BOOLEAN: DataType.STRING,
    DataType.DATE: DataType.TIMESTAMP,
    DataType.TIMESTAMP: DataType.STRING,
    DataType.LIST: DataType.STRING,
    DataType.STRING: DataType.STRING,
}


def infer_value_type(value: Any) -> DataType:
    """Most specific datatype of a single value.

    Python native types are trusted directly (``bool`` is checked before
    ``int`` since it subclasses it); strings go through the priority regex
    cascade of section 4.4.
    """
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.INTEGER if value.is_integer() else DataType.FLOAT
    if isinstance(value, (list, tuple)):
        return DataType.LIST
    if isinstance(value, str):
        text = value.strip()
        if _INT_RE.match(text):
            return DataType.INTEGER
        if _FLOAT_RE.match(text):
            return DataType.FLOAT
        if text.lower() in _BOOL_LITERALS:
            return DataType.BOOLEAN
        if _is_date(text):
            return DataType.DATE
        if _is_timestamp(text):
            return DataType.TIMESTAMP
        return DataType.STRING
    return DataType.STRING


def join_types(a: DataType, b: DataType) -> DataType:
    """Least upper bound of two datatypes in the generalization lattice."""
    if a is DataType.UNKNOWN:
        return b
    if b is DataType.UNKNOWN or a is b:
        return a
    ancestors_a = _ancestors(a)
    current = b
    while current not in ancestors_a:
        current = _PARENT[current]
    return current


def _ancestors(datatype: DataType) -> set[DataType]:
    """The value itself plus everything above it in the lattice."""
    out = {datatype}
    current = datatype
    while current is not DataType.STRING:
        current = _PARENT[current]
        out.add(current)
    return out


def infer_datatype(values: Iterable[Any]) -> DataType:
    """Most specific datatype compatible with every value (full scan)."""
    result = DataType.UNKNOWN
    for value in values:
        result = join_types(result, infer_value_type(value))
        if result is DataType.STRING:
            break  # top of the lattice; no point scanning further
    return result


def infer_datatype_sampled(
    values: Sequence[Any],
    fraction: float = 0.1,
    minimum: int = 1000,
    seed: int = 0,
) -> DataType:
    """Datatype from a random sample of the values (paper's fast mode).

    Takes ``max(minimum, fraction * len(values))`` values (all of them if
    fewer exist).  Cheaper than the full scan but can miss outliers, which
    is exactly the error the paper quantifies in Figure 8.
    """
    if not values:
        return DataType.UNKNOWN
    target = max(minimum, int(round(fraction * len(values))))
    if target >= len(values):
        sample: Sequence[Any] = values
    else:
        sample = random.Random(seed).sample(list(values), target)
    return infer_datatype(sample)


def is_value_compatible(value: Any, datatype: DataType) -> bool:
    """True when a value conforms to (or specializes) a declared datatype."""
    if datatype in (DataType.UNKNOWN, DataType.STRING):
        return True
    return datatype in _ancestors(infer_value_type(value))
