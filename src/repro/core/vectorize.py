"""Element vectorization (paper section 4.1).

Every node becomes ``f_v in R^{d+K}``: the Word2Vec embedding of its
(sorted, concatenated) label set followed by a binary indicator over the
``K`` distinct node property keys of the dataset.  Every edge becomes
``f_e in R^{3d+Q}``: embeddings of the edge label, the source labels and
the target labels, followed by the binary indicator over the ``Q`` distinct
edge property keys.  Missing labels embed as the zero vector.

Label embeddings are unit-normalized and scaled by ``label_weight`` so the
semantic block stays comparable in magnitude to the structural block even
when property noise dominates -- this is what keeps semantically different
but structurally similar elements apart (the paper's stated motivation for
the hybrid vectors).

For the MinHash variant, elements are instead modeled as *feature sets*:
interned ids for each property key plus role-tagged ids for the label
tokens (``label:``, ``src:``, ``tgt:`` prefixes), so Jaccard similarity
sees both structure and semantics.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.embeddings.embedder import LabelEmbedder
from repro.graph.model import Edge, Node, canonical_label


class FeatureInterner:
    """Stable string-feature -> integer-id mapping for MinHash sets."""

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}

    def intern(self, feature: str) -> int:
        """Id for a feature string, assigning the next id when new."""
        existing = self._ids.get(feature)
        if existing is not None:
            return existing
        new_id = len(self._ids)
        self._ids[feature] = new_id
        return new_id

    def __len__(self) -> int:
        return len(self._ids)


class NodeVectorizer:
    """Vectorizes nodes against a fixed property-key universe."""

    def __init__(
        self,
        property_keys: Sequence[str],
        embedder: LabelEmbedder,
        label_weight: float = 3.0,
    ) -> None:
        self.property_keys = list(property_keys)
        self._key_index = {key: i for i, key in enumerate(self.property_keys)}
        self.embedder = embedder
        self.label_weight = float(label_weight)

    @property
    def dimension(self) -> int:
        """Total vector dimension d + K."""
        return self.embedder.dimension + len(self.property_keys)

    def vectorize(self, nodes: Sequence[Node]) -> np.ndarray:
        """(n, d+K) hybrid feature matrix for a batch of nodes."""
        d = self.embedder.dimension
        out = np.zeros((len(nodes), self.dimension))
        embedding_cache = _EmbeddingCache(self.embedder, self.label_weight)
        key_index = self._key_index
        for row, node in enumerate(nodes):
            out[row, :d] = embedding_cache.for_labels(node.labels)
            for key in node.properties:
                index = key_index.get(key)
                if index is not None:
                    out[row, d + index] = 1.0
        return out

    def feature_sets(
        self, nodes: Sequence[Node], interner: FeatureInterner
    ) -> list[set[int]]:
        """MinHash feature sets: property keys plus the label token."""
        sets: list[set[int]] = []
        for node in nodes:
            features = {
                interner.intern(f"nk:{key}") for key in node.properties
            }
            token = node.label_token()
            if token:
                features.add(interner.intern(f"label:{token}"))
            sets.append(features)
        return sets


class EdgeVectorizer:
    """Vectorizes edges (with endpoint label context) per section 4.1."""

    def __init__(
        self,
        property_keys: Sequence[str],
        embedder: LabelEmbedder,
        label_weight: float = 3.0,
    ) -> None:
        self.property_keys = list(property_keys)
        self._key_index = {key: i for i, key in enumerate(self.property_keys)}
        self.embedder = embedder
        self.label_weight = float(label_weight)

    @property
    def dimension(self) -> int:
        """Total vector dimension 3d + Q."""
        return 3 * self.embedder.dimension + len(self.property_keys)

    def vectorize(
        self,
        edges: Sequence[Edge],
        endpoint_labels: dict[int, frozenset[str]],
    ) -> np.ndarray:
        """(m, 3d+Q) hybrid feature matrix for a batch of edges.

        Args:
            edges: The edges to vectorize.
            endpoint_labels: node id -> label set for every endpoint
                referenced by ``edges`` (missing entries count as unlabeled).
        """
        d = self.embedder.dimension
        out = np.zeros((len(edges), self.dimension))
        embedding_cache = _EmbeddingCache(self.embedder, self.label_weight)
        empty = frozenset()
        key_index = self._key_index
        for row, edge in enumerate(edges):
            out[row, :d] = embedding_cache.for_labels(edge.labels)
            out[row, d:2 * d] = embedding_cache.for_labels(
                endpoint_labels.get(edge.source, empty)
            )
            out[row, 2 * d:3 * d] = embedding_cache.for_labels(
                endpoint_labels.get(edge.target, empty)
            )
            for key in edge.properties:
                index = key_index.get(key)
                if index is not None:
                    out[row, 3 * d + index] = 1.0
        return out

    def feature_sets(
        self,
        edges: Sequence[Edge],
        endpoint_labels: dict[int, frozenset[str]],
        interner: FeatureInterner,
    ) -> list[set[int]]:
        """MinHash feature sets: keys, edge label, and endpoint labels."""
        sets: list[set[int]] = []
        for edge in edges:
            features = {
                interner.intern(f"ek:{key}") for key in edge.properties
            }
            token = edge.label_token()
            if token:
                features.add(interner.intern(f"label:{token}"))
            src_token = canonical_label(
                endpoint_labels.get(edge.source, frozenset())
            )
            if src_token:
                features.add(interner.intern(f"src:{src_token}"))
            tgt_token = canonical_label(
                endpoint_labels.get(edge.target, frozenset())
            )
            if tgt_token:
                features.add(interner.intern(f"tgt:{tgt_token}"))
            sets.append(features)
        return sets


class _EmbeddingCache:
    """Memoized unit-normalized, weight-scaled embeddings per label set.

    Batches contain thousands of elements but only a handful of distinct
    label sets, so caching by frozenset removes the per-element embedding
    and normalization cost from the hot path.
    """

    def __init__(self, embedder: LabelEmbedder, weight: float) -> None:
        self._embedder = embedder
        self._weight = weight
        self._by_labels: dict[frozenset[str], np.ndarray] = {}

    def for_labels(self, labels: frozenset[str]) -> np.ndarray:
        cached = self._by_labels.get(labels)
        if cached is None:
            cached = _scaled_embedding(
                self._embedder, canonical_label(labels), self._weight
            )
            self._by_labels[labels] = cached
        return cached


def _scaled_embedding(
    embedder: LabelEmbedder, token: str, weight: float
) -> np.ndarray:
    """Unit-normalized, weight-scaled embedding; zeros for no label."""
    vector = embedder.embed_token(token)
    norm = float(np.linalg.norm(vector))
    if norm == 0.0:
        return vector
    return vector / norm * weight
