"""Element vectorization (paper section 4.1).

Every node becomes ``f_v in R^{d+K}``: the Word2Vec embedding of its
(sorted, concatenated) label set followed by a binary indicator over the
``K`` distinct node property keys of the dataset.  Every edge becomes
``f_e in R^{3d+Q}``: embeddings of the edge label, the source labels and
the target labels, followed by the binary indicator over the ``Q`` distinct
edge property keys.  Missing labels embed as the zero vector.

Label embeddings are unit-normalized and scaled by ``label_weight`` so the
semantic block stays comparable in magnitude to the structural block even
when property noise dominates -- this is what keeps semantically different
but structurally similar elements apart (the paper's stated motivation for
the hybrid vectors).

For the MinHash variant, elements are instead modeled as *feature sets*:
interned ids for each property key plus role-tagged ids for the label
tokens (``label:``, ``src:``, ``tgt:`` prefixes), so Jaccard similarity
sees both structure and semantics.

Two implementations coexist.  The batch kernels (`vectorize`,
`feature_sets`, and the ``*_patterns`` compact variants) do the expensive
work once per distinct (label set, key set) pattern and scatter with fancy
indexing; the ``*_reference`` methods keep the original element-at-a-time
loops as the executable specification the kernels are property-tested
against (see ``tests/test_hotpath_kernels.py``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.columns import (
    EdgeColumns,
    KeySpace,
    NodeColumns,
    edge_columns,
    node_columns,
)
from repro.embeddings.embedder import LabelEmbedder
from repro.graph.model import Edge, Node, canonical_label


class FeatureInterner:
    """Stable string-feature -> integer-id mapping for MinHash sets."""

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}

    def intern(self, feature: str) -> int:
        """Id for a feature string, assigning the next id when new."""
        existing = self._ids.get(feature)
        if existing is not None:
            return existing
        new_id = len(self._ids)
        self._ids[feature] = new_id
        return new_id

    def __len__(self) -> int:
        return len(self._ids)


class EmbeddingCache:
    """Memoized unit-normalized, weight-scaled embeddings per label set.

    Batches contain thousands of elements but only a handful of distinct
    label sets, so caching by frozenset removes the per-element embedding
    and normalization cost from the hot path.  One cache can (and should)
    be shared between the node and edge vectorizers of the same batch:
    the incremental engine passes a single instance to both so endpoint
    label sets already embedded during the node pass are free in the edge
    pass.
    """

    def __init__(self, embedder: LabelEmbedder, weight: float) -> None:
        self._embedder = embedder
        self._weight = weight
        self._by_labels: dict[frozenset[str], np.ndarray] = {}

    @property
    def dimension(self) -> int:
        return self._embedder.dimension

    def for_labels(self, labels: frozenset[str]) -> np.ndarray:
        cached = self._by_labels.get(labels)
        if cached is None:
            cached = _scaled_embedding(
                self._embedder, canonical_label(labels), self._weight
            )
            self._by_labels[labels] = cached
        return cached


def _scaled_embedding(
    embedder: LabelEmbedder, token: str, weight: float
) -> np.ndarray:
    """Unit-normalized, weight-scaled embedding; zeros for no label."""
    vector = embedder.embed_token(token)
    norm = float(np.linalg.norm(vector))
    if norm == 0.0:
        return vector
    return vector / norm * weight


# Backwards-compatible alias (the cache used to be module-private).
_EmbeddingCache = EmbeddingCache


class NodeVectorizer:
    """Vectorizes nodes against a fixed property-key universe."""

    def __init__(
        self,
        property_keys: Sequence[str],
        embedder: LabelEmbedder,
        label_weight: float = 3.0,
        embedding_cache: EmbeddingCache | None = None,
    ) -> None:
        self.property_keys = list(property_keys)
        self._key_index = {key: i for i, key in enumerate(self.property_keys)}
        self.embedder = embedder
        self.label_weight = float(label_weight)
        # Vectorizer-level cache: survives across vectorize() calls and can
        # be shared with the edge vectorizer of the same batch.
        self._cache = embedding_cache or EmbeddingCache(
            embedder, self.label_weight
        )

    @property
    def dimension(self) -> int:
        """Total vector dimension d + K."""
        return self.embedder.dimension + len(self.property_keys)

    def vectorize(self, nodes: Sequence[Node]) -> np.ndarray:
        """(n, d+K) hybrid feature matrix for a batch of nodes.

        Batch kernel: embeds each distinct label set once and scatters
        pattern rows with fancy indexing.  Output-equivalent to
        :meth:`vectorize_reference`.
        """
        if not nodes:
            return np.zeros((0, self.dimension))
        columns = node_columns(nodes)
        compact, pattern_ids = self.vectorize_patterns(columns)
        return compact[pattern_ids]

    def vectorize_patterns(
        self, columns: NodeColumns
    ) -> tuple[np.ndarray, np.ndarray]:
        """Compact (U, d+K) matrix over distinct patterns + pattern ids.

        Row ``u`` is the feature vector shared by every node whose
        ``pattern_ids`` entry is ``u``; ``compact[pattern_ids]`` therefore
        equals :meth:`vectorize`'s output.  The ELSH path hashes the
        compact matrix directly and never materializes the full one.
        """
        pattern_ids, representatives = columns.pattern_ids()
        d = self.embedder.dimension
        out = np.zeros((representatives.size, self.dimension))
        rep_label_ids = columns.label_ids[representatives]
        out[:, :d] = _embedding_rows(self._cache, columns, rep_label_ids)
        rep_keyset_ids = columns.keyset_ids[representatives]
        key_columns = _keyset_columns(columns.keys, self._key_index)
        for row, keyset_id in enumerate(rep_keyset_ids.tolist()):
            cols = key_columns[keyset_id]
            if cols.size:
                out[row, d + cols] = 1.0
        return out, pattern_ids

    def vectorize_reference(self, nodes: Sequence[Node]) -> np.ndarray:
        """Element-at-a-time reference implementation of :meth:`vectorize`."""
        d = self.embedder.dimension
        out = np.zeros((len(nodes), self.dimension))
        embedding_cache = self._cache
        key_index = self._key_index
        for row, node in enumerate(nodes):
            out[row, :d] = embedding_cache.for_labels(node.labels)
            for key in node.properties:
                index = key_index.get(key)
                if index is not None:
                    out[row, d + index] = 1.0
        return out

    def feature_sets(
        self, nodes: Sequence[Node], interner: FeatureInterner
    ) -> list[set[int]]:
        """MinHash feature sets: property keys plus the label token.

        Batch kernel: each distinct (label set, key set) pattern builds its
        set once; repeats receive copies.  Interner state and set contents
        are byte-identical to :meth:`feature_sets_reference` because
        patterns are visited in first-appearance order with the first
        carrier's key order.
        """
        sets: list[set[int]] = []
        by_pattern: dict[tuple[frozenset, frozenset], set[int]] = {}
        for node in nodes:
            pattern = (node.labels, frozenset(node.properties))
            cached = by_pattern.get(pattern)
            if cached is None:
                cached = self._node_feature_set(node, interner)
                by_pattern[pattern] = cached
            sets.append(cached.copy())
        return sets

    def feature_sets_patterns(
        self, columns: NodeColumns, interner: FeatureInterner
    ) -> tuple[list[set[int]], np.ndarray]:
        """Distinct-pattern feature sets + per-node pattern ids.

        ``sets[pattern_ids[i]]`` is node ``i``'s feature set.  Interner
        state matches the reference loop exactly (patterns are interned in
        first-appearance order).
        """
        pattern_ids, representatives = columns.pattern_ids()
        sets: list[set[int]] = []
        for rep in representatives.tolist():
            features = {
                interner.intern(f"nk:{key}")
                for key in columns.keys.orders[columns.keyset_ids[rep]]
            }
            token = columns.labels.tokens[columns.label_ids[rep]]
            if token:
                features.add(interner.intern(f"label:{token}"))
            sets.append(features)
        return sets, pattern_ids

    def feature_sets_reference(
        self, nodes: Sequence[Node], interner: FeatureInterner
    ) -> list[set[int]]:
        """Element-at-a-time reference for :meth:`feature_sets`."""
        return [self._node_feature_set(node, interner) for node in nodes]

    def _node_feature_set(
        self, node: Node, interner: FeatureInterner
    ) -> set[int]:
        features = {
            interner.intern(f"nk:{key}") for key in node.properties
        }
        token = node.label_token()
        if token:
            features.add(interner.intern(f"label:{token}"))
        return features


class EdgeVectorizer:
    """Vectorizes edges (with endpoint label context) per section 4.1."""

    def __init__(
        self,
        property_keys: Sequence[str],
        embedder: LabelEmbedder,
        label_weight: float = 3.0,
        embedding_cache: EmbeddingCache | None = None,
    ) -> None:
        self.property_keys = list(property_keys)
        self._key_index = {key: i for i, key in enumerate(self.property_keys)}
        self.embedder = embedder
        self.label_weight = float(label_weight)
        self._cache = embedding_cache or EmbeddingCache(
            embedder, self.label_weight
        )

    @property
    def dimension(self) -> int:
        """Total vector dimension 3d + Q."""
        return 3 * self.embedder.dimension + len(self.property_keys)

    def vectorize(
        self,
        edges: Sequence[Edge],
        endpoint_labels: dict[int, frozenset[str]],
    ) -> np.ndarray:
        """(m, 3d+Q) hybrid feature matrix for a batch of edges.

        Batch kernel over distinct (edge labels, endpoint labels, keys)
        patterns; output-equivalent to :meth:`vectorize_reference`.

        Args:
            edges: The edges to vectorize.
            endpoint_labels: node id -> label set for every endpoint
                referenced by ``edges`` (missing entries count as unlabeled).
        """
        if not edges:
            return np.zeros((0, self.dimension))
        columns = edge_columns(edges, endpoint_labels)
        compact, pattern_ids = self.vectorize_patterns(columns)
        return compact[pattern_ids]

    def vectorize_patterns(
        self, columns: EdgeColumns
    ) -> tuple[np.ndarray, np.ndarray]:
        """Compact (U, 3d+Q) matrix over distinct patterns + pattern ids."""
        pattern_ids, representatives = columns.pattern_ids()
        d = self.embedder.dimension
        out = np.zeros((representatives.size, self.dimension))
        for offset, role_ids in (
            (0, columns.label_ids),
            (d, columns.src_label_ids),
            (2 * d, columns.tgt_label_ids),
        ):
            rep_ids = role_ids[representatives]
            out[:, offset:offset + d] = _embedding_rows(
                self._cache, columns, rep_ids
            )
        rep_keyset_ids = columns.keyset_ids[representatives]
        key_columns = _keyset_columns(columns.keys, self._key_index)
        for row, keyset_id in enumerate(rep_keyset_ids.tolist()):
            cols = key_columns[keyset_id]
            if cols.size:
                out[row, 3 * d + cols] = 1.0
        return out, pattern_ids

    def vectorize_reference(
        self,
        edges: Sequence[Edge],
        endpoint_labels: dict[int, frozenset[str]],
    ) -> np.ndarray:
        """Element-at-a-time reference implementation of :meth:`vectorize`."""
        d = self.embedder.dimension
        out = np.zeros((len(edges), self.dimension))
        embedding_cache = self._cache
        empty = frozenset()
        key_index = self._key_index
        for row, edge in enumerate(edges):
            out[row, :d] = embedding_cache.for_labels(edge.labels)
            out[row, d:2 * d] = embedding_cache.for_labels(
                endpoint_labels.get(edge.source, empty)
            )
            out[row, 2 * d:3 * d] = embedding_cache.for_labels(
                endpoint_labels.get(edge.target, empty)
            )
            for key in edge.properties:
                index = key_index.get(key)
                if index is not None:
                    out[row, 3 * d + index] = 1.0
        return out

    def feature_sets(
        self,
        edges: Sequence[Edge],
        endpoint_labels: dict[int, frozenset[str]],
        interner: FeatureInterner,
    ) -> list[set[int]]:
        """MinHash feature sets: keys, edge label, and endpoint labels.

        Batch kernel deduplicating by distinct pattern; interner state and
        sets match :meth:`feature_sets_reference` byte for byte.
        """
        sets: list[set[int]] = []
        empty: frozenset[str] = frozenset()
        by_pattern: dict[tuple, set[int]] = {}
        for edge in edges:
            src_labels = endpoint_labels.get(edge.source, empty)
            tgt_labels = endpoint_labels.get(edge.target, empty)
            pattern = (
                edge.labels, src_labels, tgt_labels,
                frozenset(edge.properties),
            )
            cached = by_pattern.get(pattern)
            if cached is None:
                cached = self._edge_feature_set(
                    edge, src_labels, tgt_labels, interner
                )
                by_pattern[pattern] = cached
            sets.append(cached.copy())
        return sets

    def feature_sets_patterns(
        self, columns: EdgeColumns, interner: FeatureInterner
    ) -> tuple[list[set[int]], np.ndarray]:
        """Distinct-pattern feature sets + per-edge pattern ids."""
        pattern_ids, representatives = columns.pattern_ids()
        tokens = columns.labels.tokens
        sets: list[set[int]] = []
        for rep in representatives.tolist():
            features = {
                interner.intern(f"ek:{key}")
                for key in columns.keys.orders[columns.keyset_ids[rep]]
            }
            token = tokens[columns.label_ids[rep]]
            if token:
                features.add(interner.intern(f"label:{token}"))
            src_token = tokens[columns.src_label_ids[rep]]
            if src_token:
                features.add(interner.intern(f"src:{src_token}"))
            tgt_token = tokens[columns.tgt_label_ids[rep]]
            if tgt_token:
                features.add(interner.intern(f"tgt:{tgt_token}"))
            sets.append(features)
        return sets, pattern_ids

    def feature_sets_reference(
        self,
        edges: Sequence[Edge],
        endpoint_labels: dict[int, frozenset[str]],
        interner: FeatureInterner,
    ) -> list[set[int]]:
        """Element-at-a-time reference for :meth:`feature_sets`."""
        sets: list[set[int]] = []
        empty: frozenset[str] = frozenset()
        for edge in edges:
            sets.append(self._edge_feature_set(
                edge,
                endpoint_labels.get(edge.source, empty),
                endpoint_labels.get(edge.target, empty),
                interner,
            ))
        return sets

    def _edge_feature_set(
        self,
        edge: Edge,
        src_labels: frozenset[str],
        tgt_labels: frozenset[str],
        interner: FeatureInterner,
    ) -> set[int]:
        features = {
            interner.intern(f"ek:{key}") for key in edge.properties
        }
        token = edge.label_token()
        if token:
            features.add(interner.intern(f"label:{token}"))
        src_token = canonical_label(src_labels)
        if src_token:
            features.add(interner.intern(f"src:{src_token}"))
        tgt_token = canonical_label(tgt_labels)
        if tgt_token:
            features.add(interner.intern(f"tgt:{tgt_token}"))
        return features


def _embedding_rows(
    cache: EmbeddingCache,
    columns: NodeColumns | EdgeColumns,
    label_ids: np.ndarray,
) -> np.ndarray:
    """(len(label_ids), d) embedding block rows for the given label ids."""
    if label_ids.size == 0:
        return np.zeros((0, cache.dimension))
    label_sets = columns.labels.sets
    return np.stack(
        [cache.for_labels(label_sets[i]) for i in label_ids.tolist()]
    )


def _keyset_columns(
    keys: KeySpace, key_index: dict[str, int]
) -> list[np.ndarray]:
    """Per key-set id: indicator column indices inside the key universe."""
    return [
        np.array(
            [key_index[k] for k in order if k in key_index], dtype=np.int64
        )
        for order in keys.orders
    ]
