"""Deterministic fault injection for exercising recovery paths.

Production failure modes -- a worker OOM-killed mid-shard, a batch job
crashing halfway through a nightly run, a shard that simply hangs -- are
impossible to test reliably by waiting for them to happen.  This module
makes them *reproducible*: a :class:`FaultPlan` names exactly which sites
(shard index, batch index, ...) misbehave, how (``raise`` an exception,
``hang`` for a while, ``kill`` the worker process), and how many attempts
are affected, and a :class:`FaultInjector` fires those faults at the
instrumented points of the parallel driver
(:mod:`repro.core.parallel`) and the incremental pipeline
(:mod:`repro.core.pipeline`).

Everything is deterministic: a fault fires if and only if the *attempt
number* of the execution is below the spec's ``times`` budget (attempt
numbers are tracked by the driver across retries), or -- for the
convenience call sites that do not track attempts -- by an internal
per-site counter.  Probabilistic plans (``probability < 1``) draw from a
seeded RNG keyed by ``(site, index, attempt)``, so they too replay
identically for a fixed seed regardless of process scheduling.

Plans are expressed as compact strings so they travel through
configuration and environment variables unchanged::

    shard:2:raise            # shard 2 raises once, then behaves
    shard:3:kill:2           # shard 3 kills its worker on attempts 0 and 1
    shard:1:hang:1:30        # shard 1 sleeps 30s on its first attempt
    batch:4:raise            # sequential batch 4 raises (crash simulation)
    shard:*:raise:1:0:0.25   # every shard's first attempt fails w.p. 0.25

Two modes exist specifically for the storage fault sites of the slab
layer (:mod:`repro.graph.slab`): ``enospc`` raises ``OSError(ENOSPC)``
at the instrumented write (simulating a full disk mid-flush), and
``corrupt`` silently corrupts the bytes the site just wrote (a torn
column write, a bit-flipped heap page, a partially renamed manifest)
-- the write *appears* to succeed, which is exactly the failure class
checksums exist to catch.  Sites that perform corruption consult
:meth:`FaultInjector.corrupts` instead of :meth:`FaultInjector.fire`
because the damage is site-specific::

    slab-enospc:0:enospc             # first slab flush hits ENOSPC
    slab-torn-write:1:corrupt        # second flush tears its heap write
    slab-bitflip:0:corrupt           # first commit flips a durable byte
    manifest-partial-rename:1:corrupt  # second manifest lands truncated

The environment variable ``PGHIVE_FAULTS`` (and the companion
``PGHIVE_FAULTS_SEED``) activates a plan process-wide; the
``PGHiveConfig.faults`` knob scopes one to a single run and is inherited
by forked pool workers.  With neither set, the injector resolves to
``None`` and the instrumented code paths cost a single ``is None`` check.
"""

from __future__ import annotations

import errno
import os
import random
import time
from dataclasses import dataclass, field

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "KILL_EXIT_CODE",
]

#: Exit status used by ``kill`` faults so a crash in the harness is
#: distinguishable from a genuine segfault in post-mortem logs.
KILL_EXIT_CODE = 87

_MODES = ("raise", "hang", "kill", "enospc", "corrupt")


class InjectedFault(RuntimeError):
    """The exception raised by ``raise``-mode faults."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Attributes:
        site: Instrumentation point name (``"shard"`` for pool workers,
            ``"batch"`` for the sequential incremental loop).  Free-form:
            new call sites need no harness changes.
        index: Which shard/batch misbehaves; ``None`` matches every index
            (the ``*`` wildcard in the string form).
        mode: ``"raise"``, ``"hang"``, ``"kill"``, ``"enospc"`` (the
            site raises ``OSError(ENOSPC)``, as a full disk would) or
            ``"corrupt"`` (the site silently damages the bytes it just
            wrote; consulted through :meth:`FaultInjector.corrupts`).
        times: How many attempts are affected.  Attempt numbers start at
            0, so ``times=1`` fails the first execution and lets every
            retry succeed; a large value makes the site *poisoned* (only
            an in-process fallback or degradation can finish the run).
        seconds: Sleep duration for ``hang`` mode.
        probability: Chance an eligible attempt actually fires, drawn
            from the injector's seeded RNG (default: always).
    """

    site: str
    index: int | None
    mode: str
    times: int = 1
    seconds: float = 3600.0
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"fault mode must be one of {_MODES}, got {self.mode!r}"
            )
        if self.times < 1:
            raise ValueError("fault times must be >= 1")
        if self.seconds < 0:
            raise ValueError("fault seconds must be >= 0")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("fault probability must be in [0, 1]")

    def matches(self, site: str, index: int) -> bool:
        """Whether this spec targets the given site and index."""
        return self.site == site and (
            self.index is None or self.index == index
        )

    def serialize(self) -> str:
        """The ``site:index:mode:times:seconds:probability`` string form."""
        index = "*" if self.index is None else str(self.index)
        return (
            f"{self.site}:{index}:{self.mode}:{self.times}"
            f":{self.seconds:g}:{self.probability:g}"
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of :class:`FaultSpec` entries."""

    specs: tuple[FaultSpec, ...] = ()

    @classmethod
    def parse(cls, text: str | None) -> "FaultPlan":
        """Parse the comma-separated string form (see module docstring).

        Each entry is ``site:index:mode[:times[:seconds[:probability]]]``
        with ``*`` as the any-index wildcard.  Raises ``ValueError`` on
        malformed input; an empty/None string parses to an empty plan.
        """
        specs: list[FaultSpec] = []
        for entry in (text or "").split(","):
            entry = entry.strip()
            if not entry:
                continue
            parts = entry.split(":")
            if len(parts) < 3:
                raise ValueError(
                    f"fault spec {entry!r} must be site:index:mode[:...]"
                )
            site, raw_index, mode = parts[0], parts[1], parts[2]
            try:
                index = None if raw_index == "*" else int(raw_index)
                times = int(parts[3]) if len(parts) > 3 else 1
                seconds = float(parts[4]) if len(parts) > 4 else 3600.0
                probability = float(parts[5]) if len(parts) > 5 else 1.0
            except ValueError as exc:
                raise ValueError(
                    f"fault spec {entry!r} has a malformed field: {exc}"
                ) from None
            specs.append(FaultSpec(
                site=site, index=index, mode=mode, times=times,
                seconds=seconds, probability=probability,
            ))
        return cls(tuple(specs))

    def serialize(self) -> str:
        """Inverse of :meth:`parse`."""
        return ",".join(spec.serialize() for spec in self.specs)

    def matching(
        self,
        site: str,
        index: int,
        corrupting: bool = False,
    ) -> FaultSpec | None:
        """First spec targeting ``(site, index)``, or ``None``.

        ``corrupting`` selects between the two injector entry points:
        :meth:`FaultInjector.fire` only sees non-``corrupt`` specs and
        :meth:`FaultInjector.corrupts` only sees ``corrupt`` ones, so a
        plan mixing both kinds never cross-counts attempts.
        """
        for spec in self.specs:
            if (spec.mode == "corrupt") is not corrupting:
                continue
            if spec.matches(site, index):
                return spec
        return None

    def __bool__(self) -> bool:
        return bool(self.specs)


@dataclass
class FaultInjector:
    """Fires the faults of a plan at instrumented call sites.

    The injector is cheap to construct (workers build one per task from
    the inherited config) and deterministic: identical call sequences
    produce identical faults for a fixed plan and seed.
    """

    plan: FaultPlan
    seed: int = 0
    _counters: dict[tuple[str, int, bool], int] = field(
        default_factory=dict
    )

    @classmethod
    def from_spec(
        cls, spec: str | None, seed: int | None = None
    ) -> "FaultInjector | None":
        """Build an injector from a spec string and/or the environment.

        ``spec`` (normally ``PGHiveConfig.faults``) wins; the
        ``PGHIVE_FAULTS`` environment variable is the fallback so CI can
        switch a whole test run into fault mode without touching code.
        Returns ``None`` when no plan is configured -- the instrumented
        sites then pay only a null check.
        """
        text = spec if spec is not None else os.environ.get("PGHIVE_FAULTS")
        plan = FaultPlan.parse(text)
        if not plan:
            return None
        if seed is None:
            seed = int(os.environ.get("PGHIVE_FAULTS_SEED", "0"))
        return cls(plan, seed)

    def fire(
        self,
        site: str,
        index: int,
        attempt: int | None = None,
        in_worker: bool = False,
    ) -> None:
        """Fire the matching fault for this execution, if any.

        Args:
            site: Instrumentation point name (e.g. ``"shard"``).
            index: Shard/batch index being executed.
            attempt: 0-based execution attempt, as tracked by the caller
                across retries.  ``None`` uses an internal per-site
                counter (each call counts as one attempt) for call sites
                without their own retry bookkeeping.
            in_worker: True inside a pool worker process.  ``kill`` is
                only honoured there -- the driver process must survive to
                run the recovery it is being tested on.
        """
        spec = self.plan.matching(site, index)
        if spec is None:
            return
        attempt = self._armed(spec, site, index, attempt)
        if attempt is None:
            return
        if spec.mode == "raise":
            raise InjectedFault(
                f"injected fault: {site}[{index}] attempt {attempt}"
            )
        if spec.mode == "enospc":
            raise OSError(
                errno.ENOSPC,
                f"injected fault: no space left on device at "
                f"{site}[{index}]",
            )
        if spec.mode == "hang":
            time.sleep(spec.seconds)
            return
        if spec.mode == "kill" and in_worker:
            os._exit(KILL_EXIT_CODE)

    def corrupts(
        self, site: str, index: int, attempt: int | None = None
    ) -> bool:
        """Whether a ``corrupt``-mode fault fires for this execution.

        The storage call sites own the actual damage (tearing a write,
        flipping a byte, truncating a rename target) because it is
        site-specific; this method only answers the deterministic
        "does it happen now" question with the same attempt/probability
        bookkeeping as :meth:`fire`.
        """
        spec = self.plan.matching(site, index, corrupting=True)
        if spec is None:
            return False
        return self._armed(spec, site, index, attempt) is not None

    def _armed(
        self,
        spec: FaultSpec,
        site: str,
        index: int,
        attempt: int | None,
    ) -> int | None:
        """Shared attempt-budget and probability gate for one match.

        Returns the resolved attempt number when the fault fires, or
        ``None`` when this execution is past the budget / lost the
        probability draw.
        """
        if attempt is None:
            # The corrupting dimension is part of the key: a plan mixing
            # corrupt and non-corrupt specs at one site must not have
            # corrupts() calls consume fire()'s attempt budget.
            key = (site, index, spec.mode == "corrupt")
            attempt = self._counters.get(key, 0)
            self._counters[key] = attempt + 1
        if attempt >= spec.times:
            return None
        if spec.probability < 1.0:
            # Keyed RNG: the draw depends only on (seed, site, index,
            # attempt), never on call order across sites or processes.
            rng = random.Random(f"{self.seed}:{site}:{index}:{attempt}")
            if rng.random() >= spec.probability:
                return None
        return attempt
