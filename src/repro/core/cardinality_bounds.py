"""Exact cardinality bounds with participation analysis.

Section 4.4 of the paper computes only the *upper* bounds of edge
cardinalities (max in/out degree) and leaves the lower bounds as future
work: "We cannot determine whether the source's lower bound is exactly 0
or 1, as we query only the edges.  This requires to examine if all nodes
are connected to the respective edge."

This module implements that missing analysis.  For every edge type it
checks whether *all* instances of its source node type(s) participate in
at least one edge of the type (total participation => lower bound 1) and
likewise for targets, yielding interval cardinalities such as
``(1..1, 0..N)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.store import BaseGraphStore
from repro.schema.model import EdgeType, SchemaGraph


@dataclass(frozen=True, slots=True)
class CardinalityBounds:
    """Interval cardinality of one edge type.

    ``source_min``/``source_max`` bound how many edges of the type a
    single source-type node participates in; likewise for targets.
    ``max`` values of 0 mean "no observation"; ``None`` renders as N.
    """

    source_min: int
    source_max: int | None  # None = N (unbounded / > 1)
    target_min: int
    target_max: int | None

    def render(self) -> str:
        """Interval notation, e.g. ``(1..N, 0..1)``."""
        return (
            f"({self.source_min}..{_bound(self.source_max)}, "
            f"{self.target_min}..{_bound(self.target_max)})"
        )


def _bound(value: int | None) -> str:
    return "N" if value is None else str(value)


def compute_cardinality_bounds(
    schema: SchemaGraph, store: BaseGraphStore
) -> dict[str, CardinalityBounds]:
    """Exact interval cardinalities for every edge type of a schema.

    Requires the schema's node and edge types to still carry their member
    ids (i.e. run before ``SchemaGraph.detach_members``).

    Returns:
        edge type name -> :class:`CardinalityBounds`.
    """
    bounds: dict[str, CardinalityBounds] = {}
    for edge_type in schema.edge_types.values():
        bounds[edge_type.name] = _bounds_for_edge_type(
            schema, store, edge_type
        )
    return bounds


def _bounds_for_edge_type(
    schema: SchemaGraph, store: BaseGraphStore, edge_type: EdgeType
) -> CardinalityBounds:
    """Participation analysis for one edge type."""
    participating_sources: set[int] = set()
    participating_targets: set[int] = set()
    out_degree: dict[int, int] = {}
    in_degree: dict[int, int] = {}
    for edge_id in edge_type.members:
        edge = store.edge(edge_id)
        participating_sources.add(edge.source)
        participating_targets.add(edge.target)
        out_degree[edge.source] = out_degree.get(edge.source, 0) + 1
        in_degree[edge.target] = in_degree.get(edge.target, 0) + 1
    source_population = _population(schema, edge_type.source_types)
    target_population = _population(schema, edge_type.target_types)
    source_min = _participation_min(
        source_population, participating_sources
    )
    target_min = _participation_min(
        target_population, participating_targets
    )
    max_out = max(out_degree.values(), default=0)
    max_in = max(in_degree.values(), default=0)
    return CardinalityBounds(
        source_min=source_min,
        source_max=1 if max_out <= 1 else None,
        target_min=target_min,
        target_max=1 if max_in <= 1 else None,
    )


def _population(schema: SchemaGraph, type_names: set[str]) -> set[int]:
    """All node ids belonging to the given node types."""
    population: set[int] = set()
    for name in type_names:
        node_type = schema.node_types.get(name)
        if node_type is not None:
            population.update(node_type.members)
    return population


def _participation_min(population: set[int], participating: set[int]) -> int:
    """Lower bound: 1 iff every node of the endpoint type participates.

    An empty population (endpoint types unresolved) conservatively yields
    a lower bound of 0 -- the sound default the paper also uses.
    """
    if not population:
        return 0
    return 1 if population <= participating else 0
