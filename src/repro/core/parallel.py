"""Parallel sharded discovery: a fault-tolerant multi-process pipeline.

The incremental engine computes each batch schema *independently* of the
running schema (when the memoization fast path is off), and the merge
rules of :mod:`repro.schema.merge` are union-only (Lemmas 1-2).  Batch
discovery therefore parallelizes embarrassingly: shard the store into
batches, discover each shard's schema in a worker process, and combine
the per-shard schemas through the canonical pairwise merge tree of
:func:`repro.schema.merge.merge_schema_tree`.

Payload contract
----------------
Workers never receive pickled :class:`~repro.graph.model.Node` /
:class:`~repro.graph.model.Edge` objects.  Two payload modes exist:

* **plan mode** (:meth:`ParallelDiscovery.discover_store`): the parent
  warms the store's shard partition and forks; each worker receives only
  a list of :class:`~repro.graph.store.ShardPlan` scalars and
  materializes + columnizes its own shards against the fork-inherited
  store.  Nothing graph-sized ever crosses the process pipe, and the
  columnization work -- the dominant serial cost -- runs inside the
  workers.
* **columns mode** (:meth:`ParallelDiscovery.discover_batches`): for
  stateful sources such as :class:`~repro.datasets.stream.GraphStream`,
  the parent iterates the stream, columnizes each batch once, and ships
  the compact integer-id arrays (:class:`~repro.core.columns.NodeColumns`
  / :class:`~repro.core.columns.EdgeColumns`) to the pool.

Failure model and recovery
--------------------------
Because shard discovery is a *pure* function of the shard payload, any
shard may be re-executed any number of times, anywhere, and merge to the
identical schema -- re-execution is the entire recovery strategy:

* a task that **raises** is split into single-shard tasks; a failing
  single shard is retried up to ``config.shard_retries`` times with
  linear backoff (``config.shard_retry_backoff``);
* a **dead worker** (``BrokenProcessPool``: OOM kill, segfault, injected
  ``kill`` fault) breaks the whole pool; the driver respawns the pool
  and requeues only the shards whose results were lost;
* a task exceeding ``config.shard_timeout`` seconds is declared **hung**;
  the pool's processes are killed (a hung future cannot be cancelled),
  the pool respawns, the timed-out shards are blamed and everything else
  requeues untouched;
* a shard that exhausts its pool retries is re-executed **in-process**
  as a last resort (a poisoned shard may crash every worker yet still
  succeed under the parent, e.g. when the failure is environmental);
* a shard that *still* fails is dropped from the run -- the surviving
  shards merge into a valid (if partial) schema -- unless
  ``config.strict_recovery`` is set, in which case
  :class:`ShardRecoveryError` propagates.

Every failure event becomes a structured
:class:`~repro.core.result.ShardFailure` on the
:class:`~repro.core.result.DiscoveryResult`, and recovered runs stay
byte-identical to a clean sequential run (``tests/test_recovery.py``
drives each path through the deterministic fault harness of
:mod:`repro.core.faults`).

Determinism contract
--------------------
The final schema is a pure function of the set of *successful* shard
schemas: workers return per-shard schemas individually, the driver sorts
them by shard index and reduces them through the canonical index-ordered
merge tree, so the result is independent of worker count, chunking,
completion order, and of how many attempts each shard needed.  Each
shard is discovered with its global batch index, keeping pseudo-label
tags (``b{i}``) and parameter keys (``batch{i}/...``) identical to a
sequential run over the same batch sequence; on labeled data the result
is byte-identical to ``jobs=1`` (``tests/test_parallel.py`` enforces
both properties).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.core.columns import EdgeColumns, NodeColumns, edge_columns, node_columns
from repro.core.config import PGHiveConfig
from repro.core.faults import FaultInjector
from repro.core.incremental import IncrementalDiscovery
from repro.core.postprocess import (
    attach_partial_stats,
    schema_stats_from_dict,
    schema_stats_to_dict,
    sharded_postprocess_enabled,
)
from repro.core.result import BatchReport, DiscoveryResult, ShardFailure
from repro.core.type_extraction import resolve_edge_endpoints
from repro.graph.store import GraphBatch, GraphStore, ShardPlan
from repro.schema.merge import merge_schema_tree, merge_schemas
from repro.schema.model import SchemaGraph
from repro.schema.persist import (
    SchemaPersistError,
    clear_shard_journal,
    load_shard_journal,
    save_shard_journal_entry,
    schema_from_dict,
    schema_to_dict,
)

# One unit of pool work: a shard recipe (plan mode) or a pre-columnized
# batch of (index, node columns, edge columns) (columns mode).
Payload = ShardPlan | tuple[int, NodeColumns, EdgeColumns]

__all__ = [
    "ParallelDiscovery",
    "ShardRecoveryError",
    "ShardResult",
    "combine_shard_results",
    "fork_available",
]


class ShardRecoveryError(RuntimeError):
    """Raised in strict mode when a shard fails beyond all recovery.

    Carries the full failure history so callers can distinguish a
    poisoned shard (every attempt failed the same way) from flaky
    infrastructure (mixed kinds across attempts).
    """

    def __init__(self, failures: Sequence[ShardFailure]) -> None:
        self.failures = list(failures)
        unrecovered = sorted({
            f.index for f in self.failures if f.recovered_by is None
        })
        super().__init__(
            f"shards {unrecovered} failed after retries and in-process "
            f"fallback ({len(self.failures)} failure events)"
        )


@dataclass
class ShardResult:
    """One shard's independently discovered schema plus diagnostics."""

    index: int
    schema: SchemaGraph
    report: BatchReport
    parameters: dict[str, str] = field(default_factory=dict)


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform.

    The plan-mode payload relies on copy-on-write inheritance of the
    parent's store; without ``fork`` (e.g. Windows, or macOS policies
    forcing ``spawn``) the driver falls back to sequential discovery.
    """
    return "fork" in multiprocessing.get_all_start_methods()


def combine_shard_results(
    name: str,
    results: Sequence[ShardResult],
    config: PGHiveConfig,
) -> SchemaGraph:
    """Reduce per-shard schemas into the final schema (pure function).

    Sorts by shard index, merges through the canonical pairwise tree,
    then folds the tree result into a fresh named schema -- mirroring
    the sequential engine's "merge batch into running schema" step -- and
    resolves edge endpoint types once at the end.  Because the reduction
    only depends on the *sorted* results, any permutation of ``results``
    (worker completion order) yields the identical schema; the
    order-invariance property test calls this directly.
    """
    ordered = sorted(results, key=lambda r: r.index)
    tree = merge_schema_tree(
        [r.schema for r in ordered],
        config.jaccard_threshold,
        config.endpoint_jaccard_threshold,
    )
    final = merge_schemas(
        SchemaGraph(name),
        tree,
        config.jaccard_threshold,
        config.endpoint_jaccard_threshold,
    )
    resolve_edge_endpoints(final)
    return final


# ----------------------------------------------------------------------
# Worker side.  State shared by fork inheritance: the parent sets
# ``_PARENT_STATE`` immediately before creating the pool, children
# inherit the reference copy-on-write, and nothing graph-sized is ever
# pickled.  (Pool tasks themselves carry only plans or column arrays,
# plus the per-shard attempt numbers the fault injector keys on.)
# ----------------------------------------------------------------------
_PARENT_STATE: tuple[GraphStore | None, PGHiveConfig] | None = None


def _worker_injector(config: PGHiveConfig) -> FaultInjector | None:
    return FaultInjector.from_spec(config.faults)


def _discover_plan_chunk(
    plans: Sequence[ShardPlan],
    attempts: Sequence[int],
    in_worker: bool = True,
) -> list[ShardResult]:
    """Worker: materialize, columnize and discover a chunk of shards.

    A chunk of *consecutive* shard indices shares one engine, so the
    cross-batch embedder reuse of the sequential engine still applies
    within the chunk (reuse never changes output, only cost).
    """
    store, config = _PARENT_STATE
    injector = _worker_injector(config)
    engine = IncrementalDiscovery(config, name="shard")
    compute_stats = sharded_postprocess_enabled(config)
    results: list[ShardResult] = []
    for plan, attempt in zip(plans, attempts):
        if injector is not None:
            injector.fire("shard", plan.index, attempt, in_worker=in_worker)
        batch = store.materialize_shard(plan)
        ncols = node_columns(batch.nodes)
        ecols = edge_columns(batch.edges, batch.endpoint_labels)
        shard = _discover_one(engine, plan.index, ncols, ecols)
        if compute_stats:
            # Post-processing runs sharded: the worker has the
            # materialized elements in hand, so it folds the per-type
            # partial statistics here and ships them with the schema.
            attach_partial_stats(shard.schema, batch.nodes, batch.edges)
        results.append(shard)
    return results


def _discover_columns_chunk(
    payloads: Sequence[tuple[int, NodeColumns, EdgeColumns]],
    attempts: Sequence[int],
    in_worker: bool = True,
) -> list[ShardResult]:
    """Worker: discover a chunk of pre-columnized shards."""
    _, config = _PARENT_STATE
    injector = _worker_injector(config)
    engine = IncrementalDiscovery(config, name="shard")
    results: list[ShardResult] = []
    for (index, ncols, ecols), attempt in zip(payloads, attempts):
        if injector is not None:
            injector.fire("shard", index, attempt, in_worker=in_worker)
        results.append(_discover_one(engine, index, ncols, ecols))
    return results


def _discover_one(
    engine: IncrementalDiscovery,
    index: int,
    ncols: NodeColumns,
    ecols: EdgeColumns,
) -> ShardResult:
    seen = len(engine.parameters)
    schema, report = engine.discover_batch_columns(
        ncols, ecols, batch_index=index
    )
    report.worker = os.getpid()
    params = dict(list(engine.parameters.items())[seen:])
    return ShardResult(index, schema, report, params)


def _payload_index(payload: Payload) -> int:
    """Global shard index of a task payload (plan or columns tuple)."""
    if isinstance(payload, ShardPlan):
        return payload.index
    return payload[0]


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Kill a pool's worker processes and discard the executor.

    A hung worker cannot be cancelled through the executor API, so the
    timeout watchdog resorts to SIGKILL; the executor object is then
    abandoned (broken) and the driver builds a fresh one.
    """
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.kill()
        except Exception:  # pragma: no cover - already-dead races
            pass
    pool.shutdown(wait=False, cancel_futures=True)


# ----------------------------------------------------------------------
# Shard journal (parallel-path checkpointing)
# ----------------------------------------------------------------------
class _ShardJournal:
    """Journals completed shards under ``<checkpoint_dir>/shards/``.

    Each entry is one atomic JSON document (shard schema with members,
    partial post-processing stats, batch report, parameters) plus the
    run context ``{source, num_batches, seed}``.  A resumed run loads
    every entry whose context matches, skips those shards in the pool,
    and merges journaled and fresh results identically -- shard purity
    guarantees a journaled shard equals its recomputation byte for byte.
    Entries that cannot be used (corrupt files, foreign versions, a
    different run context) are recomputed and reported, never fatal.
    """

    def __init__(self, directory: str, context: dict[str, object]) -> None:
        self.directory = Path(directory)
        self.context = dict(context)
        self.skipped: list[str] = []

    def reset(self) -> None:
        """Drop all entries (fresh run: never mix two runs' shards)."""
        clear_shard_journal(self.directory)

    def record(self, shard: ShardResult) -> None:
        """Atomically journal one completed shard."""
        document: dict[str, object] = {
            "context": self.context,
            "schema": schema_to_dict(shard.schema, include_members=True),
            "stats": schema_stats_to_dict(shard.schema),
            "report": shard.report.to_dict(),
            "parameters": dict(shard.parameters),
        }
        save_shard_journal_entry(self.directory, shard.index, document)

    def load(self) -> dict[int, ShardResult]:
        """Rebuild ShardResults from every usable journaled entry."""
        entries, self.skipped = load_shard_journal(self.directory)
        results: dict[int, ShardResult] = {}
        for index in sorted(entries):
            document = entries[index]
            if document.get("context") != self.context:
                self.skipped.append(
                    f"shard-{index:05d}.json: context mismatch"
                )
                continue
            try:
                schema = schema_from_dict(document.get("schema", {}))
            except SchemaPersistError:
                self.skipped.append(
                    f"shard-{index:05d}.json: malformed schema"
                )
                continue
            schema_stats_from_dict(schema, document.get("stats"))
            report = BatchReport.from_dict(document.get("report", {}))
            parameters = {
                str(key): str(value)
                for key, value in document.get("parameters", {}).items()
            }
            results[index] = ShardResult(index, schema, report, parameters)
        return results


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
class ParallelDiscovery:
    """Multi-process batch discovery with retry, respawn, and fallback.

    Drives ``config.jobs`` worker processes over the shards of a store
    (plan mode) or an already-batched stream (columns mode), then
    combines the per-shard schemas with :func:`combine_shard_results`.
    In plan mode the workers also fold the post-processing statistics
    (datatype joins, value-profile partials, per-node degree maps) into
    :class:`~repro.core.postprocess.TypeStats` riding on the shard
    types; :class:`repro.core.pipeline.PGHive` consumes the merged stats
    with :func:`~repro.core.postprocess.apply_partial_stats` -- or falls
    back to the serial store-backed passes (columns mode, sampling
    mode).  See the module docstring for the failure model.
    """

    def __init__(self, config: PGHiveConfig | None = None) -> None:
        self.config = config or PGHiveConfig()

    def discover_store(
        self, store: GraphStore, num_batches: int, resume: bool = False
    ) -> DiscoveryResult:
        """Shard ``store`` into ``num_batches`` and discover in parallel.

        When ``config.checkpoint_dir`` is set, every completed shard is
        journaled atomically under ``<checkpoint_dir>/shards/``; with
        ``resume=True``, shards already journaled by a crashed run with
        the same context (source, batch count, seed) are loaded instead
        of recomputed, and the merged schema is byte-identical to an
        uninterrupted run.  A non-resume run clears the journal first.
        """
        started = time.perf_counter()
        journal: _ShardJournal | None = None
        preloaded: dict[int, ShardResult] = {}
        if self.config.checkpoint_dir:
            journal = _ShardJournal(
                self.config.checkpoint_dir,
                {
                    "source": store.graph.name,
                    "num_batches": num_batches,
                    "seed": self.config.seed,
                },
            )
            if resume:
                preloaded = journal.load()
            else:
                journal.reset()
        plans = store.plan_shards(num_batches, seed=self.config.seed)
        todo = [plan for plan in plans if plan.index not in preloaded]
        chunk = self.config.chunk_size(num_batches)
        chunks = [todo[i : i + chunk] for i in range(0, len(todo), chunk)]
        shard_results, failures = self._run_pool(
            _discover_plan_chunk, chunks, store, journal=journal
        )
        all_results = [preloaded[index] for index in sorted(preloaded)]
        all_results += shard_results
        result = self._combine(
            store.graph.name, all_results, failures, started
        )
        if preloaded:
            result.resumed_shards = sorted(preloaded)
            result.parameters["parallel/journal"] = (
                f"dir={self.config.checkpoint_dir} "
                f"resumed_shards={sorted(preloaded)}"
            )
        if journal is not None and journal.skipped:
            result.parameters["parallel/journal_skipped"] = (
                " ".join(journal.skipped)
            )
        return result

    def discover_batches(
        self,
        batches: Iterable[GraphBatch],
        name: str = "stream",
        total: int | None = None,
    ) -> DiscoveryResult:
        """Discover pre-batched data (e.g. a :class:`GraphStream`).

        The parent consumes the iterable -- stateful streams must be
        generated in order -- columnizing each batch once and shipping
        the compact arrays to the pool.  Because the parent keeps every
        columnized payload for the duration of the run, lost or timed-out
        shards can be re-shipped without re-reading the stream.
        """
        started = time.perf_counter()
        payloads: list[tuple[int, NodeColumns, EdgeColumns]] = []
        for index, batch in enumerate(batches):
            payloads.append(
                (
                    index,
                    node_columns(batch.nodes),
                    edge_columns(batch.edges, batch.endpoint_labels),
                )
            )
        chunk = self.config.chunk_size(
            total if total is not None else len(payloads)
        )
        chunks = [
            payloads[i : i + chunk]
            for i in range(0, len(payloads), chunk)
        ]
        shard_results, failures = self._run_pool(
            _discover_columns_chunk, chunks, store=None
        )
        return self._combine(name, shard_results, failures, started)

    # ------------------------------------------------------------------
    # Pool loop with recovery
    # ------------------------------------------------------------------
    def _run_pool(
        self,
        worker: Callable[..., list[ShardResult]],
        chunks: Sequence[list[ShardPlan]]
        | Sequence[list[tuple[int, NodeColumns, EdgeColumns]]],
        store: GraphStore | None,
        journal: _ShardJournal | None = None,
    ) -> tuple[list[ShardResult], list[ShardFailure]]:
        """Run the pool to completion, recovering from task failures.

        Tasks start as the caller's chunks at attempt 0.  A failed task
        of several shards is split into single-shard tasks at the *same*
        attempt (re-running an innocent shard is free thanks to purity,
        and the faulty one then fails alone and is blamed precisely); a
        failed single shard is retried with backoff until its attempt
        budget runs out, then handed to the in-process fallback.
        """
        if not chunks:
            return [], []
        global _PARENT_STATE
        context = multiprocessing.get_context("fork")
        _PARENT_STATE = (store, self.config)
        config = self.config
        workers = max(1, min(config.jobs, len(chunks)))
        timeout = config.shard_timeout
        results: dict[int, ShardResult] = {}
        failures: list[ShardFailure] = []
        fallback: list[tuple[object, int]] = []
        pending: deque[tuple[list, list[int]]] = deque(
            (list(chunk), [0] * len(chunk)) for chunk in chunks
        )
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        running: dict[object, tuple[list, list[int], float]] = {}

        def collect(shards: list[ShardResult], attempts: list[int]) -> None:
            for shard, attempt in zip(shards, attempts):
                shard.report.attempts = attempt + 1
                results[shard.index] = shard
                if journal is not None:
                    journal.record(shard)
                if attempt > 0:
                    self._mark_recovered(failures, shard.index, "retry")

        def requeue(payloads: list[Payload], attempts: list[int], kind: str,
                    error: str) -> None:
            """Split / blame / retry / fall back after one task failure."""
            if len(payloads) > 1:
                # Blame is per-shard: rerun each alone at the same
                # attempt so the faulty one fails in isolation next.
                for payload, attempt in zip(payloads, attempts):
                    pending.append(([payload], [attempt]))
                return
            payload, attempt = payloads[0], attempts[0]
            index = _payload_index(payload)
            failures.append(ShardFailure(index, attempt, kind, error))
            if attempt + 1 <= config.shard_retries:
                if config.shard_retry_backoff:
                    time.sleep(config.shard_retry_backoff * (attempt + 1))
                pending.append(([payload], [attempt + 1]))
            else:
                fallback.append((payload, attempt + 1))

        try:
            while pending or running:
                while pending and len(running) < workers:
                    payloads, attempts = pending.popleft()
                    try:
                        future = pool.submit(worker, payloads, attempts)
                    except BrokenProcessPool:
                        # The pool broke between iterations.  Put the
                        # task back; drain the dead futures through the
                        # wait() below, or respawn at once if none.
                        pending.appendleft((payloads, attempts))
                        if running:
                            break
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = ProcessPoolExecutor(
                            max_workers=workers, mp_context=context
                        )
                        continue
                    running[future] = (payloads, attempts, time.monotonic())
                done, _ = wait(
                    set(running),
                    timeout=0.05 if timeout else None,
                    return_when=FIRST_COMPLETED,
                )
                broken = False
                for future in done:
                    payloads, attempts, _started = running.pop(future)
                    try:
                        collect(future.result(), attempts)
                    except BrokenProcessPool:
                        broken = True
                        requeue(payloads, attempts, "worker-lost",
                                "worker process died")
                    except Exception as exc:
                        requeue(payloads, attempts, "error",
                                f"{type(exc).__name__}: {exc}")
                if broken:
                    # Every other in-flight future died with the pool;
                    # their work is lost, so they requeue through the
                    # same blame path (splitting chunks keeps the
                    # eventual blame per-shard precise).
                    for payloads, attempts, _started in running.values():
                        requeue(payloads, attempts, "worker-lost",
                                "worker process died")
                    running.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(
                        max_workers=workers, mp_context=context
                    )
                elif timeout and running:
                    now = time.monotonic()
                    timed_out = [
                        future
                        for future, (_p, _a, started) in running.items()
                        if now - started > timeout
                    ]
                    if timed_out:
                        for future in timed_out:
                            payloads, attempts, _started = running.pop(future)
                            requeue(
                                payloads, attempts, "timeout",
                                f"exceeded shard_timeout={timeout:g}s",
                            )
                        # Innocent in-flight tasks are lost with the
                        # killed pool but not blamed: they requeue whole
                        # at their current attempts.
                        for payloads, attempts, _started in running.values():
                            pending.append((payloads, attempts))
                        running.clear()
                        _terminate_pool(pool)
                        pool = ProcessPoolExecutor(
                            max_workers=workers, mp_context=context
                        )
            # Last resort: poisoned shards run in the driver process,
            # where a crashing worker environment cannot take them down.
            for payload, attempt in sorted(
                fallback, key=lambda item: _payload_index(item[0])
            ):
                index = _payload_index(payload)
                try:
                    shards = worker([payload], [attempt], in_worker=False)
                except Exception as exc:
                    failures.append(ShardFailure(
                        index, attempt, "fallback-failed",
                        f"{type(exc).__name__}: {exc}",
                    ))
                    continue
                for shard in shards:
                    shard.report.attempts = attempt + 1
                    results[shard.index] = shard
                    if journal is not None:
                        journal.record(shard)
                self._mark_recovered(failures, index, "fallback")
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
            _PARENT_STATE = None
        failures.sort(key=lambda f: (f.index, f.attempt))
        if config.strict_recovery and any(
            f.recovered_by is None for f in failures
        ):
            raise ShardRecoveryError(failures)
        return sorted(results.values(), key=lambda r: r.index), failures

    @staticmethod
    def _mark_recovered(
        failures: list[ShardFailure], index: int, how: str
    ) -> None:
        for failure in failures:
            if failure.index == index and failure.recovered_by is None:
                failure.recovered_by = how

    def _combine(
        self,
        name: str,
        shard_results: list[ShardResult],
        failures: list[ShardFailure],
        started: float,
    ) -> DiscoveryResult:
        merge_started = time.perf_counter()
        schema = combine_shard_results(name, shard_results, self.config)
        merge_seconds = time.perf_counter() - merge_started
        ordered = sorted(shard_results, key=lambda r: r.index)
        parameters: dict[str, str] = {}
        for shard in ordered:
            parameters.update(shard.parameters)
        workers = {r.report.worker for r in ordered if r.report.worker}
        parameters["parallel/jobs"] = (
            f"jobs={self.config.jobs} workers_used={len(workers)} "
            f"shards={len(ordered)}"
        )
        parameters["parallel/merge_seconds"] = f"{merge_seconds:.6f}"
        if failures:
            recovered = sorted({
                f.index for f in failures if f.recovered_by is not None
            })
            dropped = sorted({
                f.index for f in failures if f.recovered_by is None
            })
            parameters["parallel/recovery"] = (
                f"failure_events={len(failures)} "
                f"recovered_shards={recovered} degraded_shards={dropped}"
            )
        result = DiscoveryResult(
            schema=schema,
            batches=[r.report for r in ordered],
            parameters=parameters,
            discovery_seconds=time.perf_counter() - started,
            shard_failures=failures,
        )
        result.refresh_assignments()
        return result
