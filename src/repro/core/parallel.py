"""Parallel sharded discovery: a fault-tolerant multi-process pipeline.

The incremental engine computes each batch schema *independently* of the
running schema (the memoization fast path is decoupled separately, see
below), and the merge rules of :mod:`repro.schema.merge` are union-only
(Lemmas 1-2).  Batch discovery therefore parallelizes embarrassingly:
shard the source into batches, discover each shard's schema in a worker
process, and combine the per-shard schemas through the canonical
pairwise merge tree of :func:`repro.schema.merge.merge_schema_tree`.

Payload contract and shard transport
------------------------------------
Workers never receive pickled :class:`~repro.graph.model.Node` /
:class:`~repro.graph.model.Edge` objects.  Three payload modes exist:

* **plan mode** (:meth:`ParallelDiscovery.discover_store`): the parent
  computes the shard partition -- the node half serially (one seeded
  shuffle), the O(edges) bucketing half *on the worker pool* via
  :meth:`~repro.graph.store.GraphStore.bucket_edge_range` slices whose
  per-shard buckets concatenate to the byte-identical single-pass
  assignment -- installs it into the store, and forks; each worker
  receives only :class:`~repro.graph.store.ShardPlan` scalars and
  materializes + columnizes its shards against the fork-inherited store.
* **stream mode** (:meth:`ParallelDiscovery.discover_stream`): for a
  seeded :class:`~repro.datasets.stream.GraphStream`, workers receive
  :class:`~repro.datasets.stream.StreamShardPlan` scalars and *replay*
  the stream's deterministic generation themselves, so batch generation
  and columnization both ride the pool.
* **columns mode** (:meth:`ParallelDiscovery.discover_batches`): for
  arbitrary pre-batched data the parent columnizes each batch once and
  ships the compact integer-id arrays.

How results (and columns-mode payloads) cross the pool boundary is the
``config.shard_transport`` knob (:mod:`repro.core.transport`): under
``shm``/``memmap`` the driver pre-reserves one segment name per task,
workers publish their pickled shard results into that segment and return
only a tiny :class:`~repro.core.transport.SlabRef` through the pipe, and
columns-mode arrays travel as :class:`ColumnsHandle` offsets into one
shared slab that workers attach read-only.  ``pickle`` keeps the
classic everything-through-the-pipe behavior.  The driver-owned
:class:`~repro.core.transport.SegmentRegistry` tracks every name from
reservation to unlink, so no exit path -- success, raise, dead worker,
timeout SIGKILL, injected attach/unlink fault -- can leak a segment.
Transport never affects the discovered schema.

Failure model and recovery
--------------------------
Because shard discovery is a *pure* function of the shard payload, any
shard may be re-executed any number of times, anywhere, and merge to the
identical schema -- re-execution is the entire recovery strategy:

* a task that **raises** is split into single-shard tasks; a failing
  single shard is retried up to ``config.shard_retries`` times with
  linear backoff (``config.shard_retry_backoff``);
* a **dead worker** (``BrokenProcessPool``: OOM kill, segfault, injected
  ``kill`` fault) breaks the whole pool; the driver respawns the pool
  and requeues only the shards whose results were lost;
* a task exceeding ``config.shard_timeout`` seconds is declared **hung**;
  the pool's processes are killed, the pool respawns, the timed-out
  shards are blamed and everything else requeues untouched;
* with ``config.shard_memory_limit_mb`` set, workers check their RSS
  between pipeline stages and raise :class:`ShardMemoryError` *before*
  the kernel OOM killer fires; the failure surfaces as a structured
  ``ShardFailure(kind="memory")`` and retries/falls back normally (the
  in-process fallback is unguarded -- the driver has the parent's
  headroom);
* a shard that exhausts its pool retries is re-executed **in-process**
  as a last resort; a shard that *still* fails is dropped from the run
  unless ``config.strict_recovery`` raises :class:`ShardRecoveryError`.

Memoization (two-phase absorption)
----------------------------------
``config.memoize_patterns`` historically forced sequential discovery
because absorption consults the *running* schema.  The pool path
decouples it: the lowest shard is discovered first (or loaded from the
resume journal) and its schema frozen into a
:class:`~repro.core.absorption.MemoSnapshot`; every other worker absorbs
known-pattern elements against the snapshot before columnization and
ships :class:`~repro.core.absorption.AbsorptionEntry` summaries with its
result; the driver replays the entries into the merged schema
(:func:`~repro.core.absorption.replay_absorption`) before partial
post-processing stats are applied.  Memoized parallel runs are
type-equivalent (identical type sets, instance counts, constraints) to
sequential memoized runs; see :mod:`repro.core.absorption`.

Determinism contract
--------------------
The final schema is a pure function of the set of *successful* shard
schemas: the driver sorts them by shard index and reduces them through
the canonical index-ordered merge tree, so the result is independent of
worker count, chunking, completion order, transport, and of how many
attempts each shard needed.  On labeled data the result is
byte-identical to ``jobs=1`` for every transport
(``tests/test_parallel.py`` enforces both properties).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import resource
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

import numpy

from repro.core.absorption import (
    AbsorptionEntry,
    MemoSnapshot,
    absorb_batch,
    replay_absorption,
    snapshot_from_schema,
)
from repro.core.columns import (
    EdgeColumns,
    NodeColumns,
    edge_columns,
    key_space_from_orders,
    label_space_from_sets,
    node_columns,
)
from repro.core.config import PGHiveConfig
from repro.core.faults import FaultInjector
from repro.core.incremental import IncrementalDiscovery
from repro.core.postprocess import (
    attach_partial_stats,
    schema_stats_from_dict,
    schema_stats_to_dict,
    sharded_postprocess_enabled,
)
from repro.core.result import BatchReport, DiscoveryResult, ShardFailure
from repro.core.transport import (
    ArrayRef,
    SegmentRegistry,
    Slab,
    SlabRef,
    attach_slab,
    publish_result_bytes,
    resolve_transport,
)
from repro.core.type_extraction import resolve_edge_endpoints
from repro.datasets.stream import GraphStream, StreamShardPlan
from repro.graph.slab import SlabCorruptionError
from repro.graph.store import BaseGraphStore, GraphBatch, ShardPlan
from repro.schema.merge import merge_schema_tree, merge_schemas
from repro.schema.model import SchemaGraph
from repro.schema.persist import (
    SchemaPersistError,
    clear_shard_journal,
    load_shard_journal,
    save_shard_journal_entry,
    schema_from_dict,
    schema_to_dict,
)

__all__ = [
    "ColumnsHandle",
    "ParallelDiscovery",
    "ShardMemoryError",
    "ShardRecoveryError",
    "ShardResult",
    "combine_shard_results",
    "fork_available",
]


@dataclass(frozen=True)
class ColumnsHandle:
    """Zero-copy handle to one pre-columnized batch inside a shared slab.

    Ships only offsets/dtypes plus the interner states (label sets and
    first-seen key orders) needed to rebuild byte-identical
    :class:`~repro.core.columns.NodeColumns` /
    :class:`~repro.core.columns.EdgeColumns` from read-only views of the
    attached slab.
    """

    index: int
    slab: SlabRef
    node_ids: ArrayRef
    node_label_ids: ArrayRef
    node_keyset_ids: ArrayRef
    edge_ids: ArrayRef
    edge_source: ArrayRef
    edge_target: ArrayRef
    edge_label_ids: ArrayRef
    edge_src_label_ids: ArrayRef
    edge_tgt_label_ids: ArrayRef
    edge_keyset_ids: ArrayRef
    node_label_sets: tuple[frozenset[str], ...]
    node_key_orders: tuple[tuple[str, ...], ...]
    edge_label_sets: tuple[frozenset[str], ...]
    edge_key_orders: tuple[tuple[str, ...], ...]


# One unit of pool work: a shard recipe (plan/stream mode), a slab handle,
# or a pre-columnized batch tuple (columns mode, pickle transport).
Payload = (
    ShardPlan
    | StreamShardPlan
    | ColumnsHandle
    | tuple[int, NodeColumns, EdgeColumns]
)


class ShardRecoveryError(RuntimeError):
    """Raised in strict mode when a shard fails beyond all recovery.

    Carries the full failure history so callers can distinguish a
    poisoned shard (every attempt failed the same way) from flaky
    infrastructure (mixed kinds across attempts).
    """

    def __init__(self, failures: Sequence[ShardFailure]) -> None:
        self.failures = list(failures)
        unrecovered = sorted({
            f.index for f in self.failures if f.recovered_by is None
        })
        super().__init__(
            f"shards {unrecovered} failed after retries and in-process "
            f"fallback ({len(self.failures)} failure events)"
        )


class ShardMemoryError(RuntimeError):
    """A worker's resident set exceeded ``config.shard_memory_limit_mb``.

    Raised between pipeline stages inside pool workers only; surfaces at
    the driver as a ``ShardFailure(kind="memory")`` and flows through
    the ordinary retry / in-process-fallback machinery.
    """


@dataclass
class ShardResult:
    """One shard's independently discovered schema plus diagnostics."""

    index: int
    schema: SchemaGraph
    report: BatchReport
    parameters: dict[str, str] = field(default_factory=dict)
    absorption: list[AbsorptionEntry] = field(default_factory=list)


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform.

    The plan-mode payload relies on copy-on-write inheritance of the
    parent's store; without ``fork`` (e.g. Windows, or macOS policies
    forcing ``spawn``) the driver falls back to sequential discovery.
    """
    return "fork" in multiprocessing.get_all_start_methods()


def combine_shard_results(
    name: str,
    results: Sequence[ShardResult],
    config: PGHiveConfig,
) -> SchemaGraph:
    """Reduce per-shard schemas into the final schema (pure function).

    Sorts by shard index, merges through the canonical pairwise tree,
    then folds the tree result into a fresh named schema -- mirroring
    the sequential engine's "merge batch into running schema" step -- and
    resolves edge endpoint types once at the end.  Because the reduction
    only depends on the *sorted* results, any permutation of ``results``
    (worker completion order) yields the identical schema; the
    order-invariance property test calls this directly.
    """
    ordered = sorted(results, key=lambda r: r.index)
    tree = merge_schema_tree(
        [r.schema for r in ordered],
        config.jaccard_threshold,
        config.endpoint_jaccard_threshold,
    )
    final = merge_schemas(
        SchemaGraph(name),
        tree,
        config.jaccard_threshold,
        config.endpoint_jaccard_threshold,
    )
    resolve_edge_endpoints(final)
    return final


# ----------------------------------------------------------------------
# Worker side.  State shared by fork inheritance: the parent sets
# ``_PARENT_STATE`` immediately before creating the pool, children
# inherit the reference copy-on-write, and nothing graph-sized is ever
# pickled.  (Pool tasks themselves carry only plans, slab handles or
# column arrays, plus the per-shard attempt numbers the fault injector
# keys on, plus the driver-reserved result segment name.)
# ----------------------------------------------------------------------
@dataclass
class _ParentState:
    """Everything a forked worker inherits from the driver."""

    source: BaseGraphStore | GraphStream | None
    config: PGHiveConfig
    snapshot: MemoSnapshot | None = None
    transport: str = "pickle"
    scratch_dir: str | None = None


_PARENT_STATE: _ParentState | None = None

#: (store, sorted node ids, shard-of-sorted lookup, num shards) for the
#: short-lived partition pool; same fork-inheritance protocol as above.
_PARTITION_STATE: (
    tuple[BaseGraphStore, numpy.ndarray, numpy.ndarray, int] | None
) = None

#: Below this edge count the pool-parallel bucketing pass costs more in
#: fork + concatenate overhead than the serial numpy pass it replaces.
_PARALLEL_PARTITION_MIN_EDGES = 8192


def _worker_injector(config: PGHiveConfig) -> FaultInjector | None:
    return FaultInjector.from_spec(config.faults)


def _current_rss_mb() -> float:
    """Resident set size of this process in MiB."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):
        pass
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return usage.ru_maxrss / 1024.0


def _check_memory(
    config: PGHiveConfig, in_worker: bool, stage: str, index: int
) -> None:
    """Raise :class:`ShardMemoryError` when the worker RSS is over budget.

    Only armed inside pool workers: the in-process fallback runs in the
    driver, whose resident set includes the whole parent store, so a
    budget sized for workers would spuriously kill the recovery path.
    """
    limit = config.shard_memory_limit_mb
    if limit is None or not in_worker:
        return
    rss = _current_rss_mb()
    if rss > limit:
        raise ShardMemoryError(
            f"shard {index}: worker rss {rss:.1f} MiB exceeds "
            f"shard_memory_limit_mb={limit:g} after {stage}"
        )


def _ship_results(
    results: list[ShardResult], reserved: str | None
) -> list[ShardResult] | SlabRef:
    """Return results directly, or publish them into the reserved segment.

    With a zero-copy transport the driver pre-reserved a segment name for
    this task; the worker serializes its results once into that segment
    and returns only the tiny ref through the pipe.
    """
    if reserved is None:
        return results
    state = _PARENT_STATE
    if state is None:
        raise RuntimeError("worker has no inherited parent state")
    data = pickle.dumps(results, protocol=pickle.HIGHEST_PROTOCOL)
    return publish_result_bytes(
        state.transport, state.scratch_dir, reserved, data
    )


def _materialize_plan(
    source: BaseGraphStore | GraphStream | None,
    plan: ShardPlan | StreamShardPlan,
) -> GraphBatch:
    """Dispatch a shard recipe to its source's materializer."""
    if isinstance(plan, ShardPlan) and isinstance(source, BaseGraphStore):
        return source.materialize_shard(plan)
    if isinstance(plan, StreamShardPlan) and isinstance(source, GraphStream):
        return source.materialize_shard(plan)
    raise RuntimeError(
        f"payload {type(plan).__name__} does not match inherited source "
        f"{type(source).__name__}"
    )


def _discover_plan_chunk(
    plans: Sequence[ShardPlan | StreamShardPlan],
    attempts: Sequence[int],
    reserved: str | None = None,
    in_worker: bool = True,
) -> list[ShardResult] | SlabRef:
    """Worker: materialize, columnize and discover a chunk of shards.

    A chunk of *consecutive* shard indices shares one engine, so the
    cross-batch embedder reuse of the sequential engine still applies
    within the chunk (reuse never changes output, only cost); for stream
    plans the consecutive order also keeps the seeded replay cursor
    ascending, so a chunk costs one stream pass in total.
    """
    state = _PARENT_STATE
    if state is None:
        raise RuntimeError("worker has no inherited parent state")
    source, config = state.source, state.config
    injector = _worker_injector(config)
    engine = IncrementalDiscovery(config, name="shard")
    compute_stats = sharded_postprocess_enabled(config)
    snapshot = state.snapshot
    columnizer = getattr(source, "columnize_shard", None)
    results: list[ShardResult] = []
    for plan, attempt in zip(plans, attempts):
        if injector is not None:
            injector.fire("shard", plan.index, attempt, in_worker=in_worker)
        if (
            columnizer is not None
            and isinstance(plan, ShardPlan)
            and snapshot is None
            and not compute_stats
        ):
            # Out-of-core fast path: the disk backend columnizes a shard
            # straight from its mapped slab columns, byte-identical to
            # materializing objects first but without ever holding them.
            # Memoized absorption and sharded stats still need the
            # object form, so they take the materializing path below.
            ncols, ecols = columnizer(plan)
            _check_memory(config, in_worker, "columnization", plan.index)
            results.append(_discover_one(engine, plan.index, ncols, ecols))
            _check_memory(config, in_worker, "discovery", plan.index)
            continue
        batch = _materialize_plan(source, plan)
        _check_memory(config, in_worker, "materialization", plan.index)
        nodes, edges = batch.nodes, batch.edges
        entries: list[AbsorptionEntry] = []
        absorbed_nodes = absorbed_edges = 0
        if snapshot is not None:
            entries, nodes, edges = absorb_batch(
                snapshot,
                nodes,
                edges,
                batch.endpoint_labels,
                config.endpoint_jaccard_threshold,
                compute_stats,
                track_values=config.infer_value_profiles,
            )
            absorbed_nodes = len(batch.nodes) - len(nodes)
            absorbed_edges = len(batch.edges) - len(edges)
        ncols = node_columns(nodes)
        ecols = edge_columns(edges, batch.endpoint_labels)
        _check_memory(config, in_worker, "columnization", plan.index)
        shard = _discover_one(engine, plan.index, ncols, ecols)
        _check_memory(config, in_worker, "discovery", plan.index)
        if snapshot is not None:
            shard.absorption = entries
            shard.report.num_nodes += absorbed_nodes
            shard.report.num_edges += absorbed_edges
            shard.report.memo_node_hits = absorbed_nodes
            shard.report.memo_edge_hits = absorbed_edges
        if compute_stats:
            # Post-processing runs sharded: the worker has the
            # materialized elements in hand, so it folds the per-type
            # partial statistics here and ships them with the schema.
            # Absorbed elements carry their stats in the entries.
            # Value retention follows the profile flag: without
            # profiles the driver only reads datatypes, counts and
            # degrees, so shipping the distinct-value sketch home
            # would cost O(data) driver memory for nothing.
            attach_partial_stats(
                shard.schema, nodes, edges,
                track_values=config.infer_value_profiles,
            )
        results.append(shard)
    return _ship_results(results, reserved)


def _columns_from_handle(
    handle: ColumnsHandle, slab: Slab
) -> tuple[NodeColumns, EdgeColumns]:
    """Rebuild byte-identical columns from read-only slab views."""
    node_labels = label_space_from_sets(handle.node_label_sets)
    node_keys = key_space_from_orders(handle.node_key_orders)
    edge_labels = label_space_from_sets(handle.edge_label_sets)
    edge_keys = key_space_from_orders(handle.edge_key_orders)
    ncols = NodeColumns(
        ids=slab.array(handle.node_ids),
        label_ids=slab.array(handle.node_label_ids),
        keyset_ids=slab.array(handle.node_keyset_ids),
        labels=node_labels,
        keys=node_keys,
    )
    ecols = EdgeColumns(
        ids=slab.array(handle.edge_ids),
        source=slab.array(handle.edge_source),
        target=slab.array(handle.edge_target),
        label_ids=slab.array(handle.edge_label_ids),
        src_label_ids=slab.array(handle.edge_src_label_ids),
        tgt_label_ids=slab.array(handle.edge_tgt_label_ids),
        keyset_ids=slab.array(handle.edge_keyset_ids),
        labels=edge_labels,
        keys=edge_keys,
    )
    return ncols, ecols


def _discover_columns_chunk(
    payloads: Sequence[ColumnsHandle | tuple[int, NodeColumns, EdgeColumns]],
    attempts: Sequence[int],
    reserved: str | None = None,
    in_worker: bool = True,
) -> list[ShardResult] | SlabRef:
    """Worker: discover a chunk of pre-columnized shards.

    Under a zero-copy transport the payloads are :class:`ColumnsHandle`
    offsets into one shared slab; the worker attaches the slab once per
    chunk, reads the arrays as zero-copy views and detaches when done.
    """
    state = _PARENT_STATE
    if state is None:
        raise RuntimeError("worker has no inherited parent state")
    config = state.config
    injector = _worker_injector(config)
    engine = IncrementalDiscovery(config, name="shard")
    results: list[ShardResult] = []
    slabs: dict[str, Slab] = {}
    try:
        for payload, attempt in zip(payloads, attempts):
            index = _payload_index(payload)
            if injector is not None:
                injector.fire("shard", index, attempt, in_worker=in_worker)
            if isinstance(payload, ColumnsHandle):
                slab = slabs.get(payload.slab.name)
                if slab is None:
                    slab = attach_slab(
                        payload.slab, injector, index, attempt,
                        in_worker=in_worker,
                    )
                    slabs[payload.slab.name] = slab
                ncols, ecols = _columns_from_handle(payload, slab)
            else:
                _, ncols, ecols = payload
            _check_memory(config, in_worker, "attach", index)
            results.append(_discover_one(engine, index, ncols, ecols))
            _check_memory(config, in_worker, "discovery", index)
        return _ship_results(results, reserved)
    finally:
        # The last iteration's column views still alias the slab buffer;
        # drop them so close() can release the mapping cleanly.
        ncols = ecols = None  # type: ignore[assignment]
        for name in sorted(slabs):
            slabs[name].close()


def _discover_one(
    engine: IncrementalDiscovery,
    index: int,
    ncols: NodeColumns,
    ecols: EdgeColumns,
) -> ShardResult:
    seen = len(engine.parameters)
    schema, report = engine.discover_batch_columns(
        ncols, ecols, batch_index=index
    )
    report.worker = os.getpid()
    params = dict(list(engine.parameters.items())[seen:])
    return ShardResult(index, schema, report, params)


def _bucket_edges_task(start: int, stop: int) -> list[numpy.ndarray]:
    """Worker: bucket one slice of the edge sequence by source shard."""
    state = _PARTITION_STATE
    if state is None:
        raise RuntimeError("worker has no inherited partition state")
    store, sorted_ids, shard_of_sorted, num_shards = state
    return store.bucket_edge_range(
        start, stop, sorted_ids, shard_of_sorted, num_shards
    )


def _payload_index(payload: Payload) -> int:
    """Global shard index of a task payload."""
    if isinstance(payload, (ShardPlan, StreamShardPlan, ColumnsHandle)):
        return payload.index
    return payload[0]


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Kill a pool's worker processes and discard the executor.

    A hung worker cannot be cancelled through the executor API, so the
    timeout watchdog resorts to SIGKILL; the executor object is then
    abandoned (broken) and the driver builds a fresh one.
    """
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.kill()
        except Exception:  # pragma: no cover - already-dead races
            pass
    pool.shutdown(wait=False, cancel_futures=True)


# ----------------------------------------------------------------------
# Shard journal (parallel-path checkpointing)
# ----------------------------------------------------------------------
class _ShardJournal:
    """Journals completed shards under ``<checkpoint_dir>/shards/``.

    Each entry is one atomic JSON document (shard schema with members,
    partial post-processing stats, absorption entries, batch report,
    parameters) plus the run context ``{source, num_batches, seed}``
    (``memoize`` is part of the context when enabled, so memoized and
    plain journals never cross-match).  A resumed run loads every entry
    whose context matches, skips those shards in the pool, and merges
    journaled and fresh results identically -- shard purity guarantees a
    journaled shard equals its recomputation byte for byte.  Entries
    that cannot be used (corrupt files, foreign versions, a different
    run context) are recomputed and reported, never fatal.
    """

    def __init__(self, directory: str, context: dict[str, object]) -> None:
        self.directory = Path(directory)
        self.context = dict(context)
        self.skipped: list[str] = []

    def reset(self) -> None:
        """Drop all entries (fresh run: never mix two runs' shards)."""
        clear_shard_journal(self.directory)

    def record(self, shard: ShardResult) -> None:
        """Atomically journal one completed shard."""
        document: dict[str, object] = {
            "context": self.context,
            "schema": schema_to_dict(shard.schema, include_members=True),
            "stats": schema_stats_to_dict(shard.schema),
            "report": shard.report.to_dict(),
            "parameters": dict(shard.parameters),
            "absorption": [
                entry.to_dict() for entry in shard.absorption
            ],
        }
        save_shard_journal_entry(self.directory, shard.index, document)

    def load(self) -> dict[int, ShardResult]:
        """Rebuild ShardResults from every usable journaled entry."""
        entries, self.skipped = load_shard_journal(self.directory)
        results: dict[int, ShardResult] = {}
        for index in sorted(entries):
            document = entries[index]
            if document.get("context") != self.context:
                self.skipped.append(
                    f"shard-{index:05d}.json: context mismatch"
                )
                continue
            try:
                schema = schema_from_dict(document.get("schema", {}))
            except SchemaPersistError:
                self.skipped.append(
                    f"shard-{index:05d}.json: malformed schema"
                )
                continue
            try:
                absorption = [
                    AbsorptionEntry.from_dict(record)
                    for record in document.get("absorption", [])
                ]
            except Exception:
                self.skipped.append(
                    f"shard-{index:05d}.json: malformed absorption"
                )
                continue
            schema_stats_from_dict(schema, document.get("stats"))
            report = BatchReport.from_dict(document.get("report", {}))
            parameters = {
                str(key): str(value)
                for key, value in document.get("parameters", {}).items()
            }
            results[index] = ShardResult(
                index, schema, report, parameters, absorption
            )
        return results


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
class ParallelDiscovery:
    """Multi-process batch discovery with retry, respawn, and fallback.

    Drives ``config.jobs`` worker processes over the shards of a store
    (plan mode), a seeded stream (stream mode) or an already-batched
    iterable (columns mode), then combines the per-shard schemas with
    :func:`combine_shard_results`.  In plan and stream mode the workers
    also fold the post-processing statistics (datatype joins,
    value-profile partials, per-node degree maps) into
    :class:`~repro.core.postprocess.TypeStats` riding on the shard
    types; :class:`repro.core.pipeline.PGHive` consumes the merged stats
    with :func:`~repro.core.postprocess.apply_partial_stats` -- or falls
    back to the serial store-backed passes (columns mode, sampling
    mode).  See the module docstring for the failure model, the shard
    transport, and the two-phase memoization protocol.
    """

    def __init__(self, config: PGHiveConfig | None = None) -> None:
        self.config = config or PGHiveConfig()

    def _journal_context(
        self,
        source_name: str,
        num_batches: int,
        seed_value: int,
        fingerprint: dict[str, str] | None = None,
    ) -> dict[str, object]:
        context: dict[str, object] = {
            "source": source_name,
            "num_batches": num_batches,
            "seed": seed_value,
        }
        if self.config.memoize_patterns:
            # Memoized and plain runs journal different shard schemas;
            # the asymmetric key keeps their journals from cross-matching.
            context["memoize"] = True
        if self.config.infer_value_profiles:
            # Profile-less runs journal datatype-only partial stats; a
            # profile run must never resume from them (its profiles
            # would come out empty), so the key is asymmetric too.
            context["profiles"] = True
        if fingerprint is not None:
            # Durable stores stamp their on-disk state (row counts and
            # heap sizes) into the journal key: a journal written against
            # one slab generation never resumes against another.
            context["store"] = fingerprint
        return context

    def _prepare_journal(
        self, context: dict[str, object], resume: bool
    ) -> tuple["_ShardJournal | None", dict[int, ShardResult]]:
        if not self.config.checkpoint_dir:
            return None, {}
        journal = _ShardJournal(self.config.checkpoint_dir, context)
        if resume:
            return journal, journal.load()
        journal.reset()
        return journal, {}

    def _make_registry(self, transport: str) -> SegmentRegistry | None:
        if transport == "pickle":
            return None
        return SegmentRegistry(
            transport,
            self.config.checkpoint_dir,
            _worker_injector(self.config),
        )

    def discover_store(
        self, store: BaseGraphStore, num_batches: int, resume: bool = False
    ) -> DiscoveryResult:
        """Shard ``store`` into ``num_batches`` and discover in parallel.

        The shard partition itself is computed with the pool: the parent
        runs the node half (one seeded shuffle plus an argsort), workers
        bucket slices of the edge sequence by source shard, and the
        parent concatenates the per-shard buckets -- byte-identical to
        the single-pass assignment, enforced by
        ``tests/test_graph_store.py``.

        When ``config.checkpoint_dir`` is set, every completed shard is
        journaled atomically under ``<checkpoint_dir>/shards/``; with
        ``resume=True``, shards already journaled by a crashed run with
        the same context (source, batch count, seed, memoization) are
        loaded instead of recomputed, and the merged schema is
        byte-identical to an uninterrupted run.  A non-resume run clears
        the journal first.
        """
        started = time.perf_counter()
        config = self.config
        transport = resolve_transport(config.shard_transport)
        journal, preloaded = self._prepare_journal(
            self._journal_context(
                store.name, num_batches, config.seed,
                fingerprint=store.journal_fingerprint(),
            ),
            resume,
        )
        partition_started = time.perf_counter()
        nodes_by_shard, sorted_ids, shard_of_sorted = store.partition_tables(
            num_batches, seed=config.seed
        )
        edges_by_shard, partition_mode = self._partition_edges(
            store, sorted_ids, shard_of_sorted, num_batches
        )
        store.install_partition(
            num_batches, config.seed, True, nodes_by_shard, edges_by_shard
        )
        partition_seconds = time.perf_counter() - partition_started
        plans = store.plan_shards(num_batches, seed=config.seed)
        todo = [plan for plan in plans if plan.index not in preloaded]
        registry = self._make_registry(transport)
        try:
            state = _ParentState(
                store,
                config,
                None,
                transport,
                registry.directory if registry is not None else None,
            )
            shard_results, failures = self._run_phases(
                plans, todo, preloaded, state, journal, registry
            )
        finally:
            if registry is not None:
                registry.close()
        all_results = [preloaded[index] for index in sorted(preloaded)]
        all_results += shard_results
        extra = {
            "parallel/transport": (
                f"requested={config.shard_transport} used={transport}"
            ),
            "parallel/partition": (
                f"mode={partition_mode} seconds={partition_seconds:.6f}"
            ),
        }
        result = self._combine(
            store.name, all_results, failures, started, extra
        )
        self._note_resume(result, journal, preloaded)
        return result

    def discover_stream(
        self, stream: GraphStream, resume: bool = False
    ) -> DiscoveryResult:
        """Discover a seeded stream with per-worker replay.

        The parent never consumes the live stream: workers receive
        :class:`~repro.datasets.stream.StreamShardPlan` scalars and
        replay a pristine fork-inherited replica up to their batch, so
        *generation* and columnization both run on the pool and nothing
        batch-sized crosses the pipe on the way out.  Because replay is
        seeded, every shard is byte-identical to the batch the live
        stream would have emitted, and the usual purity/recovery
        arguments apply unchanged -- including journal resume: with
        ``config.checkpoint_dir`` and ``resume=True``, journaled stream
        shards are reloaded and only the missing ones are replayed.
        """
        started = time.perf_counter()
        config = self.config
        transport = resolve_transport(config.shard_transport)
        journal, preloaded = self._prepare_journal(
            self._journal_context(
                stream.graph.name, stream.num_batches, stream.seed
            ),
            resume,
        )
        plans = stream.plan_shards()
        todo = [plan for plan in plans if plan.index not in preloaded]
        chunk = config.chunk_size(stream.num_batches)
        chunks = [todo[i : i + chunk] for i in range(0, len(todo), chunk)]
        registry = self._make_registry(transport)
        try:
            state = _ParentState(
                stream,
                config,
                None,
                transport,
                registry.directory if registry is not None else None,
            )
            shard_results, failures = self._run_pool(
                _discover_plan_chunk, chunks, state, journal, registry
            )
        finally:
            if registry is not None:
                registry.close()
        all_results = [preloaded[index] for index in sorted(preloaded)]
        all_results += shard_results
        extra = {
            "parallel/transport": (
                f"requested={config.shard_transport} used={transport}"
            ),
        }
        result = self._combine(
            stream.graph.name, all_results, failures, started, extra
        )
        self._note_resume(result, journal, preloaded)
        return result

    def discover_batches(
        self,
        batches: Iterable[GraphBatch],
        name: str = "stream",
        total: int | None = None,
    ) -> DiscoveryResult:
        """Discover pre-batched data from an arbitrary iterable.

        The parent consumes the iterable -- stateful sources must be
        generated in order -- columnizing each batch once.  Under a
        zero-copy transport the column arrays are packed into one shared
        slab and workers receive only :class:`ColumnsHandle` offsets;
        under ``pickle`` the arrays ship through the pipe as before.
        Because the parent keeps every payload for the duration of the
        run, lost or timed-out shards can be re-shipped without
        re-reading the source.
        """
        started = time.perf_counter()
        config = self.config
        transport = resolve_transport(config.shard_transport)
        columnized: list[tuple[int, NodeColumns, EdgeColumns]] = []
        for index, batch in enumerate(batches):
            columnized.append(
                (
                    index,
                    node_columns(batch.nodes),
                    edge_columns(batch.edges, batch.endpoint_labels),
                )
            )
        chunk = config.chunk_size(
            total if total is not None else len(columnized)
        )
        registry = self._make_registry(transport)
        try:
            payloads: list[Payload]
            if registry is not None and columnized:
                payloads = self._handles_for_columns(columnized, registry)
            else:
                payloads = list(columnized)
            chunks = [
                payloads[i : i + chunk]
                for i in range(0, len(payloads), chunk)
            ]
            state = _ParentState(
                None,
                config,
                None,
                transport,
                registry.directory if registry is not None else None,
            )
            shard_results, failures = self._run_pool(
                _discover_columns_chunk, chunks, state, registry=registry
            )
        finally:
            if registry is not None:
                registry.close()
        extra = {
            "parallel/transport": (
                f"requested={config.shard_transport} used={transport}"
            ),
        }
        return self._combine(name, shard_results, failures, started, extra)

    @staticmethod
    def _handles_for_columns(
        columnized: Sequence[tuple[int, NodeColumns, EdgeColumns]],
        registry: SegmentRegistry,
    ) -> list[Payload]:
        """Pack every batch's arrays into one slab of handles."""
        arrays: list[numpy.ndarray] = []
        for _index, ncols, ecols in columnized:
            arrays.extend(
                (
                    ncols.ids, ncols.label_ids, ncols.keyset_ids,
                    ecols.ids, ecols.source, ecols.target, ecols.label_ids,
                    ecols.src_label_ids, ecols.tgt_label_ids,
                    ecols.keyset_ids,
                )
            )
        slab, refs = registry.publish_arrays(arrays)
        payloads: list[Payload] = []
        for position, (index, ncols, ecols) in enumerate(columnized):
            r = refs[position * 10 : (position + 1) * 10]
            payloads.append(
                ColumnsHandle(
                    index, slab,
                    r[0], r[1], r[2], r[3], r[4], r[5], r[6], r[7], r[8],
                    r[9],
                    node_label_sets=tuple(ncols.labels.sets),
                    node_key_orders=tuple(ncols.keys.orders),
                    edge_label_sets=tuple(ecols.labels.sets),
                    edge_key_orders=tuple(ecols.keys.orders),
                )
            )
        return payloads

    @staticmethod
    def _note_resume(
        result: DiscoveryResult,
        journal: "_ShardJournal | None",
        preloaded: dict[int, ShardResult],
    ) -> None:
        if preloaded and journal is not None:
            result.resumed_shards = sorted(preloaded)
            result.parameters["parallel/journal"] = (
                f"dir={journal.directory} "
                f"resumed_shards={sorted(preloaded)}"
            )
        if journal is not None and journal.skipped:
            result.parameters["parallel/journal_skipped"] = (
                " ".join(journal.skipped)
            )

    # ------------------------------------------------------------------
    # Parallel partitioning
    # ------------------------------------------------------------------
    def _partition_edges(
        self,
        store: BaseGraphStore,
        sorted_ids: numpy.ndarray,
        shard_of_sorted: numpy.ndarray,
        num_shards: int,
    ) -> tuple[list[numpy.ndarray], str]:
        """Bucket all edges by source shard, on the pool when worthwhile.

        Splits the edge sequence into about two slices per worker, has a
        short-lived pool bucket each slice
        (:func:`_bucket_edges_task`), and concatenates every slice's
        bucket ``s`` in slice order -- byte-identical to the serial pass
        because the per-slice stable sort preserves in-slice edge order.
        Small graphs (or ``jobs=1``) keep the serial numpy pass; any
        pool failure falls back to it too, since partitioning must never
        be less reliable than the dict pass it replaced.
        """
        global _PARTITION_STATE
        num_edges = store.count_edges()
        jobs = self.config.jobs
        if jobs <= 1 or num_edges < _PARALLEL_PARTITION_MIN_EDGES:
            return (
                store.bucket_edge_range(
                    0, num_edges, sorted_ids, shard_of_sorted, num_shards
                ),
                "serial",
            )
        slices: list[tuple[int, int]] = []
        step = max(1, -(-num_edges // (jobs * 2)))
        for start in range(0, num_edges, step):
            slices.append((start, min(start + step, num_edges)))
        workers = min(jobs, len(slices))
        _PARTITION_STATE = (store, sorted_ids, shard_of_sorted, num_shards)
        try:
            context = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=context
            ) as pool:
                futures = [
                    pool.submit(_bucket_edges_task, start, stop)
                    for start, stop in slices
                ]
                chunk_buckets = [future.result() for future in futures]
        except Exception:
            return (
                store.bucket_edge_range(
                    0, num_edges, sorted_ids, shard_of_sorted, num_shards
                ),
                "serial-fallback",
            )
        finally:
            _PARTITION_STATE = None
        merged = [
            numpy.concatenate(
                [buckets[shard] for buckets in chunk_buckets]
            )
            for shard in range(num_shards)
        ]
        return merged, f"parallel workers={workers} slices={len(slices)}"

    # ------------------------------------------------------------------
    # Two-phase memoization
    # ------------------------------------------------------------------
    def _run_phases(
        self,
        plans: Sequence[ShardPlan],
        todo: list[ShardPlan],
        preloaded: dict[int, ShardResult],
        state: _ParentState,
        journal: "_ShardJournal | None",
        registry: SegmentRegistry | None,
    ) -> tuple[list[ShardResult], list[ShardFailure]]:
        """Run the pool, optionally with the two-phase absorption snapshot.

        Without memoization this is a single pool pass.  With it, the
        lowest shard runs alone first (or comes from the resume
        journal); its schema freezes into the
        :class:`~repro.core.absorption.MemoSnapshot` every other worker
        absorbs against.  If the seed shard fails beyond recovery the
        remaining shards simply run unmemoized -- the result is still
        deterministic and complete.
        """
        config = self.config
        chunk = config.chunk_size(len(plans))
        if not config.memoize_patterns:
            chunks = [todo[i : i + chunk] for i in range(0, len(todo), chunk)]
            return self._run_pool(
                _discover_plan_chunk, chunks, state, journal, registry
            )
        seed_index = min(plan.index for plan in plans)
        results: list[ShardResult] = []
        failures: list[ShardFailure] = []
        snapshot: MemoSnapshot | None = None
        if seed_index in preloaded:
            snapshot = snapshot_from_schema(preloaded[seed_index].schema)
        else:
            seed_plan = next(
                plan for plan in todo if plan.index == seed_index
            )
            seed_results, seed_failures = self._run_pool(
                _discover_plan_chunk, [[seed_plan]], state, journal, registry
            )
            results += seed_results
            failures += seed_failures
            if seed_results:
                snapshot = snapshot_from_schema(seed_results[0].schema)
        rest = [plan for plan in todo if plan.index != seed_index]
        chunks = [rest[i : i + chunk] for i in range(0, len(rest), chunk)]
        state.snapshot = snapshot
        rest_results, rest_failures = self._run_pool(
            _discover_plan_chunk, chunks, state, journal, registry
        )
        return results + rest_results, failures + rest_failures

    # ------------------------------------------------------------------
    # Pool loop with recovery
    # ------------------------------------------------------------------
    def _run_pool(
        self,
        worker: Callable[..., "list[ShardResult] | SlabRef"],
        chunks: Sequence[list[Payload]],
        state: _ParentState,
        journal: "_ShardJournal | None" = None,
        registry: SegmentRegistry | None = None,
    ) -> tuple[list[ShardResult], list[ShardFailure]]:
        """Run the pool to completion, recovering from task failures.

        Tasks start as the caller's chunks at attempt 0.  A failed task
        of several shards is split into single-shard tasks at the *same*
        attempt (re-running an innocent shard is free thanks to purity,
        and the faulty one then fails alone and is blamed precisely); a
        failed single shard is retried with backoff until its attempt
        budget runs out, then handed to the in-process fallback.

        With a registry, every submit reserves a result segment name;
        the name is released on any path that abandons the task (error,
        dead worker, timeout), so crashed workers -- even ones SIGKILLed
        mid-publish -- cannot leak segments past the run's final sweep.
        """
        if not chunks:
            return [], []
        global _PARENT_STATE
        context = multiprocessing.get_context("fork")
        _PARENT_STATE = state
        config = self.config
        workers = max(1, min(config.jobs, len(chunks)))
        timeout = config.shard_timeout
        results: dict[int, ShardResult] = {}
        failures: list[ShardFailure] = []
        fallback: list[tuple[Payload, int]] = []
        pending: deque[tuple[list[Payload], list[int]]] = deque(
            (list(chunk), [0] * len(chunk)) for chunk in chunks
        )
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        running: dict[
            object, tuple[list[Payload], list[int], float, str | None]
        ] = {}

        def release(reserved: str | None) -> None:
            if registry is not None and reserved is not None:
                registry.release(reserved)

        def collect(shards: list[ShardResult], attempts: list[int]) -> None:
            for shard, attempt in zip(shards, attempts):
                shard.report.attempts = attempt + 1
                results[shard.index] = shard
                if journal is not None:
                    journal.record(shard)
                if attempt > 0:
                    self._mark_recovered(failures, shard.index, "retry")

        def requeue(payloads: list[Payload], attempts: list[int], kind: str,
                    error: str) -> None:
            """Split / blame / retry / fall back after one task failure."""
            if len(payloads) > 1:
                # Blame is per-shard: rerun each alone at the same
                # attempt so the faulty one fails in isolation next.
                for payload, attempt in zip(payloads, attempts):
                    pending.append(([payload], [attempt]))
                return
            payload, attempt = payloads[0], attempts[0]
            index = _payload_index(payload)
            failures.append(ShardFailure(index, attempt, kind, error))
            if attempt + 1 <= config.shard_retries:
                if config.shard_retry_backoff:
                    time.sleep(config.shard_retry_backoff * (attempt + 1))
                pending.append(([payload], [attempt + 1]))
            else:
                fallback.append((payload, attempt + 1))

        def quarantine(
            payloads: list[Payload],
            attempts: list[int],
            exc: SlabCorruptionError,
        ) -> None:
            """Handle detected slab corruption per ``corrupt_slab_policy``.

            ``raise`` makes corruption fatal immediately.  ``skip``
            splits multi-shard chunks for precise blame (the re-run of
            an innocent shard is pure and cheap), then records the
            corrupt shard as a degraded ``"corruption"`` failure with
            *no* retries and no in-process fallback -- unlike a flaky
            worker, corrupt bytes fail deterministically, so re-reading
            them anywhere only repeats the error.
            """
            if config.corrupt_slab_policy != "skip":
                raise exc
            if len(payloads) > 1:
                for payload, attempt in zip(payloads, attempts):
                    pending.append(([payload], [attempt]))
                return
            failures.append(ShardFailure(
                _payload_index(payloads[0]), attempts[0], "corruption",
                str(exc),
            ))

        try:
            while pending or running:
                while pending and len(running) < workers:
                    payloads, attempts = pending.popleft()
                    reserved = (
                        registry.reserve() if registry is not None else None
                    )
                    try:
                        future = pool.submit(
                            worker, payloads, attempts, reserved
                        )
                    except BrokenProcessPool:
                        # The pool broke between iterations.  Put the
                        # task back; drain the dead futures through the
                        # wait() below, or respawn at once if none.
                        release(reserved)
                        pending.appendleft((payloads, attempts))
                        if running:
                            break
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = ProcessPoolExecutor(
                            max_workers=workers, mp_context=context
                        )
                        continue
                    running[future] = (
                        payloads, attempts, time.monotonic(), reserved
                    )
                done, _ = wait(
                    set(running),
                    timeout=0.05 if timeout else None,
                    return_when=FIRST_COMPLETED,
                )
                broken = False
                for future in done:
                    payloads, attempts, _started, reserved = (
                        running.pop(future)
                    )
                    try:
                        value = future.result()  # type: ignore[attr-defined]
                        if isinstance(value, SlabRef):
                            if registry is None:
                                raise RuntimeError(
                                    "worker returned a slab ref without a "
                                    "registry"
                                )
                            raw = registry.consume_bytes(
                                value, index=_payload_index(payloads[0])
                            )
                            value = pickle.loads(raw)
                        collect(value, attempts)
                    except BrokenProcessPool:
                        release(reserved)
                        broken = True
                        requeue(payloads, attempts, "worker-lost",
                                "worker process died")
                    except ShardMemoryError as exc:
                        release(reserved)
                        requeue(payloads, attempts, "memory", str(exc))
                    except SlabCorruptionError as exc:
                        release(reserved)
                        quarantine(payloads, attempts, exc)
                    except Exception as exc:
                        release(reserved)
                        requeue(payloads, attempts, "error",
                                f"{type(exc).__name__}: {exc}")
                if broken:
                    # Every other in-flight future died with the pool;
                    # their work is lost, so they requeue through the
                    # same blame path (splitting chunks keeps the
                    # eventual blame per-shard precise).
                    for payloads, attempts, _started, reserved in (
                        running.values()
                    ):
                        release(reserved)
                        requeue(payloads, attempts, "worker-lost",
                                "worker process died")
                    running.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(
                        max_workers=workers, mp_context=context
                    )
                elif timeout and running:
                    now = time.monotonic()
                    timed_out = [
                        future
                        for future, (_p, _a, task_started, _r) in (
                            running.items()
                        )
                        if now - task_started > timeout
                    ]
                    if timed_out:
                        for future in timed_out:
                            payloads, attempts, _started, reserved = (
                                running.pop(future)
                            )
                            release(reserved)
                            requeue(
                                payloads, attempts, "timeout",
                                f"exceeded shard_timeout={timeout:g}s",
                            )
                        # Innocent in-flight tasks are lost with the
                        # killed pool but not blamed: they requeue whole
                        # at their current attempts (with fresh result
                        # segments on resubmission).
                        for payloads, attempts, _started, reserved in (
                            running.values()
                        ):
                            release(reserved)
                            pending.append((payloads, attempts))
                        running.clear()
                        _terminate_pool(pool)
                        pool = ProcessPoolExecutor(
                            max_workers=workers, mp_context=context
                        )
            # Last resort: poisoned shards run in the driver process,
            # where a crashing worker environment cannot take them down
            # (and where the RSS guard is deliberately unarmed).
            for payload, attempt in sorted(
                fallback, key=lambda item: _payload_index(item[0])
            ):
                index = _payload_index(payload)
                try:
                    shards = worker(
                        [payload], [attempt], None, in_worker=False
                    )
                except Exception as exc:
                    failures.append(ShardFailure(
                        index, attempt, "fallback-failed",
                        f"{type(exc).__name__}: {exc}",
                    ))
                    continue
                if isinstance(shards, SlabRef):  # pragma: no cover
                    raise RuntimeError(
                        "in-process fallback must not publish segments"
                    )
                for shard in shards:
                    shard.report.attempts = attempt + 1
                    results[shard.index] = shard
                    if journal is not None:
                        journal.record(shard)
                self._mark_recovered(failures, index, "fallback")
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
            _PARENT_STATE = None
        failures.sort(key=lambda f: (f.index, f.attempt))
        if config.strict_recovery and any(
            f.recovered_by is None for f in failures
        ):
            raise ShardRecoveryError(failures)
        return sorted(results.values(), key=lambda r: r.index), failures

    @staticmethod
    def _mark_recovered(
        failures: list[ShardFailure], index: int, how: str
    ) -> None:
        for failure in failures:
            if failure.index == index and failure.recovered_by is None:
                failure.recovered_by = how

    def _combine(
        self,
        name: str,
        shard_results: list[ShardResult],
        failures: list[ShardFailure],
        started: float,
        extra_parameters: dict[str, str] | None = None,
    ) -> DiscoveryResult:
        merge_started = time.perf_counter()
        schema = combine_shard_results(name, shard_results, self.config)
        ordered = sorted(shard_results, key=lambda r: r.index)
        absorbed = 0
        if any(shard.absorption for shard in ordered):
            # Replay the memoized absorptions into the merged schema
            # before partial post-processing stats are consumed, so
            # constraints and cardinalities see the absorbed members.
            absorbed = replay_absorption(
                schema,
                [shard.absorption for shard in ordered],
                self.config.endpoint_jaccard_threshold,
            )
        merge_seconds = time.perf_counter() - merge_started
        parameters: dict[str, str] = {}
        for shard in ordered:
            parameters.update(shard.parameters)
        workers = {r.report.worker for r in ordered if r.report.worker}
        parameters["parallel/jobs"] = (
            f"jobs={self.config.jobs} workers_used={len(workers)} "
            f"shards={len(ordered)}"
        )
        parameters["parallel/merge_seconds"] = f"{merge_seconds:.6f}"
        if absorbed:
            parameters["parallel/absorbed"] = f"elements={absorbed}"
        if failures:
            recovered = sorted({
                f.index for f in failures if f.recovered_by is not None
            })
            dropped = sorted({
                f.index for f in failures if f.recovered_by is None
            })
            parameters["parallel/recovery"] = (
                f"failure_events={len(failures)} "
                f"recovered_shards={recovered} degraded_shards={dropped}"
            )
        if extra_parameters:
            parameters.update(extra_parameters)
        result = DiscoveryResult(
            schema=schema,
            batches=[r.report for r in ordered],
            parameters=parameters,
            discovery_seconds=time.perf_counter() - started,
            shard_failures=failures,
        )
        result.refresh_assignments()
        return result
