"""Parallel sharded discovery: a multi-process batch pipeline.

The incremental engine computes each batch schema *independently* of the
running schema (when the memoization fast path is off), and the merge
rules of :mod:`repro.schema.merge` are union-only (Lemmas 1-2).  Batch
discovery therefore parallelizes embarrassingly: shard the store into
batches, discover each shard's schema in a worker process, and combine
the per-shard schemas through the canonical pairwise merge tree of
:func:`repro.schema.merge.merge_schema_tree`.

Payload contract
----------------
Workers never receive pickled :class:`~repro.graph.model.Node` /
:class:`~repro.graph.model.Edge` objects.  Two payload modes exist:

* **plan mode** (:meth:`ParallelDiscovery.discover_store`): the parent
  warms the store's shard partition and forks; each worker receives only
  a list of :class:`~repro.graph.store.ShardPlan` scalars and
  materializes + columnizes its own shards against the fork-inherited
  store.  Nothing graph-sized ever crosses the process pipe, and the
  columnization work -- the dominant serial cost -- runs inside the
  workers.
* **columns mode** (:meth:`ParallelDiscovery.discover_batches`): for
  stateful sources such as :class:`~repro.datasets.stream.GraphStream`,
  the parent iterates the stream, columnizes each batch once, and ships
  the compact integer-id arrays (:class:`~repro.core.columns.NodeColumns`
  / :class:`~repro.core.columns.EdgeColumns`) to the pool.

Determinism contract
--------------------
The final schema is a pure function of the shard sequence: workers
return per-shard schemas individually, the driver sorts them by shard
index and reduces them through the canonical index-ordered merge tree,
so the result is independent of worker count, chunking, and completion
order.  Each shard is discovered with its global batch index, keeping
pseudo-label tags (``b{i}``) and parameter keys (``batch{i}/...``)
identical to a sequential run over the same batch sequence; on labeled
data the result is byte-identical to ``jobs=1``
(``tests/test_parallel.py`` enforces both properties).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.columns import EdgeColumns, NodeColumns, edge_columns, node_columns
from repro.core.config import PGHiveConfig
from repro.core.incremental import IncrementalDiscovery
from repro.core.result import BatchReport, DiscoveryResult
from repro.core.type_extraction import resolve_edge_endpoints
from repro.graph.store import GraphBatch, GraphStore, ShardPlan
from repro.schema.merge import merge_schema_tree, merge_schemas
from repro.schema.model import SchemaGraph

__all__ = [
    "ParallelDiscovery",
    "ShardResult",
    "combine_shard_results",
    "fork_available",
]


@dataclass
class ShardResult:
    """One shard's independently discovered schema plus diagnostics."""

    index: int
    schema: SchemaGraph
    report: BatchReport
    parameters: dict[str, str] = field(default_factory=dict)


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform.

    The plan-mode payload relies on copy-on-write inheritance of the
    parent's store; without ``fork`` (e.g. Windows, or macOS policies
    forcing ``spawn``) the driver falls back to sequential discovery.
    """
    return "fork" in multiprocessing.get_all_start_methods()


def combine_shard_results(
    name: str,
    results: Sequence[ShardResult],
    config: PGHiveConfig,
) -> SchemaGraph:
    """Reduce per-shard schemas into the final schema (pure function).

    Sorts by shard index, merges through the canonical pairwise tree,
    then folds the tree result into a fresh named schema -- mirroring
    the sequential engine's "merge batch into running schema" step -- and
    resolves edge endpoint types once at the end.  Because the reduction
    only depends on the *sorted* results, any permutation of ``results``
    (worker completion order) yields the identical schema; the
    order-invariance property test calls this directly.
    """
    ordered = sorted(results, key=lambda r: r.index)
    tree = merge_schema_tree(
        [r.schema for r in ordered],
        config.jaccard_threshold,
        config.endpoint_jaccard_threshold,
    )
    final = merge_schemas(
        SchemaGraph(name),
        tree,
        config.jaccard_threshold,
        config.endpoint_jaccard_threshold,
    )
    resolve_edge_endpoints(final)
    return final


# ----------------------------------------------------------------------
# Worker side.  State shared by fork inheritance: the parent sets
# ``_PARENT_STATE`` immediately before creating the pool, children
# inherit the reference copy-on-write, and nothing graph-sized is ever
# pickled.  (Pool tasks themselves carry only plans or column arrays.)
# ----------------------------------------------------------------------
_PARENT_STATE: tuple[GraphStore | None, PGHiveConfig] | None = None


def _discover_plan_chunk(plans: Sequence[ShardPlan]) -> list[ShardResult]:
    """Worker: materialize, columnize and discover a chunk of shards.

    A chunk of *consecutive* shard indices shares one engine, so the
    cross-batch embedder reuse of the sequential engine still applies
    within the chunk (reuse never changes output, only cost).
    """
    store, config = _PARENT_STATE
    engine = IncrementalDiscovery(config, name="shard")
    results: list[ShardResult] = []
    for plan in plans:
        batch = store.materialize_shard(plan)
        ncols = node_columns(batch.nodes)
        ecols = edge_columns(batch.edges, batch.endpoint_labels)
        results.append(_discover_one(engine, plan.index, ncols, ecols))
    return results


def _discover_columns_chunk(
    payloads: Sequence[tuple[int, NodeColumns, EdgeColumns]],
) -> list[ShardResult]:
    """Worker: discover a chunk of pre-columnized shards."""
    _, config = _PARENT_STATE
    engine = IncrementalDiscovery(config, name="shard")
    return [
        _discover_one(engine, index, ncols, ecols)
        for index, ncols, ecols in payloads
    ]


def _discover_one(
    engine: IncrementalDiscovery,
    index: int,
    ncols: NodeColumns,
    ecols: EdgeColumns,
) -> ShardResult:
    seen = len(engine.parameters)
    schema, report = engine.discover_batch_columns(
        ncols, ecols, batch_index=index
    )
    report.worker = os.getpid()
    params = dict(list(engine.parameters.items())[seen:])
    return ShardResult(index, schema, report, params)


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
class ParallelDiscovery:
    """Multi-process batch discovery with an order-independent merge tree.

    Drives ``config.jobs`` worker processes over the shards of a store
    (plan mode) or an already-batched stream (columns mode), then
    combines the per-shard schemas with :func:`combine_shard_results`.
    Post-processing is *not* run here -- :class:`repro.core.pipeline.PGHive`
    applies it to the combined schema exactly as in a sequential run.
    """

    def __init__(self, config: PGHiveConfig | None = None) -> None:
        self.config = config or PGHiveConfig()

    def discover_store(
        self, store: GraphStore, num_batches: int
    ) -> DiscoveryResult:
        """Shard ``store`` into ``num_batches`` and discover in parallel."""
        started = time.perf_counter()
        plans = store.plan_shards(num_batches, seed=self.config.seed)
        chunk = self.config.chunk_size(num_batches)
        chunks = [
            plans[i : i + chunk] for i in range(0, len(plans), chunk)
        ]
        shard_results = self._run_pool(_discover_plan_chunk, chunks, store)
        return self._combine(store.graph.name, shard_results, started)

    def discover_batches(
        self,
        batches: Iterable[GraphBatch],
        name: str = "stream",
        total: int | None = None,
    ) -> DiscoveryResult:
        """Discover pre-batched data (e.g. a :class:`GraphStream`).

        The parent consumes the iterable -- stateful streams must be
        generated in order -- columnizing each batch once and shipping
        the compact arrays to the pool.
        """
        started = time.perf_counter()
        payloads: list[tuple[int, NodeColumns, EdgeColumns]] = []
        for index, batch in enumerate(batches):
            payloads.append(
                (
                    index,
                    node_columns(batch.nodes),
                    edge_columns(batch.edges, batch.endpoint_labels),
                )
            )
        chunk = self.config.chunk_size(
            total if total is not None else len(payloads)
        )
        chunks = [
            payloads[i : i + chunk]
            for i in range(0, len(payloads), chunk)
        ]
        shard_results = self._run_pool(
            _discover_columns_chunk, chunks, store=None
        )
        return self._combine(name, shard_results, started)

    # ------------------------------------------------------------------
    def _run_pool(self, worker, chunks, store) -> list[ShardResult]:
        if not chunks:
            return []
        global _PARENT_STATE
        context = multiprocessing.get_context("fork")
        _PARENT_STATE = (store, self.config)
        try:
            workers = max(1, min(self.config.jobs, len(chunks)))
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=context
            ) as pool:
                futures = [pool.submit(worker, chunk) for chunk in chunks]
                results: list[ShardResult] = []
                for future in futures:
                    results.extend(future.result())
        finally:
            _PARENT_STATE = None
        return results

    def _combine(
        self,
        name: str,
        shard_results: list[ShardResult],
        started: float,
    ) -> DiscoveryResult:
        merge_started = time.perf_counter()
        schema = combine_shard_results(name, shard_results, self.config)
        merge_seconds = time.perf_counter() - merge_started
        ordered = sorted(shard_results, key=lambda r: r.index)
        parameters: dict[str, str] = {}
        for shard in ordered:
            parameters.update(shard.parameters)
        workers = {r.report.worker for r in ordered if r.report.worker}
        parameters["parallel/jobs"] = (
            f"jobs={self.config.jobs} workers_used={len(workers)} "
            f"shards={len(ordered)}"
        )
        parameters["parallel/merge_seconds"] = f"{merge_seconds:.6f}"
        result = DiscoveryResult(
            schema=schema,
            batches=[r.report for r in ordered],
            parameters=parameters,
            discovery_seconds=time.perf_counter() - started,
        )
        result.refresh_assignments()
        return result
